#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json snapshots.

Compares freshly produced benchmark snapshots (bench/bench_common.h's
WriteSnapshotFile schema) against the committed baselines in bench/baseline/
and fails if any row's wall time regressed beyond the tolerance.

Matching is by (bench, row name): a current snapshot BENCH_<name>.json is
compared against bench/baseline/BENCH_<name>.json row by row. Rows present in
only one side are reported but never fail the gate — benches grow rows over
time and CI may run a narrower --benchmark_filter than the baseline capture.

Wall time on shared runners is one-sided noise: a run can only be slowed by
interference, never sped up. Both sides of the gate therefore use
min-of-N: pass --current several times (one directory per bench run) and
rows are merged by minimum wall_ms before comparison; the committed
baselines are captured the same way (`make update-baseline` runs the gated
benches three times and writes the row-wise minimum via --write-min).

Rows faster than --floor-ms in the baseline are informational only: at
sub-millisecond scale the shared CI runners cannot hold a 15% band.

Typical use:

    python3 scripts/check_bench.py --current run1 --current run2 --current run3

After an intentional perf change, refresh the committed snapshots with
`make update-baseline` (see bench/CMakeLists.txt) and commit the result.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_TOLERANCE = 0.15  # fail when wall_ms > baseline * (1 + tolerance)
DEFAULT_FLOOR_MS = 1.0  # baseline rows faster than this are advisory only


def load_snapshots(directory: pathlib.Path) -> dict[str, dict]:
    """Maps bench name -> parsed snapshot for every BENCH_*.json in directory."""
    snapshots = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"error: unreadable snapshot {path}: {err}", file=sys.stderr)
            sys.exit(2)
        bench = data.get("bench")
        if not bench or not isinstance(data.get("rows"), list):
            print(f"error: {path} is not a bench snapshot (missing bench/rows)",
                  file=sys.stderr)
            sys.exit(2)
        snapshots[bench] = data
    return snapshots


def rows_by_name(snapshot: dict) -> dict[str, dict]:
    return {row["name"]: row for row in snapshot["rows"] if "name" in row}


def merge_min(snapshot_sets: list[dict[str, dict]]) -> dict[str, dict]:
    """Merges per-run snapshot maps, keeping each row's fastest observation."""
    merged: dict[str, dict] = {}
    for snapshots in snapshot_sets:
        for bench, snap in snapshots.items():
            if bench not in merged:
                # Copy so row replacement below never mutates the input.
                merged[bench] = {**snap, "rows": list(snap["rows"])}
                continue
            best = rows_by_name(merged[bench])
            for row in snap["rows"]:
                name = row.get("name")
                prev = best.get(name)
                if prev is None:
                    merged[bench]["rows"].append(row)
                    best[name] = row
                elif isinstance(row.get("wall_ms"), (int, float)) and \
                        isinstance(prev.get("wall_ms"), (int, float)) and \
                        row["wall_ms"] < prev["wall_ms"]:
                    idx = merged[bench]["rows"].index(prev)
                    merged[bench]["rows"][idx] = row
                    best[name] = row
    return merged


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--current", type=pathlib.Path, action="append", required=True,
                        help="directory of freshly generated BENCH_*.json files; "
                             "repeat for min-of-N across runs")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=pathlib.Path("bench/baseline"),
                        help="directory holding the committed baseline snapshots")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional wall-time regression (default 0.15)")
    parser.add_argument("--floor-ms", type=float, default=DEFAULT_FLOOR_MS,
                        help="baseline rows below this wall_ms are advisory only")
    parser.add_argument("--write-min", type=pathlib.Path, default=None,
                        help="instead of gating, write the min-merged snapshots to this "
                             "directory (used by `make update-baseline`)")
    args = parser.parse_args()

    snapshot_sets = []
    for directory in args.current:
        if not directory.is_dir():
            print(f"error: --current {directory} is not a directory", file=sys.stderr)
            return 2
        snapshots = load_snapshots(directory)
        if not snapshots:
            print(f"error: no BENCH_*.json found under {directory}", file=sys.stderr)
            return 2
        snapshot_sets.append(snapshots)
    current = merge_min(snapshot_sets)

    if args.write_min is not None:
        args.write_min.mkdir(parents=True, exist_ok=True)
        for bench, snap in sorted(current.items()):
            out = args.write_min / f"BENCH_{bench}.json"
            out.write_text(json.dumps(snap, indent=1) + "\n")
            print(f"wrote {out} ({len(snap['rows'])} rows, "
                  f"min over {len(snapshot_sets)} run(s))")
        return 0
    if not args.baseline.is_dir():
        print(f"note: no baseline directory {args.baseline}; nothing to gate "
              f"(run `make update-baseline` to create one)")
        return 0
    baseline = load_snapshots(args.baseline)

    regressions = []
    compared = 0
    for bench, cur_snap in sorted(current.items()):
        base_snap = baseline.get(bench)
        if base_snap is None:
            print(f"note: bench '{bench}' has no committed baseline; skipping")
            continue
        base_rows = rows_by_name(base_snap)
        cur_rows = rows_by_name(cur_snap)
        for name in sorted(base_rows.keys() - cur_rows.keys()):
            print(f"note: {bench}: baseline row '{name}' not in current run "
                  f"(narrower filter?)")
        for name in sorted(cur_rows.keys() - base_rows.keys()):
            print(f"note: {bench}: new row '{name}' has no baseline yet")
        for name in sorted(base_rows.keys() & cur_rows.keys()):
            base_ms = base_rows[name].get("wall_ms")
            cur_ms = cur_rows[name].get("wall_ms")
            if not isinstance(base_ms, (int, float)) or not isinstance(cur_ms, (int, float)):
                continue
            compared += 1
            if base_ms <= 0:
                continue
            ratio = cur_ms / base_ms
            delta_pct = (ratio - 1.0) * 100.0
            advisory = base_ms < args.floor_ms
            over = ratio > 1.0 + args.tolerance
            tag = "OK"
            if over:
                tag = "ADVISORY" if advisory else "REGRESSION"
            elif ratio < 1.0 - args.tolerance:
                tag = "IMPROVED"
            print(f"{tag:>10}  {bench}: {name}: {base_ms:.3f} ms -> {cur_ms:.3f} ms "
                  f"({delta_pct:+.1f}%)")
            if over and not advisory:
                regressions.append((bench, name, base_ms, cur_ms, delta_pct))

    print(f"\ncompared {compared} rows, {len(regressions)} regression(s) "
          f"beyond {args.tolerance * 100:.0f}%")
    if regressions:
        print("\nwall-time regressions beyond tolerance:", file=sys.stderr)
        for bench, name, base_ms, cur_ms, delta_pct in regressions:
            print(f"  {bench}: {name}: {base_ms:.3f} ms -> {cur_ms:.3f} ms "
                  f"({delta_pct:+.1f}%)", file=sys.stderr)
        print("\nIf this slowdown is intended, refresh the snapshots with "
              "`make update-baseline` and commit bench/baseline/.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
