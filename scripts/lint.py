#!/usr/bin/env python3
"""Repo-specific regex lint for the G-Miner tree.

Cheap textual checks run in CI (scripts/ci.sh lint) alongside the
AST-grounded analyses in scripts/gmlint/ (serialize symmetry, lock order,
blocking-under-lock, protocol exhaustiveness, span balance live there —
the old regex serialize-symmetry check was subsumed by
gmlint/serialize-symmetry and deleted).

2. naked-thread: std::thread may only be constructed in the files that own
   thread lifetime (common/thread_pool, core/worker). Everything else goes
   through ThreadPool so Wait()/Shutdown() semantics stay in one place.
   Deliberate exceptions carry a `lint:allow(naked-thread)` comment.
   Companion check raw-sync: raw std::mutex / condition_variable /
   lock_guard are banned outside common/thread_annotations.h — the
   annotated wrappers are the only primitives the Clang thread-safety
   analysis can reason about. Companion check raw-clock: direct
   std::chrono::*_clock::now() is banned outside common/timer,
   common/trace and metrics/, so all timing flows through the
   instrumented clocks; sync deadlines escape with
   `lint:allow(raw-clock)`.

3. include-layering: src/ subdirectories form a DAG (apps -> core ->
   {net,storage,partition,lsh} -> {graph,metrics} -> common, mirroring the
   CMake link graph). A back-edge include compiles fine today and produces
   a dependency cycle six months from now; reject it here.

4. raw-intersect: hand-rolled sorted-set intersections (std::set_intersection
   or a two-pointer merge ladder) are banned in src/apps/ — mining apps must
   go through the shared kernels in graph/intersect.h so every app picks up
   the galloping/AVX2 dispatch and the kernels stay the single place where
   intersection correctness is proven. Deliberate exceptions carry a
   `lint:allow(raw-intersect)` comment.

5. raw-pull-send: sending MessageType::kPullRequest anywhere outside
   src/net/coalescer.{h,cc} is banned — the coalescer owns the pull wire
   format, the request-id space, and the batching/backpressure counters, so a
   raw Send would bypass batching and skew every pull metric. Deliberate
   exceptions carry a `lint:allow(raw-pull-send)` comment.

Exit status 0 = clean, 1 = findings (printed one per line as
path:line: [check] message).
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

findings = []


def finding(path, line, check, msg):
    rel = os.path.relpath(path, REPO)
    findings.append(f"{rel}:{line}: [{check}] {msg}")


def source_files():
    out = []
    for root, _dirs, files in os.walk(SRC):
        for f in sorted(files):
            if f.endswith((".h", ".cc")):
                out.append(os.path.join(root, f))
    return sorted(out)


def strip_comments(text):
    """Remove // and /* */ comments, preserving line structure."""
    text = re.sub(r"/\*.*?\*/", lambda m: re.sub(r"[^\n]", " ", m.group(0)), text, flags=re.S)
    text = re.sub(r"//[^\n]*", "", text)
    return text


# --------------------------------------------------------------------------
# Shared helpers
# --------------------------------------------------------------------------


def extract_body(text, open_brace_idx):
    """Return the text between the brace at open_brace_idx and its match."""
    depth = 0
    for i in range(open_brace_idx, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace_idx + 1 : i]
    return text[open_brace_idx + 1 :]


def matched_paren(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(text)


# --------------------------------------------------------------------------
# Check 2: naked std::thread
# --------------------------------------------------------------------------

# Files that own thread lifetime: the pool itself and the worker pipeline
# (whose threads live exactly as long as the worker; see worker.h).
THREAD_ALLOWLIST = {
    "src/common/thread_pool.h",
    "src/common/thread_pool.cc",
    "src/core/worker.h",
    "src/core/worker.cc",
}

THREAD_USE = re.compile(r"\bstd::thread\b(?!\s*::)")
ALLOW_COMMENT = "lint:allow(naked-thread)"


def check_naked_thread(path, text):
    rel = os.path.relpath(path, REPO)
    if rel in THREAD_ALLOWLIST:
        return
    lines = text.split("\n")
    for i, line in enumerate(lines):
        code = line.split("//")[0]
        if not THREAD_USE.search(code):
            continue
        if "#include" in code:
            continue
        prev = lines[i - 1] if i > 0 else ""
        if ALLOW_COMMENT in line or ALLOW_COMMENT in prev:
            continue
        finding(path, i + 1, "naked-thread",
                "std::thread outside thread_pool/worker; use ThreadPool or add "
                "a `lint:allow(naked-thread)` comment with a lifetime rationale")


# --------------------------------------------------------------------------
# Check 2b: raw synchronization primitives
# --------------------------------------------------------------------------

# Everything synchronizes through the annotated wrappers in
# common/thread_annotations.h so Clang's -Wthread-safety (and the GUARDED_BY
# contract documented in DESIGN.md) can see it. Raw primitives are invisible
# to the analysis and therefore banned outside the wrapper itself.
RAW_SYNC = re.compile(
    r"\bstd::(mutex|condition_variable|lock_guard|unique_lock|scoped_lock|shared_mutex)\b"
)
SYNC_ALLOWLIST = {"src/common/thread_annotations.h"}


def check_raw_sync(path, text):
    rel = os.path.relpath(path, REPO)
    if rel in SYNC_ALLOWLIST:
        return
    for i, line in enumerate(text.split("\n")):
        code = line.split("//")[0]
        if RAW_SYNC.search(code) and "#include" not in code:
            finding(path, i + 1, "raw-sync",
                    "raw std synchronization primitive; use Mutex/MutexLock/CondVar "
                    "from common/thread_annotations.h so the thread-safety analysis "
                    "sees it")


# --------------------------------------------------------------------------
# Check 2c: raw clock reads
# --------------------------------------------------------------------------

# All timing flows through the instrumented clocks (common/timer.h's
# WallTimer/MonotonicNanos, the trace helpers in common/trace.h, and the
# metrics layer built on them). A direct steady_clock::now() elsewhere is a
# measurement the tracing subsystem cannot see — and under system_clock it is
# not even monotonic. Synchronization deadlines that must feed a wait_until
# (not measurements) carry a `lint:allow(raw-clock)` comment.
RAW_CLOCK = re.compile(
    r"\bstd::chrono::(steady_clock|system_clock|high_resolution_clock)::now\s*\("
)
CLOCK_ALLOWLIST = {
    "src/common/timer.h",
    "src/common/timer.cc",
    "src/common/trace.h",
    "src/common/trace.cc",
}
CLOCK_ALLOW_COMMENT = "lint:allow(raw-clock)"


def check_raw_clock(path, text):
    rel = os.path.relpath(path, REPO)
    if rel in CLOCK_ALLOWLIST or rel.startswith("src/metrics/"):
        return
    lines = text.split("\n")
    for i, line in enumerate(lines):
        code = line.split("//")[0]
        if not RAW_CLOCK.search(code) or "#include" in code:
            continue
        prev = lines[i - 1] if i > 0 else ""
        if CLOCK_ALLOW_COMMENT in line or CLOCK_ALLOW_COMMENT in prev:
            continue
        finding(path, i + 1, "raw-clock",
                "direct std::chrono clock read outside common/timer, common/trace "
                "and metrics/; use MonotonicNanos()/WallTimer (or add a "
                "`lint:allow(raw-clock)` comment for a pure sync deadline)")


# --------------------------------------------------------------------------
# Check 4: hand-rolled set intersections in apps
# --------------------------------------------------------------------------

# The shared kernels (graph/intersect.h) are the only sanctioned way for a
# mining app to intersect sorted adjacency lists: they carry the
# galloping/AVX2 dispatch, the stats counters, and the fuzz-tested
# correctness proof. A private two-pointer loop in an app silently opts out
# of all three. Detected shape: a `while` loop whose condition joins two
# cursor end-checks with `&&` and whose body advances two of the condition's
# cursors with `++` inside an if/else ladder.
RAW_SET_INTERSECTION = re.compile(r"\bstd::set_intersection\s*\(")
WHILE_LOOP = re.compile(r"\bwhile\s*\(")
INTERSECT_ALLOW_COMMENT = "lint:allow(raw-intersect)"


def allow_raw_intersect(lines, line_no):
    cur = lines[line_no - 1] if 0 < line_no <= len(lines) else ""
    prev = lines[line_no - 2] if line_no >= 2 else ""
    return INTERSECT_ALLOW_COMMENT in cur or INTERSECT_ALLOW_COMMENT in prev


def check_raw_intersect(path, text):
    rel = os.path.relpath(path, REPO)
    if not rel.startswith("src/apps/"):
        return
    lines = text.split("\n")
    clean = strip_comments(text)

    for m in RAW_SET_INTERSECTION.finditer(clean):
        line = clean[: m.start()].count("\n") + 1
        if allow_raw_intersect(lines, line):
            continue
        finding(path, line, "raw-intersect",
                "std::set_intersection in a mining app; call Intersect*/"
                "IntersectCount* from graph/intersect.h so the app picks up "
                "the galloping/AVX2 dispatch (or add a "
                "`lint:allow(raw-intersect)` comment)")

    for m in WHILE_LOOP.finditer(clean):
        open_paren = m.end() - 1
        close_paren = matched_paren(clean, open_paren)
        cond = clean[open_paren + 1 : close_paren]
        if "&&" not in cond:
            continue
        brace = clean.find("{", close_paren)
        if brace == -1 or clean[close_paren + 1 : brace].strip():
            continue  # single-statement while, or something between ) and {
        body = extract_body(clean, brace)
        if "else" not in body:
            continue
        cond_vars = set(re.findall(r"\w+", cond))
        inc_vars = {a or b for a, b in re.findall(r"\+\+\s*(\w+)|(\w+)\s*\+\+", body)}
        if len(inc_vars & cond_vars) < 2:
            continue
        line = clean[: m.start()].count("\n") + 1
        if allow_raw_intersect(lines, line):
            continue
        finding(path, line, "raw-intersect",
                "hand-rolled two-pointer intersection in a mining app; call "
                "Intersect*/IntersectCount* from graph/intersect.h so the app "
                "picks up the galloping/AVX2 dispatch (or add a "
                "`lint:allow(raw-intersect)` comment)")


# --------------------------------------------------------------------------
# Check 5: raw kPullRequest sends outside the coalescer
# --------------------------------------------------------------------------

# The PullCoalescer (src/net/coalescer.h) is the single owner of the
# kPullRequest wire frame: it assigns request ids, batches vertex ids per
# endpoint, applies backpressure, and feeds the pull_batches_sent /
# batch-size-histogram counters. A direct Send(..., kPullRequest, ...)
# anywhere else reintroduces unbatched pulls with ids the dedup table never
# registered — it compiles fine and silently corrupts the retry bookkeeping.
# Tests drive the protocol directly and are not linted (only src/ is walked).
RAW_PULL_SEND = re.compile(r"\bSend\s*\(")
PULL_REQUEST_TYPE = re.compile(r"\bMessageType::kPullRequest\b")
PULL_SEND_ALLOWLIST = {
    "src/net/coalescer.h",
    "src/net/coalescer.cc",
}
PULL_SEND_ALLOW_COMMENT = "lint:allow(raw-pull-send)"


def check_raw_pull_send(path, text):
    rel = os.path.relpath(path, REPO)
    if rel in PULL_SEND_ALLOWLIST:
        return
    lines = text.split("\n")
    clean = strip_comments(text)
    for m in RAW_PULL_SEND.finditer(clean):
        close = matched_paren(clean, m.end() - 1)
        args = clean[m.end() : close]
        if not PULL_REQUEST_TYPE.search(args):
            continue
        line = clean[: m.start()].count("\n") + 1
        cur = lines[line - 1] if 0 < line <= len(lines) else ""
        prev = lines[line - 2] if line >= 2 else ""
        if PULL_SEND_ALLOW_COMMENT in cur or PULL_SEND_ALLOW_COMMENT in prev:
            continue
        finding(path, line, "raw-pull-send",
                "direct kPullRequest send outside src/net/coalescer; route the "
                "pull through PullCoalescer::Enqueue so it is batched, deduped "
                "and counted (or add a `lint:allow(raw-pull-send)` comment)")


# --------------------------------------------------------------------------
# Check 3: include layering
# --------------------------------------------------------------------------

# Mirrors target_link_libraries in src/*/CMakeLists.txt. A directory may
# include its own headers plus these.
ALLOWED_DEPS = {
    "common": set(),
    "graph": {"common"},
    "metrics": {"common"},
    "lsh": {"common", "graph"},
    "partition": {"common", "graph"},
    "storage": {"common", "graph"},
    "net": {"common", "graph", "metrics"},
    "core": {"common", "graph", "metrics", "lsh", "partition", "storage", "net"},
    "apps": {"common", "graph", "metrics", "lsh", "partition", "storage", "net", "core"},
    "baselines": {"common", "graph", "metrics", "lsh", "partition", "storage", "net",
                  "core", "apps"},
}

INCLUDE = re.compile(r'^\s*#include\s+"([a-z_]+)/')


def check_include_layering(path, text):
    rel_dir = os.path.relpath(path, SRC).split(os.sep)[0]
    allowed = ALLOWED_DEPS.get(rel_dir)
    if allowed is None:
        finding(path, 1, "include-layering",
                f"unknown src/ subdirectory '{rel_dir}'; add it to ALLOWED_DEPS "
                "with its place in the layer DAG")
        return
    for i, line in enumerate(text.split("\n")):
        m = INCLUDE.match(line)
        if not m:
            continue
        dep = m.group(1)
        if dep == rel_dir or dep in allowed or dep not in ALLOWED_DEPS:
            continue
        finding(path, i + 1, "include-layering",
                f"src/{rel_dir} must not include src/{dep} "
                f"(layering: apps -> core -> net/storage/partition/lsh -> "
                f"graph/metrics -> common)")


def main():
    files = source_files()
    if not files:
        print("lint.py: no sources found under src/", file=sys.stderr)
        return 2
    for path in files:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        check_naked_thread(path, text)
        check_raw_sync(path, text)
        check_raw_clock(path, text)
        check_raw_intersect(path, text)
        check_raw_pull_send(path, text)
        check_include_layering(path, text)
    for line in sorted(findings):
        print(line)
    if findings:
        print(f"lint.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint.py: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
