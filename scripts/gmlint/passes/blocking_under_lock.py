"""blocking-under-lock: no network sends, queue waits, or coalescer flushes
while a Mutex is held.

A thread that blocks on the network (or on queue backpressure) while holding
a lock stalls every thread contending on that lock — in the worst case the
very thread whose progress would unblock the send. The pass walks each
function with the held-set machinery from gmlint.locks and flags blocking
primitives reached while any lock is held, directly or through callees
(depth-limited). A callee that releases the caller's lock first — the
PullCoalescer::FlushLocked hand-off, declared via REQUIRES + explicit
Unlock — is recognized and not flagged.

CondVar waits are exempt: waiting on a condition variable *requires* the
mutex and atomically releases it.
"""

from __future__ import annotations

from dataclasses import dataclass

from gmlint import locks
from gmlint.cpp import Call
from gmlint.model import Function, Index

from gmlint import Finding

NAME = "blocking-under-lock"

_MAX_DEPTH = 4

# Classes whose own methods implement the blocking primitives; their bodies
# legitimately combine their internal lock with the underlying wait/IO.
_IMPLEMENTOR_CLASSES = {"Network", "BlockingQueue", "Mutex", "MutexLock", "CondVar"}

# method name -> (owning class or "" for any, description)
_BLOCKING = {
    "Send": ("Network", "sends on the network"),
    "Receive": ("Network", "blocks receiving from the network"),
    "ReceiveFor": ("Network", "blocks receiving from the network"),
    "Pop": ("BlockingQueue", "waits on a blocking queue"),
    "PopFor": ("BlockingQueue", "waits on a blocking queue"),
    "Enqueue": ("PullCoalescer", "may block on coalescer backpressure"),
    "Flush": ("PullCoalescer", "flushes the coalescer (network send)"),
    "FlushAll": ("PullCoalescer", "flushes the coalescer (network send)"),
    "sleep_for": ("", "sleeps"),
    "sleep_until": ("", "sleeps"),
}


def _receiver_class(call: Call, fn: Function, index: Index) -> str:
    recv = call.recv
    if not recv:
        return fn.cls
    if recv.endswith("::"):
        return recv[:-2].split("::")[-1]
    base = recv.rstrip(".->:").replace(" ", "")
    base = base.split("->")[-1].split(".")[-1]
    if base == "this":
        return fn.cls
    if base == "this_thread":
        return ""
    btype = index.member_type(fn.cls, base) if fn.cls else ""
    if btype:
        return locks.class_of_type(btype, index)
    return "?"  # local variable / unresolvable


def classify_blocking(call: Call, fn: Function, index: Index) -> str | None:
    """Description if this call is a blocking primitive, else None."""
    spec = _BLOCKING.get(call.name)
    if spec is None:
        return None
    want_cls, desc = spec
    rcls = _receiver_class(call, fn, index)
    if want_cls == "":
        return desc if rcls == "" else None
    if rcls == want_cls:
        return f"{want_cls}::{call.name} {desc}"
    if rcls == "?" and call.name in ("Send", "Pop", "PopFor"):
        # unresolvable receiver but a distinctive name: still flag
        return f"{call.name} {desc}"
    return None


@dataclass
class BlockSite:
    desc: str
    line: int
    chain: str              # "A::B -> C::D" call chain for the message
    released: frozenset     # entry-lock identities released before the op


def _summary(fn: Function, index: Index, memo: dict[int, list[BlockSite]],
             stack: set[int], depth: int) -> list[BlockSite]:
    """Blocking ops reachable in `fn`, each with the subset of fn's entry
    (REQUIRES) locks that were explicitly released before the op executes."""
    key = id(fn)
    if key in memo:
        return memo[key]
    if key in stack or depth > _MAX_DEPTH or fn.cls in _IMPLEMENTOR_CLASSES:
        return []
    stack.add(key)
    entry = set(locks.entry_locks(fn, index))
    sites: list[BlockSite] = []
    for ev in locks.lock_events(fn, index):
        if not isinstance(ev, locks.CallEvent):
            continue
        released = frozenset(entry - set(ev.held))
        desc = classify_blocking(ev.call, fn, index)
        if desc is not None:
            sites.append(BlockSite(desc, ev.line, fn.qualified, released))
            continue
        for callee in locks.resolve_callee(ev.call, fn, index):
            for sub in _summary(callee, index, memo, stack, depth + 1):
                # locks the callee released count only if they are also locks
                # this function can name (entry identities); everything else
                # stays "held" from the outer caller's perspective
                sites.append(BlockSite(
                    sub.desc, ev.line, f"{fn.qualified} -> {sub.chain}",
                    released | sub.released))
    stack.discard(key)
    memo[key] = sites
    return sites


def run(index: Index) -> list[Finding]:
    findings: list[Finding] = []
    memo: dict[int, list[BlockSite]] = {}
    for fn in index.functions():
        if fn.cls in _IMPLEMENTOR_CLASSES:
            continue
        fir = index.files.get(fn.file)
        entry = set(locks.entry_locks(fn, index))
        for ev in locks.lock_events(fn, index):
            if not isinstance(ev, locks.CallEvent) or not ev.held:
                continue
            desc = classify_blocking(ev.call, fn, index)
            if desc is not None:
                if fir is None or not fir.allowed(ev.line, NAME):
                    findings.append(Finding(
                        fn.file, ev.line, NAME,
                        f"{desc} while holding {{{', '.join(ev.held)}}}",
                        symbol=fn.qualified))
                continue
            for callee in locks.resolve_callee(ev.call, fn, index):
                for sub in _summary(callee, index, memo, set(), 1):
                    eff = [h for h in ev.held if h not in sub.released]
                    if not eff:
                        continue
                    if fir is not None and fir.allowed(ev.line, NAME):
                        continue
                    findings.append(Finding(
                        fn.file, ev.line, NAME,
                        f"calls {sub.chain} which {sub.desc} "
                        f"while holding {{{', '.join(eff)}}}",
                        symbol=fn.qualified))
    # dedupe identical (site, message) pairs from multi-candidate resolution
    seen = set()
    out = []
    for f in findings:
        k = (f.path, f.line, f.message)
        if k in seen:
            continue
        seen.add(k)
        out.append(f)
    return out
