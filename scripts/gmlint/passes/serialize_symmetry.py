"""serialize-symmetry: byte-stream writers and readers must mirror exactly.

The archives (common/serialize.h) are untagged byte streams: a reader that
reads one field out of order, with the wrong width, or with the wrong shape
silently corrupts every message behind it. This pass extracts the *effect
sequence* of each writer/reader pair — through helper calls, loops and
conditionals — and proves mirror symmetry structurally.

Effect language (normalized, per control-flow shape):

  scalar(T) | string | vector(T) | bytes | span   stream atoms
  nested(Family, target)                          paired sub-serializer call
  call(Stem)                                      unresolved helper; stems
                                                  must pair Write*/Read*
  loop([...])  branch([then],[else])              control shapes

Write/read kinds mirror 1:1 (span covers WriteSpan vs ReadSpanInto / RawSpan
/ Skip). ReserveU64 is a stream scalar(uint64_t) whose slot must also be
patched before the writer returns. A WriteVector is byte-equivalent to
scalar(uint64_t)+loop(scalar(T)) for trivially copyable T, and the pass
canonicalizes that shape before comparing, so a hand-rolled element loop may
legally mirror a vector write.

Paired families (writer name -> reader name), matched per class (or per
file for free functions): Serialize/Deserialize, SerializeBody/
DeserializeBody, WriteFlat/ReadFlat, SerializePartial/MergePartial,
SerializeGlobal/ApplyGlobal.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from gmlint import Finding
from gmlint.cpp import Call, Stmt, Tok, extract_calls, toks_text
from gmlint.model import Function, Index

NAME = "serialize-symmetry"

PAIRS = {
    "Serialize": "Deserialize",
    "SerializeBody": "DeserializeBody",
    "WriteFlat": "ReadFlat",
    "SerializePartial": "MergePartial",
    "SerializeGlobal": "ApplyGlobal",
}
READERS = {r: w for w, r in PAIRS.items()}

_WRITE_OPS = {
    "Write": "scalar", "WriteString": "string", "WriteVector": "vector",
    "WriteBytes": "bytes", "WriteSpan": "span", "ReserveU64": "reserve",
    "PatchU64": "patch",
}
_READ_OPS = {
    "Read": "scalar", "ReadString": "string", "ReadVector": "vector",
    "ReadBytes": "bytes", "ReadSpanInto": "span", "RawSpan": "span",
    "Skip": "span",
}
_ARCHIVE_NOOPS = {"AtEnd", "position", "remaining", "size", "buffer", "TakeBuffer"}

_TYPE_ALIASES = {
    "u8": "uint8_t", "u16": "uint16_t", "u32": "uint32_t", "u64": "uint64_t",
    "size_t": "uint64_t", "std::size_t": "uint64_t",
}


def _norm_type(t: str | None) -> str | None:
    if not t:
        return None
    t = re.sub(r"\b(const|typename)\b", "", t).replace(" ", "").strip("&")
    return _TYPE_ALIASES.get(t, t)


# --- effect tree -----------------------------------------------------------


@dataclass
class Eff:
    kind: str  # scalar/string/vector/bytes/span/reserve/nested/call/loop/branch
    type: str | None = None
    name: str = ""      # nested family or call stem
    line: int = 0
    body: list["Eff"] = field(default_factory=list)
    orelse: list["Eff"] = field(default_factory=list)

    def shape(self) -> str:
        if self.kind == "loop":
            return "loop[" + ", ".join(e.shape() for e in self.body) + "]"
        if self.kind == "branch":
            return ("branch(" + ", ".join(e.shape() for e in self.body) + " | "
                    + ", ".join(e.shape() for e in self.orelse) + ")")
        if self.kind == "nested":
            return f"nested:{self.name}"
        if self.kind == "call":
            return f"call:{self.name}"
        return self.kind + (f"<{self.type}>" if self.type else "")


def _call_stem(name: str) -> str | None:
    """Normalize helper names so Write*/Read*, Serialize*/Deserialize*,
    Save*/Load* pair up: WriteHeader and ReadHeader share stem 'Header'."""
    for prefix in ("Write", "Read", "Serialize", "Deserialize", "Save", "Load"):
        if name.startswith(prefix) and len(name) > len(prefix):
            return name[len(prefix):]
    return None


class _Extractor:
    def __init__(self, index: Index, side: str):
        self.index = index
        self.side = side  # 'w' or 'r'
        self.ops = _WRITE_OPS if side == "w" else _READ_OPS
        self.patches = 0
        self.reserves = 0

    def extract(self, fn: Function, arch: str, depth: int = 0,
                seen: tuple = ()) -> list[Eff]:
        if depth > 8 or fn.qualified in seen:
            return []
        return self._stmts(fn, arch, fn.stmts(), depth, seen + (fn.qualified,))

    def _stmts(self, fn, arch, stmts: list[Stmt], depth, seen) -> list[Eff]:
        out: list[Eff] = []
        for st in stmts:
            if st.kind in ("simple", "return", "case"):
                out.extend(self._tokens(fn, arch, st.tokens, depth, seen))
            elif st.kind == "block":
                out.extend(self._stmts(fn, arch, st.body, depth, seen))
            elif st.kind == "if":
                out.extend(self._tokens(fn, arch, st.tokens, depth, seen))
                then = self._stmts(fn, arch, st.body, depth, seen)
                els = self._stmts(fn, arch, st.orelse, depth, seen)
                if then or els:
                    out.append(Eff("branch", line=st.line, body=then, orelse=els))
            elif st.kind in ("loop", "do"):
                cond = self._tokens(fn, arch, st.tokens, depth, seen)
                body = self._stmts(fn, arch, st.body, depth, seen)
                inner = cond + body
                if inner:
                    out.append(Eff("loop", line=st.line, body=inner))
            elif st.kind == "switch":
                # treat the whole switch as one branch shape: arms must agree
                body = self._stmts(fn, arch, st.body, depth, seen)
                if body:
                    out.append(Eff("branch", line=st.line, body=body))
        return out

    def _tokens(self, fn, arch, toks: list[Tok], depth, seen) -> list[Eff]:
        """Emit effects in stream order: a call's argument sub-calls evaluate
        (and touch the archive) before the call itself, so
        `in.ReadSpanInto(v, in.Read<u64>())` is scalar-then-span."""
        calls = [c for c in extract_calls(toks) if not c.in_lambda]
        roots: list[tuple[Call, list]] = []
        stack: list[tuple[Call, list]] = []
        for c in sorted(calls, key=lambda c: c.start):
            while stack and c.start >= stack[-1][0].end:
                stack.pop()
            node = (c, [])
            (stack[-1][1] if stack else roots).append(node)
            stack.append(node)

        def emit(node) -> list[Eff]:
            c, kids = node
            kid_effs: list[Eff] = []
            for k in kids:
                kid_effs.extend(emit(k))
            own = self._call(fn, arch, c, depth, seen, bool(kid_effs))
            return kid_effs + own

        out: list[Eff] = []
        for n in roots:
            out.extend(emit(n))
        return out

    def _call(self, fn: Function, arch: str, call: Call, depth, seen,
              nested_effects: bool = False) -> list[Eff]:
        recv = call.recv
        # the archive is handed onward only when it is passed as a value
        # (`Helper(out, x)`, `T::Deserialize(in)`), not when an accessor like
        # `in.position()` merely appears inside an argument expression
        arch_in_args = False
        for a in call.args:
            for k, t in enumerate(a):
                if t.kind == "id" and t.text == arch:
                    nxt = a[k + 1].text if k + 1 < len(a) else ""
                    if nxt not in (".", "->"):
                        arch_in_args = True
        # archive method call: out.Write<T>(x) / in.Read<T>()
        if recv in (f"{arch}.", f"{arch}->"):
            kind = self.ops.get(call.name)
            if kind == "patch":
                self.patches += 1
                return []
            if kind == "reserve":
                self.reserves += 1
                return [Eff("scalar", "uint64_t", "reserve", call.line)]
            if kind:
                ty = _norm_type(call.targs)
                if not ty:
                    ty = self._infer(fn, call)
                    if kind == "vector" and ty:
                        # WriteVector(member) infers the *container* type;
                        # the effect's type is the element type
                        m = re.match(r"(?:std::)?vector<(.+)>$", ty)
                        ty = _norm_type(m.group(1)) if m else None
                return [Eff(kind, ty, "", call.line)]
            if call.name in _ARCHIVE_NOOPS:
                return []
            return []  # unknown archive method: ignore
        # nested pair-family call: x.Serialize(out), T::ReadFlat(in), body calls
        fam = call.name
        if fam in PAIRS or fam in READERS:
            if arch_in_args:
                base = fam if fam in PAIRS else READERS[fam]
                target = recv.rstrip(".:->")
                return [Eff("nested", None, base, call.line)]
            return []
        # pure consumer of nested archive effects: value_.store(in.Read<u64>()),
        # std::max(x, in.Read<u64>()) — the nested ops already account for the
        # stream bytes; the outer call itself touches nothing
        if nested_effects:
            return []
        # helper call that threads the archive through
        if arch_in_args:
            cands = self.index.resolve(call.name, fn.cls)
            cands = [c for c in cands
                     if any(("OutArchive" if self.side == "w" else "InArchive") in p.type
                            for p in c.params)]
            if cands:
                callee = cands[0]
                sub_arch = next(
                    (p.name for p in callee.params
                     if ("OutArchive" if self.side == "w" else "InArchive") in p.type),
                    arch)
                sub = self.extract(callee, sub_arch, depth + 1, seen)
                return sub
            stem = _call_stem(call.name)
            if stem:
                return [Eff("call", None, stem, call.line)]
            return [Eff("call", None, call.name, call.line)]
        return []

    def _infer(self, fn: Function, call: Call) -> str | None:
        """Infer the written type of `out.Write(x)` from x's declared type."""
        if not call.args or not call.args[0]:
            return None
        a = call.args[0]
        # strip trailing .load(...) (atomics)
        ids = [t.text for t in a if t.kind == "id"]
        if len(a) == 1 and a[0].kind == "id":
            ty = self.index.member_type(fn.cls, a[0].text)
            return _norm_type(ty) or None
        if len(ids) >= 1 and toks_text(a).startswith(ids[0]) and len(ids) <= 2:
            ty = self.index.member_type(fn.cls, ids[0])
            if ty and ids[-1] == "load":
                m = re.search(r"atomic\s*<\s*([^>]+)\s*>", ty)
                return _norm_type(m.group(1)) if m else None
        return None


# --- canonicalization and comparison ---------------------------------------


def _canon(effs: list[Eff]) -> list[Eff]:
    out: list[Eff] = []
    for e in effs:
        if e.kind == "loop":
            body = _canon(e.body)
            if body:
                out.append(Eff("loop", line=e.line, body=body))
        elif e.kind == "branch":
            then, els = _canon(e.body), _canon(e.orelse)
            if not then and not els:
                continue
            if [x.shape() for x in then] == [x.shape() for x in els]:
                out.extend(then)  # both arms identical: unconditional
            else:
                out.append(Eff("branch", line=e.line, body=then, orelse=els))
        else:
            out.append(e)
    return out


def _expand_vector(e: Eff) -> list[Eff]:
    """vector(T) == scalar(uint64_t) + loop[scalar(T)] byte-wise."""
    return [Eff("scalar", "uint64_t", "", e.line),
            Eff("loop", line=e.line, body=[Eff("scalar", e.type, "", e.line)])]


def _compare(w: list[Eff], r: list[Eff], wf: Function, rf: Function,
             findings: list[Finding], path_desc: str):
    i = j = 0
    while i < len(w) or j < len(r):
        if i >= len(w) or j >= len(r):
            if i < len(w):
                e = w[i]
                findings.append(Finding(
                    wf.file, e.line or wf.line, NAME,
                    f"{wf.qualified} writes {e.shape()}{path_desc} with no matching "
                    f"read in {rf.qualified} ({rf.file}:{rf.line}) — reader ends early",
                    wf.qualified))
            else:
                e = r[j]
                findings.append(Finding(
                    rf.file, e.line or rf.line, NAME,
                    f"{rf.qualified} reads {e.shape()}{path_desc} with no matching "
                    f"write in {wf.qualified} ({wf.file}:{wf.line}) — writer ends early",
                    rf.qualified))
            return
        a, b = w[i], r[j]
        if a.kind == b.kind:
            if a.kind == "loop":
                _compare(_canon(a.body), _canon(b.body), wf, rf, findings,
                         f" inside the loop at line {a.line}")
            elif a.kind == "branch":
                _compare(_canon(a.body), _canon(b.body), wf, rf, findings,
                         f" in the then-branch at line {a.line}")
                _compare(_canon(a.orelse), _canon(b.orelse), wf, rf, findings,
                         f" in the else-branch at line {a.line}")
            elif a.kind == "nested":
                if a.name != b.name:
                    findings.append(Finding(
                        wf.file, a.line, NAME,
                        f"{wf.qualified} invokes nested {a.name}{path_desc} but "
                        f"{rf.qualified} ({rf.file}:{b.line}) invokes {b.name}",
                        wf.qualified))
            elif a.kind == "call":
                if a.name != b.name:
                    findings.append(Finding(
                        wf.file, a.line, NAME,
                        f"{wf.qualified} calls helper *{a.name}{path_desc} but "
                        f"{rf.qualified} ({rf.file}:{b.line}) calls *{b.name}",
                        wf.qualified))
            else:
                ta, tb = _norm_type(a.type), _norm_type(b.type)
                if ta and tb and ta != tb:
                    findings.append(Finding(
                        wf.file, a.line, NAME,
                        f"{wf.qualified} writes {a.kind}<{ta}>{path_desc} but "
                        f"{rf.qualified} ({rf.file}:{b.line}) reads {b.kind}<{tb}>",
                        wf.qualified))
            i += 1
            j += 1
            continue
        # vector-vs-(scalar+loop) canonicalization, either direction
        if a.kind == "vector" and b.kind in ("scalar", "loop"):
            w = w[:i] + _expand_vector(a) + w[i + 1 :]
            continue
        if b.kind == "vector" and a.kind in ("scalar", "loop"):
            r = r[:j] + _expand_vector(b) + r[j + 1 :]
            continue
        findings.append(Finding(
            wf.file, a.line or wf.line, NAME,
            f"{wf.qualified} field #{i + 1}{path_desc} is a {a.shape()} write but "
            f"{rf.qualified} ({rf.file}:{b.line or rf.line}) reads {b.shape()}",
            wf.qualified))
        return  # positions desynchronized; further diffs would be noise


def _archive_param(fn: Function, side: str) -> str | None:
    want = "OutArchive" if side == "w" else "InArchive"
    for p in fn.params:
        if want in p.type:
            return p.name
    return None


def run(index: Index) -> list[Finding]:
    findings: list[Finding] = []
    # group serializer functions by (file, class) scope
    writers: dict[tuple, dict[str, Function]] = {}
    readers: dict[tuple, dict[str, Function]] = {}
    for fn in index.functions():
        short = fn.short_name
        if short in PAIRS and _archive_param(fn, "w"):
            writers.setdefault((fn.cls or fn.file), {})[short] = fn
        elif short in READERS and _archive_param(fn, "r"):
            readers.setdefault((fn.cls or fn.file), {})[short] = fn

    for scope, ws in writers.items():
        rs = readers.get(scope, {})
        for wname, wfn in ws.items():
            rname = PAIRS[wname]
            rfn = rs.get(rname)
            if rfn is None:
                findings.append(Finding(
                    wfn.file, wfn.line, NAME,
                    f"{wfn.qualified} has no matching {rname} — every untagged "
                    "frame needs a reader that mirrors it", wfn.qualified))
                continue
            wex = _Extractor(index, "w")
            rex = _Extractor(index, "r")
            weff = _canon(wex.extract(wfn, _archive_param(wfn, "w")))
            reff = _canon(rex.extract(rfn, _archive_param(rfn, "r")))
            _compare(weff, reff, wfn, rfn, findings, "")
            if wex.reserves > 0 and wex.patches == 0:
                findings.append(Finding(
                    wfn.file, wfn.line, NAME,
                    f"{wfn.qualified} reserves a u64 slot (ReserveU64) but never "
                    "patches it — the frame ships an uninitialized length",
                    wfn.qualified))
    for scope, rs in readers.items():
        ws = writers.get(scope, {})
        for rname, rfn in rs.items():
            if READERS[rname] not in ws:
                findings.append(Finding(
                    rfn.file, rfn.line, NAME,
                    f"{rfn.qualified} has no matching {READERS[rname]} — "
                    "readers without writers drift silently", rfn.qualified))
    out = []
    for f in findings:
        fir = index.files.get(f.path)
        if fir is not None and fir.allowed(f.line, NAME):
            continue
        out.append(f)
    return out
