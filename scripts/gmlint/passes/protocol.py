"""protocol: every MessageType enumerator is sent, handled, and framed
consistently.

The wire protocol is an untagged byte stream: the only schema is the code on
both sides. The pass cross-references three things for every enumerator of
the MessageType enum:

  * a send site — `net_->Send(self, dst, MessageType::kX, payload)` anywhere
    in the analyzed sources;
  * a dispatch handler — a `case MessageType::kX:` label in some switch;
  * framing consistency — a sender that ships an archive frame
    (`out.TakeBuffer()` / `agg.buffer()`) must land in a handler whose case
    body actually consumes the payload (mentions `payload`, constructs an
    `InArchive`, or forwards the message object); a handler that
    deserializes a payload must have at least one sender that provides one.

An enumerator nobody sends is a dead frame; one nobody handles is dropped on
the floor at the receiver (or hits the default: log-and-drop arm, which is a
protocol hole the compiler cannot see because the switch has a default).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from gmlint.cpp import Stmt, toks_text
from gmlint.model import Function, Index

from gmlint import Finding

NAME = "protocol"

_ENUM_NAME = "MessageType"


@dataclass
class _Use:
    fn: Function
    line: int
    payload: str = ""  # send payload text, "" for non-send uses


@dataclass
class _Proto:
    senders: list[_Use] = field(default_factory=list)
    handlers: list[_Use] = field(default_factory=list)
    handler_reads_payload: bool = False
    other_uses: list[_Use] = field(default_factory=list)


def _payload_kind(text: str) -> str:
    text = text.replace(" ", "")
    if text in ("{}", "std::string()", "std::string{}", '""'):
        return "empty"
    if "TakeBuffer" in text or "buffer" in text or "Buffer" in text:
        return "framed"
    return "unknown"


def _case_value(st: Stmt) -> str | None:
    """`case MessageType :: kX :` -> kX."""
    txt = [t.text for t in st.tokens]
    for i, w in enumerate(txt):
        if w == _ENUM_NAME and i + 2 < len(txt) and txt[i + 1] == "::":
            return txt[i + 2]
    return None


def _collect_switch_cases(stmts: list[Stmt], fn: Function, proto: dict[str, _Proto]):
    """Associate each case label with the statements up to the next label and
    record whether that body consumes the payload."""
    for st in stmts:
        if st.kind == "switch":
            current: list[str] = []
            body_toks: list[str] = []

            def flush():
                if not current:
                    return
                consumes = "payload" in body_toks or "InArchive" in body_toks
                for val in current:
                    p = proto.setdefault(val, _Proto())
                    if consumes:
                        p.handler_reads_payload = True

            for sub in st.body:
                if sub.kind == "case":
                    val = _case_value(sub)
                    if val is not None:
                        if body_toks:
                            flush()
                            current, body_toks = [], []
                        current.append(val)
                        proto.setdefault(val, _Proto()).handlers.append(
                            _Use(fn, sub.line))
                    elif any(t.text == "default" for t in sub.tokens):
                        flush()
                        current, body_toks = [], []
                else:
                    body_toks.extend(t.text for t in _flatten(sub))
            flush()
            _collect_switch_cases(st.body, fn, proto)
        elif st.kind in ("if", "loop", "do", "block"):
            _collect_switch_cases(st.body, fn, proto)
            _collect_switch_cases(st.orelse, fn, proto)


def _flatten(st: Stmt):
    yield from st.tokens
    for s in st.body:
        yield from _flatten(s)
    for s in st.orelse:
        yield from _flatten(s)


def run(index: Index) -> list[Finding]:
    enums = index.enums()
    enum = enums.get(_ENUM_NAME)
    if enum is None:
        return []
    proto: dict[str, _Proto] = {v: _Proto() for v in enum.enumerators}

    for fn in index.functions():
        # send sites and other uses, from call extraction
        for call in fn.calls():
            for ai, arg in enumerate(call.args):
                txt = [t.text for t in arg]
                for i, w in enumerate(txt):
                    if w == _ENUM_NAME and i + 2 < len(txt) and txt[i + 1] == "::":
                        val = txt[i + 2]
                        if val not in proto:
                            continue
                        if call.name == "Send":
                            payload = toks_text(call.args[-1]) if ai < len(call.args) - 1 else ""
                            proto[val].senders.append(_Use(fn, call.line, payload))
                        else:
                            proto[val].other_uses.append(_Use(fn, call.line))
        _collect_switch_cases(fn.stmts(), fn, proto)

    findings: list[Finding] = []

    def emit(path: str, line: int, msg: str, symbol: str):
        fir = index.files.get(path)
        if fir is not None and fir.allowed(line, NAME):
            return
        findings.append(Finding(path, line, NAME, msg, symbol=symbol))

    for val in enum.enumerators:
        p = proto[val]
        if not p.senders:
            emit(enum.file, enum.line,
                 f"{_ENUM_NAME}::{val} has no Send site: dead frame "
                 "(or its sender builds frames the pass cannot see — "
                 "suppress with a justification)", val)
        if not p.handlers:
            emit(enum.file, enum.line,
                 f"{_ENUM_NAME}::{val} has no `case` handler in any dispatch "
                 "switch: frames of this type are dropped by the default arm",
                 val)
        kinds = {_payload_kind(u.payload) for u in p.senders}
        if "framed" in kinds and p.handlers and not p.handler_reads_payload:
            u = p.handlers[0]
            emit(u.fn.file, u.line,
                 f"{_ENUM_NAME}::{val} is sent with an archive payload but "
                 "this handler never reads it (no payload/InArchive use)", val)
        if p.senders and kinds == {"empty"} and p.handler_reads_payload:
            u = p.senders[0]
            emit(u.fn.file, u.line,
                 f"{_ENUM_NAME}::{val} handler deserializes a payload but "
                 "every sender ships an empty one", val)
    return findings
