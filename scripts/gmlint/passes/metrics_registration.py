"""metrics-registration: every metric name literal is registered exactly once.

MetricsRegistry (src/metrics/registry.h) resolves metrics by name:
`registry->GetCounter("task.created")` at two different source sites silently
aliases both call sites onto one counter — each site believes it owns the
metric, and the rendered series becomes the sum of two unrelated
instrumentation points. Link* registrations are worse: the second Link wins
and the first source silently stops being sampled.

The pass collects every registration call (GetCounter / GetGauge /
GetHistogram / LinkCounter / LinkGauge / LinkHistogram) whose first argument
is a string literal and reports:

  * the same literal registered at more than one distinct source site
    (file:line), regardless of registration kind — silent aliasing;
  * a literal that does not match the naming convention
    `[a-z][a-z0-9_.]*` ("<subsystem>.<metric>", lowercase dotted) — such a
    name survives SanitizeMetricName only by mangling, so two distinct
    registry names can collide post-sanitation.

Re-fetching a handle by calling the same Get* from the *same* site (a loop,
a re-entered Start()) is idempotent by design and not a finding — sites are
deduplicated by (file, line). Suppress intentional cases with
`// lint:allow(metrics-registration)`.
"""

from __future__ import annotations

import re

from gmlint.cpp import extract_calls
from gmlint.model import Index

from gmlint import Finding

NAME = "metrics-registration"

_REGISTRATION_CALLS = {
    "GetCounter", "GetGauge", "GetHistogram",
    "LinkCounter", "LinkGauge", "LinkHistogram",
}

_NAME_RE = re.compile(r"^[a-z][a-z0-9_.]*$")


def _literal_arg(arg_toks, fn, fir) -> str | None:
    """The decoded string if the argument is exactly string literal(s)
    (adjacent literal concatenation accepted), else None.

    Two frontends, two token shapes: libclang keeps the whole spelling in one
    token ('"pull.requests"'); the built-in frontend blanks literal bodies
    during scrub, so each literal lexes as a pair of lone '"' tokens and the
    content is recovered from FileIR.strings by (line, ordinal-on-line).
    """
    # libclang shape: whole-spelling tokens.
    if all(len(t.text) >= 2 and t.text[0] == '"' and t.text[-1] == '"'
           for t in arg_toks) and arg_toks:
        return "".join(t.text[1:-1] for t in arg_toks)
    # built-in shape: pairs of bare quotes.
    if not arg_toks or len(arg_toks) % 2 != 0 or any(t.text != '"' for t in arg_toks):
        return None
    parts = []
    for k in range(0, len(arg_toks), 2):
        content = _recover_blanked(arg_toks[k], fn, fir)
        if content is None:
            return None
        parts.append(content)
    return "".join(parts)


def _recover_blanked(open_tok, fn, fir) -> str | None:
    """Content of the literal whose opening quote is `open_tok`: the Nth
    literal starting on its line, where N is half the count of preceding
    quote tokens on that line (each blanked literal contributes a pair)."""
    per_line = fir.strings.get(open_tok.line, []) if fir is not None else []
    quotes_before = 0
    for t in fn.body:
        if t is open_tok:
            break
        if t.line == open_tok.line and t.text == '"':
            quotes_before += 1
    ordinal = quotes_before // 2
    if ordinal < len(per_line):
        return per_line[ordinal]
    return None


def run(index: Index) -> list[Finding]:
    findings: list[Finding] = []
    # name -> list of (file, line, callee) registration sites, deduplicated
    # by (file, line) so a re-fetch from one site never counts twice.
    sites: dict[str, dict[tuple[str, int], str]] = {}
    for fn in index.functions():
        fir = index.files.get(fn.file)
        for call in fn.calls():
            if call.name not in _REGISTRATION_CALLS or not call.args:
                continue
            name = _literal_arg(call.args[0], fn, fir)
            if name is None:
                continue
            if fir is not None and fir.allowed(call.line, NAME):
                continue
            if not _NAME_RE.match(name):
                findings.append(Finding(
                    fn.file, call.line, NAME,
                    f'metric name "{name}" does not match the registry '
                    "convention [a-z][a-z0-9_.]* "
                    '("<subsystem>.<metric>", lowercase dotted)',
                    symbol=fn.qualified))
            sites.setdefault(name, {})[(fn.file, call.line)] = call.name
    for name, by_site in sorted(sites.items()):
        if len(by_site) < 2:
            continue
        ordered = sorted(by_site.items())
        first_file, first_line = ordered[0][0]
        for (file, line), callee in ordered[1:]:
            findings.append(Finding(
                file, line, NAME,
                f'metric "{name}" is also registered at '
                f"{first_file}:{first_line} — two registration sites "
                f"silently alias one {callee.removeprefix('Get').removeprefix('Link').lower()}"))
    return findings
