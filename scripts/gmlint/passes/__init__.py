"""Pass registry. Each pass module exposes NAME and run(index) -> [Finding]."""

from gmlint.passes import (
    blocking_under_lock,
    lock_order,
    metrics_registration,
    protocol,
    serialize_symmetry,
    span_balance,
)

ALL_PASSES = {
    serialize_symmetry.NAME: serialize_symmetry,
    lock_order.NAME: lock_order,
    blocking_under_lock.NAME: blocking_under_lock,
    protocol.NAME: protocol,
    span_balance.NAME: span_balance,
    metrics_registration.NAME: metrics_registration,
}
