"""lock-order: global mutex-acquisition-order graph, cycle = deadlock risk.

Every acquisition of lock B while lock A is held adds a directed edge A -> B,
both for direct acquisitions (a nested MutexLock / .Lock()) and through calls
into functions that acquire locks internally (transitive, depth-limited).
A cycle in the resulting graph means two threads can acquire the same pair of
locks in opposite orders; the finding carries one witness site per edge.
"""

from __future__ import annotations

from gmlint import locks
from gmlint.model import Function, Index

from gmlint import Finding

NAME = "lock-order"

_MAX_DEPTH = 3
# Lock-primitive wrappers: their bodies implement locking and must not
# contribute acquisition edges of their own.
_PRIMITIVE_CLASSES = {"Mutex", "MutexLock", "CondVar"}


def _transitive_acquires(fn: Function, index: Index,
                         memo: dict[int, set[str]],
                         stack: set[int], depth: int) -> set[str]:
    key = id(fn)
    if key in memo:
        return memo[key]
    if key in stack or depth > _MAX_DEPTH or fn.cls in _PRIMITIVE_CLASSES:
        return set()
    stack.add(key)
    acq: set[str] = set()
    for ev in locks.lock_events(fn, index):
        if isinstance(ev, locks.AcquireEvent):
            acq.add(ev.identity)
        else:
            for callee in locks.resolve_callee(ev.call, fn, index):
                acq |= _transitive_acquires(callee, index, memo, stack, depth + 1)
    stack.discard(key)
    memo[key] = acq
    return acq


def run(index: Index) -> list[Finding]:
    # edge (A, B) -> witness (file, line, description)
    edges: dict[tuple[str, str], tuple[str, int, str]] = {}
    memo: dict[int, set[str]] = {}

    for fn in index.functions():
        if fn.cls in _PRIMITIVE_CLASSES:
            continue
        for ev in locks.lock_events(fn, index):
            if isinstance(ev, locks.AcquireEvent):
                for h in ev.held_before:
                    if h != ev.identity:
                        edges.setdefault(
                            (h, ev.identity),
                            (fn.file, ev.line, f"in {fn.qualified}"))
            else:
                if not ev.held:
                    continue
                for callee in locks.resolve_callee(ev.call, fn, index):
                    for acq in _transitive_acquires(callee, index, memo, set(), 1):
                        for h in ev.held:
                            if h != acq:
                                edges.setdefault(
                                    (h, acq),
                                    (fn.file, ev.line,
                                     f"in {fn.qualified} via {callee.qualified}"))

    # cycle detection over the edge graph
    adj: dict[str, list[str]] = {}
    for (a, b) in edges:
        adj.setdefault(a, []).append(b)

    findings: list[Finding] = []
    reported: set[frozenset[tuple[str, str]]] = set()

    def dfs(node: str, path: list[str], on_path: set[str], visited: set[str]):
        on_path.add(node)
        path.append(node)
        for nxt in adj.get(node, []):
            if nxt in on_path:
                cycle = path[path.index(nxt):] + [nxt]
                cyc_edges = frozenset(zip(cycle, cycle[1:]))
                if cyc_edges not in reported:
                    reported.add(cyc_edges)
                    witness_file, witness_line, _ = edges[(cycle[0], cycle[1])]
                    steps = []
                    for a, b in zip(cycle, cycle[1:]):
                        f, ln, desc = edges[(a, b)]
                        steps.append(f"{a} -> {b} ({f}:{ln} {desc})")
                    findings.append(Finding(
                        witness_file, witness_line, NAME,
                        "lock-order cycle: " + "; ".join(steps),
                        symbol=" / ".join(sorted(set(cycle)))))
            elif nxt not in visited:
                dfs(nxt, path, on_path, visited)
        on_path.discard(node)
        path.pop()
        visited.add(node)

    visited: set[str] = set()
    for node in sorted(adj):
        if node not in visited:
            dfs(node, [], set(), visited)

    out = []
    for f in findings:
        fir = index.files.get(f.path)
        if fir is not None and fir.allowed(f.line, NAME):
            continue
        out.append(f)
    return out
