"""span-balance: every trace span that is begun is closed on every path.

The tracing API is non-RAII: code captures `const int64_t begin =
TraceNowNs();` and later emits `TraceSpan(type, id, begin, arg)`. An early
return between the two silently loses the span — the trace shows a gap
instead of the slow operation that caused it. The pass tracks locals
initialized from TraceNowNs() through the statement tree and reports any
path (early return or function end) on which the value is neither passed to
TraceSpan/TraceInstant, nor escaped into a member / another call / the
return value, nor deliberately reset to 0.

Guard-correlated closes are recognized: `if (begin != 0) TraceSpan(...,
begin, ...)` closes `begin` — the untaken arm is exactly the never-started
case.
"""

from __future__ import annotations

from gmlint.cpp import Stmt, Tok, extract_calls
from gmlint.model import Function, Index

from gmlint import Finding

NAME = "span-balance"

_CLOCK_CALLS = {"TraceNowNs"}


def _open_target(toks: list[Tok]) -> str | None:
    """Var name if this statement is `[const T] var = ... TraceNowNs() ...`
    with a bare-identifier target (member targets escape immediately)."""
    eq = None
    depth = 0
    for k, t in enumerate(toks):
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        elif t.text == "=" and depth == 0:
            eq = k
            break
    if eq is None or eq == 0:
        return None
    if not any(t.kind == "id" and t.text in _CLOCK_CALLS for t in toks[eq:]):
        return None
    tgt = toks[eq - 1]
    if tgt.kind != "id":
        return None
    if eq >= 2 and toks[eq - 2].text in (".", "->", "::", "]"):
        return None  # member / indexed target: the value escapes by storage
    return tgt.text


def _process_simple(st: Stmt, env: dict[str, int], findings_sink):
    toks = st.tokens
    opened = _open_target(toks)
    # `var = 0` reset closes deliberately
    if len(toks) >= 3 and toks[0].kind == "id" and toks[0].text in env \
            and toks[1].text == "=" and all(t.text in ("0", "-", "1") for t in toks[2:]):
        env.pop(toks[0].text, None)
        return
    mentioned = {t.text for t in toks if t.kind == "id"}
    for var in list(env):
        if var == opened:
            continue
        if var in mentioned:
            # consumed or escaped: TraceSpan arg, helper-call arg, arithmetic
            # into another local, member store — all count as handed off
            env.pop(var, None)
    if opened is not None:
        env[opened] = st.line


def _check_exit(env: dict[str, int], st: Stmt, fn: Function, index, findings):
    fir = index.files.get(fn.file)
    keep = {t.text for t in st.tokens if t.kind == "id"}  # `return var;` escapes
    for var, opened_at in env.items():
        if var in keep:
            continue
        line = st.line
        if fir is not None and (fir.allowed(line, NAME) or fir.allowed(opened_at, NAME)):
            continue
        findings.append(Finding(
            fn.file, line, NAME,
            f"returns without closing trace span '{var}' begun at line {opened_at}",
            symbol=fn.qualified))


def _scan(stmts: list[Stmt], env: dict[str, int], fn: Function, index,
          findings: list[Finding]) -> bool:
    """Walk statements updating `env` (open spans). Returns True if this
    statement list terminates (returns) on every path through it."""
    for st in stmts:
        if st.kind == "simple":
            _process_simple(st, env, findings)
        elif st.kind == "return":
            _check_exit(env, st, fn, index, findings)
            return True
        elif st.kind == "if":
            cond_ids = {t.text for t in st.tokens if t.kind == "id"}
            e_then, e_else = dict(env), dict(env)
            t_then = _scan(st.body, e_then, fn, index, findings)
            t_else = _scan(st.orelse, e_else, fn, index, findings)
            if t_then and t_else:
                return True
            if t_then:
                merged = e_else
            elif t_else:
                merged = e_then
            else:
                merged = {}
                for var in set(e_then) | set(e_else):
                    in_then, in_else = var in e_then, var in e_else
                    if in_then and in_else:
                        merged[var] = e_then[var]
                    elif var in cond_ids:
                        # guard-correlated: the arm that saw the var closed it
                        # (or opened it under the guard); trust the guard
                        if in_then and not st.orelse:
                            merged[var] = e_then[var]
                        elif in_else and not st.body:
                            merged[var] = e_else[var]
                    else:
                        merged[var] = (e_then.get(var) or e_else.get(var))
            env.clear()
            env.update(merged)
        elif st.kind in ("loop", "do", "switch"):
            e = dict(env)
            _scan(st.body, e, fn, index, findings)
            env.clear()
            env.update(e)
        elif st.kind == "block":
            if _scan(st.body, env, fn, index, findings):
                return True
        # case/break/continue: no span effect
    return False


def run(index: Index) -> list[Finding]:
    findings: list[Finding] = []
    for fn in index.functions():
        if not any(t.kind == "id" and t.text in _CLOCK_CALLS for t in fn.body):
            continue
        env: dict[str, int] = {}
        terminated = _scan(fn.stmts(), env, fn, index, findings)
        if not terminated and env:
            fir = index.files.get(fn.file)
            for var, opened_at in env.items():
                if fir is not None and fir.allowed(opened_at, NAME):
                    continue
                findings.append(Finding(
                    fn.file, opened_at, NAME,
                    f"trace span '{var}' begun here is never closed "
                    "before the function ends",
                    symbol=fn.qualified))
    return findings
