"""compile_commands.json driver.

gmlint analyzes the translation units CMake actually builds: the TU list,
include directories and per-file compile arguments all come from the
compilation database (CMAKE_EXPORT_COMPILE_COMMANDS=ON, on by default in the
top-level CMakeLists.txt). Headers are attributed to the TU set by resolving
quoted includes against the -I paths of the database entries, so a header
that no built TU includes is (correctly) invisible to the analysis.
"""

from __future__ import annotations

import json
import os
import re
import shlex
from dataclasses import dataclass, field


@dataclass
class TranslationUnit:
    source: str  # absolute path to the .cc
    args: list[str]
    include_dirs: list[str]
    defines: list[str]


@dataclass
class CompilationDatabase:
    path: str
    units: list[TranslationUnit] = field(default_factory=list)

    def source_files(self) -> list[str]:
        return [tu.source for tu in self.units]


_DEFAULT_BUILD_DIRS = ("build", "build-bench", "build-asan", "build-ubsan",
                      "build-asan-ubsan", "build-tsan", "build-tidy")


def find_compdb(repo_root: str, explicit: str | None = None) -> str | None:
    if explicit:
        return explicit if os.path.isfile(explicit) else None
    for d in _DEFAULT_BUILD_DIRS:
        p = os.path.join(repo_root, d, "compile_commands.json")
        if os.path.isfile(p):
            return p
    return None


def load(path: str) -> CompilationDatabase:
    with open(path, encoding="utf-8") as f:
        entries = json.load(f)
    db = CompilationDatabase(path)
    seen = set()
    for e in entries:
        src = e["file"]
        if not os.path.isabs(src):
            src = os.path.normpath(os.path.join(e.get("directory", "."), src))
        if src in seen:
            continue
        seen.add(src)
        args = e.get("arguments") or shlex.split(e.get("command", ""))
        inc, defs = [], []
        it = iter(range(len(args)))
        for i in it:
            a = args[i]
            if a == "-I" and i + 1 < len(args):
                inc.append(args[i + 1])
            elif a.startswith("-I"):
                inc.append(a[2:])
            elif a.startswith("-D"):
                defs.append(a[2:])
        inc = [d if os.path.isabs(d) else os.path.normpath(os.path.join(e.get("directory", "."), d))
               for d in inc]
        db.units.append(TranslationUnit(src, args, inc, defs))
    return db


_INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"', re.M)


def reachable_files(db: CompilationDatabase, repo_root: str,
                    restrict_prefix: str = "src") -> list[str]:
    """All .cc TUs under `restrict_prefix` plus every repo header they reach
    through quoted includes (transitively), absolute paths, sorted."""
    prefix = os.path.join(repo_root, restrict_prefix)
    work = [tu.source for tu in db.units if tu.source.startswith(prefix + os.sep)]
    include_dirs: list[str] = []
    for tu in db.units:
        for d in tu.include_dirs:
            if d not in include_dirs:
                include_dirs.append(d)
    if not include_dirs:
        include_dirs = [prefix]
    seen: set[str] = set()
    out: list[str] = []
    while work:
        path = work.pop()
        if path in seen or not os.path.isfile(path):
            continue
        seen.add(path)
        if path.startswith(prefix + os.sep):
            out.append(path)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        for inc in _INCLUDE_RE.findall(text):
            for d in include_dirs + [os.path.dirname(path)]:
                cand = os.path.normpath(os.path.join(d, inc))
                if os.path.isfile(cand):
                    work.append(cand)
                    break
    return sorted(out)


def fallback_files(repo_root: str, restrict_prefix: str = "src") -> list[str]:
    """Plain directory walk, for running without a build tree."""
    base = os.path.join(repo_root, restrict_prefix)
    out = []
    for root, _dirs, files in os.walk(base):
        for f in sorted(files):
            if f.endswith((".h", ".cc")):
                out.append(os.path.join(root, f))
    return sorted(out)
