"""File- and program-level IR built on the structural frontend.

A `FileIR` holds the functions, classes and enums of one file; an `Index`
aggregates every analyzed file so passes can resolve helper calls, member
types, and enum definitions across translation units.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from gmlint import cpp
from gmlint.cpp import Call, Stmt, Tok

_TRAILERS = {
    "const", "override", "final", "noexcept", "mutable", "constexpr", "inline",
    "NO_THREAD_SAFETY_ANALYSIS",
}
_ANNOT_MACROS = {
    "REQUIRES", "REQUIRES_SHARED", "EXCLUDES", "ACQUIRE", "ACQUIRE_SHARED",
    "RELEASE", "RELEASE_SHARED", "TRY_ACQUIRE", "ASSERT_CAPABILITY",
    "RETURN_CAPABILITY", "GUARDED_BY", "PT_GUARDED_BY", "ACQUIRED_BEFORE",
    "ACQUIRED_AFTER",
}
_ACCESS = {"public", "private", "protected"}
_ANNOT_CLASS = {"CAPABILITY", "SCOPED_CAPABILITY"}
_CONTROL = {"if", "while", "for", "switch", "do", "else", "return", "catch"}


@dataclass
class Param:
    type: str
    name: str


@dataclass
class Function:
    name: str            # declared name, possibly qualified ("Worker::Run")
    cls: str             # enclosing (or qualifying) class, "" for free functions
    namespace: str
    file: str            # repo-relative path
    line: int
    params: list[Param]
    body: list[Tok]      # body token slice (braces stripped)
    annotations: dict[str, list[str]] = field(default_factory=dict)
    is_const: bool = False

    _stmts: list[Stmt] | None = None

    @property
    def short_name(self) -> str:
        return self.name.split("::")[-1]

    @property
    def qualified(self) -> str:
        cls = self.cls
        short = self.short_name
        return f"{cls}::{short}" if cls else short

    def stmts(self) -> list[Stmt]:
        if self._stmts is None:
            self._stmts = cpp.parse_stmts(self.body)
        return self._stmts

    def calls(self) -> list[Call]:
        return cpp.extract_calls(self.body)


@dataclass
class Member:
    name: str
    type: str
    guarded_by: str = ""


@dataclass
class ClassInfo:
    name: str
    namespace: str
    file: str
    line: int
    members: dict[str, Member] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)
    # annotations from method *declarations* (REQUIRES etc. live on the
    # header declaration while the definition carries none)
    decl_annotations: dict[str, dict[str, list[str]]] = field(default_factory=dict)


@dataclass
class EnumInfo:
    name: str
    file: str
    line: int
    enumerators: list[str] = field(default_factory=list)


@dataclass
class FileIR:
    path: str  # repo-relative
    functions: list[Function] = field(default_factory=list)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    enums: dict[str, EnumInfo] = field(default_factory=dict)
    suppress: dict[int, set[str]] = field(default_factory=dict)
    # line -> contents of the string literals starting on that line, in
    # source order (the lexer blanks literal bodies; literal-aware passes
    # recover them here).
    strings: dict[int, list[str]] = field(default_factory=dict)

    def allowed(self, line: int, check: str) -> bool:
        for ln in (line, line - 1):
            checks = self.suppress.get(ln)
            if checks and (check in checks or "*" in checks):
                return True
        return False


class Index:
    """Whole-program view over every parsed file."""

    def __init__(self):
        self.files: dict[str, FileIR] = {}

    def add(self, fir: FileIR):
        self.files[fir.path] = fir

    def functions(self):
        for fir in self.files.values():
            yield from fir.functions

    def classes(self) -> dict[str, ClassInfo]:
        out = {}
        for fir in self.files.values():
            out.update(fir.classes)
        return out

    def enums(self) -> dict[str, EnumInfo]:
        out = {}
        for fir in self.files.values():
            for name, e in fir.enums.items():
                out.setdefault(name, e)
        return out

    def resolve(self, name: str, cls: str = "") -> list[Function]:
        """Functions matching a short or qualified name, preferring `cls`."""
        short = name.split("::")[-1]
        in_cls = [f for f in self.functions() if f.short_name == short and cls and f.cls == cls]
        if in_cls:
            return in_cls
        if "::" in name:
            qcls = name.rsplit("::", 1)[0].split("::")[-1]
            qual = [f for f in self.functions() if f.short_name == short and f.cls == qcls]
            if qual:
                return qual
        return [f for f in self.functions() if f.short_name == short]

    def member_type(self, cls: str, member: str) -> str:
        info = self.classes().get(cls)
        if info and member in info.members:
            return info.members[member].type
        return ""


# ---------------------------------------------------------------------------
# Parsing a file into FileIR
# ---------------------------------------------------------------------------


def parse_file(abs_path: str, repo_root: str) -> FileIR:
    with open(abs_path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    rel = os.path.relpath(abs_path, repo_root)
    scrubbed, suppress, strings = cpp.scrub(text)
    toks = cpp.lex(scrubbed)
    fir = FileIR(rel, suppress=suppress, strings=strings)
    _parse_scope(toks, 0, len(toks), "", "", fir)
    return fir


def _parse_scope(toks: list[Tok], i: int, end: int, namespace: str, cls: str, fir: FileIR):
    """Parse declarations in [i, end): namespaces, classes, enums, functions."""
    head_start = i
    while i < end:
        t = toks[i]
        if t.text == ";":
            _maybe_member(toks[head_start:i], cls, fir)
            i += 1
            head_start = i
            continue
        if t.kind == "id" and t.text in _ACCESS and i + 1 < end and toks[i + 1].text == ":":
            i += 2
            head_start = i
            continue
        if t.text == "(":
            i = cpp._match_forward(toks, i, "(", ")")
            continue
        if t.text == "[":
            i = cpp._match_forward(toks, i, "[", "]")
            continue
        if t.text == "=":
            # initializer: consume to `;` (may contain braces/lambdas)
            j = cpp._until_semicolon(toks, i)
            _maybe_member(toks[head_start:i], cls, fir)
            i = j + 1
            head_start = i
            continue
        if t.text == "{":
            head = toks[head_start:i]
            close = cpp._match_forward(toks, i, "{", "}")
            kind, name = _classify_head(head)
            if kind == "namespace":
                ns = f"{namespace}::{name}" if namespace and name else (name or namespace)
                _parse_scope(toks, i + 1, close - 1, ns, cls, fir)
            elif kind == "class":
                full = name
                info = ClassInfo(full, namespace, fir.path, head[0].line if head else t.line,
                                 bases=_bases(head))
                fir.classes.setdefault(full, info)
                _parse_scope(toks, i + 1, close - 1, namespace, full, fir)
            elif kind == "enum":
                fir.enums[name] = EnumInfo(name, fir.path, head[0].line if head else t.line,
                                           _enumerators(toks[i + 1 : close - 1]))
            elif kind == "function":
                fn = _make_function(head, toks[i + 1 : close - 1], namespace, cls, fir.path)
                if fn is not None:
                    fir.functions.append(fn)
            # else: plain block / initializer — skip
            i = close
            head_start = i
            continue
        if t.text == "}":
            i += 1
            head_start = i
            continue
        i += 1
    _maybe_member(toks[head_start:end], cls, fir)


def _classify_head(head: list[Tok]):
    if not head:
        return "block", ""
    words = [t.text for t in head]
    if "namespace" in words:
        ids = [t.text for t in head if t.kind == "id" and t.text != "namespace" and t.text != "inline"]
        return "namespace", ids[-1] if ids else ""
    if "enum" in words:
        ids = [t.text for t in head[: _colon_index(head)] if t.kind == "id"
               and t.text not in ("enum", "class", "struct")]
        return "enum", ids[-1] if ids else ""
    if any(w in ("class", "struct", "union") for w in words):
        ci = _colon_index(head)
        ids = [t.text for t in head[:ci] if t.kind == "id"
               and t.text not in ("class", "struct", "union", "final", "alignas",
                                  "template", "typename") and t.text not in _ANNOT_CLASS]
        return "class", ids[-1] if ids else ""
    # function: find a top-level (params) whose opener is preceded by an id
    paren = _params_span(head)
    if paren is not None:
        return "function", ""
    return "block", ""


def _colon_index(head: list[Tok]) -> int:
    depth = 0
    for k, t in enumerate(head):
        if t.text in ("(", "[", "<"):
            depth += 1
        elif t.text in (")", "]", ">"):
            depth -= 1
        elif t.text == ":" and depth <= 0:
            return k
    return len(head)


def _init_list_cut(head: list[Tok]) -> int:
    """Index of a constructor-init-list / base-clause `:` at depth 0 (the
    lexer merges `::`, so a lone `:` here is structural), or len(head)."""
    depth = 0
    for k, t in enumerate(head):
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        elif t.text == ":" and depth == 0 and t.kind == "punct":
            return k
    return len(head)


def _params_span(head: list[Tok]):
    """(open, close) of the parameter list if `head` looks like a function
    signature: `... name ( params ) trailers [: init-list]`."""
    head = head[: _init_list_cut(head)]
    # walk from the end: skip trailers / annotation macros
    k = len(head) - 1
    depth = 0
    last_close = None
    while k >= 0:
        t = head[k]
        if t.text == ")":
            depth += 1
            if depth == 1:
                last_close = k
        elif t.text == "(":
            depth -= 1
            if depth == 0 and last_close is not None:
                # is the token before `(` a plausible function name?
                prev = head[k - 1] if k > 0 else None
                if prev is None or prev.kind != "id" or prev.text in _CONTROL:
                    return None
                # macro annotation parens? then keep walking left
                if prev.text in _ANNOT_MACROS:
                    last_close = None
                    k -= 1
                    continue
                return (k, last_close)
        k -= 1
    return None


def _bases(head: list[Tok]) -> list[str]:
    ci = _colon_index(head)
    if ci >= len(head):
        return []
    return [t.text for t in head[ci + 1 :] if t.kind == "id"
            and t.text not in ("public", "private", "protected", "virtual")]


def _enumerators(toks: list[Tok]) -> list[str]:
    out = []
    depth = 0
    expect = True
    for t in toks:
        if t.text in ("(", "{", "["):
            depth += 1
        elif t.text in (")", "}", "]"):
            depth -= 1
        elif depth == 0:
            if t.text == ",":
                expect = True
            elif expect and t.kind == "id":
                out.append(t.text)
                expect = False
    return out


def _make_function(head: list[Tok], body: list[Tok], namespace: str, cls: str, path: str):
    span = _params_span(head)
    if span is None:
        return None
    popen, pclose = span
    # name: walk back over qualified-id chain `A::B::name` (with `~` dtors)
    k = popen - 1
    name_parts = [head[k].text]
    k -= 1
    if k >= 0 and head[k].text == "~":
        name_parts[-1] = "~" + name_parts[-1]
        k -= 1
    while k >= 1 and head[k].text == "::" and head[k - 1].kind == "id":
        name_parts.append(head[k - 1].text)
        k -= 2
    name = "::".join(reversed(name_parts))
    fn_cls = cls
    if "::" in name:
        fn_cls = name.rsplit("::", 1)[0].split("::")[-1]
    params = _parse_params(head[popen + 1 : pclose])
    annotations: dict[str, list[str]] = {}
    trailer = head[pclose + 1 :]
    is_const = any(t.text == "const" for t in trailer)
    j = 0
    while j < len(trailer):
        t = trailer[j]
        if t.kind == "id" and (t.text in _ANNOT_MACROS or t.text == "NO_THREAD_SAFETY_ANALYSIS"):
            if j + 1 < len(trailer) and trailer[j + 1].text == "(":
                close = cpp._match_forward(trailer, j + 1, "(", ")")
                args = cpp.toks_text(trailer[j + 2 : close - 1])
                annotations.setdefault(t.text, []).append(args)
                j = close
                continue
            annotations.setdefault(t.text, []).append("")
        elif t.text == ":" :
            break  # constructor init list
        j += 1
    line = head[0].line if head else (body[0].line if body else 0)
    return Function(name, fn_cls, namespace, path, line, params, body,
                    annotations, is_const)


def _parse_params(toks: list[Tok]) -> list[Param]:
    params: list[Param] = []
    cur: list[Tok] = []
    depth = 0
    for t in toks:
        if t.text in ("(", "[", "{", "<"):
            depth += 1
        elif t.text in (")", "]", "}", ">"):
            depth -= 1
        if t.text == "," and depth == 0:
            params.append(_one_param(cur))
            cur = []
        else:
            cur.append(t)
    if cur:
        params.append(_one_param(cur))
    return [p for p in params if p is not None]


def _one_param(toks: list[Tok]):
    # drop default value
    depth = 0
    cut = len(toks)
    for k, t in enumerate(toks):
        if t.text in ("(", "[", "{", "<"):
            depth += 1
        elif t.text in (")", "]", "}", ">"):
            depth -= 1
        elif t.text == "=" and depth == 0:
            cut = k
            break
    toks = toks[:cut]
    ids = [t for t in toks if t.kind == "id"]
    if not ids:
        return None
    name = ids[-1].text
    type_toks = toks[:-1] if toks and toks[-1].kind == "id" else toks
    return Param(cpp.toks_text(type_toks), name)


def _maybe_member(head: list[Tok], cls: str, fir: FileIR):
    """Record a class member declaration `Type name_ [GUARDED_BY(mu)] ;`."""
    if not cls or not head:
        return
    words = [t.text for t in head]
    if any(w in ("using", "typedef", "friend", "static_assert", "return") for w in words):
        return
    span = _params_span(head)
    if span is not None:
        # method declaration: keep its capability annotations for the passes
        _, pclose = span
        annots: dict[str, list[str]] = {}
        j = pclose + 1
        cut = _init_list_cut(head)
        while j < cut:
            t = head[j]
            if t.kind == "id" and (t.text in _ANNOT_MACROS or t.text == "NO_THREAD_SAFETY_ANALYSIS"):
                if j + 1 < cut and head[j + 1].text == "(":
                    close = cpp._match_forward(head, j + 1, "(", ")")
                    annots.setdefault(t.text, []).append(
                        cpp.toks_text(head[j + 2 : close - 1]))
                    j = close
                    continue
                annots.setdefault(t.text, []).append("")
            j += 1
        if annots:
            k = span[0] - 1
            if k >= 0 and head[k].kind == "id":
                info = fir.classes.get(cls)
                if info is not None:
                    info.decl_annotations[head[k].text] = annots
        return
    guarded = ""
    cut = len(head)
    for k, t in enumerate(head):
        if t.kind == "id" and t.text in ("GUARDED_BY", "PT_GUARDED_BY"):
            if k + 1 < len(head) and head[k + 1].text == "(":
                close = cpp._match_forward(head, k + 1, "(", ")")
                guarded = cpp.toks_text(head[k + 2 : close - 1])
            cut = min(cut, k)
    decl = head[:cut]
    ids = [t for t in decl if t.kind == "id"]
    if len(ids) < 2:
        return
    name = ids[-1].text
    if name == "operator" or "operator" in (t.text for t in decl):
        return
    type_text = cpp.toks_text(decl).rsplit(name, 1)[0].strip()
    info = fir.classes.get(cls)
    if info is not None and name not in info.members:
        info.members[name] = Member(name, type_text, guarded)
