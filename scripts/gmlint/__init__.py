"""gmlint — AST-grounded static analysis for the G-Miner tree.

A small analysis framework driven by CMake's compile_commands.json. Five
whole-system passes prove invariants no compiler checks:

  serialize-symmetry   untagged byte-stream writers/readers mirror exactly,
                       through helper calls, loops and conditionals
  lock-order           the global mutex-acquisition graph is acyclic
  blocking-under-lock  no wire sends / blocking waits / coalescer flushes
                       while an annotated Mutex is held
  protocol             every MessageType value has a sender, a dispatch
                       handler, and consistent payload framing
  span-balance         every non-RAII trace begin is ended (or escapes)
                       on every control-flow path

Frontends (gmlint.frontend): the pass pipeline consumes a token-level IR
(functions with statement trees, classes, enums). When the python clang
bindings and a libclang shared object are available the IR is built from
libclang cursors/tokens; otherwise a built-in C++ structural parser produces
the identical IR, so the gate runs everywhere the repo builds.

Suppressions: a `lint:allow(<pass>)` comment on the finding line or the line
above silences one finding and must carry a justification. A committed
baseline (scripts/gmlint/baseline.json) grandfathers listed fingerprints;
the checked-in baseline is empty — src/ is gmlint-clean.
"""

from dataclasses import dataclass, field

__version__ = "2.0"


@dataclass
class Finding:
    path: str  # repo-relative
    line: int
    check: str
    message: str
    symbol: str = ""  # enclosing function/class, for baseline fingerprints

    def render(self) -> str:
        return f"{self.path}:{self.line}: [gmlint/{self.check}] {self.message}"

    def fingerprint(self) -> str:
        import hashlib

        h = hashlib.sha256(self.message.encode()).hexdigest()[:8]
        return f"{self.check}|{self.path}|{self.symbol}|{h}"
