"""Shared lock-state analysis for the lock-order and blocking-under-lock passes.

Walks a function's statement tree tracking which mutexes are held at each
point. Three acquisition forms are modeled:

  * scoped guards:   `MutexLock lock(mutex_);` (also std::lock_guard et al.)
                     — released at the end of the enclosing block;
  * manual toggling: `mutex_.Lock()` / `mutex_.Unlock()` — the hand-off
                     pattern used by PullCoalescer::FlushLocked and
                     Network's delivery loop;
  * entry contracts: REQUIRES(mu) on the definition or the header
                     declaration — the lock is held on entry and may be
                     released by a manual Unlock inside the body.

Mutex identity is the class-qualified member name ("PullCoalescer::mutex_"),
or file-qualified for free functions, so the same lock is recognized across
methods and translation units.

The walk yields AcquireEvent / CallEvent records; calls inside lambda bodies
are excluded (deferred execution — the lambda does not run at the point the
enclosing lock is held).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from gmlint import cpp
from gmlint.cpp import Call, Stmt, Tok
from gmlint.model import Function, Index

_GUARD_CLASSES = {"MutexLock", "lock_guard", "unique_lock", "scoped_lock"}
_TYPE_NOISE = {
    "const", "std", "unique_ptr", "shared_ptr", "atomic", "vector", "deque",
    "optional", "mutable", "struct", "class",
}


@dataclass
class AcquireEvent:
    identity: str
    held_before: tuple[str, ...]
    line: int


@dataclass
class CallEvent:
    call: Call
    held: tuple[str, ...]
    line: int


def class_of_type(type_text: str, index: Index) -> str:
    """Best-effort class name inside a member type ("std::unique_ptr<RcvCache>"
    -> "RcvCache")."""
    ids = re.findall(r"[A-Za-z_]\w*", type_text)
    known = index.classes()
    for name in ids:
        if name in known:
            return name
    for name in reversed(ids):
        if name not in _TYPE_NOISE:
            return name
    return ""


def resolve_lock_expr(expr: str, fn: Function, index: Index) -> str:
    """Canonical identity for a lock expression in `fn`'s context."""
    expr = expr.replace(" ", "")
    parts = [p for p in re.split(r"->|\.", expr) if p]
    if not parts:
        return ""
    if len(parts) == 1:
        owner = fn.cls or fn.file
        return f"{owner}::{parts[0]}"
    base, last = parts[-2], parts[-1]
    btype = index.member_type(fn.cls, base) if fn.cls else ""
    if btype:
        bcls = class_of_type(btype, index)
        if bcls:
            return f"{bcls}::{last}"
    return expr  # locals / unresolvable chains keep their textual identity


def entry_locks(fn: Function, index: Index) -> list[str]:
    """Identities held on entry per REQUIRES on the definition or the header
    declaration of the same method."""
    annots = dict(fn.annotations)
    if fn.cls:
        info = index.classes().get(fn.cls)
        if info is not None:
            for key, vals in info.decl_annotations.get(fn.short_name, {}).items():
                annots.setdefault(key, vals)
    out: list[str] = []
    for arg_text in annots.get("REQUIRES", []):
        for piece in arg_text.split(","):
            piece = piece.strip()
            if piece:
                ident = resolve_lock_expr(piece, fn, index)
                if ident and ident not in out:
                    out.append(ident)
    return out


def lock_events(fn: Function, index: Index) -> list[AcquireEvent | CallEvent]:
    """Linear walk of `fn` emitting acquisition and call events with held-set
    context. Conditional arms and loop bodies see a copy of the held set, so
    lock-state changes inside them do not leak out (conservative)."""
    events: list[AcquireEvent | CallEvent] = []
    held = list(entry_locks(fn, index))

    def scan_tokens(toks: list[Tok], held: list[str], frame: list[str]):
        # scoped guard declarations: Guard [<T>] var ( expr ) / { expr }
        k = 0
        guard_lines = set()
        while k < len(toks):
            t = toks[k]
            if t.kind == "id" and t.text in _GUARD_CLASSES:
                j = k + 1
                if j < len(toks) and toks[j].text == "<":
                    depth = 0
                    while j < len(toks):
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text in (">", ">>"):
                            depth -= 1 if toks[j].text == ">" else 2
                            if depth <= 0:
                                j += 1
                                break
                        j += 1
                if j < len(toks) and toks[j].kind == "id":
                    var_at = j
                    j += 1
                    if j < len(toks) and toks[j].text in ("(", "{"):
                        close = cpp._match_forward(
                            toks, j, toks[j].text, ")" if toks[j].text == "(" else "}")
                        expr = cpp.toks_text(toks[j + 1 : close - 1])
                        ident = resolve_lock_expr(expr, fn, index)
                        if ident:
                            events.append(AcquireEvent(ident, tuple(held), t.line))
                            if ident not in held:
                                held.append(ident)
                                frame.append(ident)
                            guard_lines.add(toks[var_at].line)
                        k = close
                        continue
            k += 1
        for call in cpp.extract_calls(toks):
            if call.in_lambda:
                continue
            if call.name in ("Lock", "Unlock") and call.recv:
                ident = resolve_lock_expr(call.recv.rstrip(".->:"), fn, index)
                if not ident:
                    continue
                if call.name == "Lock":
                    events.append(AcquireEvent(ident, tuple(held), call.line))
                    if ident not in held:
                        held.append(ident)
                else:
                    if ident in held:
                        held.remove(ident)
                continue
            if call.name in _GUARD_CLASSES:
                continue
            events.append(CallEvent(call, tuple(held), call.line))

    def walk(stmts: list[Stmt], held: list[str]):
        frame: list[str] = []
        for st in stmts:
            if st.kind == "simple" or st.kind == "return":
                scan_tokens(st.tokens, held, frame)
            elif st.kind == "if":
                scan_tokens(st.tokens, held, frame)
                walk(st.body, list(held))
                walk(st.orelse, list(held))
            elif st.kind in ("loop", "do", "switch"):
                scan_tokens(st.tokens, held, frame)
                walk(st.body, list(held))
            elif st.kind == "block":
                walk(st.body, list(held))
        for ident in frame:
            if ident in held:
                held.remove(ident)

    walk(fn.stmts(), held)
    return events


def resolve_callee(call: Call, fn: Function, index: Index) -> list[Function]:
    """Functions a call may target, via receiver member types. Ambiguous
    unqualified names (no receiver, multiple unrelated definitions) resolve to
    nothing rather than everything."""
    recv = call.recv
    if not recv:
        cands = index.resolve(call.name, fn.cls)
        if fn.cls and any(c.cls == fn.cls for c in cands):
            return [c for c in cands if c.cls == fn.cls]
        return cands if len(cands) == 1 else []
    if recv.endswith("::"):
        return index.resolve(call.name, recv[:-2].split("::")[-1])
    base = recv.rstrip(".->:")
    base = re.split(r"->|\.", base.replace(" ", ""))[-1]
    if base in ("this",):
        return [c for c in index.resolve(call.name, fn.cls) if c.cls == fn.cls]
    btype = index.member_type(fn.cls, base) if fn.cls else ""
    if btype:
        bcls = class_of_type(btype, index)
        if bcls:
            return [c for c in index.resolve(call.name, bcls) if c.cls == bcls]
    return []
