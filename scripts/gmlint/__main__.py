"""gmlint CLI.

    python3 -m gmlint [--compdb build/compile_commands.json]
                      [--checks a,b,c] [--baseline scripts/gmlint/baseline.json]
                      [--changed-files f1.cc f2.h ...] [--update-baseline]

Exit status: 0 when clean (or every finding is baselined/suppressed),
1 when findings remain, 2 on usage/environment errors.

The whole program is always parsed — the protocol and lock-order passes need
a global view — but `--changed-files` restricts which findings are *reported*,
which is what the pre-commit hook wants.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from gmlint import Finding, compdb, frontend, model
from gmlint.passes import ALL_PASSES


def _repo_root() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(here))  # scripts/gmlint -> repo


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="gmlint", description=__doc__)
    ap.add_argument("--repo-root", default=_repo_root())
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json (default: search build dirs)")
    ap.add_argument("--src-prefix", default="src",
                    help="only analyze files under this repo-relative prefix")
    ap.add_argument("--checks", default=None,
                    help="comma-separated subset of passes to run")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON of accepted finding fingerprints")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline file with current findings")
    ap.add_argument("--changed-files", nargs="*", default=None,
                    help="report findings only in these files (paths relative "
                         "to the repo root or absolute)")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for name in ALL_PASSES:
            print(name)
        return 0

    checks = list(ALL_PASSES)
    if args.checks:
        checks = [c.strip() for c in args.checks.split(",") if c.strip()]
        unknown = [c for c in checks if c not in ALL_PASSES]
        if unknown:
            print(f"gmlint: unknown checks: {', '.join(unknown)}", file=sys.stderr)
            return 2

    root = os.path.abspath(args.repo_root)
    t0 = time.monotonic()
    db = None
    cdb_path = compdb.find_compdb(root, args.compdb)
    if cdb_path is not None:
        db = compdb.load(cdb_path)
        files = compdb.reachable_files(db, root, args.src_prefix)
    else:
        files = []
    if not files:
        # no build tree, or the prefix (e.g. lint fixtures) has no TUs
        files = compdb.fallback_files(root, args.src_prefix)
    if not files:
        print("gmlint: no sources found", file=sys.stderr)
        return 2

    fe = frontend.active_frontend()
    index = model.Index()
    for path in files:
        index.add(frontend.parse(path, root, db, fe))

    findings: list[Finding] = []
    for name in checks:
        findings.extend(ALL_PASSES[name].run(index))
    findings.sort(key=lambda f: (f.path, f.line, f.check))

    baseline_path = args.baseline
    if baseline_path is None:
        default = os.path.join(root, "scripts", "gmlint", "baseline.json")
        baseline_path = default if os.path.isfile(default) else None
    baselined: set[str] = set()
    if baseline_path and os.path.isfile(baseline_path) and not args.update_baseline:
        with open(baseline_path, encoding="utf-8") as f:
            baselined = set(json.load(f).get("fingerprints", []))

    if args.update_baseline:
        target = args.baseline or os.path.join(root, "scripts", "gmlint", "baseline.json")
        with open(target, "w", encoding="utf-8") as f:
            json.dump({"fingerprints": sorted({fi.fingerprint() for fi in findings})},
                      f, indent=2)
            f.write("\n")
        print(f"gmlint: wrote {len(findings)} fingerprints to {target}")
        return 0

    changed: set[str] | None = None
    if args.changed_files is not None:
        changed = set()
        for p in args.changed_files:
            ap_ = os.path.abspath(p) if os.path.isabs(p) else os.path.abspath(
                os.path.join(root, p))
            changed.add(os.path.relpath(ap_, root))

    shown = []
    for fi in findings:
        if fi.fingerprint() in baselined:
            continue
        if changed is not None and fi.path not in changed:
            continue
        shown.append(fi)

    for fi in shown:
        print(fi.render())
    dt = time.monotonic() - t0
    if not args.quiet:
        tag = f"compdb={os.path.relpath(cdb_path, root)}" if cdb_path else "no compdb"
        print(f"gmlint: {len(files)} files, {len(checks)} passes, "
              f"{len(shown)} finding(s) ({tag}, frontend={fe}, {dt:.2f}s)",
              file=sys.stderr)
    return 1 if shown else 0


if __name__ == "__main__":
    sys.exit(main())
