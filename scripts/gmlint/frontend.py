"""Frontend selection: libclang when available, built-in parser otherwise.

Both frontends produce the same IR (model.FileIR). The libclang adapter uses
clang.cindex only to locate function extents and tokenize them — the
statement/effect layers are shared — so behavior stays identical across
frontends; the built-in parser is the reference implementation and the one
exercised by the self-test fixtures.

Selection: GMLINT_FRONTEND=clang|python|auto (default auto). `auto` uses
libclang when `import clang.cindex` succeeds AND a libclang shared object
loads; anything else falls back to the built-in parser. `clang` fails hard
when libclang is unusable, for CI environments that install it on purpose.
"""

from __future__ import annotations

import os
import sys

from gmlint import model
from gmlint.compdb import CompilationDatabase


def _try_libclang():
    try:
        import clang.cindex as cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
    except Exception:
        return None
    return cindex


def active_frontend() -> str:
    mode = os.environ.get("GMLINT_FRONTEND", "auto")
    if mode == "python":
        return "python"
    cindex = _try_libclang()
    if mode == "clang":
        if cindex is None:
            raise RuntimeError(
                "GMLINT_FRONTEND=clang but clang.cindex / libclang is not usable")
        return "clang"
    return "clang" if cindex is not None else "python"


def parse(abs_path: str, repo_root: str, db: CompilationDatabase | None,
          frontend: str) -> model.FileIR:
    if frontend == "clang":
        try:
            return _parse_with_clang(abs_path, repo_root, db)
        except Exception as e:  # pragma: no cover - depends on local clang
            print(f"gmlint: libclang failed on {abs_path} ({e}); "
                  "falling back to built-in parser", file=sys.stderr)
    return model.parse_file(abs_path, repo_root)


def _parse_with_clang(abs_path: str, repo_root: str,
                      db: CompilationDatabase | None) -> model.FileIR:
    """Build FileIR from libclang cursors; tokens come from cursor extents so
    the downstream statement/effect analysis is byte-for-byte the shared one.
    """
    import clang.cindex as cindex  # type: ignore
    from gmlint.cpp import Tok, scrub

    args = ["-std=c++20", "-xc++"]
    if db is not None:
        for tu_entry in db.units:
            if tu_entry.source == abs_path:
                args = [a for a in tu_entry.args[1:]
                        if a.startswith(("-I", "-D", "-std", "-x"))]
                break
        else:
            for d in {d for u in db.units for d in u.include_dirs}:
                args.append("-I" + d)

    index = cindex.Index.create()
    tu = index.parse(abs_path, args=args,
                     options=cindex.TranslationUnit.PARSE_INCOMPLETE
                     | cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0)

    with open(abs_path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    _, suppress, strings = scrub(text)
    rel = os.path.relpath(abs_path, repo_root)
    fir = model.FileIR(rel, suppress=suppress, strings=strings)

    def toks_of(cursor):
        out = []
        for t in cursor.get_tokens():
            kind = {"IDENTIFIER": "id", "KEYWORD": "id", "LITERAL": "num",
                    "PUNCTUATION": "punct"}.get(t.kind.name, "punct")
            if t.kind.name == "COMMENT":
                continue
            out.append(Tok(kind, t.spelling, t.location.line))
        return out

    def visit(cursor, namespace, cls):
        for c in cursor.get_children():
            if c.location.file is None or c.location.file.name != abs_path:
                continue
            k = c.kind.name
            if k == "NAMESPACE":
                visit(c, f"{namespace}::{c.spelling}" if namespace else c.spelling, cls)
            elif k in ("CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE"):
                info = model.ClassInfo(c.spelling, namespace, rel, c.location.line)
                fir.classes.setdefault(c.spelling, info)
                visit(c, namespace, c.spelling)
            elif k == "FIELD_DECL" and cls:
                info = fir.classes.get(cls)
                if info is not None:
                    info.members.setdefault(
                        c.spelling, model.Member(c.spelling, c.type.spelling))
            elif k == "ENUM_DECL":
                fir.enums[c.spelling] = model.EnumInfo(
                    c.spelling, rel, c.location.line,
                    [e.spelling for e in c.get_children()
                     if e.kind.name == "ENUM_CONSTANT_DECL"])
            elif k in ("CXX_METHOD", "FUNCTION_DECL", "CONSTRUCTOR", "DESTRUCTOR",
                       "FUNCTION_TEMPLATE"):
                if not c.is_definition():
                    continue
                toks = toks_of(c)
                # split signature from body at the first top-level `{`
                depth = 0
                body_at = None
                for idx, t in enumerate(toks):
                    if t.text == "(":
                        depth += 1
                    elif t.text == ")":
                        depth -= 1
                    elif t.text == "{" and depth == 0:
                        body_at = idx
                        break
                if body_at is None:
                    continue
                head, body = toks[:body_at], toks[body_at + 1 : -1]
                fn = model._make_function(head, body, namespace,
                                          cls or _semantic_class(c), rel)
                if fn is not None:
                    fir.functions.append(fn)
                visit(c, namespace, cls)

    def _semantic_class(c):
        p = c.semantic_parent
        if p is not None and p.kind.name in ("CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE"):
            return p.spelling
        return ""

    visit(tu.cursor, "", "")
    return fir
