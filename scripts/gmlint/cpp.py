"""Built-in C++ structural frontend: lexer + statement-tree parser.

Produces the token-level IR the passes consume (see model.py). The parser is
deliberately structural rather than semantic: it recognizes declarations,
function definitions, class/namespace nesting, and statement shape
(if/else/for/while/switch/return), which is exactly the granularity the five
passes need. Preprocessor conditionals are treated textually (both arms are
parsed; #else/#elif arms are skipped to keep one linear token stream).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass
class Tok:
    kind: str  # 'id', 'num', 'str', 'chr', 'punct'
    text: str
    line: int

    def __repr__(self):  # compact for debugging
        return f"{self.text}@{self.line}"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<id>[A-Za-z_]\w*)
  | (?P<num>\.?\d(?:[\w.]|[eEpP][+-])*)
  | (?P<punct>::|->\*|->|\+\+|--|<<=|>>=|<=>|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\.\.\.|.)
    """,
    re.VERBOSE,
)

_LINE_COMMENT = re.compile(r"//[^\n]*")
_BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.S)
_STRING = re.compile(r'"(?:[^"\\\n]|\\.)*"')
_RAWSTRING = re.compile(r'R"([^(\s]*)\((?:.|\n)*?\)\1"')
_CHAR = re.compile(r"'(?:[^'\\\n]|\\.)*'")

ALLOW_RE = re.compile(r"lint:allow\(([\w\-, ]+)\)")


def scrub(text: str):
    """Blank comments/strings (preserving newlines) and collect suppressions.

    Returns (scrubbed_text, suppressions, strings): suppressions maps line
    number -> set of check names allowed on that line (from its own or the
    previous line's comment, resolved later by the caller); strings maps
    line number -> the original contents of the string literals starting on
    that line, in source order, so literal-aware passes (metrics-registration)
    can recover what the blanking erased.
    """
    suppress: dict[int, set[str]] = {}
    strings: dict[int, list[str]] = {}

    def note(match_text: str, start: int):
        line = text.count("\n", 0, start) + 1
        for m in ALLOW_RE.finditer(match_text):
            for name in m.group(1).split(","):
                suppress.setdefault(line, set()).add(name.strip())
        # multi-line block comments: credit the closing line too
        end_line = line + match_text.count("\n")
        if end_line != line:
            for m in ALLOW_RE.finditer(match_text):
                for name in m.group(1).split(","):
                    suppress.setdefault(end_line, set()).add(name.strip())

    def blank(m: re.Match) -> str:
        s = m.group(0)
        note(s, m.start())
        return re.sub(r"[^\n]", " ", s)

    def blank_str(m: re.Match) -> str:
        s = m.group(0)
        return '"' + re.sub(r"[^\n]", " ", s[1:-1]) + '"' if len(s) >= 2 else s

    # Order matters: raw strings first (may contain // and "), then block
    # comments, strings, chars, line comments.
    text = _RAWSTRING.sub(blank_str, text)
    text = _BLOCK_COMMENT.sub(blank, text)

    # Handle strings and line comments in one left-to-right scan so a // inside
    # a string literal is not taken for a comment (and vice versa).
    out = []
    i, n = 0, len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == '"':
            m = _STRING.match(text, i)
            if m:
                s = m.group(0)
                strings.setdefault(line, []).append(s[1:-1])
                line += s.count("\n")
                out.append(blank_str(m))
                i = m.end()
                continue
        elif c == "'":
            m = _CHAR.match(text, i)
            if m:
                out.append("' '" if len(m.group(0)) > 2 else m.group(0))
                i = m.end()
                continue
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            m = _LINE_COMMENT.match(text, i)
            note(m.group(0), i)
            out.append(" " * len(m.group(0)))
            i = m.end()
            continue
        if c == "\n":
            line += 1
        out.append(c)
        i += 1
    return "".join(out), suppress, strings


def lex(text: str) -> list[Tok]:
    """Tokenize scrubbed text. Preprocessor lines become no tokens except
    that #else/#elif ... #endif alternate arms are dropped wholesale so the
    stream stays a single well-braced program."""
    toks: list[Tok] = []
    line = 1
    skip_depth = 0  # inside a dropped #else arm
    cond_stack: list[bool] = []  # True = we kept the first arm of this #if
    for raw in text.split("\n"):
        stripped = raw.lstrip()
        if stripped.startswith("#"):
            directive = stripped[1:].lstrip()
            if directive.startswith(("if", "ifdef", "ifndef")):
                if skip_depth:
                    skip_depth += 1
                else:
                    cond_stack.append(True)
            elif directive.startswith(("else", "elif")):
                if skip_depth == 0 and cond_stack:
                    skip_depth = 1  # drop the alternate arm
            elif directive.startswith("endif"):
                if skip_depth:
                    skip_depth -= 1
                elif cond_stack:
                    cond_stack.pop()
            line += 1
            continue
        if skip_depth:
            line += 1
            continue
        for m in _TOKEN_RE.finditer(raw):
            kind = m.lastgroup
            if kind == "ws":
                continue
            text_ = m.group(0)
            if kind == "punct" and text_ == '"':
                kind = "str"
            toks.append(Tok(kind, text_, line))
        line += 1
    return toks


# ---------------------------------------------------------------------------
# Statement tree
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    kind: str  # 'simple' | 'if' | 'loop' | 'do' | 'switch' | 'block' | 'return' | 'case' | 'break' | 'continue'
    line: int
    tokens: list[Tok] = field(default_factory=list)  # condition / expression
    body: list["Stmt"] = field(default_factory=list)
    orelse: list["Stmt"] = field(default_factory=list)


def _match_forward(toks: list[Tok], i: int, open_t: str, close_t: str) -> int:
    """Index just past the token matching toks[i] (which must be open_t)."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def parse_stmts(toks: list[Tok]) -> list[Stmt]:
    """Parse a token list (a function body, braces stripped) into statements."""
    out: list[Stmt] = []
    i, n = 0, len(toks)
    while i < n:
        t = toks[i]
        if t.text == ";":
            i += 1
            continue
        if t.text == "{":
            end = _match_forward(toks, i, "{", "}")
            out.append(Stmt("block", t.line, [], parse_stmts(toks[i + 1 : end - 1])))
            i = end
            continue
        if t.kind == "id" and t.text in ("if", "while", "for", "switch"):
            # condition
            j = i + 1
            if j < n and toks[j].text == "constexpr":
                j += 1
            if j >= n or toks[j].text != "(":
                i += 1
                continue
            cend = _match_forward(toks, j, "(", ")")
            cond = toks[j + 1 : cend - 1]
            body, i2 = _parse_substmt(toks, cend)
            if t.text == "if":
                orelse: list[Stmt] = []
                if i2 < n and toks[i2].text == "else":
                    orelse, i2 = _parse_substmt(toks, i2 + 1)
                out.append(Stmt("if", t.line, cond, body, orelse))
            elif t.text == "switch":
                out.append(Stmt("switch", t.line, cond, body))
            else:
                out.append(Stmt("loop", t.line, cond, body))
            i = i2
            continue
        if t.kind == "id" and t.text == "do":
            body, i2 = _parse_substmt(toks, i + 1)
            # consume trailing `while ( ... ) ;`
            cond: list[Tok] = []
            if i2 < n and toks[i2].text == "while" and i2 + 1 < n and toks[i2 + 1].text == "(":
                cend = _match_forward(toks, i2 + 1, "(", ")")
                cond = toks[i2 + 2 : cend - 1]
                i2 = cend
            out.append(Stmt("do", t.line, cond, body))
            i = i2
            continue
        if t.kind == "id" and t.text == "else":
            # dangling else from an if parsed as simple; treat as block
            body, i2 = _parse_substmt(toks, i + 1)
            out.append(Stmt("block", t.line, [], body))
            i = i2
            continue
        if t.kind == "id" and t.text in ("case", "default"):
            j = i
            while j < n and toks[j].text != ":":
                j += 1
            out.append(Stmt("case", t.line, toks[i : j + 1]))
            i = j + 1
            continue
        if t.kind == "id" and t.text == "return":
            j = _until_semicolon(toks, i)
            out.append(Stmt("return", t.line, toks[i + 1 : j]))
            i = j + 1
            continue
        if t.kind == "id" and t.text in ("break", "continue"):
            j = _until_semicolon(toks, i)
            out.append(Stmt(t.text, t.line, []))
            i = j + 1
            continue
        # simple statement (may contain lambda/init braces)
        j = _until_semicolon(toks, i)
        out.append(Stmt("simple", t.line, toks[i:j]))
        i = j + 1
    return out


def _parse_substmt(toks: list[Tok], i: int):
    """Parse either a braced block or a single statement; returns (stmts, next_i)."""
    n = len(toks)
    if i < n and toks[i].text == "{":
        end = _match_forward(toks, i, "{", "}")
        return parse_stmts(toks[i + 1 : end - 1]), end
    # single statement: re-use the main loop on a slice
    if i >= n:
        return [], i
    t = toks[i]
    if t.kind == "id" and t.text in ("if", "while", "for", "switch", "do"):
        # structured single statement: find its extent by parsing greedily
        sub = parse_stmts(toks[i:])
        if sub:
            consumed = _stmt_extent(toks, i)
            return parse_stmts(toks[i:consumed]), consumed
    j = _until_semicolon(toks, i)
    return parse_stmts(toks[i : j + 1]), j + 1


def _stmt_extent(toks: list[Tok], i: int) -> int:
    """End index of the single structured statement starting at i."""
    n = len(toks)
    t = toks[i].text
    j = i + 1
    if j < n and toks[j].text == "constexpr":
        j += 1
    if t in ("if", "while", "for", "switch") and j < n and toks[j].text == "(":
        j = _match_forward(toks, j, "(", ")")
    if t == "do":
        j = i + 1
    # body
    if j < n and toks[j].text == "{":
        j = _match_forward(toks, j, "{", "}")
    else:
        j = _until_semicolon(toks, j) + 1
    if t == "if":
        while j < n and toks[j].text == "else":
            k = j + 1
            if k < n and toks[k].text == "if":
                j = _stmt_extent(toks, k)
            elif k < n and toks[k].text == "{":
                j = _match_forward(toks, k, "{", "}")
            else:
                j = _until_semicolon(toks, k) + 1
    if t == "do":
        if j < n and toks[j].text == "while":
            j = _match_forward(toks, j + 1, "(", ")")
        j = _until_semicolon(toks, j) + 1 if j < n else j
    return j


def _until_semicolon(toks: list[Tok], i: int) -> int:
    """Index of the `;` ending the simple statement starting at i (skipping
    nested parens/braces/brackets, e.g. lambdas and braced initializers)."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t in ("(", "{", "["):
            depth += 1
        elif t in (")", "}", "]"):
            depth -= 1
            if depth < 0:  # stray closer — end of enclosing context
                return i
        elif t == ";" and depth == 0:
            return i
        i += 1
    return n


# ---------------------------------------------------------------------------
# Call extraction
# ---------------------------------------------------------------------------


@dataclass
class Call:
    name: str  # callee identifier (last component)
    recv: str  # receiver chain text, e.g. "out", "net_->", "state_->memory."
    targs: str  # template argument text, "" if none
    args: list[list[Tok]]  # top-level comma-split argument token slices
    line: int
    in_lambda: bool = False
    start: int = -1  # index of the name token in the scanned slice
    end: int = -1    # index just past the closing paren


_NOT_CALLS = {
    "if", "while", "for", "switch", "return", "sizeof", "alignof", "decltype",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast", "catch",
    "noexcept", "defined", "assert", "static_assert", "alignas", "new", "delete",
}


def lambda_spans(toks: list[Tok]) -> list[tuple[int, int]]:
    """Half-open index ranges of lambda bodies within a token slice."""
    spans = []
    i, n = 0, len(toks)
    while i < n:
        if toks[i].text == "[":
            close = _match_forward(toks, i, "[", "]")
            j = close
            # optional capture-list-adjacent: (params) [specs] { body }
            if j < n and toks[j].text == "(":
                j = _match_forward(toks, j, "(", ")")
            while j < n and toks[j].kind == "id" and toks[j].text in ("mutable", "noexcept", "constexpr"):
                j += 1
            if j < n and toks[j].text == "->":
                # trailing return type: skip to `{`
                while j < n and toks[j].text != "{":
                    j += 1
            if j < n and toks[j].text == "{":
                end = _match_forward(toks, j, "{", "}")
                spans.append((j, end))
                i = close
                continue
        i += 1
    return spans


def extract_calls(toks: list[Tok]) -> list[Call]:
    """All call expressions in a token slice, with receiver chains."""
    calls = []
    lspans = lambda_spans(toks)

    def in_lambda(idx):
        return any(a <= idx < b for a, b in lspans)

    i, n = 0, len(toks)
    while i < n:
        t = toks[i]
        if t.kind != "id" or t.text in _NOT_CALLS:
            i += 1
            continue
        # optional template args
        j = i + 1
        targs = ""
        if j < n and toks[j].text == "<":
            # heuristically match a short template-arg list: balanced < > with
            # no ; and no unbalanced parens, within 24 tokens
            depth, k = 0, j
            ok = False
            while k < n and k - j < 24:
                if toks[k].text == "<":
                    depth += 1
                elif toks[k].text == ">":
                    depth -= 1
                    if depth == 0:
                        ok = True
                        break
                elif toks[k].text == ">>":
                    depth -= 2
                    if depth <= 0:
                        ok = True
                        break
                elif toks[k].text in (";", "{", "}", "&&", "||"):
                    break
                k += 1
            if ok and k + 1 < n and toks[k + 1].text == "(":
                targs = " ".join(x.text for x in toks[j + 1 : k])
                j = k + 1
        if j >= n or toks[j].text != "(":
            i += 1
            continue
        close = _match_forward(toks, j, "(", ")")
        # receiver chain: walk back over `X::`, `x.`, `x->`, `)`. chains
        k = i - 1
        recv_parts = []
        while k >= 0:
            tt = toks[k].text
            if tt in (".", "->", "::"):
                if k - 1 >= 0 and toks[k - 1].kind == "id":
                    recv_parts.append(toks[k - 1].text + tt)
                    k -= 2
                    continue
                if k - 1 >= 0 and toks[k - 1].text in (")", "]"):
                    recv_parts.append("()" + tt)
                    k -= 2
                    continue
            break
        recv = "".join(reversed(recv_parts))
        # split args on top-level commas
        args: list[list[Tok]] = []
        cur: list[Tok] = []
        depth = 0
        for tok in toks[j + 1 : close - 1]:
            if tok.text in ("(", "[", "{"):
                depth += 1
            elif tok.text in (")", "]", "}"):
                depth -= 1
            if tok.text == "," and depth == 0:
                args.append(cur)
                cur = []
            else:
                cur.append(tok)
        if cur or args:
            args.append(cur)
        calls.append(Call(t.text, recv, targs, args, t.line, in_lambda(i), i, close))
        i = j  # continue inside the arg list to catch nested calls
    return calls


def toks_text(toks: list[Tok]) -> str:
    return " ".join(t.text for t in toks)
