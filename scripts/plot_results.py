#!/usr/bin/env python3
"""Turn bench_output.txt into per-experiment CSV files (and, if matplotlib is
available, PNG plots for the utilization timelines of Figs. 5-6).

Usage:
    python3 scripts/plot_results.py [bench_output.txt] [out_dir] [--trace trace.json]

The benchmark rows look like:
    Table3/TC/orkut/GMiner/iterations:1   412 ms  14.7 ms  1  cpu_util_pct=25.3 ... time_s=0.406
    FIG6 t=0.125 cpu=83.0 net=4.1 disk=0.0
    TRACE file=fig6_trace.json events=8123 dropped=0
This script groups rows by experiment prefix (Table1, Table3, ..., Fig13,
Ablation) and writes one CSV per experiment with the parsed counters. A Chrome
trace file (named via --trace, or discovered from a TRACE line as written by
bench_fig5_6_utilization) is folded into a per-stage latency CSV.
"""

import csv
import json
import os
import re
import sys


ROW_RE = re.compile(r"^((?:BM_)?(?:Table|Fig|Ablation|COST)\S*)\s")
COUNTER_RE = re.compile(r"(\w+)=([-\d.eku]+)")
SERIES_RE = re.compile(r"^(FIG\d)\s+t=([\d.]+)\s+cpu=([\d.]+)\s+net=([\d.]+)\s+disk=([\d.]+)")
TRACE_RE = re.compile(r"^TRACE\s+file=(\S+)\s+events=(\d+)\s+dropped=(\d+)")

SUFFIX = {"k": 1e3, "m": 1e-3, "u": 1e-6}


def parse_value(raw: str) -> float:
    if raw and raw[-1] in SUFFIX:
        return float(raw[:-1]) * SUFFIX[raw[-1]]
    return float(raw)


def experiment_of(name: str) -> str:
    name = name.removeprefix("BM_")
    return name.split("/")[0].split("_")[0]


def percentile(sorted_values: list, p: float) -> float:
    """Nearest-rank percentile over an ascending list (p in [0, 100])."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(p / 100.0 * len(sorted_values))) - 1))
    return sorted_values[rank]


def summarize_trace(trace_path: str, out_dir: str) -> None:
    """Fold a Chrome trace file's complete ("X") events into a per-stage CSV."""
    with open(trace_path) as f:
        trace = json.load(f)
    durations: dict[str, list[float]] = {}
    for event in trace.get("traceEvents", []):
        if event.get("ph") == "X":
            durations.setdefault(event["name"], []).append(float(event.get("dur", 0.0)))
    out_path = os.path.join(out_dir, "trace_stages.csv")
    with open(out_path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["stage", "count", "total_us", "p50_us", "p95_us", "p99_us", "max_us"])
        for stage in sorted(durations):
            values = sorted(durations[stage])
            writer.writerow([
                stage, len(values), round(sum(values), 3),
                percentile(values, 50), percentile(values, 95), percentile(values, 99),
                values[-1],
            ])
    print(f"wrote {out_path} ({len(durations)} stages from {trace_path})")


def main() -> int:
    args = list(sys.argv[1:])
    trace_path = ""
    if "--trace" in args:
        at = args.index("--trace")
        trace_path = args[at + 1]
        del args[at:at + 2]
    path = args[0] if len(args) > 0 else "bench_output.txt"
    out_dir = args[1] if len(args) > 1 else "bench_csv"
    os.makedirs(out_dir, exist_ok=True)

    rows: dict[str, list[dict]] = {}
    series: dict[str, list[tuple]] = {}
    with open(path) as f:
        for line in f:
            m = TRACE_RE.match(line)
            if m and not trace_path:
                # bench_fig5_6_utilization names the trace it wrote; resolve it
                # relative to the bench output so a later --trace still wins.
                candidate = m.group(1)
                if not os.path.isabs(candidate):
                    candidate = os.path.join(os.path.dirname(os.path.abspath(path)), candidate)
                if os.path.exists(candidate):
                    trace_path = candidate
                continue
            m = SERIES_RE.match(line)
            if m:
                series.setdefault(m.group(1), []).append(tuple(map(float, m.groups()[1:])))
                continue
            m = ROW_RE.match(line)
            if not m:
                continue
            name = m.group(1)
            record = {"benchmark": name}
            for key, raw in COUNTER_RE.findall(line):
                try:
                    record[key] = parse_value(raw)
                except ValueError:
                    pass
            record["verdict"] = (
                "OOM" if "OOM(x)" in line else "TIMEOUT" if "TIMEOUT(-)" in line else "ok"
            )
            rows.setdefault(experiment_of(name), []).append(record)

    for experiment, records in rows.items():
        keys = sorted({k for r in records for k in r} - {"benchmark", "verdict"})
        out_path = os.path.join(out_dir, f"{experiment.lower()}.csv")
        with open(out_path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["benchmark", "verdict", *keys])
            for r in records:
                writer.writerow([r["benchmark"], r["verdict"], *[r.get(k, "") for k in keys]])
        print(f"wrote {out_path} ({len(records)} rows)")

    for fig, samples in series.items():
        out_path = os.path.join(out_dir, f"{fig.lower()}_series.csv")
        with open(out_path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["t_seconds", "cpu_pct", "net_pct", "disk_pct"])
            writer.writerows(samples)
        print(f"wrote {out_path} ({len(samples)} samples)")

    if series:
        try:
            import matplotlib  # type: ignore

            matplotlib.use("Agg")
            import matplotlib.pyplot as plt  # type: ignore

            for fig_name, samples in series.items():
                t, cpu, net, disk = zip(*samples)
                plt.figure(figsize=(8, 3))
                plt.plot(t, cpu, label="CPU")
                plt.plot(t, net, label="Network")
                plt.plot(t, disk, label="Disk")
                plt.xlabel("time (s)")
                plt.ylabel("utilization (%)")
                plt.ylim(0, 105)
                title = "G-thinker model" if fig_name == "FIG5" else "G-Miner"
                plt.title(f"{fig_name}: {title}, GM on friendster-like")
                plt.legend()
                plt.tight_layout()
                png = os.path.join(out_dir, f"{fig_name.lower()}.png")
                plt.savefig(png, dpi=120)
                print(f"wrote {png}")
        except ImportError:
            print("matplotlib not available; CSVs written, plots skipped")

    if trace_path:
        summarize_trace(trace_path, out_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
