#!/usr/bin/env bash
# CI driver: normal build + full test suite, then optional sanitizer passes.
#
#   scripts/ci.sh                 # RelWithDebInfo build + ctest
#   scripts/ci.sh address         # additionally run the suite under ASan
#   scripts/ci.sh address thread  # ... ASan then TSan
#
# Each sanitizer gets its own build directory (build-asan, build-tsan,
# build-ubsan) so incremental rebuilds stay warm across runs.
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "$(nproc)"
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

echo "=== plain build + tests ==="
run_suite build

for sanitizer in "$@"; do
  case "${sanitizer}" in
    address) dir=build-asan ;;
    thread) dir=build-tsan ;;
    undefined) dir=build-ubsan ;;
    *)
      echo "unknown sanitizer '${sanitizer}' (expected address|thread|undefined)" >&2
      exit 2
      ;;
  esac
  echo "=== ${sanitizer} sanitizer build + tests ==="
  run_suite "${dir}" "-DGMINER_SANITIZE=${sanitizer}"
done
