#!/usr/bin/env bash
# CI driver: normal build + full test suite, then optional sanitizer passes,
# plus the static-analysis entry points.
#
#   scripts/ci.sh                 # RelWithDebInfo build + ctest
#   scripts/ci.sh address         # additionally run the suite under ASan
#   scripts/ci.sh address thread  # ... ASan then TSan
#   scripts/ci.sh address,undefined  # combined ASan+UBSan leg
#   scripts/ci.sh lint            # repo lint: regex checks (lint.py) plus the
#                                 # AST-grounded gmlint passes over
#                                 # compile_commands.json (scripts/gmlint/)
#   scripts/ci.sh tidy            # clang-tidy over src/ (needs clang-tidy +
#                                 # a compile_commands.json)
#   scripts/ci.sh threadsafety    # Clang -Wthread-safety build (needs clang++)
#   scripts/ci.sh bench-gate      # gated benches + perf-regression check
#                                 # against bench/baseline/ (check_bench.py)
#
# Each sanitizer gets its own build directory (build-asan, build-tsan,
# build-ubsan) so incremental rebuilds stay warm across runs.
set -euo pipefail

cd "$(dirname "$0")/.."

run_lint() {
  python3 scripts/lint.py
  # gmlint wants a compilation database to know the real TU set; configure a
  # throwaway build dir if no existing one has exported it yet.
  if ! python3 -c "import sys; sys.path.insert(0, 'scripts'); \
from gmlint import compdb; sys.exit(0 if compdb.find_compdb('.') else 1)"; then
    cmake -B build -S . >/dev/null
  fi
  PYTHONPATH=scripts python3 -m gmlint
}

run_tidy() {
  command -v clang-tidy >/dev/null || { echo "clang-tidy not installed" >&2; exit 2; }
  # clang-tidy needs a compilation database; any build dir works, a dedicated
  # one keeps the flags independent of local sanitizer configs.
  cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Headers are covered through the .cc files that include them
  # (HeaderFilterRegex in .clang-tidy).
  find src -name '*.cc' -print0 |
    xargs -0 -P "$(nproc)" -n 8 clang-tidy -p build-tidy --quiet
}

run_threadsafety() {
  command -v clang++ >/dev/null || { echo "clang++ not installed" >&2; exit 2; }
  CC=clang CXX=clang++ cmake -B build-threadsafety -S . -DGMINER_THREAD_SAFETY=ON
  cmake --build build-threadsafety -j "$(nproc)"
}

run_bench_gate() {
  # Mirrors the bench-gate CI job: same filter as the update-baseline target,
  # min-of-3 runs against the min-of-3 committed baseline (wall-clock noise
  # is one-sided, so minima compare like with like).
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-bench -j "$(nproc)" \
    --target bench_table3_overall bench_intersect bench_fig5_6_utilization
  local sha root current_args=()
  sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
  root="$(mktemp -d)"
  for run in 1 2 3; do
    mkdir -p "${root}/run${run}"
    GMINER_GIT_SHA="${sha}" GMINER_BENCH_OUT="${root}/run${run}" \
      build-bench/bench/bench_table3_overall \
        --benchmark_filter='Table3/TC/(skitter|btc)/(GthinkerModel|GMiner)'
    GMINER_GIT_SHA="${sha}" GMINER_BENCH_OUT="${root}/run${run}" \
      build-bench/bench/bench_intersect
    # Only the pull-batching rows: the Fig5/Fig6 utilization timelines are too
    # long for the gate (friendster, 120 s budget).
    GMINER_GIT_SHA="${sha}" GMINER_BENCH_OUT="${root}/run${run}" \
      build-bench/bench/bench_fig5_6_utilization --benchmark_filter='PullBatching'
    current_args+=(--current "${root}/run${run}")
  done
  python3 scripts/check_bench.py "${current_args[@]}" --baseline bench/baseline
}

case "${1:-}" in
  lint) run_lint; exit ;;
  tidy) run_tidy; exit ;;
  threadsafety) run_threadsafety; exit ;;
  bench-gate) run_bench_gate; exit ;;
esac

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "$(nproc)"
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

echo "=== plain build + tests ==="
run_suite build

# Shared suppression files (scripts/sanitizers/): the env vars are harmless
# for non-sanitized binaries, so export them once for every leg.
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1:${ASAN_OPTIONS:-}"
export LSAN_OPTIONS="suppressions=$(pwd)/scripts/sanitizers/lsan.supp:${LSAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$(pwd)/scripts/sanitizers/ubsan.supp:${UBSAN_OPTIONS:-}"

for sanitizer in "$@"; do
  case "${sanitizer}" in
    address) dir=build-asan ;;
    thread) dir=build-tsan ;;
    undefined) dir=build-ubsan ;;
    address,undefined) dir=build-asan-ubsan ;;
    *)
      echo "unknown sanitizer '${sanitizer}' (expected address|thread|undefined|address,undefined)" >&2
      exit 2
      ;;
  esac
  echo "=== ${sanitizer} sanitizer build + tests ==="
  run_suite "${dir}" "-DGMINER_SANITIZE=${sanitizer}"
done
