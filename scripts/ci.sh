#!/usr/bin/env bash
# CI driver: normal build + full test suite, then optional sanitizer passes,
# plus the static-analysis entry points.
#
#   scripts/ci.sh                 # RelWithDebInfo build + ctest
#   scripts/ci.sh address         # additionally run the suite under ASan
#   scripts/ci.sh address thread  # ... ASan then TSan
#   scripts/ci.sh lint            # repo lint (serialize symmetry, naked
#                                 # threads, include layering)
#   scripts/ci.sh tidy            # clang-tidy over src/ (needs clang-tidy +
#                                 # a compile_commands.json)
#   scripts/ci.sh threadsafety    # Clang -Wthread-safety build (needs clang++)
#
# Each sanitizer gets its own build directory (build-asan, build-tsan,
# build-ubsan) so incremental rebuilds stay warm across runs.
set -euo pipefail

cd "$(dirname "$0")/.."

run_lint() {
  python3 scripts/lint.py
}

run_tidy() {
  command -v clang-tidy >/dev/null || { echo "clang-tidy not installed" >&2; exit 2; }
  # clang-tidy needs a compilation database; any build dir works, a dedicated
  # one keeps the flags independent of local sanitizer configs.
  cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # Headers are covered through the .cc files that include them
  # (HeaderFilterRegex in .clang-tidy).
  find src -name '*.cc' -print0 |
    xargs -0 -P "$(nproc)" -n 8 clang-tidy -p build-tidy --quiet
}

run_threadsafety() {
  command -v clang++ >/dev/null || { echo "clang++ not installed" >&2; exit 2; }
  CC=clang CXX=clang++ cmake -B build-threadsafety -S . -DGMINER_THREAD_SAFETY=ON
  cmake --build build-threadsafety -j "$(nproc)"
}

case "${1:-}" in
  lint) run_lint; exit ;;
  tidy) run_tidy; exit ;;
  threadsafety) run_threadsafety; exit ;;
esac

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j "$(nproc)"
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

echo "=== plain build + tests ==="
run_suite build

for sanitizer in "$@"; do
  case "${sanitizer}" in
    address) dir=build-asan ;;
    thread) dir=build-tsan ;;
    undefined) dir=build-ubsan ;;
    *)
      echo "unknown sanitizer '${sanitizer}' (expected address|thread|undefined)" >&2
      exit 2
      ;;
  esac
  echo "=== ${sanitizer} sanitizer build + tests ==="
  run_suite "${dir}" "-DGMINER_SANITIZE=${sanitizer}"
done
