#!/usr/bin/env python3
"""Validator for the live metrics endpoint's output (CI metrics-smoke job).

Checks a scraped Prometheus text exposition (format 0.0.4, what the master
serves on GET /metrics) for structural validity:

  * every line is a comment (# TYPE / # HELP), blank, or a sample
    `name{labels} value` with a legal metric name and label syntax;
  * each family has exactly one # TYPE line, emitted before its samples;
  * counter and histogram sample values are non-negative and finite;
  * histogram families are internally consistent per label set: bucket
    counts are cumulative (non-decreasing in le order), the +Inf bucket
    equals _count, and _sum / _count samples exist.

Optionally validates a scraped /status document as JSON with the expected
top-level shape, and asserts specific families are present (--require).

Usage:
    check_metrics.py metrics.txt [--status status.json]
                     [--require gminer_task_created ...]

Exit code 0 when everything holds; 1 with per-line diagnostics otherwise.
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# One label: key="value" with \\, \" and \n escapes allowed in the value.
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$")
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class Checker:
    def __init__(self) -> None:
        self.errors: list[str] = []

    def error(self, lineno: int, message: str) -> None:
        self.errors.append(f"line {lineno}: {message}")


def parse_labels(raw: str, lineno: int, check: Checker) -> dict[str, str]:
    """Parses `k1="v1",k2="v2"` strictly: the whole string must be consumed."""
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        m = LABEL_RE.match(raw, pos)
        if m is None:
            check.error(lineno, f"malformed label syntax at ...{raw[pos:]!r}")
            return labels
        if m.group(1) in labels:
            check.error(lineno, f"duplicate label {m.group(1)!r}")
        labels[m.group(1)] = m.group(2)
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                check.error(lineno, f"expected ',' between labels at ...{raw[pos:]!r}")
                return labels
            pos += 1
    return labels


def base_family(name: str) -> str:
    """The family a histogram-series sample belongs to (strips the suffix)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_exposition(text: str, check: Checker) -> dict[str, str]:
    """Validates the document; returns family -> declared type."""
    types: dict[str, str] = {}
    # (family, frozen non-le labels) -> {"buckets": [(le, v)], "count": v|None,
    # "sum": v|None} for histogram consistency checks.
    histograms: dict[tuple[str, frozenset], dict] = {}
    samples_seen: set[str] = set()

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    check.error(lineno, f"malformed TYPE line: {line!r}")
                    continue
                _, _, family, mtype = parts
                if not METRIC_NAME_RE.match(family):
                    check.error(lineno, f"illegal metric name {family!r}")
                if mtype not in VALID_TYPES:
                    check.error(lineno, f"unknown metric type {mtype!r}")
                if family in types:
                    check.error(lineno, f"duplicate TYPE for {family!r}")
                if family in samples_seen:
                    check.error(lineno, f"TYPE for {family!r} after its samples")
                types[family] = mtype
            # HELP and other comments are free-form.
            continue

        m = SAMPLE_RE.match(line)
        if m is None:
            check.error(lineno, f"not a valid sample line: {line!r}")
            continue
        name = m.group("name")
        family = base_family(name)
        if types.get(family) != "histogram":
            family = name  # only histogram families use suffixed series
        samples_seen.add(family)
        if family not in types:
            check.error(lineno, f"sample for {name!r} has no preceding TYPE")

        labels = parse_labels(m.group("labels") or "", lineno, check)
        try:
            value = float(m.group("value"))
        except ValueError:
            check.error(lineno, f"non-numeric value {m.group('value')!r}")
            continue
        if math.isnan(value):
            check.error(lineno, f"{name}: NaN sample value")
            continue

        mtype = types.get(family)
        if mtype in ("counter", "histogram") and value < 0:
            check.error(lineno, f"{name}: negative {mtype} value {value}")
        if mtype == "histogram":
            key = (family, frozenset((k, v) for k, v in labels.items() if k != "le"))
            state = histograms.setdefault(key, {"buckets": [], "count": None, "sum": None})
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    check.error(lineno, f"{name}: bucket sample without le label")
                else:
                    bound = math.inf if le == "+Inf" else float(le)
                    state["buckets"].append((bound, value, lineno))
            elif name.endswith("_count"):
                state["count"] = (value, lineno)
            elif name.endswith("_sum"):
                state["sum"] = (value, lineno)

    for (family, labelset), state in histograms.items():
        where = dict(labelset)
        desc = f"{family}{where if where else ''}"
        buckets = sorted(state["buckets"])
        if not buckets:
            check.error(0, f"{desc}: histogram family with no _bucket samples")
            continue
        prev = -1.0
        for bound, value, lineno in buckets:
            if value < prev:
                check.error(lineno,
                            f"{desc}: bucket le={bound} count {value} below "
                            f"previous bucket's {prev} (not cumulative)")
            prev = value
        if buckets[-1][0] != math.inf:
            check.error(buckets[-1][2], f"{desc}: missing le=\"+Inf\" bucket")
        if state["count"] is None:
            check.error(0, f"{desc}: missing _count sample")
        elif buckets[-1][0] == math.inf and state["count"][0] != buckets[-1][1]:
            check.error(state["count"][1],
                        f"{desc}: _count {state['count'][0]} != +Inf bucket "
                        f"{buckets[-1][1]}")
        if state["sum"] is None:
            check.error(0, f"{desc}: missing _sum sample")
    return types


def check_status(text: str, check: Checker) -> None:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        check.error(0, f"/status is not valid JSON: {err}")
        return
    if not isinstance(doc, dict):
        check.error(0, "/status document is not a JSON object")
        return
    for key in ("phase", "uptime_seconds", "num_workers", "workers", "cluster"):
        if key not in doc:
            check.error(0, f"/status missing key {key!r}")
    workers = doc.get("workers")
    if isinstance(workers, list) and isinstance(doc.get("num_workers"), int):
        if len(workers) != doc["num_workers"]:
            check.error(0, f"/status workers list has {len(workers)} entries, "
                           f"num_workers says {doc['num_workers']}")
        for w in workers:
            for key in ("id", "dead", "heartbeat_age_ms", "queue"):
                if key not in w:
                    check.error(0, f"/status worker entry missing {key!r}: {w}")
    cluster = doc.get("cluster")
    if isinstance(cluster, dict):
        for key in ("tasks_created", "tasks_completed", "mem_current_bytes"):
            if key not in cluster:
                check.error(0, f"/status cluster rollup missing {key!r}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("metrics", help="scraped /metrics exposition file")
    parser.add_argument("--status", help="scraped /status JSON file")
    parser.add_argument("--require", action="append", default=[],
                        metavar="FAMILY",
                        help="fail unless this metric family is present "
                             "(repeatable)")
    args = parser.parse_args()

    check = Checker()
    with open(args.metrics, encoding="utf-8") as f:
        types = check_exposition(f.read(), check)
    for family in args.require:
        if family not in types:
            check.error(0, f"required metric family {family!r} not in exposition")
    if args.status is not None:
        with open(args.status, encoding="utf-8") as f:
            check_status(f.read(), check)

    if check.errors:
        for err in check.errors:
            print(f"check_metrics: {err}", file=sys.stderr)
        print(f"check_metrics: FAILED with {len(check.errors)} error(s)",
              file=sys.stderr)
        return 1
    print(f"check_metrics: ok ({len(types)} families"
          f"{', status valid' if args.status else ''})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
