#!/usr/bin/env python3
"""Print per-stage latency and final-registry tables from G-Miner artifacts.

Accepts either of the JSON files a run produces:

  * the Chrome trace-event file written via RunOptions::trace_json_path
    (percentiles are recomputed exactly from the individual span durations), or
  * the job report written by WriteJobResultJson, whose "trace" object carries
    the pre-folded per-stage histograms (p50/p95/p99 from log buckets) and
    whose "metrics" object (schema v4) carries the final metrics-registry
    state — cluster-wide counters, gauges and log2-bucket histograms, printed
    as a registry table.

Usage:
    python3 scripts/trace_summary.py trace.json
    python3 scripts/trace_summary.py report.json

Exits 1 when the file holds neither stage data nor registry metrics (tracing
and the metrics plane both disabled, or an empty run), so CI can use it as a
smoke check.
"""

import json
import sys


def percentile(sorted_values, p):
    """Nearest-rank percentile over an ascending list (p in [0, 100])."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(round(p / 100.0 * len(sorted_values))) - 1))
    return sorted_values[rank]


def stages_from_chrome_trace(doc):
    """Group complete ("X") events by name; durations arrive in microseconds."""
    durations = {}
    for event in doc.get("traceEvents", []):
        if event.get("ph") == "X":
            durations.setdefault(event["name"], []).append(float(event.get("dur", 0.0)) * 1e3)
    stages = []
    for name in sorted(durations):
        values = sorted(durations[name])
        stages.append({
            "stage": name,
            "count": len(values),
            "total_ns": sum(values),
            "p50_ns": percentile(values, 50),
            "p95_ns": percentile(values, 95),
            "p99_ns": percentile(values, 99),
        })
    return stages


def stages_from_report(doc):
    trace = doc.get("trace", {})
    return [
        {
            "stage": s["stage"],
            "count": s["count"],
            "total_ns": s["total_ns"],
            "p50_ns": s["p50_ns"],
            "p95_ns": s["p95_ns"],
            "p99_ns": s["p99_ns"],
        }
        for s in trace.get("stages", [])
    ]


def bucket_percentile(buckets, count, p):
    """Lower-bound percentile from log2 buckets: bucket b holds [2^b, 2^(b+1))."""
    if count <= 0:
        return 0
    target = p / 100.0 * count
    cumulative = 0
    for b, n in enumerate(buckets):
        cumulative += n
        if cumulative >= target:
            return 2 ** b
    return 2 ** max(0, len(buckets) - 1)


def print_registry_table(metrics):
    """The final registry state from a schema-v4 report's "metrics" object."""
    cluster = metrics.get("cluster", {})
    counters = cluster.get("counters", {})
    gauges = cluster.get("gauges", {})
    histograms = cluster.get("histograms", {})
    if not (counters or gauges or histograms):
        return False

    workers = metrics.get("workers", [])
    print(f"final metrics registry (cluster rollup of {len(workers)} workers):")
    header = f"{'metric':<28} {'kind':>9} {'value':>14}"
    print(header)
    print("-" * len(header))
    for name in sorted(counters):
        print(f"{name:<28} {'counter':>9} {counters[name]:>14}")
    for name in sorted(gauges):
        print(f"{name:<28} {'gauge':>9} {gauges[name]:>14}")
    for name in sorted(histograms):
        h = histograms[name]
        count = h.get("count", 0)
        print(f"{name:<28} {'histogram':>9} {count:>14}"
              f"  (sum={h.get('sum', 0)}"
              f" p50~{bucket_percentile(h.get('buckets', []), count, 50)}"
              f" p95~{bucket_percentile(h.get('buckets', []), count, 95)})")
    return True


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    if "traceEvents" in doc:
        stages = stages_from_chrome_trace(doc)
        source = "chrome trace"
        dropped = None
        totals = {}
        metrics = {}
    else:
        stages = stages_from_report(doc)
        source = "job report"
        dropped = doc.get("trace", {}).get("trace_events_dropped")
        totals = doc.get("totals", {})
        metrics = doc.get("metrics", {}) if doc.get("metrics", {}).get("enabled") else {}

    if stages:
        grand_total = sum(s["total_ns"] for s in stages) or 1.0
        header = f"{'stage':<14} {'count':>10} {'p50':>12} {'p95':>12} {'p99':>12} " \
                 f"{'total':>12} {'share':>7}"
        print(header)
        print("-" * len(header))
        for s in stages:
            print(f"{s['stage']:<14} {s['count']:>10} "
                  f"{s['p50_ns'] / 1e6:>10.3f}ms {s['p95_ns'] / 1e6:>10.3f}ms "
                  f"{s['p99_ns'] / 1e6:>10.3f}ms {s['total_ns'] / 1e6:>10.3f}ms "
                  f"{100.0 * s['total_ns'] / grand_total:>6.1f}%")
        if dropped:
            print(f"warning: {dropped} events dropped (raise RunOptions::trace_ring_capacity)")
        if totals.get("pull_batches_sent"):
            batches = totals["pull_batches_sent"]
            requests = totals.get("pull_requests", 0)
            per_batch = requests / batches if batches else 0.0
            print(f"pull batching: {batches} batches, {requests} vertex requests "
                  f"({per_batch:.1f} ids/batch avg, "
                  f"p50={totals.get('pull_batch_size_p50', 0)} "
                  f"p95={totals.get('pull_batch_size_p95', 0)}), "
                  f"{totals.get('dedup_hits', 0)} dedup hits")

    printed_registry = False
    if metrics:
        if stages:
            print()
        printed_registry = print_registry_table(metrics)

    if not stages and not printed_registry:
        print(f"no stage or registry data in {sys.argv[1]} ({source}) -- "
              "were tracing / the metrics plane enabled?", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
