// Correctness and failure-mode tests for the comparator engines: the
// vertex-centric BSP engine (Giraph model), the embedding-exploration engine
// (Arabesque model) and the batch-synchronous subgraph engine (G-thinker
// model). Each must agree with the serial oracle when resources allow, and
// fail with the paper's verdicts (OOM / timeout) when budgeted.
#include <gtest/gtest.h>

#include "apps/gm.h"
#include "apps/mcf.h"
#include "apps/tc.h"
#include "baselines/batch_engine.h"
#include "baselines/bsp_engine.h"
#include "baselines/embed_engine.h"
#include "baselines/serial.h"
#include "core/cluster.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

class EngineAgreementTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Graph MakeGraph() const { return RandomTestGraph(300, 8.0, GetParam()); }
};

TEST_P(EngineAgreementTest, BspTriangleCountMatchesSerial) {
  const Graph g = MakeGraph();
  const JobConfig config = FastTestConfig();
  auto app = MakeBspTriangleCount();
  const BspResult r = RunBsp(g, *app, config);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(r.result, SerialTriangleCount(g));
  EXPECT_EQ(r.supersteps, 2);
}

TEST_P(EngineAgreementTest, BspMaxCliqueMatchesSerial) {
  const Graph g = MakeGraph();
  const JobConfig config = FastTestConfig();
  auto app = MakeBspMaxClique();
  const BspResult r = RunBsp(g, *app, config);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(r.result, SerialMaxClique(g));
}

TEST_P(EngineAgreementTest, EmbedTriangleCountMatchesSerial) {
  const Graph g = MakeGraph();
  const JobConfig config = FastTestConfig();
  auto app = MakeEmbedTriangleCount();
  const EmbedResult r = RunEmbed(g, *app, config);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(r.result, SerialTriangleCount(g));
}

TEST_P(EngineAgreementTest, EmbedMaxCliqueMatchesSerial) {
  const Graph g = MakeGraph();
  const JobConfig config = FastTestConfig();
  auto app = MakeEmbedMaxClique();
  const EmbedResult r = RunEmbed(g, *app, config);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(std::max<uint64_t>(r.result, 1), SerialMaxClique(g));
}

TEST_P(EngineAgreementTest, BatchEngineTriangleCountMatchesSerial) {
  const Graph g = MakeGraph();
  const JobConfig config = FastTestConfig();
  TriangleCountJob job;
  const JobResult r = RunBatch(g, job, config);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(r.final_aggregate), SerialTriangleCount(g));
}

TEST_P(EngineAgreementTest, BatchEngineMaxCliqueMatchesSerial) {
  const Graph g = MakeGraph();
  const JobConfig config = FastTestConfig();
  MaxCliqueJob job;
  const JobResult r = RunBatch(g, job, config);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(MaxCliqueJob::MaxCliqueSize(r.final_aggregate), SerialMaxClique(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreementTest, ::testing::Values(1, 2, 3));

TEST(BatchEngineTest, GraphMatchMatchesSerial) {
  Rng rng(9);
  Graph g = WithUniformLabels(GenerateErdosRenyi(300, 8.0, rng), 7, rng);
  const TreePattern pattern = Fig1Pattern();
  GraphMatchJob job(pattern);
  const JobResult r = RunBatch(g, job, FastTestConfig());
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(GraphMatchJob::MatchCount(r.final_aggregate), SerialGraphMatch(g, pattern));
}

TEST(BatchEngineTest, RepullsAfterLruEviction) {
  // A tiny LRU cache forces re-pulls the RCV cache would avoid.
  const Graph g = RandomTestGraph(400, 10.0, 5);
  JobConfig config = FastTestConfig();
  config.rcv_cache_capacity = 48;  // forces cross-task evictions and re-pulls
  TriangleCountJob job;
  const JobResult r = RunBatch(g, job, config);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(r.final_aggregate), SerialTriangleCount(g));
}

// --- Failure-mode reproduction: the paper's "x" (OOM) and "-" (>24h)
// verdicts under resource budgets. ---

TEST(FailureModeTest, BspMaxCliqueOomOnDenseGraphWithBudget) {
  Rng rng(3);
  const Graph g = GenerateBarabasiAlbert(1000, 24, rng);  // dense: heavy messages
  JobConfig config = FastTestConfig();
  config.memory_budget_bytes = 2 * 1024 * 1024;
  auto app = MakeBspMaxClique();
  const BspResult r = RunBsp(g, *app, config);
  EXPECT_EQ(r.status, JobStatus::kOutOfMemory);
  EXPECT_GT(r.peak_memory_bytes, static_cast<int64_t>(config.memory_budget_bytes));
}

TEST(FailureModeTest, EmbedMaxCliqueOomOnDenseGraphWithBudget) {
  Rng rng(3);
  const Graph g = GenerateBarabasiAlbert(800, 20, rng);
  JobConfig config = FastTestConfig();
  config.memory_budget_bytes = 2 * 1024 * 1024;
  auto app = MakeEmbedMaxClique();
  const EmbedResult r = RunEmbed(g, *app, config);
  EXPECT_EQ(r.status, JobStatus::kOutOfMemory);
}

TEST(FailureModeTest, EmbedTimesOutWithTinyTimeBudget) {
  Rng rng(4);
  const Graph g = GenerateBarabasiAlbert(2000, 16, rng);
  JobConfig config = FastTestConfig();
  config.time_budget_seconds = 0.001;
  auto app = MakeEmbedMaxClique();
  const EmbedResult r = RunEmbed(g, *app, config);
  EXPECT_EQ(r.status, JobStatus::kTimeout);
}

TEST(FailureModeTest, GminerStaysWithinBudgetWhereBspOoms) {
  // The headline claim: on the same graph and the same memory budget that
  // kills the BSP engine, G-Miner completes (bounded memory by design).
  Rng rng(3);
  const Graph g = GenerateBarabasiAlbert(1000, 24, rng);
  JobConfig config = FastTestConfig();
  config.memory_budget_bytes = 2 * 1024 * 1024;

  auto bsp = MakeBspMaxClique();
  const BspResult bsp_result = RunBsp(g, *bsp, config);
  EXPECT_EQ(bsp_result.status, JobStatus::kOutOfMemory);

  config.rcv_cache_capacity = 2048;
  config.task_block_capacity = 256;
  MaxCliqueJob job;
  Cluster cluster(config);
  const JobResult r = cluster.Run(g, job);
  ASSERT_EQ(r.status, JobStatus::kOk) << "G-Miner should finish within the same budget";
  EXPECT_EQ(MaxCliqueJob::MaxCliqueSize(r.final_aggregate), SerialMaxClique(g));
}

TEST(SerialBaselineTest, MaxCliqueTimeoutReportsBound) {
  Rng rng(6);
  const Graph g = GenerateBarabasiAlbert(3000, 20, rng);
  bool timed_out = false;
  const uint64_t bound = SerialMaxClique(g, /*budget_seconds=*/0.001, &timed_out);
  EXPECT_TRUE(timed_out);
  EXPECT_GE(bound, 1u);
}

}  // namespace
}  // namespace gminer
