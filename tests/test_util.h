// Shared fixtures for the test suite: small deterministic graphs and a
// JobConfig tuned for fast in-test cluster runs.
#ifndef GMINER_TESTS_TEST_UTIL_H_
#define GMINER_TESTS_TEST_UTIL_H_

#include "common/config.h"
#include "common/rng.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace gminer {

// A hand-built 8-vertex graph with 4 triangles and a 4-clique {0,1,2,3}.
inline Graph SmallTestGraph() {
  GraphBuilder b(8);
  // 4-clique.
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  // Tail: triangle {3,4,5} and a path 5-6-7.
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  b.AddEdge(3, 5);
  b.AddEdge(5, 6);
  b.AddEdge(6, 7);
  return b.Build();
}

inline Graph RandomTestGraph(VertexId n, double avg_degree, uint64_t seed) {
  Rng rng(seed);
  return GenerateErdosRenyi(n, avg_degree, rng);
}

// Fast-turnaround config for in-test cluster runs: small queues and caches so
// spill/backpressure paths are actually exercised.
inline JobConfig FastTestConfig(int workers = 3, int threads = 2) {
  JobConfig config;
  config.num_workers = workers;
  config.threads_per_worker = threads;
  config.rcv_cache_capacity = 256;
  config.task_block_capacity = 64;
  config.task_buffer_batch = 16;
  config.progress_interval_ms = 2;
  config.aggregator_interval_ms = 1;
  config.seed = 7;
  return config;
}

}  // namespace gminer

#endif  // GMINER_TESTS_TEST_UTIL_H_
