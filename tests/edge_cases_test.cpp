// Edge cases and robustness: degenerate graphs, zero-seed jobs, cluster
// object reuse, unusual configurations. A distributed runtime earns trust on
// its boundaries, not its happy path.
#include <gtest/gtest.h>

#include "apps/gm.h"
#include "apps/kclique.h"
#include "apps/mcf.h"
#include "apps/tc.h"
#include "baselines/serial.h"
#include "core/cluster.h"
#include "graph/builder.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

TEST(EdgeCaseTest, StarGraphHasNoTriangles) {
  GraphBuilder b(10);
  for (VertexId v = 1; v < 10; ++v) {
    b.AddEdge(0, v);
  }
  const Graph g = b.Build();
  TriangleCountJob job;
  const JobResult r = Cluster(FastTestConfig()).Run(g, job);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(r.final_aggregate), 0u);
  EXPECT_EQ(SerialMaxClique(g), 2u);
}

TEST(EdgeCaseTest, EdgelessGraphTerminates) {
  GraphBuilder b(20);
  const Graph g = b.Build();  // 20 isolated vertices
  TriangleCountJob tc;
  const JobResult r1 = Cluster(FastTestConfig()).Run(g, tc);
  ASSERT_EQ(r1.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(r1.final_aggregate), 0u);
  MaxCliqueJob mcf;
  const JobResult r2 = Cluster(FastTestConfig()).Run(g, mcf);
  ASSERT_EQ(r2.status, JobStatus::kOk);
  EXPECT_EQ(MaxCliqueJob::MaxCliqueSize(r2.final_aggregate), 1u);
}

TEST(EdgeCaseTest, ZeroSeedJobTerminates) {
  // A GM pattern whose root label occurs nowhere: no task is ever created,
  // and the job must still complete cleanly (termination detection handles
  // "all seeded, zero live tasks").
  Rng rng(3);
  Graph g = WithUniformLabels(RandomTestGraph(100, 4.0, 3), 3, rng);  // labels 0..2
  const TreePattern pattern = TreePattern::Build({{9, -1}, {1, 0}});  // label 9 absent
  GraphMatchJob job(pattern);
  const JobResult r = Cluster(FastTestConfig()).Run(g, job);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(GraphMatchJob::MatchCount(r.final_aggregate), 0u);
  EXPECT_EQ(r.totals.tasks_created, 0);
}

TEST(EdgeCaseTest, TinyGraphManyWorkers) {
  // More workers than vertices: some partitions are empty.
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  const Graph g = b.Build();
  JobConfig config = FastTestConfig(8, 1);
  TriangleCountJob job;
  const JobResult r = Cluster(config).Run(g, job);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(r.final_aggregate), 1u);
}

TEST(EdgeCaseTest, KLargerThanAnyClique) {
  const Graph g = SmallTestGraph();  // max clique 4
  KCliqueJob job(7);
  const JobResult r = Cluster(FastTestConfig()).Run(g, job);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(KCliqueJob::Count(r.final_aggregate), 0u);
}

TEST(EdgeCaseTest, ClusterObjectIsReusable) {
  const Graph g = RandomTestGraph(200, 8.0, 4);
  const uint64_t expected = SerialTriangleCount(g);
  Cluster cluster(FastTestConfig());
  for (int run = 0; run < 3; ++run) {
    TriangleCountJob job;
    const JobResult r = cluster.Run(g, job);
    ASSERT_EQ(r.status, JobStatus::kOk);
    EXPECT_EQ(TriangleCountJob::Count(r.final_aggregate), expected) << "run " << run;
  }
}

TEST(EdgeCaseTest, MultipleHeadBlocksInTaskStore) {
  const Graph g = RandomTestGraph(600, 8.0, 5);
  JobConfig config = FastTestConfig(2, 2);
  config.task_block_capacity = 32;
  config.task_store_memory_blocks = 4;
  TriangleCountJob job;
  const JobResult r = Cluster(config).Run(g, job);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(r.final_aggregate), SerialTriangleCount(g));
}

TEST(EdgeCaseTest, SingleThreadSingleWorker) {
  const Graph g = RandomTestGraph(300, 8.0, 6);
  JobConfig config = FastTestConfig(1, 1);
  MaxCliqueJob job;
  const JobResult r = Cluster(config).Run(g, job);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(MaxCliqueJob::MaxCliqueSize(r.final_aggregate), SerialMaxClique(g));
  // Control-plane traffic to the master still flows; data pulls must not.
  EXPECT_EQ(r.totals.pull_requests, 0) << "one worker should never pull remotely";
  EXPECT_EQ(r.totals.pull_responses, 0);
}

TEST(EdgeCaseTest, TinyCacheStillCorrect) {
  // Cache smaller than most candidate sets: heavy backpressure and transient
  // overshoot, but results must hold.
  const Graph g = RandomTestGraph(400, 12.0, 7);
  JobConfig config = FastTestConfig(4, 1);
  config.rcv_cache_capacity = 4;
  TriangleCountJob job;
  const JobResult r = Cluster(config).Run(g, job);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(r.final_aggregate), SerialTriangleCount(g));
}

TEST(EdgeCaseTest, RepeatedRunsAreDeterministicInResult) {
  const Graph g = RandomTestGraph(300, 9.0, 8);
  uint64_t first = 0;
  for (int i = 0; i < 5; ++i) {
    TriangleCountJob job;
    const JobResult r = Cluster(FastTestConfig()).Run(g, job);
    ASSERT_EQ(r.status, JobStatus::kOk);
    const uint64_t count = TriangleCountJob::Count(r.final_aggregate);
    if (i == 0) {
      first = count;
    } else {
      EXPECT_EQ(count, first);
    }
  }
}

}  // namespace
}  // namespace gminer
