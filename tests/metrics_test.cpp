// Tests for counters, the memory tracker and the utilization sampler.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "core/report.h"
#include "metrics/counters.h"
#include "metrics/memory_tracker.h"
#include "metrics/sampler.h"

namespace gminer {
namespace {

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker t;
  t.Add(100);
  t.Add(50);
  EXPECT_EQ(t.current(), 150);
  EXPECT_EQ(t.peak(), 150);
  t.Sub(120);
  EXPECT_EQ(t.current(), 30);
  EXPECT_EQ(t.peak(), 150);
  t.Add(10);
  EXPECT_EQ(t.peak(), 150);
}

TEST(MemoryTrackerTest, OverBudget) {
  MemoryTracker t;
  t.Add(1000);
  EXPECT_FALSE(t.OverBudget(0));  // 0 = unlimited
  EXPECT_FALSE(t.OverBudget(1000));
  EXPECT_TRUE(t.OverBudget(999));
}

TEST(MemoryTrackerTest, ConcurrentPeakIsMonotone) {
  MemoryTracker t;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t] {
      for (int j = 0; j < 10000; ++j) {
        t.Add(7);
        t.Sub(7);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(t.current(), 0);
  EXPECT_GE(t.peak(), 7);
}

TEST(ScopedMemoryTest, ReleasesOnDestruction) {
  MemoryTracker t;
  {
    ScopedMemory m(t, 64);
    EXPECT_EQ(t.current(), 64);
  }
  EXPECT_EQ(t.current(), 0);
}

TEST(CountersTest, SnapshotSums) {
  WorkerCounters a;
  a.net_bytes_sent.store(10);
  a.cache_hits.store(3);
  a.cache_misses.store(1);
  WorkerCounters b;
  b.net_bytes_sent.store(5);
  CountersSnapshot total = Snapshot(a);
  total += Snapshot(b);
  EXPECT_EQ(total.net_bytes_sent, 15);
  EXPECT_DOUBLE_EQ(total.CacheHitRate(), 0.75);
}

TEST(SamplerTest, ProducesSamplesWithBusyCpu) {
  WorkerCounters counters;
  std::atomic<bool> stop{false};
  // Simulate a busy core: continuously bump busy time.
  std::thread busy([&] {
    while (!stop) {
      counters.compute_busy_ns.fetch_add(5'000'000);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  UtilizationSampler sampler([&counters] { return Snapshot(counters); }, /*total_cores=*/1,
                             /*net_bandwidth_gbps=*/1.0, /*interval_ms=*/10);
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  sampler.Stop();
  stop = true;
  busy.join();
  const auto samples = sampler.TakeSamples();
  ASSERT_GE(samples.size(), 5u);
  double max_cpu = 0;
  for (const auto& s : samples) {
    EXPECT_GE(s.cpu_pct, 0.0);
    EXPECT_LE(s.cpu_pct, 100.0);
    max_cpu = std::max(max_cpu, s.cpu_pct);
  }
  EXPECT_GT(max_cpu, 30.0) << "busy loop should register high CPU utilization";
}

TEST(ReportTest, JobResultJsonContainsKeyFields) {
  JobResult r;
  r.status = JobStatus::kOk;
  r.elapsed_seconds = 1.5;
  r.peak_memory_bytes = 1024;
  r.totals.net_bytes_sent = 77;
  r.per_worker.resize(2);
  r.utilization.push_back({0.1, 50.0, 10.0, 0.0});
  const std::string json = JobResultToJson(r);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"elapsed_seconds\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"net_bytes_sent\":77"), std::string::npos);
  EXPECT_NE(json.find("\"cpu\":50"), std::string::npos);
  // Two per-worker objects.
  size_t count = 0;
  for (size_t pos = 0; (pos = json.find("\"tasks_created\"", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 3u);  // totals + 2 workers
}

TEST(ReportTest, WritesToFile) {
  JobResult r;
  const std::string path =
      (std::filesystem::temp_directory_path() / "gminer_report_test.json").string();
  WriteJobResultJson(r, path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gminer
