// Tests for counters, the memory tracker and the utilization sampler.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/report.h"
#include "metrics/cluster_series.h"
#include "metrics/counters.h"
#include "metrics/memory_tracker.h"
#include "metrics/registry.h"
#include "metrics/sampler.h"

namespace gminer {
namespace {

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker t;
  t.Add(100);
  t.Add(50);
  EXPECT_EQ(t.current(), 150);
  EXPECT_EQ(t.peak(), 150);
  t.Sub(120);
  EXPECT_EQ(t.current(), 30);
  EXPECT_EQ(t.peak(), 150);
  t.Add(10);
  EXPECT_EQ(t.peak(), 150);
}

TEST(MemoryTrackerTest, OverBudget) {
  MemoryTracker t;
  t.Add(1000);
  EXPECT_FALSE(t.OverBudget(0));  // 0 = unlimited
  EXPECT_FALSE(t.OverBudget(1000));
  EXPECT_TRUE(t.OverBudget(999));
}

TEST(MemoryTrackerTest, ConcurrentPeakIsMonotone) {
  MemoryTracker t;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t] {
      for (int j = 0; j < 10000; ++j) {
        t.Add(7);
        t.Sub(7);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(t.current(), 0);
  EXPECT_GE(t.peak(), 7);
}

TEST(ScopedMemoryTest, ReleasesOnDestruction) {
  MemoryTracker t;
  {
    ScopedMemory m(t, 64);
    EXPECT_EQ(t.current(), 64);
  }
  EXPECT_EQ(t.current(), 0);
}

TEST(CountersTest, SnapshotSums) {
  WorkerCounters a;
  a.net_bytes_sent.store(10);
  a.cache_hits.store(3);
  a.cache_misses.store(1);
  WorkerCounters b;
  b.net_bytes_sent.store(5);
  CountersSnapshot total = Snapshot(a);
  total += Snapshot(b);
  EXPECT_EQ(total.net_bytes_sent, 15);
  EXPECT_DOUBLE_EQ(total.CacheHitRate(), 0.75);
}

TEST(CountersTest, PullBatchHistogramRecordsAndMerges) {
  WorkerCounters a;
  RecordPullBatch(a, 1);    // bucket 0: [1, 2)
  RecordPullBatch(a, 3);    // bucket 1: [2, 4)
  RecordPullBatch(a, 100);  // bucket 6: [64, 128)
  WorkerCounters b;
  RecordPullBatch(b, 100);
  CountersSnapshot total = Snapshot(a);
  total += Snapshot(b);
  EXPECT_EQ(total.pull_batches_sent, 4);
  EXPECT_EQ(total.pull_batch_size_buckets[0], 1);
  EXPECT_EQ(total.pull_batch_size_buckets[1], 1);
  EXPECT_EQ(total.pull_batch_size_buckets[6], 2);
}

TEST(CountersTest, PullBatchPercentiles) {
  WorkerCounters c;
  EXPECT_EQ(Snapshot(c).PullBatchSizePercentile(0.5), 0) << "no batches yet";
  // 90 single-id batches and 10 large ones: the p50 sits in the first bucket,
  // the p95 in the large one.
  for (int i = 0; i < 90; ++i) {
    RecordPullBatch(c, 1);
  }
  for (int i = 0; i < 10; ++i) {
    RecordPullBatch(c, 1000);  // bucket 9: [512, 1024)
  }
  const CountersSnapshot s = Snapshot(c);
  EXPECT_LE(s.PullBatchSizePercentile(0.50), 2);
  EXPECT_GE(s.PullBatchSizePercentile(0.95), 512);
  EXPECT_LE(s.PullBatchSizePercentile(0.95), 1024);
  // Oversized batches land in (and never overflow) the last bucket.
  WorkerCounters huge;
  RecordPullBatch(huge, size_t{1} << 40);
  EXPECT_EQ(Snapshot(huge).pull_batch_size_buckets[kPullBatchBuckets - 1], 1);
}

TEST(SamplerTest, ProducesSamplesWithBusyCpu) {
  WorkerCounters counters;
  std::atomic<bool> stop{false};
  // Simulate a busy core: continuously bump busy time.
  std::thread busy([&] {
    while (!stop) {
      counters.compute_busy_ns.fetch_add(5'000'000);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::vector<UtilizationSample> samples;
  UtilizationSampler sampler(
      [&counters] { return Snapshot(counters); },
      [&samples](const UtilizationSample& s) { samples.push_back(s); },
      /*registry=*/nullptr, /*total_cores=*/1,
      /*net_bandwidth_gbps=*/1.0, /*interval_ms=*/10);
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  sampler.Stop();
  stop = true;
  busy.join();
  ASSERT_GE(samples.size(), 5u);
  double max_cpu = 0;
  for (const auto& s : samples) {
    EXPECT_GE(s.cpu_pct, 0.0);
    EXPECT_LE(s.cpu_pct, 100.0);
    max_cpu = std::max(max_cpu, s.cpu_pct);
  }
  EXPECT_GT(max_cpu, 30.0) << "busy loop should register high CPU utilization";
}

TEST(SamplerTest, NextDeadlineNsAnchorsToStart) {
  const int64_t start = 1'000'000;
  const int64_t interval = 10'000;
  // Before the first tick fires, the deadline is start + interval.
  EXPECT_EQ(UtilizationSampler::NextDeadlineNs(start, interval, start), start + interval);
  EXPECT_EQ(UtilizationSampler::NextDeadlineNs(start, interval, start + 5'000),
            start + interval);
  // Exactly on a tick: the next deadline is strictly after now.
  EXPECT_EQ(UtilizationSampler::NextDeadlineNs(start, interval, start + interval),
            start + 2 * interval);
  // A clock that reads before start (cannot happen in practice) still yields
  // the first deadline rather than something in the past.
  EXPECT_EQ(UtilizationSampler::NextDeadlineNs(start, interval, start - 1),
            start + interval);
}

TEST(SamplerTest, NextDeadlineNsDoesNotDrift) {
  // Simulate per-iteration overhead: waking late by eps each tick must not
  // push deadlines off the start + k*interval grid (the bug this replaced:
  // `now + interval` accumulated the overhead into the series).
  const int64_t start = 500;
  const int64_t interval = 1'000;
  int64_t now = start;
  for (int64_t k = 1; k <= 100; ++k) {
    const int64_t deadline = UtilizationSampler::NextDeadlineNs(start, interval, now);
    EXPECT_EQ(deadline, start + k * interval);
    now = deadline + 37;  // woke 37ns late, then snapshot overhead
  }
}

TEST(SamplerTest, NextDeadlineNsSkipsAheadAfterOverrun) {
  const int64_t start = 0;
  const int64_t interval = 1'000;
  // An iteration that overran by 3.5 intervals resumes on the grid without
  // firing a burst of catch-up samples.
  EXPECT_EQ(UtilizationSampler::NextDeadlineNs(start, interval, 4'500), 5'000);
}

TEST(SamplerTest, AbsoluteDeadlinesKeepTheSampleRate) {
  WorkerCounters counters;
  std::vector<UtilizationSample> samples;
  UtilizationSampler sampler(
      [&counters] { return Snapshot(counters); },
      [&samples](const UtilizationSample& s) { samples.push_back(s); },
      /*registry=*/nullptr, /*total_cores=*/1,
      /*net_bandwidth_gbps=*/1.0, /*interval_ms=*/10);
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  sampler.Stop();
  // 500ms / 10ms = 50 expected ticks. Loose lower bound: scheduling jitter
  // can swallow a few, but drift-free deadlines cannot halve the rate.
  EXPECT_GE(samples.size(), 38u);
  EXPECT_LE(samples.size(), 55u);
}

// --- Minimal JSON parser: just enough to round-trip JobResultToJson. ---
// Validates structure and records the decoded value of every string field.

struct MiniJsonParser {
  std::string_view s;
  size_t i = 0;
  std::vector<std::pair<std::string, std::string>> strings;  // key -> decoded value

  void SkipWs() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
  }

  bool ParseString(std::string* out) {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
        switch (s[i]) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (i + 4 >= s.size()) return false;
            *out += static_cast<char>(std::stoi(std::string(s.substr(i + 1, 4)), nullptr, 16));
            i += 4;
            break;
          }
          default:
            return false;
        }
        ++i;
      } else if (static_cast<unsigned char>(s[i]) < 0x20) {
        return false;  // raw control character = escaping bug
      } else {
        *out += s[i++];
      }
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    return true;
  }

  bool ParseNumber() {
    const size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
                            s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    return i > start;
  }

  bool ParseValue() {
    SkipWs();
    if (i >= s.size()) return false;
    if (s[i] == '{') return ParseObject();
    if (s[i] == '[') return ParseArray();
    if (s[i] == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (s.compare(i, 4, "true") == 0) { i += 4; return true; }
    if (s.compare(i, 5, "false") == 0) { i += 5; return true; }
    if (s.compare(i, 4, "null") == 0) { i += 4; return true; }
    return ParseNumber();
  }

  bool ParseMember() {
    SkipWs();
    std::string key;
    if (!ParseString(&key)) return false;
    SkipWs();
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    SkipWs();
    if (i < s.size() && s[i] == '"') {
      std::string value;
      if (!ParseString(&value)) return false;
      strings.emplace_back(key, value);
      return true;
    }
    return ParseValue();
  }

  bool ParseObject() {
    if (s[i] != '{') return false;
    ++i;
    SkipWs();
    if (i < s.size() && s[i] == '}') { ++i; return true; }
    while (true) {
      if (!ParseMember()) return false;
      SkipWs();
      if (i < s.size() && s[i] == ',') { ++i; continue; }
      break;
    }
    SkipWs();
    if (i >= s.size() || s[i] != '}') return false;
    ++i;
    return true;
  }

  bool ParseArray() {
    if (s[i] != '[') return false;
    ++i;
    SkipWs();
    if (i < s.size() && s[i] == ']') { ++i; return true; }
    while (true) {
      if (!ParseValue()) return false;
      SkipWs();
      if (i < s.size() && s[i] == ',') { ++i; continue; }
      break;
    }
    SkipWs();
    if (i >= s.size() || s[i] != ']') return false;
    ++i;
    return true;
  }

  bool Parse() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return i == s.size();
  }

  std::string StringValue(const std::string& key) const {
    for (const auto& [k, v] : strings) {
      if (k == key) return v;
    }
    return {};
  }
};

TEST(ReportTest, JsonEscapeCoversSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(ReportTest, JsonRoundTripsWithHostileStrings) {
  JobResult r;
  r.status = JobStatus::kOk;
  r.per_worker.resize(2);
  r.utilization.push_back({0.1, 50.0, 10.0, 0.0});
  r.trace_enabled = true;
  r.trace_events = 12;
  // A path an adversarial shell could produce: quotes, backslashes, newline.
  r.trace_file = "out\\dir/\"quoted\"\nname.json";
  StageLatency stage;
  stage.stage = "compute";
  stage.count = 3;
  stage.total_ns = 300;
  stage.max_ns = 200;
  stage.p50_ns = 100;
  stage.p95_ns = 150;
  stage.p99_ns = 180;
  r.stage_latencies.push_back(stage);

  const std::string json = JobResultToJson(r);
  MiniJsonParser parser{json, 0, {}};
  ASSERT_TRUE(parser.Parse()) << "not well-formed near offset " << parser.i << ":\n" << json;
  // Decoded strings match the originals exactly (escaping round-trips).
  EXPECT_EQ(parser.StringValue("file"), r.trace_file);
  EXPECT_EQ(parser.StringValue("status"), "ok");
  EXPECT_EQ(parser.StringValue("stage"), "compute");
  // Schema version is declared up front.
  EXPECT_NE(json.find("{\"schema_version\":4,"), std::string::npos);
  EXPECT_NE(json.find("\"trace_events_dropped\":0"), std::string::npos);
}

TEST(ReportTest, JobResultJsonContainsKeyFields) {
  JobResult r;
  r.status = JobStatus::kOk;
  r.elapsed_seconds = 1.5;
  r.peak_memory_bytes = 1024;
  r.totals.net_bytes_sent = 77;
  r.totals.pull_batches_sent = 4;
  r.totals.dedup_hits = 9;
  r.totals.pull_batch_size_buckets[5] = 4;  // four batches of [32, 64) ids
  r.per_worker.resize(2);
  r.utilization.push_back({0.1, 50.0, 10.0, 0.0});
  const std::string json = JobResultToJson(r);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"elapsed_seconds\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"net_bytes_sent\":77"), std::string::npos);
  EXPECT_NE(json.find("\"cpu\":50"), std::string::npos);
  // Schema v3: the pull-batching counters appear with derived percentiles.
  EXPECT_NE(json.find("\"pull_batches_sent\":4"), std::string::npos);
  EXPECT_NE(json.find("\"dedup_hits\":9"), std::string::npos);
  const size_t p50_at = json.find("\"pull_batch_size_p50\":");
  const size_t p95_at = json.find("\"pull_batch_size_p95\":");
  ASSERT_NE(p50_at, std::string::npos);
  ASSERT_NE(p95_at, std::string::npos);
  const long p50 = std::strtol(json.c_str() + p50_at + 22, nullptr, 10);
  const long p95 = std::strtol(json.c_str() + p95_at + 22, nullptr, 10);
  EXPECT_GE(p50, 32);
  EXPECT_LE(p95, 64);
  // Two per-worker objects.
  size_t count = 0;
  for (size_t pos = 0; (pos = json.find("\"tasks_created\"", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 3u);  // totals + 2 workers
}

TEST(ReportTest, MetricsObjectRoundTripsInV4Report) {
  JobResult r;
  r.status = JobStatus::kOk;
  r.metrics_enabled = true;
  MetricsSnapshot snap;
  snap.captured_at_ns = 1000;
  snap.counters = {{"task.created", 42}};
  snap.gauges = {{"queue.ready", 3}};
  HistogramCell cell;
  cell.name = "pull.batch_size";
  cell.buckets = {2, 1, 0, 1};
  cell.count = 4;
  cell.sum = 12;
  snap.histograms.push_back(std::move(cell));
  r.final_metrics.push_back(snap);
  r.cluster_metrics = snap;

  const std::string json = JobResultToJson(r);
  MiniJsonParser parser{json, 0, {}};
  ASSERT_TRUE(parser.Parse()) << "not well-formed near offset " << parser.i << ":\n" << json;
  EXPECT_NE(json.find("\"metrics\":{\"enabled\":true,\"workers\":["), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{\"task.created\":42}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"queue.ready\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{\"pull.batch_size\":"
                      "{\"count\":4,\"sum\":12,\"buckets\":[2,1,0,1]}}"),
            std::string::npos);
  // The cluster-wide snapshot rides along next to the per-worker list.
  EXPECT_NE(json.find("],\"cluster\":{\"counters\":{\"task.created\":42}"),
            std::string::npos);
}

TEST(StatusJsonTest, RoundTripsThroughParserWithLiveClusterState) {
  ClusterMetrics cm(2, 8);
  // A hostile phase string must survive escaping and decode back exactly.
  const std::string phase = "run\"ning\\phase\nx";
  cm.SetPhase(phase);
  cm.UpdateWorkerProgress(0, /*inactive=*/4, /*ready=*/2, /*local_tasks=*/6,
                          /*seeded=*/true);
  cm.UpdateWorkerProgress(1, 0, 0, 0, false);
  cm.MarkDead(1);

  MetricsSnapshot snap;
  snap.captured_at_ns = 1000;
  snap.counters = {{"cache.hits", 5}, {"cache.misses", 2},
                   {"disk.bytes_written", 64}, {"pull.requests", 9},
                   {"task.completed", 7}, {"task.created", 11}};
  snap.gauges = {{"pull.in_flight", 1}, {"store.depth", 3}};
  cm.RecordWorkerSnapshot(0, std::move(snap));
  cm.RecordUtilization({0.5, 42.0, 7.0, 1.0});

  MetricsRegistry master;
  master.GetGauge("mem.current_bytes")->Set(2048);
  cm.set_master_registry(&master);

  const std::string json = cm.RenderStatusJson();
  MiniJsonParser parser{json, 0, {}};
  ASSERT_TRUE(parser.Parse()) << "not well-formed near offset " << parser.i << ":\n" << json;
  EXPECT_EQ(parser.StringValue("phase"), phase);

  EXPECT_NE(json.find("\"num_workers\":2"), std::string::npos);
  // Worker 0 carries queue depths from the progress report and counters from
  // its snapshot; worker 1 is dead and never reported a snapshot.
  EXPECT_NE(json.find("\"queue\":{\"inactive\":4,\"ready\":2,\"local_tasks\":6}"),
            std::string::npos);
  EXPECT_NE(json.find("\"tasks_created\":11"), std::string::npos);
  EXPECT_NE(json.find("\"in_flight_pulls\":1"), std::string::npos);
  EXPECT_NE(json.find("\"store_depth\":3"), std::string::npos);
  EXPECT_NE(json.find("\"id\":1,\"dead\":true"), std::string::npos);
  // Cluster rollup merges the latest snapshots; memory comes from the master
  // registry; the utilization object carries the last sample.
  EXPECT_NE(json.find("\"cluster\":{\"tasks_created\":11,\"tasks_completed\":7,"
                      "\"pull_requests\":9,\"cache_hits\":5,\"cache_misses\":2,"
                      "\"spill_bytes\":64,\"metrics_dropped\":0,"
                      "\"mem_current_bytes\":2048,\"mem_peak_bytes\":0}"),
            std::string::npos);
  EXPECT_NE(json.find("\"utilization\":{\"t\":0.5,\"cpu\":42,\"net\":7,\"disk\":1}"),
            std::string::npos);
}

TEST(ReportTest, WritesToFile) {
  JobResult r;
  const std::string path =
      (std::filesystem::temp_directory_path() / "gminer_report_test.json").string();
  WriteJobResultJson(r, path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gminer
