// gmlint fixture: serialize-symmetry violations. Parsed by the lint
// frontend only — never compiled.
#include <cstdint>
#include <vector>

namespace fixture {

// Field order swap: writer emits a (u32) then b (u64); reader pulls the
// u64 first. The untagged stream desynchronizes after the first field.
struct SwappedOrder {
  uint32_t a = 0;
  uint64_t b = 0;
  std::vector<int> v;

  void Serialize(OutArchive& out) const {
    out.Write(a);
    out.Write(b);
    out.WriteVector(v);
  }

  void Deserialize(InArchive& in) {
    b = in.Read<uint64_t>();
    a = in.Read<uint32_t>();
  }
};

// Writer with no reader at all.
struct Orphan {
  int x_ = 0;
  void Serialize(OutArchive& out) const { out.Write(x_); }
};

// ReserveU64 slot that is never patched: the frame ships garbage length.
struct UnpatchedReserve {
  uint32_t n_ = 0;

  void WriteFlat(OutArchive& out) const {
    out.ReserveU64();
    out.Write(n_);
  }

  static UnpatchedReserve ReadFlat(InArchive& in) {
    UnpatchedReserve r;
    in.Read<uint64_t>();
    r.n_ = in.Read<uint32_t>();
    return r;
  }
};

}  // namespace fixture
