// gmlint fixture: metric registration aliasing. Parsed by the lint frontend
// only — never compiled.

namespace fixture {

class MetricsRegistry;
class MetricCounter;
class MetricGauge;

class PullPath {
 public:
  void Register(MetricsRegistry* registry) {
    // First registration of the literal: fine on its own.
    requests_ = registry->GetCounter("pull.requests");
  }

 private:
  MetricCounter* requests_ = nullptr;
};

class RetryPath {
 public:
  void Register(MetricsRegistry* registry) {
    // Silent aliasing: the same literal is already registered by PullPath —
    // both sites now bump one counter and each believes it owns it.
    retries_ = registry->GetCounter("pull.requests");
    // Naming-convention violation: uppercase and spaces survive only by
    // sanitation mangling, which can collide two registry names.
    bad_name_ = registry->GetGauge("Pull Requests In Flight");
  }

 private:
  MetricCounter* retries_ = nullptr;
  MetricGauge* bad_name_ = nullptr;
};

}  // namespace fixture
