// gmlint fixture: protocol-exhaustiveness holes. Parsed by the lint
// frontend only.
#include <cstdint>

namespace fixture {

enum class MessageType : uint8_t {
  kPing,       // sent + handled, empty payload: fine
  kData,       // sent framed, but the handler never reads the payload
  kDead,       // handled but nothing sends it -> dead frame
  kUnhandled,  // sent but no case label -> dropped by default arm
};

class Node {
 public:
  void SendAll() {
    net_->Send(0, 1, MessageType::kPing, {});
    OutArchive out;
    out.Write(seq_);
    net_->Send(0, 1, MessageType::kData, out.TakeBuffer());
    net_->Send(0, 1, MessageType::kUnhandled, {});
  }

  void Dispatch(Message* msg) {
    switch (msg->type) {
      case MessageType::kPing:
        HandlePing();
        break;
      case MessageType::kData:
        HandleData();
        break;
      case MessageType::kDead:
        HandleDead();
        break;
      default:
        break;
    }
  }

 private:
  void HandlePing() {}
  void HandleData() {}
  void HandleDead() {}

  Network* net_ = nullptr;
  uint64_t seq_ = 0;
};

}  // namespace fixture
