// gmlint fixture: lock-order cycle. Parsed by the lint frontend only.
namespace fixture {

class Pair {
 public:
  void Forward() {
    MutexLock la(a_);
    MutexLock lb(b_);
    Touch();
  }

  void Backward() {
    MutexLock lb(b_);
    MutexLock la(a_);
    Touch();
  }

 private:
  void Touch() {}
  Mutex a_;
  Mutex b_;
};

}  // namespace fixture
