// gmlint fixture: unbalanced trace spans. Parsed by the lint frontend only.
#include <cstdint>

namespace fixture {

class Tracer {
 public:
  // Early return leaks the span: the error path never emits it.
  void EarlyReturn(bool fail) {
    const int64_t begin = TraceNowNs();
    if (fail) {
      return;
    }
    TraceSpan(1, 2, begin, 3);
  }

  // The span is opened and simply forgotten.
  void NeverClosed() {
    const int64_t begin = TraceNowNs();
    DoWork();
  }

 private:
  void DoWork() {}
};

}  // namespace fixture
