// gmlint fixture: blocking primitives under a held lock. Parsed by the lint
// frontend only.
namespace fixture {

class Sender {
 public:
  // Direct violation: the network send blocks while mutex_ is held.
  void DirectSend() {
    MutexLock lock(mutex_);
    net_->Send(0, 1, 2, "");
  }

  // Indirect violation: the helper sends; calling it under the lock blocks.
  void IndirectSend() {
    MutexLock lock(mutex_);
    SendReport();
  }

  // Queue wait under the lock.
  void QueueWait() {
    MutexLock lock(mutex_);
    queue_.Pop();
  }

 private:
  void SendReport() { net_->Send(0, 1, 3, ""); }

  Mutex mutex_;
  Network* net_ = nullptr;
  BlockingQueue<int> queue_;
};

}  // namespace fixture
