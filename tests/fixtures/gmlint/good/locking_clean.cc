// gmlint fixture: legal locking shapes. Parsed by the lint frontend only.
namespace fixture {

// The FlushLocked hand-off: the callee owns the REQUIRES contract, drops the
// lock across the send, and re-acquires before returning. Neither the callee
// nor callers that invoke it under the lock may be flagged.
class Coalescer {
 public:
  void Flush() {
    MutexLock lock(mutex_);
    FlushLocked();
  }

  void Drain() {
    MutexLock lock(mutex_);
    while (Pending()) {
      // CondVar waits are the sanctioned way to block under a mutex.
      space_cv_.Wait(mutex_);
      FlushLocked();
    }
  }

 private:
  void FlushLocked() REQUIRES(mutex_) {
    mutex_.Unlock();
    net_->Send(0, 1, 2, "");
    mutex_.Lock();
  }

  bool Pending() { return false; }

  Mutex mutex_;
  CondVar space_cv_;
  Network* net_ = nullptr;
};

// Consistent two-lock ordering in both paths: an edge a_ -> b_ twice is a
// DAG, not a cycle.
class Ordered {
 public:
  void First() {
    MutexLock la(a_);
    MutexLock lb(b_);
  }
  void Second() {
    MutexLock la(a_);
    MutexLock lb(b_);
  }

 private:
  Mutex a_;
  Mutex b_;
};

// The send happens after the scoped lock's block ends.
class SendAfterUnlock {
 public:
  void Report() {
    int snapshot = 0;
    {
      MutexLock lock(mutex_);
      snapshot = value_;
    }
    net_->Send(0, 1, snapshot, "");
  }

 private:
  Mutex mutex_;
  int value_ = 0;
  Network* net_ = nullptr;
};

// Deliberate, justified exception: suppressions must silence the finding.
class Suppressed {
 public:
  void ShutdownBarrier() {
    MutexLock lock(mutex_);
    // Shutdown runs single-threaded; nothing else contends on mutex_ here.
    net_->Send(0, 1, 2, "");  // lint:allow(blocking-under-lock)
  }

 private:
  Mutex mutex_;
  Network* net_ = nullptr;
};

}  // namespace fixture
