// gmlint fixture: clean metric registration — every literal appears at
// exactly one source site and follows the lowercase dotted convention.
// Parsed by the lint frontend only — never compiled.

namespace fixture {

class MetricsRegistry;
class MetricCounter;
class MetricGauge;

class PullPath {
 public:
  void Register(MetricsRegistry* registry) {
    requests_ = registry->GetCounter("pull.requests");
    retries_ = registry->GetCounter("pull.retries");
    in_flight_ = registry->GetGauge("pull.in_flight");
  }

  void Refresh(MetricsRegistry* registry) {
    // Re-entering a registration path is idempotent by design (Get* returns
    // the existing object): one source site may execute many times. Sites
    // are deduplicated by (file, line), so the loop is not aliasing.
    for (int i = 0; i < 3; ++i) {
      rounds_ = registry->GetCounter("pull.refresh_rounds");
    }
  }

 private:
  MetricCounter* requests_ = nullptr;
  MetricCounter* retries_ = nullptr;
  MetricCounter* rounds_ = nullptr;
  MetricGauge* in_flight_ = nullptr;
};

}  // namespace fixture
