// gmlint fixture: legal serializer shapes the symmetry pass must accept.
// Parsed by the lint frontend only.
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

struct Inner {
  void Serialize(OutArchive& out) const { out.Write(x_); }
  static Inner Deserialize(InArchive& in) {
    Inner r;
    r.x_ = in.Read<uint32_t>();
    return r;
  }
  uint32_t x_ = 0;
};

struct Outer {
  bool has = false;
  Inner inner;
  uint64_t id = 0;
  std::vector<uint32_t> vals;
  std::string tag_;

  // Helper pair threading the archive through: inlined on both sides.
  void WriteExtras(OutArchive& out) const { out.WriteString(tag_); }
  void ReadExtras(InArchive& in) { tag_ = in.ReadString(); }

  void Serialize(OutArchive& out) const {
    out.Write(id);
    // hand-rolled element loop: byte-equivalent to the reader's ReadVector
    out.Write<uint64_t>(vals.size());
    for (uint32_t v : vals) {
      out.Write(v);
    }
    out.Write(has);
    if (has) {
      inner.Serialize(out);
    }
    WriteExtras(out);
  }

  void Deserialize(InArchive& in) {
    id = in.Read<uint64_t>();
    vals = in.ReadVector<uint32_t>();
    has = in.Read<bool>();
    if (has) {
      inner = Inner::Deserialize(in);
    }
    ReadExtras(in);
  }
};

// Nested archive calls as arguments evaluate before the outer consumer:
// scalar count, then the span bytes, and the max() wrapper is transparent.
struct FlatBlock {
  std::vector<uint32_t> data;
  uint64_t high_water = 0;

  void WriteFlat(OutArchive& out) const {
    const size_t len_at = out.ReserveU64();
    out.Write<uint64_t>(data.size());
    out.WriteSpan(data.data(), data.size());
    out.Write(high_water);
    out.PatchU64(len_at, out.size() - len_at - sizeof(uint64_t));
  }

  static FlatBlock ReadFlat(InArchive& in) {
    const uint64_t len = in.Read<uint64_t>();
    const size_t end = in.position() + len;
    FlatBlock r;
    in.ReadSpanInto(r.data, in.Read<uint64_t>());
    r.high_water = std::max(r.high_water, in.Read<uint64_t>());
    GM_CHECK(in.position() == end) << "length mismatch";
    return r;
  }
};

}  // namespace fixture
