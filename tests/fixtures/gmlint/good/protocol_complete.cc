// gmlint fixture: a complete protocol. Parsed by the lint frontend only.
#include <cstdint>

namespace fixture {

enum class MessageType : uint8_t {
  kPing,
  kData,
};

class Node {
 public:
  void SendAll() {
    net_->Send(0, 1, MessageType::kPing, {});
    OutArchive out;
    out.Write(seq_);
    net_->Send(0, 1, MessageType::kData, out.TakeBuffer());
  }

  void Dispatch(Message* msg) {
    switch (msg->type) {
      case MessageType::kPing:
        HandlePing();
        break;
      case MessageType::kData:
        HandleData(InArchive(msg->payload));
        break;
      default:
        break;
    }
  }

 private:
  void HandlePing() {}
  void HandleData(InArchive in) { seq_ = in.Read<uint64_t>(); }

  Network* net_ = nullptr;
  uint64_t seq_ = 0;
};

}  // namespace fixture
