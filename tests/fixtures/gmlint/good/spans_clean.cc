// gmlint fixture: legal span shapes. Parsed by the lint frontend only.
#include <cstdint>

namespace fixture {

class Tracer {
 public:
  // Plain open/close.
  void Balanced() {
    const int64_t begin = TraceNowNs();
    DoWork();
    TraceSpan(1, 0, begin, 2);
  }

  // Guard-correlated close: the span only opens under backpressure, and the
  // close is guarded by the same variable — both paths balance.
  void GuardPattern() {
    int64_t stall = 0;
    while (Full()) {
      if (stall == 0) {
        stall = TraceNowNs();
      }
      WaitForSpace();
    }
    if (stall != 0) {
      TraceSpan(7, 0, stall, 1);
    }
  }

  // Escape into a member: ownership of the close moves with the value.
  void Handoff(Task* task) {
    task->trace_enqueue_ns = TraceNowNs();
  }

  // Escape through a helper call.
  void Delegated() {
    const int64_t begin = TraceNowNs();
    RecordLatency(begin);
  }

 private:
  void DoWork() {}
  bool Full() { return false; }
  void WaitForSpace() {}
  void RecordLatency(int64_t begin_ns) { last_ = begin_ns; }
  int64_t last_ = 0;
};

}  // namespace fixture
