// Equivalence and invariant tests for the shared intersection kernels
// (graph/intersect.h) and the degree-orientation pass (graph/orientation.h).
//
// The kernels are drop-in replacements for each other: every test that
// produces a count or an output list runs all three implementations (scalar
// merge, galloping, AVX2) and demands bit-for-bit agreement, on both
// adversarial shapes and randomized fuzz inputs. AVX2 tests run everywhere:
// on machines without AVX2 the direct AVX2 entry points fall back to scalar,
// so the assertions still hold (they just stop being independent evidence).
#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "apps/kclique.h"
#include "baselines/serial.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/intersect.h"
#include "graph/orientation.h"

namespace gminer {
namespace {

std::vector<VertexId> MakeSortedList(size_t n, VertexId universe, Rng& rng) {
  std::vector<VertexId> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(universe == 0 ? 0 : rng.NextUint32(universe));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<VertexId> ReferenceIntersect(const std::vector<VertexId>& a,
                                         const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

// Runs every kernel (count + materialize, both argument orders) against the
// std::set_intersection reference and demands exact agreement.
void ExpectAllKernelsAgree(const std::vector<VertexId>& a, const std::vector<VertexId>& b) {
  const std::vector<VertexId> expected = ReferenceIntersect(a, b);

  EXPECT_EQ(IntersectCountScalar(a, b), expected.size());
  EXPECT_EQ(IntersectCountScalar(b, a), expected.size());
  EXPECT_EQ(IntersectCountGalloping(a, b), expected.size());
  EXPECT_EQ(IntersectCountGalloping(b, a), expected.size());
  EXPECT_EQ(IntersectCountAvx2(a, b), expected.size());
  EXPECT_EQ(IntersectCountAvx2(b, a), expected.size());
  EXPECT_EQ(IntersectCount(a, b), expected.size());

  std::vector<VertexId> out;
  IntersectScalar(a, b, out);
  EXPECT_EQ(out, expected);
  out.clear();
  IntersectGalloping(a, b, out);
  EXPECT_EQ(out, expected);
  out.clear();
  IntersectGalloping(b, a, out);
  EXPECT_EQ(out, expected);
  out.clear();
  IntersectAvx2(a, b, out);
  EXPECT_EQ(out, expected);
  out.clear();
  Intersect(a, b, out);
  EXPECT_EQ(out, expected);
}

TEST(IntersectKernels, AdversarialShapes) {
  Rng rng(7);
  const std::vector<VertexId> empty;
  const std::vector<VertexId> one = {5};
  const std::vector<VertexId> evens = {0, 2, 4, 6, 8, 10, 12, 14, 16, 18};
  const std::vector<VertexId> odds = {1, 3, 5, 7, 9, 11, 13, 15, 17, 19};
  const std::vector<VertexId> dense = [] {
    std::vector<VertexId> v(100);
    std::iota(v.begin(), v.end(), 0u);
    return v;
  }();

  ExpectAllKernelsAgree(empty, empty);
  ExpectAllKernelsAgree(empty, dense);
  ExpectAllKernelsAgree(one, empty);
  ExpectAllKernelsAgree(one, one);
  ExpectAllKernelsAgree(one, dense);
  ExpectAllKernelsAgree(evens, odds);    // interleaved, zero matches
  ExpectAllKernelsAgree(dense, dense);   // identical, all match
  ExpectAllKernelsAgree(evens, dense);   // strict subset

  // Disjoint ranges: b entirely above a (exercises the trivially-empty
  // dispatch path) and adjacent at the boundary.
  const std::vector<VertexId> low = {1, 2, 3, 4};
  const std::vector<VertexId> high = {100, 200, 300};
  ExpectAllKernelsAgree(low, high);
  const std::vector<VertexId> touching = {4, 100};
  ExpectAllKernelsAgree(low, touching);

  // 10000:1 skew — the shape galloping exists for.
  const auto small = MakeSortedList(12, 500000, rng);
  const auto huge = MakeSortedList(120000, 500000, rng);
  ExpectAllKernelsAgree(small, huge);
}

TEST(IntersectKernels, RandomizedFuzzEquivalence) {
  Rng rng(1234);
  const size_t sizes[] = {0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 63, 64, 100, 1000};
  for (int round = 0; round < 40; ++round) {
    const size_t na = sizes[rng.NextUint32(static_cast<uint32_t>(std::size(sizes)))];
    const size_t nb = sizes[rng.NextUint32(static_cast<uint32_t>(std::size(sizes)))];
    // Universe sweep: tiny universes force dense overlap (many 8-lane AVX2
    // hits per block), huge ones force sparse overlap.
    const VertexId universes[] = {16, 256, 4096, 1u << 20};
    const VertexId universe = universes[rng.NextUint32(4)];
    const auto a = MakeSortedList(na, universe, rng);
    const auto b = MakeSortedList(nb, universe, rng);
    ExpectAllKernelsAgree(a, b);
  }
}

TEST(IntersectKernels, AboveVariantsMatchSuffixReference) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    const auto a = MakeSortedList(rng.NextUint32(200), 1024, rng);
    const auto b = MakeSortedList(rng.NextUint32(200), 1024, rng);
    const VertexId floor = rng.NextUint32(1100);  // sometimes above every value
    std::vector<VertexId> expected;
    for (const VertexId v : ReferenceIntersect(a, b)) {
      if (v > floor) {
        expected.push_back(v);
      }
    }
    EXPECT_EQ(IntersectCountAbove(a, b, floor), expected.size());
    std::vector<VertexId> out;
    IntersectAbove(a, b, floor, out);
    EXPECT_EQ(out, expected);
  }
}

TEST(IntersectKernels, MaterializeAppendsWithoutClearing) {
  const std::vector<VertexId> a = {1, 2, 3};
  const std::vector<VertexId> b = {2, 3, 4};
  std::vector<VertexId> out = {77};
  Intersect(a, b, out);
  EXPECT_EQ(out, (std::vector<VertexId>{77, 2, 3}));
}

TEST(IntersectKernels, ForcedModeRoutesToRequestedKernel) {
  Rng rng(5);
  const auto a = MakeSortedList(300, 4096, rng);
  const auto b = MakeSortedList(300000, 1u << 20, rng);

  SetIntersectModeForTest(IntersectKernel::kScalar);
  ResetIntersectStatsThisThread();
  (void)IntersectCount(a, b);
  EXPECT_EQ(IntersectStatsThisThread().scalar_calls, 1u);

  SetIntersectModeForTest(IntersectKernel::kGalloping);
  ResetIntersectStatsThisThread();
  (void)IntersectCount(a, b);
  EXPECT_EQ(IntersectStatsThisThread().galloping_calls, 1u);

  if (IntersectAvx2Available()) {
    SetIntersectModeForTest(IntersectKernel::kAvx2);
    ResetIntersectStatsThisThread();
    (void)IntersectCount(a, a);
    EXPECT_EQ(IntersectStatsThisThread().avx2_calls, 1u);
  }

  // Auto mode on a heavily skewed pair should pick galloping — unless the
  // GMINER_SIMD env var pins the dispatcher (the CI scalar leg), in which
  // case restoring kAuto resumes the env-selected kernel instead.
  SetIntersectModeForTest(IntersectKernel::kAuto);
  if (IntersectMode() == IntersectKernel::kAuto) {
    ResetIntersectStatsThisThread();
    (void)IntersectCount(a, b);
    EXPECT_EQ(IntersectStatsThisThread().galloping_calls, 1u);
  }
  ResetIntersectStatsThisThread();
}

// ---------------------------------------------------------------------------
// Orientation pass
// ---------------------------------------------------------------------------

// Naive reference count over the original graph: for every edge (v, u) with
// v < u, count common neighbors above u.
uint64_t NaiveTriangleCount(const Graph& g) {
  uint64_t triangles = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u <= v) {
        continue;
      }
      for (const VertexId w : g.neighbors(u)) {
        if (w > u && g.HasEdge(v, w)) {
          ++triangles;
        }
      }
    }
  }
  return triangles;
}

Graph TestGraph(uint64_t seed, double avg_degree = 8.0) {
  Rng rng(seed);
  return GenerateBarabasiAlbert(400, static_cast<int>(avg_degree / 2), rng);
}

TEST(Orientation, DegreeOrderingIsAPermutationSortedByDegree) {
  const Graph g = TestGraph(11);
  const DegreeOrdering ord = ComputeDegreeOrdering(g);
  ASSERT_EQ(ord.rank.size(), g.num_vertices());
  ASSERT_EQ(ord.order.size(), g.num_vertices());
  std::vector<bool> seen(g.num_vertices(), false);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(ord.order[ord.rank[v]], v);
    EXPECT_FALSE(seen[ord.rank[v]]);
    seen[ord.rank[v]] = true;
  }
  for (VertexId r = 1; r < g.num_vertices(); ++r) {
    const VertexId prev = ord.order[r - 1];
    const VertexId cur = ord.order[r];
    EXPECT_LE(g.degree(prev), g.degree(cur));
    if (g.degree(prev) == g.degree(cur)) {
      EXPECT_LT(prev, cur);  // ties break by ascending id
    }
  }
}

TEST(Orientation, ReorderPreservesStructureAndMetadata) {
  Rng rng(21);
  Graph g = GenerateCommunityGraph(8, 40, 0.3, 200, rng);
  g = WithUniformLabels(g, 5, rng);
  g = WithUniformAttributes(g, 3, 10, rng);

  DegreeOrdering ord;
  const Graph r = ReorderByDegree(g, &ord);
  ASSERT_EQ(r.num_vertices(), g.num_vertices());
  EXPECT_EQ(r.num_directed_edges(), g.num_directed_edges());

  // Degree multiset is preserved vertex-by-vertex under the relabeling, and
  // every edge maps across.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId rv = ord.rank[v];
    EXPECT_EQ(r.degree(rv), g.degree(v));
    EXPECT_EQ(r.label(rv), g.label(v));
    const auto attrs_old = g.attributes(v);
    const auto attrs_new = r.attributes(rv);
    ASSERT_EQ(attrs_new.size(), attrs_old.size());
    EXPECT_TRUE(std::equal(attrs_old.begin(), attrs_old.end(), attrs_new.begin()));
    for (const VertexId u : g.neighbors(v)) {
      EXPECT_TRUE(r.HasEdge(ord.rank[v], ord.rank[u]));
    }
  }
  // New ids are degree-sorted: neighborhoods stay sorted CSR (checked by
  // FromCsr in debug), and degree is non-decreasing in vertex id.
  for (VertexId v = 1; v < r.num_vertices(); ++v) {
    EXPECT_LE(r.degree(v - 1), r.degree(v));
  }
}

TEST(Orientation, OrientedDagHasForwardEdgesOnlyAndHalvesEdgeCount) {
  const Graph g = TestGraph(31);
  DegreeOrdering ord;
  const Graph dag = BuildOrientedDag(g, &ord);
  ASSERT_EQ(dag.num_vertices(), g.num_vertices());
  EXPECT_EQ(dag.num_directed_edges(), g.num_directed_edges() / 2);
  uint64_t forward_edges = 0;
  for (VertexId v = 0; v < dag.num_vertices(); ++v) {
    for (const VertexId u : dag.neighbors(v)) {
      EXPECT_LT(v, u);  // strictly forward in rank space
      ++forward_edges;
      // Every DAG edge is a real edge of the input graph.
      EXPECT_TRUE(g.HasEdge(ord.order[v], ord.order[u]));
    }
  }
  EXPECT_EQ(forward_edges, g.num_edges());
}

TEST(Orientation, TriangleCountInvariantUnderOrientation) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = TestGraph(seed);
    const uint64_t expected = NaiveTriangleCount(g);
    // SerialTriangleCount orients internally; the reorder must not change it.
    EXPECT_EQ(SerialTriangleCount(g), expected);
    EXPECT_EQ(SerialTriangleCount(ReorderByDegree(g)), expected);
  }
}

TEST(Orientation, KCliqueCountInvariantUnderOrientation) {
  const Graph g = TestGraph(41, 10.0);
  for (const uint32_t k : {3u, 4u, 5u}) {
    EXPECT_EQ(SerialKCliqueCount(ReorderByDegree(g), k), SerialKCliqueCount(g, k));
  }
  // k = 3 cliques are triangles.
  EXPECT_EQ(SerialKCliqueCount(g, 3), NaiveTriangleCount(g));
}

// Every forced kernel mode must produce identical app-level results — the
// bit-for-bit scalar/AVX2 agreement the CI scalar leg relies on.
TEST(Orientation, AppResultsIdenticalUnderEveryKernelMode) {
  const Graph g = MakeDataset("orkut", 0.3, 77);
  const uint64_t tc_ref = SerialTriangleCount(g);
  const uint64_t kc_ref = SerialKCliqueCount(g, 4);
  for (const IntersectKernel mode :
       {IntersectKernel::kScalar, IntersectKernel::kGalloping, IntersectKernel::kAvx2}) {
    SetIntersectModeForTest(mode);
    EXPECT_EQ(SerialTriangleCount(g), tc_ref) << IntersectKernelName(mode);
    EXPECT_EQ(SerialKCliqueCount(g, 4), kc_ref) << IntersectKernelName(mode);
  }
  SetIntersectModeForTest(IntersectKernel::kAuto);
}

}  // namespace
}  // namespace gminer
