// Tests for the MinHash LSH used by the task priority queue: determinism,
// Jaccard estimation quality, and the ordering property that similar
// candidate sets receive nearby keys.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "lsh/minhash.h"

namespace gminer {
namespace {

std::vector<VertexId> MakeSet(std::initializer_list<VertexId> ids) { return ids; }

TEST(MinHashTest, DeterministicForSameSeed) {
  MinHasher a(16, 4, 99);
  MinHasher b(16, 4, 99);
  const auto set = MakeSet({1, 5, 9, 200, 77});
  EXPECT_EQ(a.Signature(set), b.Signature(set));
  EXPECT_EQ(a.Key(set), b.Key(set));
}

TEST(MinHashTest, OrderInvariant) {
  MinHasher h(16, 4, 1);
  const auto a = MakeSet({3, 1, 2});
  const auto b = MakeSet({2, 3, 1});
  EXPECT_EQ(h.Key(a), h.Key(b));
}

TEST(MinHashTest, EmptySetKeyIsZero) {
  MinHasher h(16, 4, 1);
  EXPECT_EQ(h.Key({}), 0u);
}

TEST(MinHashTest, IdenticalSetsShareKey) {
  MinHasher h(16, 4, 7);
  const auto set = MakeSet({10, 20, 30, 40});
  EXPECT_EQ(h.Key(set), h.Key(set));
}

TEST(MinHashTest, JaccardEstimateTracksTruth) {
  MinHasher h(128, 8, 5);
  Rng rng(17);
  double total_error = 0.0;
  int trials = 0;
  for (int t = 0; t < 20; ++t) {
    std::vector<VertexId> a;
    std::vector<VertexId> b;
    for (VertexId v = 0; v < 200; ++v) {
      const bool in_a = rng.NextBool(0.5);
      const bool in_b = rng.NextBool(0.5) || (in_a && rng.NextBool(0.6));
      if (in_a) {
        a.push_back(v);
      }
      if (in_b) {
        b.push_back(v);
      }
    }
    if (a.empty() || b.empty()) {
      continue;
    }
    std::vector<VertexId> inter;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(inter));
    std::vector<VertexId> uni;
    std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(uni));
    const double truth = static_cast<double>(inter.size()) / uni.size();
    const double est = MinHasher::EstimateJaccard(h.Signature(a), h.Signature(b));
    total_error += std::abs(truth - est);
    ++trials;
  }
  ASSERT_GT(trials, 10);
  EXPECT_LT(total_error / trials, 0.12);  // 128 hashes: stderr ≈ 0.04
}

// The property the task priority queue relies on: tasks with highly similar
// remote-candidate sets should receive closer keys than dissimilar ones, so
// they dequeue near each other.
TEST(MinHashTest, SimilarSetsClusterInKeySpace) {
  MinHasher h(16, 4, 3);
  Rng rng(23);
  int similar_share_prefix = 0;
  int dissimilar_share_prefix = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<VertexId> base;
    for (int i = 0; i < 40; ++i) {
      base.push_back(rng.NextUint32(100000));
    }
    std::vector<VertexId> similar = base;   // ~95% overlap
    similar[0] = rng.NextUint32(100000);
    similar[1] = rng.NextUint32(100000);
    std::vector<VertexId> dissimilar;
    for (int i = 0; i < 40; ++i) {
      dissimilar.push_back(rng.NextUint32(100000));
    }
    // Compare the top band (leading 16 bits of the key).
    const uint64_t kb = h.Key(base) >> 48;
    if ((h.Key(similar) >> 48) == kb) {
      ++similar_share_prefix;
    }
    if ((h.Key(dissimilar) >> 48) == kb) {
      ++dissimilar_share_prefix;
    }
  }
  EXPECT_GT(similar_share_prefix, dissimilar_share_prefix + kTrials / 4)
      << "similar=" << similar_share_prefix << " dissimilar=" << dissimilar_share_prefix;
}

TEST(MinHashTest, RejectsBadBandConfig) {
  EXPECT_DEATH(MinHasher(10, 3, 1), "multiple");
}

}  // namespace
}  // namespace gminer
