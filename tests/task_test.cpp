// Tests for the task model and the LSH-keyed, disk-spilling task store.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "core/task.h"
#include "core/task_store.h"
#include "storage/spill_file.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

// Minimal concrete task for store tests.
class TestTask : public Task<uint32_t> {
 public:
  void Update(UpdateContext& ctx) override {
    (void)ctx;
    MarkDead();
  }
};

std::unique_ptr<TestTask> MakeTestTask(uint32_t id, std::vector<VertexId> to_pull) {
  auto t = std::make_unique<TestTask>();
  t->context() = id;
  t->subgraph().AddVertex(id);
  t->set_candidates(to_pull);
  t->set_to_pull(std::move(to_pull));
  return t;
}

TEST(SubgraphTest, AddAndQuery) {
  Subgraph s;
  s.AddEdge(1, 2);
  s.AddEdge(2, 3);
  s.AddVertex(2);  // duplicate ignored
  EXPECT_EQ(s.num_vertices(), 3u);
  EXPECT_EQ(s.num_edges(), 2u);
  EXPECT_TRUE(s.HasVertex(3));
  EXPECT_FALSE(s.HasVertex(4));
}

TEST(SubgraphTest, SerializeRoundTrip) {
  Subgraph s;
  s.AddEdge(7, 9);
  s.AddVertex(11);
  OutArchive out;
  s.Serialize(out);
  Subgraph back;
  InArchive in(out.TakeBuffer());
  back.Deserialize(in);
  EXPECT_EQ(back.vertices(), s.vertices());
  EXPECT_EQ(back.edges(), s.edges());
}

TEST(TaskTest, SerializeRoundTripPreservesAllFields) {
  auto t = MakeTestTask(5, {100, 200});
  t->advance_round();
  t->advance_round();
  OutArchive out;
  t->Serialize(out);
  TestTask back;
  InArchive in(out.TakeBuffer());
  back.Deserialize(in);
  EXPECT_EQ(back.context(), 5u);
  EXPECT_EQ(back.round(), 2);
  EXPECT_EQ(back.candidates(), t->candidates());
  EXPECT_EQ(back.to_pull(), t->to_pull());
  EXPECT_FALSE(back.dead());
}

TEST(TaskTest, MigrationCostAndLocalRate) {
  TestTask t;
  t.subgraph().AddEdge(1, 2);  // 2 vertices
  t.set_candidates({3, 4, 5, 6});
  t.set_to_pull({5, 6});
  EXPECT_EQ(t.MigrationCost(), 6u);           // |subG| + |cand| (Eq. 2)
  EXPECT_DOUBLE_EQ(t.LocalRate(), 0.5);       // (4-2)/4 (Eq. 3)
  t.set_to_pull({});
  EXPECT_DOUBLE_EQ(t.LocalRate(), 1.0);
  t.set_candidates({});
  EXPECT_DOUBLE_EQ(t.LocalRate(), 0.0);
}

class TaskStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { spill_dir_ = MakeSpillDir("", 77); }
  void TearDown() override { RemoveSpillDir(spill_dir_); }

  TaskStore::Options MakeOptions(size_t block_capacity, bool lsh) {
    TaskStore::Options o;
    o.block_capacity = block_capacity;
    o.memory_blocks = 1;
    o.enable_lsh = lsh;
    o.spill_dir = spill_dir_;
    return o;
  }

  static TaskStore::TaskFactory Factory() {
    return [] { return std::make_unique<TestTask>(); };
  }

  std::string spill_dir_;
};

TEST_F(TaskStoreTest, InsertPopPreservesAllTasks) {
  TaskStore store(MakeOptions(8, true), Factory(), nullptr, nullptr);
  std::vector<std::unique_ptr<TaskBase>> batch;
  for (uint32_t i = 0; i < 100; ++i) {
    batch.push_back(MakeTestTask(i, {i % 10, 1000 + i % 10}));
    if (batch.size() == 10) {
      store.InsertBatch(std::move(batch));
      batch.clear();
    }
  }
  EXPECT_EQ(store.ApproxSize(), 100u);
  std::set<uint32_t> seen;
  while (auto task = store.TryPop()) {
    seen.insert(static_cast<TestTask*>(task.get())->context());
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(store.ApproxSize(), 0u);
}

TEST_F(TaskStoreTest, SpillsToDiskWhenOverCapacity) {
  WorkerCounters counters;
  TaskStore store(MakeOptions(4, true), Factory(), &counters, nullptr);
  std::vector<std::unique_ptr<TaskBase>> batch;
  for (uint32_t i = 0; i < 64; ++i) {
    batch.push_back(MakeTestTask(i, {i}));
  }
  store.InsertBatch(std::move(batch));
  EXPECT_GT(counters.disk_bytes_written.load(), 0) << "no spill happened";
  EXPECT_LE(store.InMemorySize(), 4u);
  size_t popped = 0;
  while (store.TryPop()) {
    ++popped;
  }
  EXPECT_EQ(popped, 64u);
  EXPECT_GT(counters.disk_bytes_read.load(), 0);
}

TEST_F(TaskStoreTest, LshGroupsSimilarPullSets) {
  TaskStore store(MakeOptions(256, true), Factory(), nullptr, nullptr);
  // Two families of tasks with disjoint remote-candidate sets, interleaved on
  // insertion. After LSH ordering, pops should come out family-clustered.
  std::vector<std::unique_ptr<TaskBase>> batch;
  const std::vector<VertexId> family_a = {10, 11, 12, 13, 14, 15};
  const std::vector<VertexId> family_b = {900, 901, 902, 903, 904, 905};
  for (uint32_t i = 0; i < 40; ++i) {
    auto set = (i % 2 == 0) ? family_a : family_b;
    set.push_back(2000 + i);  // small per-task variation
    batch.push_back(MakeTestTask(i, std::move(set)));
  }
  store.InsertBatch(std::move(batch));
  std::vector<int> family_sequence;
  while (auto task = store.TryPop()) {
    family_sequence.push_back(static_cast<TestTask*>(task.get())->context() % 2);
  }
  // Count family switches along the pop order; random interleaving would give
  // ~20, perfect clustering gives 1.
  int switches = 0;
  for (size_t i = 1; i < family_sequence.size(); ++i) {
    if (family_sequence[i] != family_sequence[i - 1]) {
      ++switches;
    }
  }
  EXPECT_LE(switches, 8) << "LSH ordering did not cluster similar tasks";
}

TEST_F(TaskStoreTest, FifoModeWhenLshDisabled) {
  TaskStore store(MakeOptions(256, false), Factory(), nullptr, nullptr);
  std::vector<std::unique_ptr<TaskBase>> batch;
  for (uint32_t i = 0; i < 10; ++i) {
    batch.push_back(MakeTestTask(i, {1000 - i}));
  }
  store.InsertBatch(std::move(batch));
  for (uint32_t i = 0; i < 10; ++i) {
    auto task = store.TryPop();
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(static_cast<TestTask*>(task.get())->context(), i) << "not FIFO";
  }
}

TEST_F(TaskStoreTest, StealBatchHonorsEligibility) {
  TaskStore store(MakeOptions(256, true), Factory(), nullptr, nullptr);
  std::vector<std::unique_ptr<TaskBase>> batch;
  for (uint32_t i = 0; i < 20; ++i) {
    batch.push_back(MakeTestTask(i, {i}));
  }
  store.InsertBatch(std::move(batch));
  // Only even-context tasks are eligible.
  auto stolen = store.StealBatch(5, [](const TaskBase& t) {
    return static_cast<const TestTask&>(t).context() % 2 == 0;
  });
  EXPECT_EQ(stolen.size(), 5u);
  for (const auto& t : stolen) {
    EXPECT_EQ(static_cast<TestTask*>(t.get())->context() % 2, 0u);
  }
  EXPECT_EQ(store.ApproxSize(), 15u);
}

TEST_F(TaskStoreTest, RankedStealPrefersLowLocalityCheapTasks) {
  TaskStore store(MakeOptions(256, true), Factory(), nullptr, nullptr);
  std::vector<std::unique_ptr<TaskBase>> batch;
  // Tasks 0..9: fully remote candidates (lr = 0). Tasks 10..19: half local
  // (lr = 0.5). Ranked stealing must take the fully remote ones first.
  for (uint32_t i = 0; i < 10; ++i) {
    auto t = std::make_unique<TestTask>();
    t->context() = i;
    t->set_candidates({100 + i, 200 + i});
    t->set_to_pull({100 + i, 200 + i});  // all remote
    batch.push_back(std::move(t));
  }
  for (uint32_t i = 10; i < 20; ++i) {
    auto t = std::make_unique<TestTask>();
    t->context() = i;
    t->set_candidates({100 + i, 200 + i});
    t->set_to_pull({100 + i});  // half local
    batch.push_back(std::move(t));
  }
  store.InsertBatch(std::move(batch));
  auto stolen = store.StealBatch(10, [](const TaskBase&) { return true; }, /*ranked=*/true);
  ASSERT_EQ(stolen.size(), 10u);
  for (const auto& t : stolen) {
    EXPECT_LT(static_cast<TestTask*>(t.get())->context(), 10u)
        << "ranked selection should migrate the zero-locality tasks first";
  }
}

TEST_F(TaskStoreTest, RankedStealBreaksTiesByMigrationCost) {
  TaskStore store(MakeOptions(256, true), Factory(), nullptr, nullptr);
  std::vector<std::unique_ptr<TaskBase>> batch;
  // Same locality (all remote), different sizes: cheap ones migrate first.
  for (uint32_t i = 0; i < 6; ++i) {
    auto t = std::make_unique<TestTask>();
    t->context() = i;
    std::vector<VertexId> cand;
    for (uint32_t j = 0; j <= i * 5; ++j) {
      cand.push_back(1000 + i * 100 + j);
    }
    t->set_candidates(cand);
    t->set_to_pull(std::move(cand));
    batch.push_back(std::move(t));
  }
  store.InsertBatch(std::move(batch));
  auto stolen = store.StealBatch(3, [](const TaskBase&) { return true; }, true);
  ASSERT_EQ(stolen.size(), 3u);
  for (const auto& t : stolen) {
    EXPECT_LT(static_cast<TestTask*>(t.get())->context(), 3u)
        << "ties on locality should break toward the cheapest tasks";
  }
}

TEST_F(TaskStoreTest, DrainSerializedCapturesEverythingIncludingSpilled) {
  TaskStore store(MakeOptions(4, true), Factory(), nullptr, nullptr);
  std::vector<std::unique_ptr<TaskBase>> batch;
  for (uint32_t i = 0; i < 32; ++i) {
    batch.push_back(MakeTestTask(i, {i}));
  }
  store.InsertBatch(std::move(batch));
  const auto blobs = store.DrainSerialized();
  EXPECT_EQ(blobs.size(), 32u);
  EXPECT_EQ(store.ApproxSize(), 0u);
  std::set<uint32_t> ids;
  for (const auto& blob : blobs) {
    TestTask t;
    InArchive in(blob.data(), blob.size());
    t.Deserialize(in);
    ids.insert(t.context());
  }
  EXPECT_EQ(ids.size(), 32u);
}

TEST_F(TaskStoreTest, MemoryAccountingBalances) {
  MemoryTracker memory;
  {
    TaskStore store(MakeOptions(4, true), Factory(), nullptr, &memory);
    std::vector<std::unique_ptr<TaskBase>> batch;
    for (uint32_t i = 0; i < 32; ++i) {
      auto t = MakeTestTask(i, {i});
      t->accounted_bytes = t->ByteSize();
      memory.Add(t->accounted_bytes);
      batch.push_back(std::move(t));
    }
    store.InsertBatch(std::move(batch));
    while (auto task = store.TryPop()) {
      memory.Sub(task->accounted_bytes);
      task->accounted_bytes = 0;
    }
  }
  EXPECT_EQ(memory.current(), 0) << "leaked accounted bytes";
}

}  // namespace
}  // namespace gminer
