// Metrics-plane unit tests: registry registration semantics, lock-free
// counter/histogram writers racing Collect() (the suites are named Metrics*
// so the CI TSan stress job's -R filter runs them under ThreadSanitizer),
// snapshot serialization symmetry, frame-budget trimming, name-wise merge,
// Prometheus name sanitation, the GMINER_METRICS escape hatch, and golden
// checks of the ClusterMetrics Prometheus text exposition.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "metrics/cluster_series.h"
#include "metrics/registry.h"

namespace gminer {
namespace {

TEST(MetricsRegistryTest, GetIsIdempotentPerKind) {
  MetricsRegistry reg;
  MetricCounter* c1 = reg.GetCounter("task.created");
  MetricCounter* c2 = reg.GetCounter("task.created");
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(reg.GetGauge("queue.ready"), reg.GetGauge("queue.ready"));
  EXPECT_EQ(reg.GetHistogram("pull.batch_size"), reg.GetHistogram("pull.batch_size"));

  c1->Add(3);
  c2->Increment();
  EXPECT_EQ(c1->Value(), 4);
}

TEST(MetricsRegistryTest, CollectSamplesOwnedAndLinkedMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("task.created")->Add(11);
  reg.GetGauge("queue.ready")->Set(5);
  MetricHistogram* h = reg.GetHistogram("pull.latency");
  h->Observe(1);   // bucket 0: [1, 2)
  h->Observe(3);   // bucket 1: [2, 4)
  h->Observe(3);

  std::atomic<int64_t> linked_counter{42};
  reg.LinkCounter("cache.hits", &linked_counter);
  reg.LinkGauge("store.depth", [] { return int64_t{9}; });
  std::atomic<int64_t> linked_buckets[4] = {{2}, {1}, {0}, {1}};
  reg.LinkHistogram("pull.batch_size", linked_buckets, 4);

  const MetricsSnapshot snap = reg.Collect();
  EXPECT_GT(snap.captured_at_ns, 0);
  EXPECT_EQ(snap.Value("task.created"), 11);
  EXPECT_EQ(snap.Value("queue.ready"), 5);
  EXPECT_EQ(snap.Value("cache.hits"), 42);
  EXPECT_EQ(snap.Value("store.depth"), 9);
  EXPECT_EQ(snap.Value("no.such.metric"), 0);

  ASSERT_EQ(snap.histograms.size(), 2u);
  // Name tables come out of a map walk, so histograms are sorted by name.
  const HistogramCell& batch = snap.histograms[0];
  EXPECT_EQ(batch.name, "pull.batch_size");
  ASSERT_EQ(batch.buckets.size(), 4u);
  EXPECT_EQ(batch.count, 4);               // derived: sum of linked buckets
  EXPECT_EQ(batch.sum, 2 * 1 + 1 * 2 + 1 * 8);  // lower bound: sum count[b]*2^b

  const HistogramCell& lat = snap.histograms[1];
  EXPECT_EQ(lat.name, "pull.latency");
  ASSERT_EQ(lat.buckets.size(), static_cast<size_t>(kMetricHistogramBuckets));
  EXPECT_EQ(lat.buckets[0], 1);
  EXPECT_EQ(lat.buckets[1], 2);
  EXPECT_EQ(lat.count, 3);
  EXPECT_EQ(lat.sum, 7);  // owned histograms track the exact sum
}

TEST(MetricsRegistryTest, SnapshotTablesAreSortedByName) {
  MetricsRegistry reg;
  reg.GetCounter("z.last")->Increment();
  reg.GetCounter("a.first")->Increment();
  reg.GetCounter("m.middle")->Increment();
  const MetricsSnapshot snap = reg.Collect();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "m.middle");
  EXPECT_EQ(snap.counters[2].first, "z.last");
}

// Writers hammer one striped counter from more threads than stripes while a
// reader loops Collect(); the final value must be exact and every snapshot a
// valid intermediate (monotone non-decreasing). Run under TSan by CI.
TEST(MetricsRegistryStressTest, ConcurrentAddsSumExactlyWhileCollectRaces) {
  constexpr int kThreads = 2 * kMetricCounterStripes + 3;  // force stripe sharing
  constexpr int kPerThread = 20000;
  MetricsRegistry reg;
  MetricCounter* counter = reg.GetCounter("stress.adds");

  std::atomic<bool> done{false};
  std::thread reader([&] {
    int64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const int64_t v = reg.Collect().Value("stress.adds");
      EXPECT_GE(v, last);  // counters are monotone; a torn read may not regress
      EXPECT_LE(v, int64_t{kThreads} * kPerThread);
      last = v;
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
      }
    });
  }
  for (std::thread& w : writers) {
    w.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(reg.Collect().Value("stress.adds"), int64_t{kThreads} * kPerThread);
}

TEST(MetricsRegistryStressTest, HistogramObserveRaceKeepsExactCountAndSum) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  MetricsRegistry reg;
  MetricHistogram* h = reg.GetHistogram("stress.observe");

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Observe(1 + (i + t) % 7);
      }
    });
  }
  for (std::thread& w : writers) {
    w.join();
  }

  EXPECT_EQ(h->Count(), int64_t{kThreads} * kPerThread);
  int64_t bucket_total = 0;
  for (int b = 0; b < kMetricHistogramBuckets; ++b) {
    bucket_total += h->BucketValue(b);
  }
  EXPECT_EQ(bucket_total, h->Count());
  // Each thread observes the same multiset {1..7} spread over kPerThread
  // observations (kPerThread is not a multiple of 7, so compute it directly).
  int64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      expected_sum += 1 + (i + t) % 7;
    }
  }
  EXPECT_EQ(h->Sum(), expected_sum);
}

MetricsSnapshot MakeSnapshot() {
  MetricsSnapshot snap;
  snap.captured_at_ns = 12345;
  snap.counters = {{"cache.hits", 7}, {"task.created", 42}};
  snap.gauges = {{"queue.ready", 3}, {"store.depth", 9}};
  HistogramCell cell;
  cell.name = "pull.batch_size";
  cell.buckets = {2, 1, 0, 1};
  cell.count = 4;
  cell.sum = 12;
  snap.histograms.push_back(std::move(cell));
  return snap;
}

TEST(MetricsSnapshotTest, SerializeRoundTripsAndMatchesEncodedBytes) {
  const MetricsSnapshot snap = MakeSnapshot();
  OutArchive out;
  snap.Serialize(out);
  EXPECT_EQ(out.size(), snap.EncodedBytes());

  InArchive in(out.TakeBuffer());
  const MetricsSnapshot back = MetricsSnapshot::Deserialize(in);
  EXPECT_EQ(back.captured_at_ns, snap.captured_at_ns);
  ASSERT_EQ(back.counters.size(), snap.counters.size());
  EXPECT_EQ(back.counters, snap.counters);
  EXPECT_EQ(back.gauges, snap.gauges);
  ASSERT_EQ(back.histograms.size(), 1u);
  EXPECT_EQ(back.histograms[0].name, "pull.batch_size");
  EXPECT_EQ(back.histograms[0].buckets, snap.histograms[0].buckets);
  EXPECT_EQ(back.histograms[0].count, 4);
  EXPECT_EQ(back.histograms[0].sum, 12);
}

TEST(MetricsSnapshotTest, TrimToBudgetDropsHistogramsThenGaugesThenCounters) {
  // Roomy budget: nothing dropped.
  MetricsSnapshot snap = MakeSnapshot();
  EXPECT_EQ(snap.TrimToBudget(1 << 20), 0);
  EXPECT_EQ(snap.histograms.size(), 1u);

  // Just below full size: the histogram (the biggest, least essential entry)
  // goes first.
  snap = MakeSnapshot();
  EXPECT_EQ(snap.TrimToBudget(snap.EncodedBytes() - 1), 1);
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.gauges.size(), 2u);

  // Tiny budget: gauges go next, then the counter tail; counters survive
  // longest because the status page is built from them.
  snap = MakeSnapshot();
  const int dropped = snap.TrimToBudget(64);
  EXPECT_EQ(dropped, 4);
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(snap.gauges.empty());
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "cache.hits");
  EXPECT_LE(snap.EncodedBytes(), 64u);

  // Budget smaller than the empty frame: everything goes, frame still sends.
  snap = MakeSnapshot();
  EXPECT_EQ(snap.TrimToBudget(0), 5);
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(MetricsSnapshotTest, MergeSumsByNameAndPassesThroughSingletons) {
  MetricsSnapshot a = MakeSnapshot();
  MetricsSnapshot b;
  b.captured_at_ns = 99999;
  b.counters = {{"pull.requests", 5}, {"task.created", 8}};
  b.gauges = {{"queue.ready", 4}};
  HistogramCell cell;
  cell.name = "pull.batch_size";
  cell.buckets = {1, 1};  // shorter vector than a's: merge must widen, not drop
  cell.count = 2;
  cell.sum = 3;
  b.histograms.push_back(std::move(cell));

  a.Merge(b);
  EXPECT_EQ(a.captured_at_ns, 99999);
  EXPECT_EQ(a.Value("task.created"), 50);
  EXPECT_EQ(a.Value("pull.requests"), 5);   // only in b: passes through
  EXPECT_EQ(a.Value("cache.hits"), 7);      // only in a: unchanged
  EXPECT_EQ(a.Value("queue.ready"), 7);
  EXPECT_EQ(a.Value("store.depth"), 9);
  ASSERT_EQ(a.histograms.size(), 1u);
  EXPECT_EQ(a.histograms[0].buckets, (std::vector<int64_t>{3, 2, 0, 1}));
  EXPECT_EQ(a.histograms[0].count, 6);
  EXPECT_EQ(a.histograms[0].sum, 15);
  // Merged scalar tables stay sorted (the merge-join and renderers rely on it).
  for (size_t i = 1; i < a.counters.size(); ++i) {
    EXPECT_LT(a.counters[i - 1].first, a.counters[i].first);
  }
}

TEST(MetricsNameTest, SanitizeMapsOntoPrometheusAlphabet) {
  EXPECT_EQ(SanitizeMetricName("task.created"), "task_created");
  EXPECT_EQ(SanitizeMetricName("util.cpu_pct_x100"), "util_cpu_pct_x100");
  EXPECT_EQ(SanitizeMetricName("already_legal:name"), "already_legal:name");
  EXPECT_EQ(SanitizeMetricName("weird metric!"), "weird_metric_");
  EXPECT_EQ(SanitizeMetricName("2fast"), "_2fast");
  EXPECT_EQ(SanitizeMetricName(""), "_");
}

TEST(MetricsEnabledTest, EnvOverridesConfigDefault) {
  const char* saved = std::getenv("GMINER_METRICS");
  const std::string restore = saved != nullptr ? saved : "";

  ::unsetenv("GMINER_METRICS");
  EXPECT_TRUE(MetricsEnabled(true));
  EXPECT_FALSE(MetricsEnabled(false));

  ::setenv("GMINER_METRICS", "off", 1);
  EXPECT_FALSE(MetricsEnabled(true));
  ::setenv("GMINER_METRICS", "0", 1);
  EXPECT_FALSE(MetricsEnabled(true));
  ::setenv("GMINER_METRICS", "false", 1);
  EXPECT_FALSE(MetricsEnabled(true));

  ::setenv("GMINER_METRICS", "on", 1);
  EXPECT_TRUE(MetricsEnabled(false));
  ::setenv("GMINER_METRICS", "1", 1);
  EXPECT_TRUE(MetricsEnabled(false));
  ::setenv("GMINER_METRICS", "true", 1);
  EXPECT_TRUE(MetricsEnabled(false));

  // Unrecognized values keep the config default rather than guessing.
  ::setenv("GMINER_METRICS", "maybe", 1);
  EXPECT_TRUE(MetricsEnabled(true));
  EXPECT_FALSE(MetricsEnabled(false));

  if (saved != nullptr) {
    ::setenv("GMINER_METRICS", restore.c_str(), 1);
  } else {
    ::unsetenv("GMINER_METRICS");
  }
}

TEST(MetricsExpositionTest, PrometheusCounterAndGaugeFamilies) {
  ClusterMetrics cm(2, 8);
  cm.SetPhase("running");

  MetricsSnapshot s0;
  s0.captured_at_ns = 100;
  s0.counters = {{"task.created", 42}};
  s0.gauges = {{"queue.ready", 5}};
  cm.RecordWorkerSnapshot(0, std::move(s0));

  MetricsSnapshot s1;
  s1.captured_at_ns = 90;  // per-worker watermark: fine for a fresh ring
  s1.counters = {{"task.created", 7}};
  cm.RecordWorkerSnapshot(1, std::move(s1));

  const std::string text = cm.RenderPrometheus();
  EXPECT_NE(text.find("gminer_job_phase{phase=\"running\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gminer_job_uptime_seconds gauge\n"), std::string::npos);
  EXPECT_NE(text.find("gminer_worker_up{worker=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("gminer_worker_up{worker=\"1\"} 1\n"), std::string::npos);
  // One TYPE header per family, then one sample per worker, dotted names
  // mapped onto the exposition alphabet.
  EXPECT_NE(text.find("# TYPE gminer_task_created counter\n"
                      "gminer_task_created{worker=\"0\"} 42\n"
                      "gminer_task_created{worker=\"1\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gminer_queue_ready gauge\n"
                      "gminer_queue_ready{worker=\"0\"} 5\n"),
            std::string::npos);

  cm.MarkDead(1);
  const std::string after = cm.RenderPrometheus();
  EXPECT_NE(after.find("gminer_worker_up{worker=\"1\"} 0\n"), std::string::npos);
}

TEST(MetricsExpositionTest, PrometheusHistogramIsCumulativeWithPowerOfTwoBounds) {
  ClusterMetrics cm(1, 8);
  MetricsSnapshot snap;
  snap.captured_at_ns = 100;
  HistogramCell cell;
  cell.name = "pull.batch_size";
  cell.buckets = {2, 1, 0, 1};
  cell.count = 4;
  cell.sum = 10;
  snap.histograms.push_back(std::move(cell));
  cm.RecordWorkerSnapshot(0, std::move(snap));

  const std::string text = cm.RenderPrometheus();
  // Bucket b counts [2^b, 2^(b+1)), so le is the next power of two and the
  // series is cumulative, capped by the +Inf bucket == _count.
  EXPECT_NE(text.find("# TYPE gminer_pull_batch_size histogram\n"
                      "gminer_pull_batch_size_bucket{worker=\"0\",le=\"2\"} 2\n"
                      "gminer_pull_batch_size_bucket{worker=\"0\",le=\"4\"} 3\n"
                      "gminer_pull_batch_size_bucket{worker=\"0\",le=\"8\"} 3\n"
                      "gminer_pull_batch_size_bucket{worker=\"0\",le=\"16\"} 4\n"
                      "gminer_pull_batch_size_bucket{worker=\"0\",le=\"+Inf\"} 4\n"
                      "gminer_pull_batch_size_sum{worker=\"0\"} 10\n"
                      "gminer_pull_batch_size_count{worker=\"0\"} 4\n"),
            std::string::npos);
}

TEST(MetricsExpositionTest, StaleOrDuplicateFramesAreDropped) {
  ClusterMetrics cm(1, 8);
  MetricsSnapshot fresh;
  fresh.captured_at_ns = 100;
  fresh.counters = {{"task.created", 10}};
  cm.RecordWorkerSnapshot(0, std::move(fresh));

  // The simulated network can duplicate or reorder kMetricsReport frames:
  // a frame at or before the per-worker watermark must not regress the series.
  MetricsSnapshot dup;
  dup.captured_at_ns = 100;
  dup.counters = {{"task.created", 999}};
  cm.RecordWorkerSnapshot(0, std::move(dup));
  MetricsSnapshot stale;
  stale.captured_at_ns = 50;
  stale.counters = {{"task.created", 999}};
  cm.RecordWorkerSnapshot(0, std::move(stale));

  EXPECT_EQ(cm.ClusterSnapshot().Value("task.created"), 10);
  const std::string text = cm.RenderPrometheus();
  EXPECT_NE(text.find("gminer_task_created{worker=\"0\"} 10\n"), std::string::npos);
  EXPECT_EQ(text.find("999"), std::string::npos);

  // Out-of-range worker ids (corrupt frames) are ignored outright.
  MetricsSnapshot bogus;
  bogus.captured_at_ns = 200;
  bogus.counters = {{"task.created", 999}};
  cm.RecordWorkerSnapshot(7, std::move(bogus));
  EXPECT_EQ(cm.ClusterSnapshot().Value("task.created"), 10);
}

TEST(MetricsExpositionTest, MasterRegistryRendersUnderMasterLabel) {
  ClusterMetrics cm(1, 8);
  MetricsRegistry master;
  master.GetGauge("mem.current_bytes")->Set(123);
  master.GetCounter("metrics.dropped")->Add(2);
  cm.set_master_registry(&master);

  const std::string text = cm.RenderPrometheus();
  EXPECT_NE(text.find("gminer_mem_current_bytes{worker=\"master\"} 123\n"),
            std::string::npos);
  EXPECT_NE(text.find("gminer_metrics_dropped{worker=\"master\"} 2\n"),
            std::string::npos);

  // ClusterSnapshot folds the master registry into the merged view.
  EXPECT_EQ(cm.ClusterSnapshot().Value("mem.current_bytes"), 123);
}

}  // namespace
}  // namespace gminer
