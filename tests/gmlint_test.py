#!/usr/bin/env python3
"""End-to-end tests for gmlint (scripts/gmlint/).

Runs the CLI as a subprocess against the known-good / known-bad fixture
trees under tests/fixtures/gmlint/ and asserts on exit codes and emitted
findings. Registered with ctest; also runnable directly:

    python3 tests/gmlint_test.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BAD = "tests/fixtures/gmlint/bad"
GOOD = "tests/fixtures/gmlint/good"


def run_gmlint(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [os.path.join(REPO_ROOT, "scripts"),
                    env.get("PYTHONPATH", "")] if p)
    # Fixtures are only guaranteed against the reference frontend; the
    # clang adapter (when present in CI) is exercised on the real tree.
    env["GMLINT_FRONTEND"] = "python"
    return subprocess.run(
        [sys.executable, "-m", "gmlint", "--repo-root", REPO_ROOT, *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=120)


class BadFixtures(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.proc = run_gmlint("--src-prefix", BAD)

    def test_exit_code_signals_findings(self):
        self.assertEqual(self.proc.returncode, 1, self.proc.stderr)

    def test_every_pass_fires(self):
        for check in ("serialize-symmetry", "lock-order",
                      "blocking-under-lock", "protocol", "span-balance",
                      "metrics-registration"):
            self.assertIn(f"[gmlint/{check}]", self.proc.stdout,
                          f"{check} produced no finding on the bad fixtures")

    def test_specific_findings(self):
        out = self.proc.stdout
        # serialize-symmetry: swapped field order surfaces as type mismatch
        self.assertIn("writes scalar<uint32_t>", out)
        self.assertIn("reads scalar<uint64_t>", out)
        self.assertIn("has no matching Deserialize", out)
        self.assertIn("never patches", out)
        # lock-order: the witness names both edges of the cycle
        self.assertIn("Pair::a_ -> Pair::b_", out)
        self.assertIn("Pair::b_ -> Pair::a_", out)
        # blocking-under-lock: direct and through-helper sites
        self.assertIn("while holding {Sender::mutex_}", out)
        self.assertIn("calls Sender::SendReport", out)
        # protocol: all three hole kinds
        self.assertIn("kDead has no Send site", out)
        self.assertIn("kUnhandled has no `case` handler", out)
        self.assertIn("never reads it", out)
        # span-balance: early return and fall-off-the-end leak
        self.assertIn("returns without closing trace span", out)
        self.assertIn("never closed before the function ends", out)
        # metrics-registration: aliasing and naming-convention findings
        self.assertIn('metric "pull.requests" is also registered at', out)
        self.assertIn("does not match the registry", out)

    def test_finding_format(self):
        for line in self.proc.stdout.splitlines():
            self.assertRegex(line, r"^tests/fixtures/gmlint/bad/\S+\.cc:\d+: "
                                   r"\[gmlint/[a-z-]+\] ")


class GoodFixtures(unittest.TestCase):
    def test_clean_tree_exits_zero(self):
        proc = run_gmlint("--src-prefix", GOOD)
        self.assertEqual(proc.returncode, 0,
                         f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
        self.assertEqual(proc.stdout.strip(), "")


class CheckSelection(unittest.TestCase):
    def test_single_check_filter(self):
        proc = run_gmlint("--src-prefix", BAD, "--checks", "lock-order")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[gmlint/lock-order]", proc.stdout)
        for other in ("serialize-symmetry", "blocking-under-lock",
                      "protocol", "span-balance", "metrics-registration"):
            self.assertNotIn(f"[gmlint/{other}]", proc.stdout)

    def test_unknown_check_is_usage_error(self):
        proc = run_gmlint("--checks", "no-such-check")
        self.assertEqual(proc.returncode, 2)
        self.assertIn("unknown check", proc.stderr)

    def test_list_checks(self):
        proc = run_gmlint("--list-checks")
        self.assertEqual(proc.returncode, 0)
        for check in ("serialize-symmetry", "lock-order",
                      "blocking-under-lock", "protocol", "span-balance",
                      "metrics-registration"):
            self.assertIn(check, proc.stdout)


class Baseline(unittest.TestCase):
    def test_update_then_apply_silences_findings(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            proc = run_gmlint("--src-prefix", BAD, "--baseline", baseline,
                              "--update-baseline")
            self.assertEqual(proc.returncode, 0, proc.stderr)
            with open(baseline) as f:
                data = json.load(f)
            self.assertGreater(len(data["fingerprints"]), 0)

            proc = run_gmlint("--src-prefix", BAD, "--baseline", baseline)
            self.assertEqual(proc.returncode, 0,
                             f"baselined findings resurfaced:\n{proc.stdout}")

    def test_new_finding_escapes_stale_baseline(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            with open(baseline, "w") as f:
                json.dump({"fingerprints": []}, f)
            proc = run_gmlint("--src-prefix", BAD, "--baseline", baseline)
            self.assertEqual(proc.returncode, 1)


class ChangedFiles(unittest.TestCase):
    def test_restricts_reporting_to_listed_files(self):
        proc = run_gmlint("--src-prefix", BAD, "--changed-files",
                          f"{BAD}/span_leak.cc")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("[gmlint/span-balance]", proc.stdout)
        self.assertNotIn("[gmlint/lock-order]", proc.stdout)
        self.assertNotIn("lock_cycle.cc", proc.stdout)


class RealTree(unittest.TestCase):
    def test_src_is_gmlint_clean(self):
        proc = run_gmlint()
        self.assertEqual(proc.returncode, 0,
                         f"src/ has gmlint findings:\n{proc.stdout}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
