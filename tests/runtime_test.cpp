// End-to-end tests of the G-Miner runtime: full jobs on the in-process
// cluster, results compared against the serial oracles, across worker counts,
// partitioners, LSH on/off, and stealing on/off.
#include <gtest/gtest.h>

#include "apps/tc.h"
#include "baselines/serial.h"
#include "core/cluster.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

TEST(RuntimeTest, TriangleCountSmallGraph) {
  const Graph g = SmallTestGraph();
  TriangleCountJob job;
  Cluster cluster(FastTestConfig());
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), SerialTriangleCount(g));
  EXPECT_EQ(SerialTriangleCount(g), 5u);  // C(4,3)=4 in the clique + {3,4,5}
}

TEST(RuntimeTest, TriangleCountRandomGraphMatchesSerial) {
  const Graph g = RandomTestGraph(500, 12.0, 11);
  const uint64_t expected = SerialTriangleCount(g);
  TriangleCountJob job;
  Cluster cluster(FastTestConfig());
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected);
}

// Every combination of worker count / partitioner / LSH / stealing must
// produce the same answer.
struct RuntimeConfigCase {
  int workers;
  int threads;
  PartitionStrategy partition;
  bool lsh;
  bool stealing;
};

class RuntimeConfigTest : public ::testing::TestWithParam<RuntimeConfigCase> {};

TEST_P(RuntimeConfigTest, TriangleCountInvariant) {
  const RuntimeConfigCase& c = GetParam();
  const Graph g = RandomTestGraph(300, 10.0, 23);
  const uint64_t expected = SerialTriangleCount(g);
  JobConfig config = FastTestConfig(c.workers, c.threads);
  config.partition = c.partition;
  config.enable_lsh = c.lsh;
  config.enable_stealing = c.stealing;
  TriangleCountJob job;
  Cluster cluster(config);
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected);
  EXPECT_EQ(result.totals.tasks_created, result.totals.tasks_completed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RuntimeConfigTest,
    ::testing::Values(RuntimeConfigCase{1, 1, PartitionStrategy::kHash, true, false},
                      RuntimeConfigCase{1, 4, PartitionStrategy::kBdg, true, true},
                      RuntimeConfigCase{2, 2, PartitionStrategy::kHash, false, false},
                      RuntimeConfigCase{3, 2, PartitionStrategy::kBdg, true, true},
                      RuntimeConfigCase{4, 1, PartitionStrategy::kHash, true, true},
                      RuntimeConfigCase{4, 3, PartitionStrategy::kBdg, false, true},
                      RuntimeConfigCase{7, 2, PartitionStrategy::kHash, true, false}));

}  // namespace
}  // namespace gminer
