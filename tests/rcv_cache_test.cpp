// Tests for the Reference Counting Vertex Cache (§7): hit/miss accounting,
// the lazy zero-ref reclaim model, eviction safety, and retriever
// backpressure.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/rcv_cache.h"

namespace gminer {
namespace {

VertexRecord MakeRecord(VertexId id) {
  VertexRecord r;
  r.id = id;
  r.adj = {id + 1, id + 2};
  return r;
}

TEST(RcvCacheTest, MissThenHit) {
  WorkerCounters counters;
  RcvCache cache(8, &counters, nullptr);
  // Misses are classified by the candidate retriever (it alone knows whether
  // a pull is already in flight); the cache only records hits.
  EXPECT_FALSE(cache.AddRefIfPresent(1));
  EXPECT_EQ(counters.cache_hits.load(), 0);
  cache.Insert(MakeRecord(1), 1);
  EXPECT_TRUE(cache.AddRefIfPresent(1));
  EXPECT_EQ(counters.cache_hits.load(), 1);
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(1)->id, 1u);
}

TEST(RcvCacheTest, ReferencedEntriesSurviveEvictionPressure) {
  RcvCache cache(4, nullptr, nullptr);
  cache.Insert(MakeRecord(1), 1);  // referenced
  cache.Insert(MakeRecord(2), 0);  // reclaimable
  cache.Insert(MakeRecord(3), 0);
  cache.Insert(MakeRecord(4), 0);
  // Over capacity: must evict zero-ref entries, never vertex 1.
  cache.Insert(MakeRecord(5), 1);
  cache.Insert(MakeRecord(6), 1);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(5), nullptr);
  EXPECT_NE(cache.Get(6), nullptr);
  // At least one of the reclaimables was evicted to make room.
  const int survivors = (cache.Get(2) != nullptr) + (cache.Get(3) != nullptr) +
                        (cache.Get(4) != nullptr);
  EXPECT_LT(survivors, 3);
}

TEST(RcvCacheTest, LazyModelKeepsZeroRefUntilPressure) {
  RcvCache cache(8, nullptr, nullptr);
  cache.Insert(MakeRecord(1), 1);
  cache.Release(1);  // refs -> 0, but the lazy model keeps it resident
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_TRUE(cache.AddRefIfPresent(1)) << "zero-ref entry should be revivable";
}

TEST(RcvCacheTest, DuplicateInsertMergesReferences) {
  RcvCache cache(8, nullptr, nullptr);
  cache.Insert(MakeRecord(1), 1);
  cache.Insert(MakeRecord(1), 2);  // duplicate response path
  cache.Release(1);
  cache.Release(1);
  cache.Release(1);  // all three refs released without underflow
  EXPECT_NE(cache.Get(1), nullptr);
}

TEST(RcvCacheTest, EvictionOrderIsOldestReclaimedFirst) {
  RcvCache cache(2, nullptr, nullptr);
  cache.Insert(MakeRecord(1), 0);
  cache.Insert(MakeRecord(2), 0);
  cache.Insert(MakeRecord(3), 0);  // evicts 1 (oldest reclaimable)
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
}

TEST(RcvCacheTest, MemoryAccounting) {
  MemoryTracker memory;
  {
    RcvCache cache(4, nullptr, &memory);
    cache.Insert(MakeRecord(1), 0);
    cache.Insert(MakeRecord(2), 0);
    EXPECT_GT(memory.current(), 0);
    cache.Insert(MakeRecord(3), 0);
    cache.Insert(MakeRecord(4), 0);
    cache.Insert(MakeRecord(5), 0);  // eviction must release bytes
    EXPECT_EQ(cache.size(), 4u);
  }
  EXPECT_EQ(memory.current(), 0) << "cache destructor must release accounted bytes";
}

TEST(RcvCacheTest, WaitBelowCapacityBlocksUntilRelease) {
  RcvCache cache(2, nullptr, nullptr);
  cache.Insert(MakeRecord(1), 1);
  cache.Insert(MakeRecord(2), 1);  // full, everything referenced
  std::atomic<bool> proceeded{false};
  std::thread retriever([&] {
    EXPECT_TRUE(cache.WaitBelowCapacity());
    proceeded = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(proceeded.load()) << "retriever should sleep while cache is full & referenced";
  cache.Release(1);  // a task finished its round
  retriever.join();
  EXPECT_TRUE(proceeded.load());
}

TEST(RcvCacheTest, ShutdownWakesWaiters) {
  RcvCache cache(1, nullptr, nullptr);
  cache.Insert(MakeRecord(1), 1);
  std::thread retriever([&] { EXPECT_FALSE(cache.WaitBelowCapacity()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cache.Shutdown();
  retriever.join();
}

TEST(RcvCacheDeathTest, ReleaseWithoutRefAborts) {
  RcvCache cache(4, nullptr, nullptr);
  cache.Insert(MakeRecord(1), 1);
  cache.Release(1);
  EXPECT_DEATH(cache.Release(1), "double release");
}

}  // namespace
}  // namespace gminer
