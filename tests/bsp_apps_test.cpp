// Tests for the classic vertex-centric programs on the BSP engine: PageRank
// against a serial power-iteration oracle and Hash-Min connected components
// against a union-find oracle.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/bsp_apps.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

// Serial power iteration with exactly the engine's update rule.
std::vector<double> OraclePageRank(const Graph& g, int iterations) {
  const double n = static_cast<double>(g.num_vertices());
  constexpr double kDamping = 0.85;
  std::vector<double> rank(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    rank[v] = g.degree(v) == 0 ? (1.0 - kDamping) / n : 1.0 / n;
  }
  for (int it = 1; it <= iterations; ++it) {
    std::vector<double> next(g.num_vertices(), 0.0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.degree(v) == 0) {
        next[v] = rank[v];
        continue;
      }
      double sum = 0.0;
      for (const VertexId u : g.neighbors(v)) {
        if (g.degree(u) > 0) {
          sum += rank[u] / static_cast<double>(g.degree(u));
        }
      }
      next[v] = (1.0 - kDamping) / n + kDamping * sum;
    }
    rank = std::move(next);
  }
  return rank;
}

std::vector<VertexId> OracleComponents(const Graph& g) {
  std::vector<VertexId> parent(g.num_vertices());
  std::iota(parent.begin(), parent.end(), 0);
  const std::function<VertexId(VertexId)> find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      const VertexId a = find(v);
      const VertexId b = find(u);
      if (a != b) {
        parent[std::max(a, b)] = std::min(a, b);
      }
    }
  }
  std::vector<VertexId> comp(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    comp[v] = find(v);
  }
  // Normalize: representative = minimum member, which is what Hash-Min
  // converges to as well.
  return comp;
}

class BspClassicTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BspClassicTest, PageRankMatchesPowerIteration) {
  const Graph g = RandomTestGraph(400, 6.0, GetParam());
  constexpr int kIterations = 12;
  auto app = MakeBspPageRank(g.num_vertices(), kIterations);
  const BspResult r = RunBsp(g, *app, FastTestConfig());
  ASSERT_EQ(r.status, JobStatus::kOk);
  const auto oracle = OraclePageRank(g, kIterations);
  double total = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(app->ranks()[v], oracle[v], 1e-9) << "vertex " << v;
    total += app->ranks()[v];
  }
  EXPECT_GT(total, 0.5);  // most mass retained (dangling mass dropped)
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST_P(BspClassicTest, ConnectedComponentsMatchUnionFind) {
  Rng rng(GetParam());
  // Disconnected graph: several communities with no inter edges.
  const Graph g = GenerateCommunityGraph(8, 40, 0.05, /*inter_edges=*/0, rng);
  auto app = MakeBspConnectedComponents(g.num_vertices());
  const BspResult r = RunBsp(g, *app, FastTestConfig());
  ASSERT_EQ(r.status, JobStatus::kOk);
  const auto oracle = OracleComponents(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(app->components()[v], oracle[v]) << "vertex " << v;
  }
}

TEST_P(BspClassicTest, ConnectedComponentsOnConnectedGraph) {
  Rng rng(GetParam());
  const Graph g = GenerateBarabasiAlbert(500, 3, rng);  // connected by construction
  auto app = MakeBspConnectedComponents(g.num_vertices());
  const BspResult r = RunBsp(g, *app, FastTestConfig());
  ASSERT_EQ(r.status, JobStatus::kOk);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(app->components()[v], 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BspClassicTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace gminer
