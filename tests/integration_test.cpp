// Cross-module integration tests: task stealing under skew, disk spill under
// memory pressure, LSH cache-hit benefit, checkpoint/recovery (fault
// tolerance), budget enforcement in the G-Miner runtime, and utilization
// sampling of a live job.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <thread>

#include "apps/gm.h"
#include "apps/mcf.h"
#include "apps/tc.h"
#include "baselines/serial.h"
#include "core/cluster.h"
#include "graph/builder.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

// A graph whose heavy region lands on few workers: one dense cluster in a
// contiguous id range plus a sparse remainder. With BDG partitioning the
// dense block stays together, so other workers idle and must steal.
Graph SkewedGraph(uint64_t seed) {
  GraphBuilder b(1200);
  Rng rng(seed);
  for (int e = 0; e < 2500; ++e) {  // dense core on ids 0..99
    b.AddEdge(rng.NextUint32(100), rng.NextUint32(100));
  }
  for (int e = 0; e < 2000; ++e) {  // sparse remainder
    b.AddEdge(100 + rng.NextUint32(1100), 100 + rng.NextUint32(1100));
  }
  for (VertexId v = 0; v < 1199; v += 97) {  // weak connectivity
    b.AddEdge(v, v + 1);
  }
  return b.Build();
}

// Seed-placement skew for the migration test: every seed of a deep graph-
// matching job lives in one contiguous id block (one worker under BDG), while
// the frontier candidates are spread across the whole graph. The seed-owning
// worker accumulates a queue of low-locality multi-round tasks; everyone else
// idles and must steal.
TEST(StealingIntegrationTest, TasksMigrateUnderSkew) {
  // Seeds (pattern-root labels) live only in a dense connected core (ids
  // 0..99) that BDG keeps on one worker; the matching frontier spreads over
  // the whole graph, so the queued tasks have low locality and are eligible
  // for migration while every other worker idles.
  Rng rng(31);
  GraphBuilder b(2000);
  for (int e = 0; e < 1500; ++e) {  // connected dense core
    b.AddEdge(rng.NextUint32(100), rng.NextUint32(100));
  }
  for (VertexId v = 0; v < 100; ++v) {  // spokes into the sparse remainder
    for (int k = 0; k < 8; ++k) {
      b.AddEdge(v, 100 + rng.NextUint32(1900));
    }
  }
  for (int e = 0; e < 6000; ++e) {  // sparse remainder
    b.AddEdge(100 + rng.NextUint32(1900), 100 + rng.NextUint32(1900));
  }
  std::vector<Label> labels(2000);
  for (VertexId v = 0; v < 2000; ++v) {
    labels[v] = v < 100 ? 0 : 1 + rng.NextUint32(3);
  }
  b.SetLabels(std::move(labels));
  const Graph g = b.Build();
  const TreePattern pattern = TreePattern::Build({{0, -1}, {1, 0}, {2, 1}, {3, 2}});
  const uint64_t expected = SerialGraphMatch(g, pattern);

  JobConfig config = FastTestConfig(4, 2);
  config.enable_stealing = true;
  config.steal_batch = 4;
  config.pipeline_depth = 8;  // inactive tasks accumulate in the (stealable) store
  config.progress_interval_ms = 1;
  config.partition = PartitionStrategy::kBdg;
  GraphMatchJob job(pattern);
  Cluster cluster(config);
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(GraphMatchJob::MatchCount(result.final_aggregate), expected);
  EXPECT_GT(result.totals.tasks_stolen_in, 0) << "no task migration under skew";
  EXPECT_EQ(result.totals.tasks_stolen_in, result.totals.tasks_stolen_out);
}

TEST(StealingIntegrationTest, DisabledStealingStillCorrect) {
  const Graph g = SkewedGraph(3);
  JobConfig config = FastTestConfig(4, 2);
  config.enable_stealing = false;
  MaxCliqueJob job;
  Cluster cluster(config);
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(result.totals.tasks_stolen_in, 0);
  EXPECT_EQ(MaxCliqueJob::MaxCliqueSize(result.final_aggregate), SerialMaxClique(g));
}

TEST(StealingIntegrationTest, CostThresholdBlocksMigration) {
  // With Tc = 0 no task is cheap enough to migrate: the master issues
  // MIGRATE commands but victims answer No_Task, and nothing moves.
  const Graph g = SkewedGraph(3);
  JobConfig config = FastTestConfig(4, 2);
  config.enable_stealing = true;
  config.steal_cost_threshold = 0;  // Tc: nothing qualifies
  config.pipeline_depth = 8;
  MaxCliqueJob job;
  Cluster cluster(config);
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(result.totals.tasks_stolen_in, 0);
  EXPECT_EQ(MaxCliqueJob::MaxCliqueSize(result.final_aggregate), SerialMaxClique(g));
}

TEST(SpillIntegrationTest, TaskStoreSpillsAndResultStaysCorrect) {
  const Graph g = RandomTestGraph(2000, 8.0, 9);
  JobConfig config = FastTestConfig(2, 2);
  config.task_block_capacity = 16;  // tiny head block forces spilling
  config.task_buffer_batch = 64;
  TriangleCountJob job;
  Cluster cluster(config);
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_GT(result.totals.disk_bytes_written, 0) << "expected task-store spill";
  EXPECT_GT(result.totals.disk_bytes_read, 0);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), SerialTriangleCount(g));
}

TEST(LshIntegrationTest, LshImprovesCacheHitRate) {
  // Fig. 3 / Fig. 12's mechanism: tasks with common remote candidates should
  // dequeue near each other so pulled vertices are reused before eviction.
  // Workload with strong candidate sharing: many cliques whose member ids are
  // shuffled across the id space (so neither hash partitioning nor arrival
  // order has any clique locality, while same-clique tasks share most of
  // their candidate sets).
  Rng rng(13);
  constexpr VertexId kN = 1200;
  constexpr int kCliqueSize = 24;
  std::vector<VertexId> shuffled(kN);
  for (VertexId v = 0; v < kN; ++v) {
    shuffled[v] = v;
  }
  std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
  GraphBuilder builder(kN);
  for (VertexId base = 0; base + kCliqueSize <= kN; base += kCliqueSize) {
    for (int i = 0; i < kCliqueSize; ++i) {
      for (int j = i + 1; j < kCliqueSize; ++j) {
        builder.AddEdge(shuffled[base + i], shuffled[base + j]);
      }
    }
  }
  const Graph g = builder.Build();
  JobConfig config = FastTestConfig(4, 2);
  config.partition = PartitionStrategy::kHash;
  config.enable_stealing = false;  // migrations would confound the ablation
  config.rcv_cache_capacity = 64;  // small cache: ordering matters
  config.pipeline_depth = 4;       // keep tasks queued so ordering governs pops
  config.task_buffer_batch = 256;
  config.task_block_capacity = 512;
  config.lsh_bands = 8;  // 2-row bands: collisions at moderate similarity

  config.enable_lsh = true;
  TriangleCountJob job_on;
  const JobResult with_lsh = Cluster(config).Run(g, job_on);
  ASSERT_EQ(with_lsh.status, JobStatus::kOk);

  config.enable_lsh = false;
  TriangleCountJob job_off;
  const JobResult without_lsh = Cluster(config).Run(g, job_off);
  ASSERT_EQ(without_lsh.status, JobStatus::kOk);

  EXPECT_EQ(TriangleCountJob::Count(with_lsh.final_aggregate),
            TriangleCountJob::Count(without_lsh.final_aggregate));
  // The point of the LSH priority queue: fewer distinct remote fetches for
  // the same work (higher reuse of in-cache / in-flight vertices).
  EXPECT_LE(with_lsh.totals.pull_responses, without_lsh.totals.pull_responses)
      << "LSH ordering should not increase vertex pulling";
}

TEST(CheckpointTest, RecoveryReproducesResults) {
  const Graph g = RandomTestGraph(500, 10.0, 21);
  const uint64_t expected = SerialTriangleCount(g);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gminer_ckpt_test").string();
  std::filesystem::remove_all(dir);

  JobConfig config = FastTestConfig(3, 2);
  RunOptions checkpoint;
  checkpoint.checkpoint_dir = dir;
  TriangleCountJob job;
  const JobResult original = Cluster(config).Run(g, job, checkpoint);
  ASSERT_EQ(original.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(original.final_aggregate), expected);
  for (int w = 0; w < 3; ++w) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/worker_" + std::to_string(w) + ".tasks"));
  }

  // Recovery: re-run every worker's tasks from the checkpoint (the paper's
  // §7 recovery semantics) instead of regenerating seeds.
  RunOptions recover;
  recover.recover_dir = dir;
  TriangleCountJob job2;
  const JobResult recovered = Cluster(config).Run(g, job2, recover);
  ASSERT_EQ(recovered.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(recovered.final_aggregate), expected);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, DeadWorkerTasksAdoptedOnline) {
  // Online failover (kAdoptTasks): kill 1 of 4 workers mid-job; the master's
  // failure detector fences it, a survivor adopts its partition and re-runs
  // its checkpointed tasks, and the job completes with the exact result — no
  // restart, no manual checkpoint shuffling (task independence, §4.2/§7).
  const Graph g = RandomTestGraph(500, 10.0, 22);
  const uint64_t expected = SerialTriangleCount(g);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gminer_ckpt_failover").string();
  std::filesystem::remove_all(dir);

  JobConfig config = FastTestConfig(4, 1);
  config.enable_stealing = false;  // required by fault tolerance
  config.enable_fault_tolerance = true;
  config.heartbeat_timeout_ms = 100;
  config.pipeline_depth = 16;      // throttle: the job must outlast the kill
  config.rcv_cache_capacity = 64;  // steady pull traffic feeds the trigger
  RunOptions options;
  options.checkpoint_dir = dir;
  options.faults.seed = 77;
  FaultPlan::Kill kill;
  kill.worker = 2;
  kill.after_messages = 5;  // shortly after its seed checkpoint is written
  options.faults.kills.push_back(kill);
  TriangleCountJob job;
  const JobResult result = Cluster(config).Run(g, job, options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected);
  EXPECT_GE(result.totals.failovers, 1) << "a survivor must have adopted worker 2";
  EXPECT_GT(result.totals.tasks_adopted, 0) << "worker 2's checkpoint must be re-run";
  EXPECT_GT(result.totals.heartbeat_misses, 0);
  std::filesystem::remove_all(dir);
}

TEST(BudgetTest, GminerTimeoutCancelsCleanly) {
  Rng rng(5);
  const Graph g = GenerateBarabasiAlbert(3000, 24, rng);
  JobConfig config = FastTestConfig(2, 2);
  config.time_budget_seconds = 0.02;
  MaxCliqueJob job;
  Cluster cluster(config);
  const JobResult result = cluster.Run(g, job);
  EXPECT_EQ(result.status, JobStatus::kTimeout);
}

TEST(SimulatedNetworkTest, PipelineCorrectUnderTransmissionDelay) {
  // With the shared-link simulation on, pulls take wall time; the pipeline
  // must still complete and stay correct (results identical to instant-net).
  const Graph g = RandomTestGraph(600, 10.0, 33);
  const uint64_t expected = SerialTriangleCount(g);
  JobConfig config = FastTestConfig(3, 2);
  config.net_latency_us = 100;
  config.net_bandwidth_gbps = 0.2;
  TriangleCountJob job;
  Cluster cluster(config);
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected);
}

TEST(SamplerIntegrationTest, UtilizationTimelineCollected) {
  const Graph g = RandomTestGraph(1500, 25.0, 17);
  JobConfig config = FastTestConfig(3, 2);
  config.sample_utilization = true;
  config.sample_interval_ms = 5;
  MaxCliqueJob job;
  Cluster cluster(config);
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_FALSE(result.utilization.empty()) << "no samples collected";
}

TEST(OutputTest, WorkerOutputsAreCollected) {
  Rng rng(8);
  Graph g = GenerateBarabasiAlbert(200, 6, rng);
  g = WithPlantedAttributeGroups(g, 4, 5, 8, 0.85, rng);
  CdParams params;
  params.emit_outputs = true;
  CommunityJob job(params);
  Cluster cluster(FastTestConfig());
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  if (CommunityJob::CommunityCount(result.final_aggregate) > 0) {
    EXPECT_FALSE(result.outputs.empty());
  }
}

TEST(IsolationTest, ConcurrentClustersDoNotInterfere) {
  // Two independent clusters running different jobs simultaneously: no
  // shared state, no cross-talk, both exact. Catches accidental globals.
  const Graph g1 = RandomTestGraph(400, 8.0, 41);
  const Graph g2 = RandomTestGraph(500, 10.0, 42);
  const uint64_t expected1 = SerialTriangleCount(g1);
  const uint64_t expected2 = SerialMaxClique(g2);
  uint64_t got1 = 0;
  uint64_t got2 = 0;
  std::thread t1([&] {
    TriangleCountJob job;
    const JobResult r = Cluster(FastTestConfig(2, 2)).Run(g1, job);
    ASSERT_EQ(r.status, JobStatus::kOk);
    got1 = TriangleCountJob::Count(r.final_aggregate);
  });
  std::thread t2([&] {
    MaxCliqueJob job;
    const JobResult r = Cluster(FastTestConfig(3, 1)).Run(g2, job);
    ASSERT_EQ(r.status, JobStatus::kOk);
    got2 = MaxCliqueJob::MaxCliqueSize(r.final_aggregate);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(got1, expected1);
  EXPECT_EQ(got2, expected2);
}

TEST(AggregatorIntegrationTest, GlobalPruningPropagates) {
  // With a global max aggregator, at least some pruning information crosses
  // workers: total update rounds should stay bounded and the result exact.
  Rng rng(10);
  const Graph g = GenerateBarabasiAlbert(600, 14, rng);
  JobConfig config = FastTestConfig(4, 2);
  config.aggregator_interval_ms = 1;
  MaxCliqueJob job;
  Cluster cluster(config);
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(MaxCliqueJob::MaxCliqueSize(result.final_aggregate), SerialMaxClique(g));
}

}  // namespace
}  // namespace gminer
