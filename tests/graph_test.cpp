// Tests for the graph substrate: builder invariants, CSR queries, text I/O
// round trips, and property-style checks over every synthetic generator.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>

#include "common/rng.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

TEST(GraphBuilderTest, DedupesAndSymmetrizes) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // duplicate, reversed
  b.AddEdge(0, 1);  // duplicate
  b.AddEdge(2, 2);  // self loop dropped
  b.AddEdge(1, 3);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(GraphBuilderTest, AdjacencyIsSorted) {
  GraphBuilder b(6);
  b.AddEdge(3, 5);
  b.AddEdge(3, 1);
  b.AddEdge(3, 4);
  b.AddEdge(3, 0);
  const Graph g = b.Build();
  const auto adj = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(adj.begin(), adj.end()));
  EXPECT_EQ(adj.size(), 4u);
}

TEST(GraphBuilderTest, LabelsAndAttributesAttached) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.SetLabels({5, 6, 7});
  b.SetAttributes({{1, 2}, {3}, {}});
  const Graph g = b.Build();
  ASSERT_TRUE(g.has_labels());
  ASSERT_TRUE(g.has_attributes());
  EXPECT_EQ(g.label(1), 6u);
  EXPECT_EQ(g.attributes(0).size(), 2u);
  EXPECT_EQ(g.attributes(0)[1], 2u);
  EXPECT_TRUE(g.attributes(2).empty());
}

TEST(GraphIoTest, EdgeListRoundTrip) {
  const Graph g = SmallTestGraph();
  const std::string path = std::filesystem::temp_directory_path() / "gminer_io_test.el";
  SaveEdgeList(g, path);
  const Graph loaded = LoadEdgeList(path);
  ASSERT_EQ(loaded.num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = loaded.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
  std::filesystem::remove(path);
}

TEST(GraphIoTest, AdjacencyRoundTripWithLabelsAndAttributes) {
  Rng rng(3);
  Graph g = WithUniformLabels(SmallTestGraph(), 7, rng);
  g = WithUniformAttributes(g, 5, 10, rng);  // note: labels dropped by rebuild
  const std::string path = std::filesystem::temp_directory_path() / "gminer_io_test.adj";
  SaveAdjacency(g, path);
  const Graph loaded = LoadAdjacency(path);
  ASSERT_EQ(loaded.num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  ASSERT_EQ(loaded.has_attributes(), g.has_attributes());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.attributes(v);
    const auto b = loaded.attributes(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
  std::filesystem::remove(path);
}

// ---- Generator properties ----

struct GeneratorCase {
  const char* name;
  uint64_t seed;
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GeneratorCase> {
 protected:
  Graph Generate() const {
    Rng rng(GetParam().seed);
    const std::string name = GetParam().name;
    if (name == "er") {
      return GenerateErdosRenyi(400, 8.0, rng);
    }
    if (name == "ba") {
      return GenerateBarabasiAlbert(400, 4, rng);
    }
    if (name == "rmat") {
      return GenerateRMat(9, 6.0, rng);
    }
    return GenerateMultiComponent(16, 20, 0.05, rng);
  }
};

TEST_P(GeneratorPropertyTest, ValidStructure) {
  const Graph g = Generate();
  EXPECT_GT(g.num_vertices(), 0u);
  EXPECT_GT(g.num_edges(), 0u);
  uint64_t directed = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto adj = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(adj.begin(), adj.end()));
    EXPECT_TRUE(std::adjacent_find(adj.begin(), adj.end()) == adj.end()) << "dup neighbor";
    for (const VertexId u : adj) {
      EXPECT_NE(u, v) << "self loop";
      EXPECT_LT(u, g.num_vertices());
      // Symmetry.
      EXPECT_TRUE(g.HasEdge(u, v));
    }
    directed += adj.size();
  }
  EXPECT_EQ(directed, g.num_directed_edges());
}

TEST_P(GeneratorPropertyTest, DeterministicBySeed) {
  const Graph a = Generate();
  const Graph b = Generate();
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorPropertyTest,
                         ::testing::Values(GeneratorCase{"er", 1}, GeneratorCase{"er", 2},
                                           GeneratorCase{"ba", 1}, GeneratorCase{"ba", 2},
                                           GeneratorCase{"rmat", 1}, GeneratorCase{"rmat", 2},
                                           GeneratorCase{"mc", 1}, GeneratorCase{"mc", 2}),
                         [](const auto& info) {
                           return std::string(info.param.name) + "_" +
                                  std::to_string(info.param.seed);
                         });

TEST(GeneratorTest, LabelsUniform) {
  Rng rng(5);
  const Graph g = WithUniformLabels(RandomTestGraph(1000, 6.0, 4), 7, rng);
  ASSERT_TRUE(g.has_labels());
  std::set<Label> seen;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LT(g.label(v), 7u);
    seen.insert(g.label(v));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(GeneratorTest, PlantedAttributeGroupsShareValues) {
  Rng rng(6);
  const Graph base = RandomTestGraph(512, 6.0, 7);
  const Graph g = WithPlantedAttributeGroups(base, 8, 5, 10, 0.95, rng);
  ASSERT_TRUE(g.has_attributes());
  // Within one planted group, attribute agreement should be far above the
  // uniform baseline of 1/values_per_dim.
  const auto a0 = g.attributes(0);
  int agreements = 0;
  int comparisons = 0;
  for (VertexId v = 1; v < 60; ++v) {  // same group: ids 0..63
    const auto av = g.attributes(v);
    for (size_t d = 0; d < av.size(); ++d) {
      ++comparisons;
      if (av[d] == a0[d]) {
        ++agreements;
      }
    }
  }
  EXPECT_GT(static_cast<double>(agreements) / comparisons, 0.5);
}

TEST(GeneratorTest, ShufflePreservesStructure) {
  Rng rng(9);
  Graph g = GenerateCommunityGraph(6, 30, 0.2, 100, rng);
  g = WithUniformLabels(g, 5, rng);
  Rng shuffle_rng(10);
  const Graph s = ShuffleVertexIds(g, shuffle_rng);
  ASSERT_EQ(s.num_vertices(), g.num_vertices());
  EXPECT_EQ(s.num_edges(), g.num_edges());
  // Degree multiset and label histogram are invariants of relabeling.
  std::multiset<uint32_t> deg_g, deg_s;
  std::map<Label, int> lab_g, lab_s;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    deg_g.insert(g.degree(v));
    deg_s.insert(s.degree(v));
    ++lab_g[g.label(v)];
    ++lab_s[s.label(v)];
  }
  EXPECT_EQ(deg_g, deg_s);
  EXPECT_EQ(lab_g, lab_s);
  // Ids must no longer be community-contiguous: neighbors of vertex 0 in the
  // shuffled graph should span a wide id range.
  const auto adj = s.neighbors(0);
  if (adj.size() >= 4) {
    EXPECT_GT(adj.back() - adj.front(), s.num_vertices() / 8);
  }
}

TEST(GeneratorTest, DatasetFactoryShapes) {
  const Graph skitter = MakeDataset("skitter", 1.0, 42);
  const Graph orkut = MakeDataset("orkut", 1.0, 42);
  const Graph btc = MakeDataset("btc", 1.0, 42);
  const Graph tencent = MakeDataset("tencent", 1.0, 42);
  EXPECT_GT(orkut.avg_degree(), skitter.avg_degree());  // Orkut is the dense one
  EXPECT_LT(btc.avg_degree(), 8.0);                     // BTC is very sparse...
  EXPECT_GT(btc.max_degree(), 200u);                    // ...with an extreme hub
  EXPECT_TRUE(tencent.has_attributes());
}

}  // namespace
}  // namespace gminer
