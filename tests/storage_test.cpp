// Tests for the storage substrate: vertex records/tables and the spill-file
// primitives that back the task store and checkpoints.
#include <gtest/gtest.h>

#include <filesystem>

#include "partition/hash_partitioner.h"
#include "storage/spill_file.h"
#include "storage/vertex_record.h"
#include "storage/vertex_table.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

TEST(VertexRecordTest, SerializeRoundTrip) {
  VertexRecord r;
  r.id = 42;
  r.adj = {1, 5, 9};
  r.label = 3;
  r.attrs = {10, 20, 30, 40};
  OutArchive out;
  r.Serialize(out);
  InArchive in(out.TakeBuffer());
  const VertexRecord back = VertexRecord::Deserialize(in);
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.adj, r.adj);
  EXPECT_EQ(back.label, r.label);
  EXPECT_EQ(back.attrs, r.attrs);
  EXPECT_TRUE(in.AtEnd());
}

TEST(VertexTableTest, LoadsExactlyOwnedPartition) {
  const Graph g = RandomTestGraph(200, 5.0, 1);
  HashPartitioner p;
  const auto owner = p.Partition(g, 3);
  size_t total = 0;
  for (WorkerId w = 0; w < 3; ++w) {
    VertexTable table;
    table.LoadPartition(g, owner, w);
    total += table.size();
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (owner[v] == w) {
        const VertexRecord* r = table.Find(v);
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r->id, v);
        const auto adj = g.neighbors(v);
        EXPECT_TRUE(std::equal(r->adj.begin(), r->adj.end(), adj.begin(), adj.end()));
      } else {
        EXPECT_EQ(table.Find(v), nullptr);
      }
    }
    EXPECT_GT(table.byte_size(), 0);
  }
  EXPECT_EQ(total, g.num_vertices());
}

TEST(SpillFileTest, RoundTripAndDeletion) {
  const std::string dir = MakeSpillDir("", 0);
  const std::string path = dir + "/test_block.bin";
  std::vector<std::vector<uint8_t>> blobs = {{1, 2, 3}, {}, {255, 0, 128, 7}};
  const int64_t written = WriteSpillBlock(path, blobs);
  EXPECT_GT(written, 0);
  EXPECT_TRUE(std::filesystem::exists(path));
  int64_t read = 0;
  const auto back = ReadSpillBlock(path, &read);
  EXPECT_EQ(read, written);
  EXPECT_EQ(back, blobs);
  EXPECT_FALSE(std::filesystem::exists(path)) << "spill blocks are consumed on read";
  RemoveSpillDir(dir);
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(SpillFileTest, DistinctDirsPerWorker) {
  const std::string a = MakeSpillDir("", 1);
  const std::string b = MakeSpillDir("", 1);
  EXPECT_NE(a, b);
  RemoveSpillDir(a);
  RemoveSpillDir(b);
}

TEST(SpillFileTest, EmptyBlockRoundTrip) {
  const std::string dir = MakeSpillDir("", 2);
  const std::string path = dir + "/empty.bin";
  WriteSpillBlock(path, {});
  int64_t read = 0;
  EXPECT_TRUE(ReadSpillBlock(path, &read).empty());
  RemoveSpillDir(dir);
}

}  // namespace
}  // namespace gminer
