// End-to-end metrics endpoint test: runs a real cluster job with
// RunOptions::metrics_port = 0 (ephemeral bind on 127.0.0.1) and scrapes
// GET /metrics and GET /status over an actual TCP socket while the job is
// live — the acceptance path for the observability plane. Scrapes mid-job
// must show monotone non-decreasing task counters; /status must be a JSON
// document reflecting the live cluster.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/tc.h"
#include "baselines/serial.h"
#include "core/cluster.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

// Minimal blocking HTTP/1.0 client: one GET, read to EOF (the server sends
// Connection: close). Empty string on any failure — the caller treats that
// as "server already shut down".
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

// Sums every `<family>{worker="N"} <value>` sample in a Prometheus text body
// (skipping the "master" label and # comment lines).
int64_t SumFamily(const std::string& body, const std::string& family) {
  int64_t total = 0;
  const std::string needle = family + "{worker=\"";
  size_t at = 0;
  while ((at = body.find(needle, at)) != std::string::npos) {
    if (at != 0 && body[at - 1] != '\n') {  // samples start at line begin
      at += needle.size();
      continue;
    }
    const size_t label_end = body.find("} ", at);
    if (label_end == std::string::npos) {
      break;
    }
    if (body.compare(at + needle.size(), 7, "master\"") == 0) {
      at = label_end;
      continue;
    }
    total += std::strtoll(body.c_str() + label_end + 2, nullptr, 10);
    at = label_end;
  }
  return total;
}

class EndpointFixture {
 public:
  // Starts the job on a background thread and blocks until the endpoint is
  // listening. A TC job over a largish random graph with 1 pipeline thread
  // per worker runs long enough (hundreds of ms) to scrape repeatedly.
  EndpointFixture() {
    config_ = FastTestConfig(3, 1);
    config_.metrics_interval_ms = 2;  // snapshots reach the master quickly
    graph_ = RandomTestGraph(6000, 24.0, 77);
    runner_ = std::thread([this] {
      RunOptions options;
      options.metrics_port = 0;
      options.on_metrics_ready = [this](int port) {
        std::unique_lock<std::mutex> lock(mutex_);
        port_ = port;
        ready_.notify_all();
      };
      TriangleCountJob job;
      result_ = Cluster(config_).Run(graph_, job, options);
      std::unique_lock<std::mutex> lock(mutex_);
      finished_ = true;
      ready_.notify_all();  // wake a waiter even if the endpoint never bound
    });
  }

  ~EndpointFixture() {
    if (runner_.joinable()) {
      runner_.join();
    }
  }

  // Bound port, or -1 if the job finished without the endpoint coming up.
  int WaitForPort() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return port_ > 0 || finished_; });
    return port_ > 0 ? port_ : -1;
  }

  void Join() {
    if (runner_.joinable()) {
      runner_.join();
    }
  }

  const JobConfig& config() const { return config_; }
  const Graph& graph() const { return graph_; }
  const JobResult& result() const { return result_; }

 private:
  JobConfig config_;
  Graph graph_;
  JobResult result_;
  std::thread runner_;
  std::mutex mutex_;
  std::condition_variable ready_;
  int port_ = -1;
  bool finished_ = false;
};

TEST(MetricsEndpointTest, LiveScrapeShowsMonotoneCountersAndStatusJson) {
  EndpointFixture fixture;
  const int port = fixture.WaitForPort();
  ASSERT_GT(port, 0) << "metrics endpoint never came up";

  // Scrape /metrics repeatedly while the job runs. Every successful scrape
  // must be a well-formed exposition; task counters must never regress.
  std::vector<int64_t> created_series;
  std::string last_metrics_body;
  std::string status_body;
  for (int i = 0; i < 4000; ++i) {
    const std::string response = HttpGet(port, "/metrics");
    if (response.empty()) {
      break;  // job finished, server gone
    }
    ASSERT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    ASSERT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
              std::string::npos);
    const std::string body = Body(response);
    ASSERT_NE(body.find("# TYPE gminer_job_phase gauge"), std::string::npos);
    ASSERT_NE(body.find("gminer_worker_up{worker=\"0\"} 1"), std::string::npos);
    created_series.push_back(SumFamily(body, "gminer_task_created"));
    last_metrics_body = body;

    if (status_body.empty()) {
      const std::string status = HttpGet(port, "/status");
      if (!status.empty()) {
        EXPECT_NE(status.find("HTTP/1.0 200 OK"), std::string::npos);
        EXPECT_NE(status.find("Content-Type: application/json"), std::string::npos);
        status_body = Body(status);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  fixture.Join();

  // The endpoint was scrapeable mid-job, more than once, and the counters it
  // exposed only ever moved forward.
  ASSERT_GE(created_series.size(), 2u)
      << "job finished before /metrics could be scraped twice";
  for (size_t i = 1; i < created_series.size(); ++i) {
    EXPECT_GE(created_series[i], created_series[i - 1]);
  }
  EXPECT_GT(created_series.back(), 0);

  // The last scrape carries real per-worker series from heartbeat-piggybacked
  // snapshots: task, pull, cache and memory families.
  EXPECT_NE(last_metrics_body.find("# TYPE gminer_task_created counter"),
            std::string::npos);
  EXPECT_NE(last_metrics_body.find("# TYPE gminer_pull_requests counter"),
            std::string::npos);
  EXPECT_NE(last_metrics_body.find("# TYPE gminer_cache_hits counter"),
            std::string::npos);
  EXPECT_NE(last_metrics_body.find("gminer_mem_current_bytes{worker=\"master\"}"),
            std::string::npos);

  // /status was a JSON document describing the live cluster.
  ASSERT_FALSE(status_body.empty()) << "/status was never scraped successfully";
  EXPECT_EQ(status_body.front(), '{');
  EXPECT_EQ(status_body.back(), '}');
  EXPECT_NE(status_body.find("\"phase\":\""), std::string::npos);
  EXPECT_NE(status_body.find("\"num_workers\":3"), std::string::npos);
  EXPECT_NE(status_body.find("\"workers\":[{\"id\":0,"), std::string::npos);
  EXPECT_NE(status_body.find("\"queue\":{\"inactive\":"), std::string::npos);
  EXPECT_NE(status_body.find("\"cluster\":{\"tasks_created\":"), std::string::npos);

  // The job itself still computed the right answer with the endpoint live.
  EXPECT_EQ(TriangleCountJob::Count(fixture.result().final_aggregate),
            SerialTriangleCount(fixture.graph()));

  // The run's final report carries the registry state (schema v4).
  EXPECT_TRUE(fixture.result().metrics_enabled);
  ASSERT_EQ(fixture.result().final_metrics.size(), 3u);
  int64_t final_created = 0;
  for (const MetricsSnapshot& snap : fixture.result().final_metrics) {
    final_created += snap.Value("task.created");
  }
  EXPECT_GE(final_created, created_series.back());
  EXPECT_EQ(fixture.result().cluster_metrics.Value("task.created"), final_created);
}

TEST(MetricsEndpointTest, UnknownPathsAnd404) {
  EndpointFixture fixture;
  const int port = fixture.WaitForPort();
  ASSERT_GT(port, 0);

  const std::string root = HttpGet(port, "/");
  const std::string missing = HttpGet(port, "/nope");
  fixture.Join();

  // The server may have gone away between WaitForPort and the request under
  // extreme load; only assert on responses we actually got.
  if (!root.empty()) {
    EXPECT_NE(root.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(root.find("/metrics /status"), std::string::npos);
  }
  if (!missing.empty()) {
    EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos);
  }
}

}  // namespace
}  // namespace gminer
