// Protocol-level tests of a Worker driven directly over a real Network, with
// the test playing the master and the peer workers: pull-request serving,
// migration decline on ineligible tasks, and the shutdown handshake.
#include <gtest/gtest.h>

#include <thread>

#include "apps/tc.h"
#include "core/worker.h"
#include "partition/hash_partitioner.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

class WorkerProtocolTest : public ::testing::Test {
 protected:
  static constexpr int kWorkers = 2;
  static constexpr WorkerId kMaster = kWorkers;

  WorkerProtocolTest()
      : config_(FastTestConfig(kWorkers, 1)), net_(kWorkers + 1, {&c0_, &c1_, nullptr}) {}

  // Builds worker 0 over a small graph partitioned across two workers; the
  // test itself answers for worker 1 and the master.
  std::unique_ptr<Worker> MakeWorkerZero() {
    graph_ = SmallTestGraph();
    HashPartitioner partitioner;
    owner_ = std::make_shared<const std::vector<WorkerId>>(
        partitioner.Partition(graph_, kWorkers));
    auto worker = std::make_unique<Worker>(0, config_, &net_, &state_, &c0_, &job_);
    worker->LoadPartition(graph_, owner_);
    return worker;
  }

  // Consumes messages addressed to `endpoint` until one of `type` arrives.
  NetMessage AwaitMessage(WorkerId endpoint, MessageType type) {
    while (true) {
      auto msg = net_.Receive(endpoint);
      if (!msg.has_value()) {
        ADD_FAILURE() << "network closed while waiting for message type "
                      << static_cast<int>(type);
        return {};
      }
      if (msg->type == type) {
        return std::move(*msg);
      }
    }
  }

  void Shutdown(Worker& worker) {
    net_.Send(kMaster, 0, MessageType::kShutdown, {});
    // The worker acknowledges with its final aggregator partial, then keeps
    // listening (for re-sent shutdowns) until the network closes.
    AwaitMessage(kMaster, MessageType::kAggPartial);
    net_.Close();
    worker.Join();
  }

  JobConfig config_;
  WorkerCounters c0_;
  WorkerCounters c1_;
  Network net_;
  ClusterState state_;
  TriangleCountJob job_;
  Graph graph_;
  std::shared_ptr<const std::vector<WorkerId>> owner_;
};

TEST_F(WorkerProtocolTest, ServesPullRequestsFromItsPartition) {
  auto worker = MakeWorkerZero();
  worker->Start();
  AwaitMessage(kMaster, MessageType::kSeedDone);

  // Ask worker 0 for every vertex it owns, playing worker 1.
  std::vector<VertexId> owned;
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    if ((*owner_)[v] == 0) {
      owned.push_back(v);
    }
  }
  ASSERT_FALSE(owned.empty());
  constexpr uint64_t kRequestId = 7;
  OutArchive request;
  request.Write<uint64_t>(kRequestId);
  request.WriteVector(owned);
  net_.Send(1, 0, MessageType::kPullRequest, request.TakeBuffer());

  NetMessage response = AwaitMessage(1, MessageType::kPullResponse);
  InArchive in(std::move(response.payload));
  EXPECT_EQ(in.Read<uint64_t>(), kRequestId) << "response must echo the request id";
  const uint64_t count = in.Read<uint64_t>();
  ASSERT_EQ(count, owned.size());
  for (uint64_t i = 0; i < count; ++i) {
    const VertexRecord record = VertexRecord::ReadFlat(in);
    EXPECT_EQ((*owner_)[record.id], 0);
    const auto adj = graph_.neighbors(record.id);
    EXPECT_TRUE(std::equal(record.adj.begin(), record.adj.end(), adj.begin(), adj.end()));
  }
  EXPECT_TRUE(in.AtEnd()) << "flat response must carry exactly `count` blocks";
  Shutdown(*worker);
}

TEST_F(WorkerProtocolTest, PullRequestForNonLocalVerticesServesPartially) {
  auto worker = MakeWorkerZero();
  worker->Start();
  AwaitMessage(kMaster, MessageType::kSeedDone);

  // Mix one owned vertex with vertices worker 0 does not own: the worker must
  // serve what it has and skip the rest (a redirected pull can race an
  // adoption), never crash.
  std::vector<VertexId> mixed;
  size_t local = 0;
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    mixed.push_back(v);
    local += (*owner_)[v] == 0 ? 1 : 0;
  }
  ASSERT_GT(local, 0u);
  ASSERT_LT(local, mixed.size());
  OutArchive request;
  request.Write<uint64_t>(11);
  request.WriteVector(mixed);
  net_.Send(1, 0, MessageType::kPullRequest, request.TakeBuffer());

  NetMessage response = AwaitMessage(1, MessageType::kPullResponse);
  InArchive in(std::move(response.payload));
  EXPECT_EQ(in.Read<uint64_t>(), 11u);
  EXPECT_EQ(in.Read<uint64_t>(), local) << "only locally-owned vertices are served";
  Shutdown(*worker);
}

TEST_F(WorkerProtocolTest, MigrateCommandWithEmptyStoreYieldsNoTask) {
  auto worker = MakeWorkerZero();
  worker->Start();
  AwaitMessage(kMaster, MessageType::kSeedDone);
  // Drain: wait until the worker reports an empty store (its few seed tasks
  // finish immediately on this tiny graph).
  while (true) {
    NetMessage progress = AwaitMessage(kMaster, MessageType::kProgressReport);
    InArchive in(std::move(progress.payload));
    if (in.Read<uint64_t>() == 0) {
      break;
    }
  }
  OutArchive command;
  command.Write<WorkerId>(1);   // destination: worker 1
  command.Write<int32_t>(8);    // Tnum
  net_.Send(kMaster, 0, MessageType::kMigrateCommand, command.TakeBuffer());
  AwaitMessage(1, MessageType::kNoTask);
  Shutdown(*worker);
}

TEST_F(WorkerProtocolTest, ReportsProgressPeriodically) {
  auto worker = MakeWorkerZero();
  worker->Start();
  // At least three reports arrive without any prompting.
  for (int i = 0; i < 3; ++i) {
    NetMessage progress = AwaitMessage(kMaster, MessageType::kProgressReport);
    InArchive in(std::move(progress.payload));
    in.Read<uint64_t>();  // inactive
    in.Read<uint64_t>();  // ready
    in.Read<int64_t>();   // local tasks
    in.Read<uint8_t>();   // piggybacked seeding status
    EXPECT_TRUE(in.AtEnd());
  }
  Shutdown(*worker);
}

TEST_F(WorkerProtocolTest, FinalReportCarriesAggregatorPartial) {
  auto worker = MakeWorkerZero();
  worker->Start();
  AwaitMessage(kMaster, MessageType::kSeedDone);
  net_.Send(kMaster, 0, MessageType::kShutdown, {});
  NetMessage final_report = AwaitMessage(kMaster, MessageType::kAggPartial);
  InArchive in(std::move(final_report.payload));
  EXPECT_EQ(in.Read<uint8_t>(), 1) << "shutdown acknowledgement must be flagged final";
  in.Read<uint64_t>();  // the SumAggregator partial
  EXPECT_TRUE(in.AtEnd());
  net_.Close();
  worker->Join();
}

}  // namespace
}  // namespace gminer
