// Tests for the task-pipeline event tracing subsystem: ring overflow
// accounting, thread-scope install/restore, cross-thread merge, the latency
// histogram, stage summaries, the Chrome trace export, and an end-to-end
// traced run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "apps/tc.h"
#include "common/trace.h"
#include "core/cluster.h"
#include "graph/generators.h"
#include "metrics/histogram.h"
#include "metrics/trace_stats.h"

namespace gminer {
namespace {

TraceEvent MakeEvent(TraceEventType type, int64_t t_ns, int64_t dur_ns = 0, uint64_t id = 0,
                     int32_t arg = 0) {
  TraceEvent e;
  e.t_ns = t_ns;
  e.dur_ns = dur_ns;
  e.id = id;
  e.arg = arg;
  e.type = type;
  return e;
}

TEST(TraceRingTest, KeepsOldestDropsNewestAndCounts) {
  TraceRing ring(/*capacity=*/8, /*pid=*/0, "test");
  for (int i = 0; i < 20; ++i) {
    ring.Emit(MakeEvent(TraceEventType::kCacheHit, /*t_ns=*/i + 1));
  }
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.dropped(), 12);
  // Drop-newest: the surviving prefix is the first 8 events, in order.
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.event(i).t_ns, static_cast<int64_t>(i + 1));
  }
}

TEST(TraceRingTest, MetadataAccessors) {
  TraceRing ring(4, 3, "compute-1");
  EXPECT_EQ(ring.pid(), 3);
  EXPECT_EQ(ring.name(), "compute-1");
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0);
}

#ifndef GMINER_TRACE_DISABLED

TEST(TraceThreadScopeTest, NullTracerIsANoOp) {
  EXPECT_FALSE(TraceEnabled());
  EXPECT_EQ(TraceNowNs(), 0);
  {
    TraceThreadScope scope(nullptr, 0, "ignored");
    EXPECT_FALSE(TraceEnabled());
    TraceInstant(TraceEventType::kCacheHit);                       // must not crash
    TraceSpan(TraceEventType::kTaskCompute, 1, TraceNowNs());      // begin=0 -> skipped
  }
  EXPECT_FALSE(TraceEnabled());
}

TEST(TraceThreadScopeTest, InstallsAndRestoresNestedRings) {
  Tracer tracer(/*ring_capacity=*/16);
  {
    TraceThreadScope outer(&tracer, 0, "outer");
    EXPECT_TRUE(TraceEnabled());
    EXPECT_GT(TraceNowNs(), 0);
    TraceInstant(TraceEventType::kCacheHit, /*id=*/7);
    {
      TraceThreadScope inner(&tracer, 1, "inner");
      TraceInstant(TraceEventType::kCacheMiss, /*id=*/9);
    }
    // Back on the outer ring after the inner scope unwinds.
    TraceInstant(TraceEventType::kCacheEvict, /*id=*/0, /*arg=*/3);
  }
  EXPECT_FALSE(TraceEnabled());

  const Tracer::MergedTrace merged = tracer.Merge();
  ASSERT_EQ(merged.tracks.size(), 2u);
  ASSERT_EQ(merged.events.size(), 3u);
  EXPECT_EQ(merged.tracks[0].name, "outer");
  EXPECT_EQ(merged.tracks[0].end - merged.tracks[0].begin, 2u);
  EXPECT_EQ(merged.tracks[1].name, "inner");
  EXPECT_EQ(merged.tracks[1].end - merged.tracks[1].begin, 1u);
  EXPECT_EQ(merged.events[merged.tracks[1].begin].type, TraceEventType::kCacheMiss);
}

TEST(TracerTest, MergesRingsFromMultipleThreads) {
  Tracer tracer(/*ring_capacity=*/64);
  tracer.SetProcessName(0, "worker 0");
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 10;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      TraceThreadScope scope(&tracer, 0, "thread-" + std::to_string(t));
      for (int i = 0; i < kEventsPerThread; ++i) {
        TraceInstant(TraceEventType::kNetSend, static_cast<uint64_t>(t), i);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const Tracer::MergedTrace merged = tracer.Merge();
  EXPECT_EQ(merged.tracks.size(), static_cast<size_t>(kThreads));
  EXPECT_EQ(merged.events.size(), static_cast<size_t>(kThreads * kEventsPerThread));
  EXPECT_EQ(merged.dropped, 0);
  EXPECT_EQ(merged.process_names.at(0), "worker 0");
  for (const auto& track : merged.tracks) {
    EXPECT_EQ(track.end - track.begin, static_cast<size_t>(kEventsPerThread));
  }
}

TEST(TracerTest, MergeSurfacesDroppedEvents) {
  Tracer tracer(/*ring_capacity=*/4);
  {
    TraceThreadScope scope(&tracer, 0, "noisy");
    for (int i = 0; i < 10; ++i) {
      TraceInstant(TraceEventType::kCacheHit);
    }
  }
  const Tracer::MergedTrace merged = tracer.Merge();
  EXPECT_EQ(merged.events.size(), 4u);
  EXPECT_EQ(merged.dropped, 6);
}

#endif  // GMINER_TRACE_DISABLED

TEST(LatencyHistogramTest, PercentilesAreBoundedAndMonotone) {
  LatencyHistogram h;
  for (int64_t v = 1; v <= 1000; ++v) {
    h.Add(v * 1000);  // 1us .. 1ms
  }
  EXPECT_EQ(h.count(), 1000);
  EXPECT_EQ(h.max(), 1'000'000);
  const int64_t p50 = h.Percentile(0.50);
  const int64_t p95 = h.Percentile(0.95);
  const int64_t p99 = h.Percentile(0.99);
  EXPECT_GT(p50, 0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  // Log buckets are exact to within one power of two: the true p50 is 500us,
  // so the estimate must land in the surrounding [256us, 1024us) bucket span.
  EXPECT_GE(p50, 256'000);
  EXPECT_LT(p50, 1'024'000);
}

TEST(LatencyHistogramTest, SingleSampleClampsToMax) {
  LatencyHistogram h;
  h.Add(777);
  // 777 lands in the [512, 1024) bucket: any percentile interpolates inside
  // it and high percentiles clamp to the observed max instead of the bucket
  // upper bound.
  EXPECT_GE(h.Percentile(0.50), 512);
  EXPECT_LE(h.Percentile(0.50), 777);
  EXPECT_EQ(h.Percentile(0.99), 777);
  LatencyHistogram empty;
  EXPECT_EQ(empty.Percentile(0.99), 0);
}

TEST(TraceStatsTest, BuildsStagesInPipelineOrderAndSkipsEmpty) {
  std::vector<TraceEvent> events;
  // Two compute spans, one queue-wait span, one instant (must be ignored).
  events.push_back(MakeEvent(TraceEventType::kTaskCompute, 100, 2000, 1));
  events.push_back(MakeEvent(TraceEventType::kTaskCompute, 200, 4000, 2));
  events.push_back(MakeEvent(TraceEventType::kTaskQueueWait, 50, 1000, 1));
  events.push_back(MakeEvent(TraceEventType::kCacheHit, 60));
  const std::vector<StageLatency> stages = BuildStageLatencies(events);
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].stage, "queue_wait");
  EXPECT_EQ(stages[0].count, 1);
  EXPECT_EQ(stages[0].total_ns, 1000);
  EXPECT_EQ(stages[0].max_ns, 1000);
  EXPECT_EQ(stages[1].stage, "compute");
  EXPECT_EQ(stages[1].count, 2);
  EXPECT_EQ(stages[1].total_ns, 6000);
  EXPECT_EQ(stages[1].max_ns, 4000);
  EXPECT_LE(stages[1].p50_ns, stages[1].p99_ns);
  EXPECT_LE(stages[1].p99_ns, stages[1].max_ns);
}

TEST(TraceStatsTest, EmptyEventsYieldNoStages) {
  EXPECT_TRUE(BuildStageLatencies({}).empty());
}

TEST(ChromeTraceTest, WritesWellFormedEventFile) {
  Tracer::MergedTrace trace;
  trace.start_ns = 1'000'000;
  trace.process_names[0] = "worker 0";
  trace.events.push_back(MakeEvent(TraceEventType::kTaskCompute, 1'500'000, 250'000, 42, 1));
  trace.events.push_back(MakeEvent(TraceEventType::kCacheHit, 1'600'000, 0, 7));
  trace.tracks.push_back({0, "compute-0", 0, 2});

  const std::string path =
      (std::filesystem::temp_directory_path() / "gminer_trace_test.json").string();
  ASSERT_TRUE(WriteChromeTrace(trace, path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  std::filesystem::remove(path);

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Metadata rows name the process and the track.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"compute-0\""), std::string::npos);
  // The span: complete event at ts = (1.5ms - 1.0ms) = 500us, dur = 250us.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":500.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250.000"), std::string::npos);
  // The instant.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(ChromeTraceTest, FailsOnUnwritablePath) {
  Tracer::MergedTrace trace;
  EXPECT_FALSE(WriteChromeTrace(trace, "/nonexistent-dir/trace.json"));
}

TEST(TraceEventTypeTest, EveryTypeHasAName) {
  for (int i = 0; i < static_cast<int>(TraceEventType::kEventTypeCount); ++i) {
    const char* name = TraceEventTypeName(static_cast<TraceEventType>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u) << "type " << i;
  }
}

TEST(TraceTaskIdTest, IdsAreUniqueAndNonZero) {
  const uint64_t a = NextTraceTaskId();
  const uint64_t b = NextTraceTaskId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

#ifndef GMINER_TRACE_DISABLED

TEST(TraceEndToEndTest, TracedRunProducesEventsAndChromeFile) {
  const Graph g = MakeDataset("dblp", /*scale=*/0.2, /*seed=*/7);
  JobConfig config;
  config.num_workers = 3;
  config.threads_per_worker = 2;
  Cluster cluster(config);
  TriangleCountJob job;

  RunOptions options;
  options.enable_tracing = true;
  options.trace_json_path =
      (std::filesystem::temp_directory_path() / "gminer_e2e_trace.json").string();
  const JobResult traced = cluster.Run(g, job, options);
  ASSERT_EQ(traced.status, JobStatus::kOk);
  EXPECT_TRUE(traced.trace_enabled);
  EXPECT_GT(traced.trace_events, 0);
  EXPECT_EQ(traced.trace_file, options.trace_json_path);

  // The compute stage must be present with sane percentiles.
  bool saw_compute = false;
  for (const auto& stage : traced.stage_latencies) {
    EXPECT_GT(stage.count, 0);
    EXPECT_LE(stage.p50_ns, stage.p95_ns);
    EXPECT_LE(stage.p95_ns, stage.p99_ns);
    EXPECT_LE(stage.p99_ns, stage.max_ns);
    if (stage.stage == "compute") {
      saw_compute = true;
      EXPECT_GT(stage.total_ns, 0);
    }
  }
  EXPECT_TRUE(saw_compute);

  // The Chrome file exists, is an object, and holds span events.
  std::ifstream in(options.trace_json_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  std::filesystem::remove(options.trace_json_path);

  // Same job untraced: identical answer, no trace payload in the result.
  TriangleCountJob job2;
  const JobResult plain = cluster.Run(g, job2);
  ASSERT_EQ(plain.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(plain.final_aggregate),
            TriangleCountJob::Count(traced.final_aggregate));
  EXPECT_FALSE(plain.trace_enabled);
  EXPECT_EQ(plain.trace_events, 0);
  EXPECT_TRUE(plain.stage_latencies.empty());
}

TEST(TraceEndToEndTest, TinyRingSurfacesDrops) {
  const Graph g = MakeDataset("dblp", /*scale=*/0.2, /*seed=*/7);
  JobConfig config;
  config.num_workers = 2;
  config.threads_per_worker = 1;
  Cluster cluster(config);
  TriangleCountJob job;
  RunOptions options;
  options.enable_tracing = true;
  options.trace_ring_capacity = 16;  // far too small on purpose
  const JobResult r = cluster.Run(g, job, options);
  ASSERT_EQ(r.status, JobStatus::kOk);
  EXPECT_GT(r.trace_events_dropped, 0);
  EXPECT_LE(r.trace_events, static_cast<int64_t>(16 * 32));  // bounded by rings
}

#endif  // GMINER_TRACE_DISABLED

TEST(TraceOptionsTest, ZeroRingCapacityIsRejected) {
  const Graph g = MakeDataset("dblp", /*scale=*/0.1, /*seed=*/7);
  JobConfig config;
  config.num_workers = 2;
  Cluster cluster(config);
  TriangleCountJob job;
  RunOptions options;
  options.enable_tracing = true;
  options.trace_ring_capacity = 0;
  const JobResult r = cluster.Run(g, job, options);
  EXPECT_EQ(r.status, JobStatus::kConfigError);
}

}  // namespace
}  // namespace gminer
