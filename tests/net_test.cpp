// Tests for the simulated network: delivery, byte accounting, loopback
// exemption, close semantics, and the shared-link transmission timing.
#include <gtest/gtest.h>

#include <thread>

#include "common/timer.h"
#include "net/network.h"

namespace gminer {
namespace {

TEST(NetworkTest, DeliversInOrder) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1});
  net.Send(0, 1, MessageType::kPullRequest, {1, 2, 3});
  net.Send(0, 1, MessageType::kPullResponse, {4});
  auto m1 = net.Receive(1);
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(m1->type, MessageType::kPullRequest);
  EXPECT_EQ(m1->from, 0);
  EXPECT_EQ(m1->payload, (std::vector<uint8_t>{1, 2, 3}));
  auto m2 = net.Receive(1);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->type, MessageType::kPullResponse);
}

TEST(NetworkTest, AccountsBytesBothSides) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1});
  net.Send(0, 1, MessageType::kPullRequest, std::vector<uint8_t>(100));
  EXPECT_EQ(c0.net_bytes_sent.load(), 100 + kMessageHeaderBytes);
  EXPECT_EQ(c1.net_bytes_received.load(), 100 + kMessageHeaderBytes);
  EXPECT_EQ(c0.net_messages.load(), 1);
}

TEST(NetworkTest, LoopbackIsFree) {
  WorkerCounters c0;
  Network net(1, {&c0});
  net.Send(0, 0, MessageType::kProgressReport, std::vector<uint8_t>(50));
  EXPECT_EQ(c0.net_bytes_sent.load(), 0);
  EXPECT_EQ(c0.net_bytes_received.load(), 0);
  EXPECT_TRUE(net.Receive(0).has_value());
}

TEST(NetworkTest, CloseWakesReceivers) {
  WorkerCounters c0;
  Network net(1, {&c0});
  std::thread receiver([&net] { EXPECT_FALSE(net.Receive(0).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  net.Close();
  receiver.join();
}

TEST(NetworkTest, NullCounterEndpointAllowed) {
  WorkerCounters c0;
  Network net(2, {&c0, nullptr});  // master endpoint has no accounting
  net.Send(0, 1, MessageType::kProgressReport, {1});
  EXPECT_TRUE(net.Receive(1).has_value());
}

TEST(NetworkTest, SimulatedTransmissionDelays) {
  WorkerCounters c0;
  WorkerCounters c1;
  // 1 Mbps link: a 10 KB payload takes ~80 ms on the wire.
  Network net(2, {&c0, &c1}, /*simulate_time=*/true, /*bandwidth_gbps=*/0.001,
              /*latency_us=*/1000);
  WallTimer timer;
  net.Send(0, 1, MessageType::kPullResponse, std::vector<uint8_t>(10000));
  const auto msg = net.Receive(1);
  const double elapsed = timer.ElapsedSeconds();
  ASSERT_TRUE(msg.has_value());
  EXPECT_GT(elapsed, 0.05) << "transmission time not simulated";
}

TEST(NetworkTest, SimulatedLinkSerializesTransfers) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1}, true, 0.001, 0);
  WallTimer timer;
  for (int i = 0; i < 4; ++i) {
    net.Send(0, 1, MessageType::kPullResponse, std::vector<uint8_t>(5000));
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(net.Receive(1).has_value());
  }
  // Four 5 KB messages over a shared 1 Mbps link: ≥ 4 * 40 ms.
  EXPECT_GT(timer.ElapsedSeconds(), 0.12);
}

}  // namespace
}  // namespace gminer
