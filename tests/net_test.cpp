// Tests for the simulated network: delivery, byte accounting, loopback
// exemption, close semantics, and the shared-link transmission timing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/serialize.h"
#include "common/timer.h"
#include "net/coalescer.h"
#include "net/network.h"

namespace gminer {
namespace {

TEST(NetworkTest, DeliversInOrder) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1});
  net.Send(0, 1, MessageType::kPullRequest, {1, 2, 3});
  net.Send(0, 1, MessageType::kPullResponse, {4});
  auto m1 = net.Receive(1);
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(m1->type, MessageType::kPullRequest);
  EXPECT_EQ(m1->from, 0);
  EXPECT_EQ(m1->payload, (std::vector<uint8_t>{1, 2, 3}));
  auto m2 = net.Receive(1);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->type, MessageType::kPullResponse);
}

TEST(NetworkTest, AccountsBytesBothSides) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1});
  net.Send(0, 1, MessageType::kPullRequest, std::vector<uint8_t>(100));
  EXPECT_EQ(c0.net_bytes_sent.load(), 100 + kMessageHeaderBytes);
  EXPECT_EQ(c1.net_bytes_received.load(), 100 + kMessageHeaderBytes);
  EXPECT_EQ(c0.net_messages.load(), 1);
}

TEST(NetworkTest, LoopbackIsFree) {
  WorkerCounters c0;
  Network net(1, {&c0});
  net.Send(0, 0, MessageType::kProgressReport, std::vector<uint8_t>(50));
  EXPECT_EQ(c0.net_bytes_sent.load(), 0);
  EXPECT_EQ(c0.net_bytes_received.load(), 0);
  EXPECT_TRUE(net.Receive(0).has_value());
}

TEST(NetworkTest, CloseWakesReceivers) {
  WorkerCounters c0;
  Network net(1, {&c0});
  std::thread receiver([&net] { EXPECT_FALSE(net.Receive(0).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  net.Close();
  receiver.join();
}

TEST(NetworkTest, NullCounterEndpointAllowed) {
  WorkerCounters c0;
  Network net(2, {&c0, nullptr});  // master endpoint has no accounting
  net.Send(0, 1, MessageType::kProgressReport, {1});
  EXPECT_TRUE(net.Receive(1).has_value());
}

TEST(NetworkTest, SimulatedTransmissionDelays) {
  WorkerCounters c0;
  WorkerCounters c1;
  // 1 Mbps link: a 10 KB payload takes ~80 ms on the wire.
  Network net(2, {&c0, &c1}, /*simulate_time=*/true, /*bandwidth_gbps=*/0.001,
              /*latency_us=*/1000);
  WallTimer timer;
  net.Send(0, 1, MessageType::kPullResponse, std::vector<uint8_t>(10000));
  const auto msg = net.Receive(1);
  const double elapsed = timer.ElapsedSeconds();
  ASSERT_TRUE(msg.has_value());
  EXPECT_GT(elapsed, 0.05) << "transmission time not simulated";
}

TEST(NetworkTest, SimulatedLinkSerializesTransfers) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1}, true, 0.001, 0);
  WallTimer timer;
  for (int i = 0; i < 4; ++i) {
    net.Send(0, 1, MessageType::kPullResponse, std::vector<uint8_t>(5000));
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(net.Receive(1).has_value());
  }
  // Four 5 KB messages over a shared 1 Mbps link: ≥ 4 * 40 ms.
  EXPECT_GT(timer.ElapsedSeconds(), 0.12);
}

// Helper: the accounting identity that must hold at every quiescent point,
// per messages and per bytes: everything sent (plus injected duplicates) is
// either delivered or counted as dropped — nothing vanishes silently.
void ExpectBalanced(const std::vector<WorkerCounters*>& counters) {
  int64_t sent_msgs = 0, delivered = 0, dropped = 0, duplicated = 0;
  int64_t sent_bytes = 0, recv_bytes = 0, dropped_bytes = 0, dup_bytes = 0;
  for (const WorkerCounters* c : counters) {
    if (c == nullptr) {
      continue;
    }
    sent_msgs += c->net_messages.load();
    delivered += c->net_messages_delivered.load();
    dropped += c->net_messages_dropped.load();
    duplicated += c->net_messages_duplicated.load();
    sent_bytes += c->net_bytes_sent.load();
    recv_bytes += c->net_bytes_received.load();
    dropped_bytes += c->net_bytes_dropped.load();
    dup_bytes += c->net_bytes_duplicated.load();
  }
  EXPECT_EQ(delivered + dropped, sent_msgs + duplicated) << "message count imbalance";
  EXPECT_EQ(recv_bytes + dropped_bytes, sent_bytes + dup_bytes) << "byte count imbalance";
}

TEST(NetworkTest, CloseDrainsPendingAsDropped) {
  WorkerCounters c0;
  WorkerCounters c1;
  // Slow simulated link so messages are still pending when Close() hits.
  Network net(2, {&c0, &c1}, /*simulate_time=*/true, /*bandwidth_gbps=*/0.0001,
              /*latency_us=*/50'000);
  for (int i = 0; i < 8; ++i) {
    net.Send(0, 1, MessageType::kPullResponse, std::vector<uint8_t>(2000));
  }
  net.Close();
  EXPECT_GT(c1.net_messages_dropped.load(), 0) << "pending deliveries must count as dropped";
  ExpectBalanced({&c0, &c1});
}

TEST(NetworkTest, MarkDeadFencesBothDirections) {
  WorkerCounters c0;
  WorkerCounters c1;
  WorkerCounters c2;
  Network net(3, {&c0, &c1, &c2});
  net.MarkDead(1);
  EXPECT_TRUE(net.IsDead(1));
  // To the dead endpoint: sender pays, receiver never sees it.
  net.Send(0, 1, MessageType::kPullRequest, {1, 2, 3});
  EXPECT_FALSE(net.TryReceive(1).has_value());
  EXPECT_GT(c1.net_messages_dropped.load(), 0);
  // From the dead endpoint: silently swallowed, not even accounted as sent.
  const int64_t sent_before = c1.net_messages.load();
  net.Send(1, 2, MessageType::kPullResponse, {4});
  EXPECT_FALSE(net.TryReceive(2).has_value());
  EXPECT_EQ(c1.net_messages.load(), sent_before);
  ExpectBalanced({&c0, &c1, &c2});
  // MarkDead closed the mailbox so a blocked listener unblocks.
  EXPECT_FALSE(net.Receive(1).has_value());
}

TEST(NetworkTest, FaultInjectorDropsAreAccounted) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_probability = 0.5;
  FaultInjector injector(plan);
  WorkerCounters c0;
  WorkerCounters c1;
  {
    Network net(2, {&c0, &c1}, false, 1.0, 0, &injector);
    for (int i = 0; i < 200; ++i) {
      net.Send(0, 1, MessageType::kPullRequest, {1});
    }
    while (net.TryReceive(1).has_value()) {
    }
    net.Close();
  }
  EXPECT_GT(c1.net_messages_dropped.load(), 30);
  EXPECT_GT(c1.net_messages_delivered.load(), 30);
  ExpectBalanced({&c0, &c1});
}

TEST(FaultInjectorTest, DecisionsAreDeterministicPerSeed) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop_probability = 0.3;
  plan.duplicate_probability = 0.2;
  plan.delay_probability = 0.1;
  plan.delay_min_us = 10;
  plan.delay_max_us = 50;
  const auto trace = [&plan] {
    FaultInjector injector(plan);
    std::vector<int> decisions;
    for (int i = 0; i < 100; ++i) {
      const auto d = injector.OnSend(0, 1, MessageType::kPullRequest);
      decisions.push_back((d.drop ? 1 : 0) | (d.duplicate ? 2 : 0) |
                          (d.delay_ns > 0 ? 4 : 0));
    }
    return decisions;
  };
  const auto a = trace();
  const auto b = trace();
  EXPECT_EQ(a, b) << "same seed must inject the same fault sequence";
  plan.seed = 4321;
  EXPECT_NE(a, trace()) << "different seed should differ";
}

TEST(FaultInjectorTest, ControlPlaneMessagesAreExempt) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_probability = 1.0;
  FaultInjector injector(plan);
  // Shutdown / migration / adoption traffic must never be randomly faulted.
  for (const MessageType type :
       {MessageType::kShutdown, MessageType::kMigrateTasks, MessageType::kAdoptTasks,
        MessageType::kAdoptDone, MessageType::kSeedDone}) {
    const auto d = injector.OnSend(0, 1, type);
    EXPECT_FALSE(d.drop) << "control message type " << static_cast<int>(type) << " dropped";
  }
  EXPECT_TRUE(injector.OnSend(0, 1, MessageType::kPullRequest).drop);
}

TEST(FaultInjectorTest, MessageCountKillTriggersOnce) {
  FaultPlan plan;
  plan.seed = 5;
  FaultPlan::Kill kill;
  kill.worker = 0;
  kill.after_messages = 3;
  kill.after_seeding = false;
  plan.kills.push_back(kill);
  FaultInjector injector(plan);
  int kills = 0;
  for (int i = 0; i < 10; ++i) {
    const auto d = injector.OnSend(0, 1, MessageType::kPullRequest);
    if (d.kill == 0) {
      ++kills;
      EXPECT_EQ(i, 2) << "kill must fire on the configured message ordinal";
    }
  }
  EXPECT_EQ(kills, 1) << "a kill fires exactly once";
  // Messages from other workers never trip worker 0's trigger.
  FaultInjector other(plan);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(other.OnSend(1, 2, MessageType::kPullRequest).kill, kInvalidWorker);
  }
}

// --- PullCoalescer -----------------------------------------------------------

// Decodes one kPullRequest wire frame: [u64 rid][u64 n][VertexId × n].
std::pair<uint64_t, std::vector<VertexId>> DecodePullRequest(NetMessage msg) {
  EXPECT_EQ(msg.type, MessageType::kPullRequest);
  InArchive in(std::move(msg.payload));
  const uint64_t rid = in.Read<uint64_t>();
  std::vector<VertexId> ids = in.ReadVector<VertexId>();
  EXPECT_TRUE(in.AtEnd());
  return {rid, std::move(ids)};
}

std::vector<VertexId> Ids(size_t n, VertexId start = 0) {
  std::vector<VertexId> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = start + static_cast<VertexId>(i);
  }
  return v;
}

TEST(PullCoalescerTest, AggregatesAndFlushesOnSizeThreshold) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1});
  PullCoalescerOptions opts;
  opts.batch_bytes = 8 * sizeof(VertexId);  // flush at 8 buffered ids
  opts.flush_us = 1'000'000;                // deadline effectively off
  std::vector<std::pair<uint64_t, size_t>> batches;
  PullCoalescer coalescer(0, 2, opts, &net, &c0,
                          [&](WorkerId to, uint64_t rid, const std::vector<VertexId>& ids) {
                            EXPECT_EQ(to, 1);
                            batches.emplace_back(rid, ids.size());
                          });
  // Three tasks' worth of pulls, 3 + 3 + 2 ids: nothing flushes until the
  // eighth id lands — then exactly one wire message carries all eight.
  EXPECT_TRUE(coalescer.Enqueue(1, Ids(3, 0)));
  EXPECT_TRUE(coalescer.Enqueue(1, Ids(3, 3)));
  EXPECT_FALSE(net.TryReceive(1).has_value()) << "below threshold, nothing on the wire";
  EXPECT_TRUE(coalescer.Enqueue(1, Ids(2, 6)));
  auto msg = net.TryReceive(1);
  ASSERT_TRUE(msg.has_value());
  auto [rid, ids] = DecodePullRequest(std::move(*msg));
  EXPECT_EQ(ids, Ids(8));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].first, rid) << "callback sees the wire rid";
  EXPECT_EQ(batches[0].second, 8u);
  EXPECT_EQ(c0.pull_batches_sent.load(), 1);
  EXPECT_EQ(coalescer.batches_flushed(), 1);
}

TEST(PullCoalescerTest, FlushesOnDeadline) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1});
  PullCoalescerOptions opts;
  opts.batch_bytes = 1 << 20;  // size threshold effectively off
  opts.flush_us = 2'000;
  PullCoalescer coalescer(0, 2, opts, &net, &c0, nullptr);
  coalescer.Enqueue(1, Ids(4));
  // Blocking receive: the flusher thread must push the half-empty batch out
  // on its own once the 2ms deadline passes.
  auto msg = net.Receive(1);
  ASSERT_TRUE(msg.has_value());
  auto [rid, ids] = DecodePullRequest(std::move(*msg));
  EXPECT_EQ(ids, Ids(4));
  EXPECT_EQ(coalescer.batches_flushed(), 1);
}

TEST(PullCoalescerTest, BackpressureBlocksEnqueueUntilSpaceFrees) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1});
  PullCoalescerOptions opts;
  opts.batch_bytes = 1 << 20;   // no size flush: the buffer must fill up
  opts.flush_us = 1'000'000;    // no deadline flush either
  opts.queue_bytes = 8 * sizeof(VertexId);
  PullCoalescer coalescer(0, 2, opts, &net, &c0, nullptr);
  EXPECT_TRUE(coalescer.Enqueue(1, Ids(8)));  // exactly at the bound
  std::atomic<bool> blocked_done{false};
  std::thread blocked([&] {
    EXPECT_TRUE(coalescer.Enqueue(1, Ids(1, 100)));  // over the bound: blocks
    blocked_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(blocked_done.load()) << "enqueue past the bound must block";
  coalescer.Flush(1);  // drains the buffer, freeing space
  blocked.join();
  EXPECT_TRUE(blocked_done.load());
  // First message: the 8 buffered ids; second: the unblocked enqueue.
  auto first = net.Receive(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(DecodePullRequest(std::move(*first)).second.size(), 8u);
  coalescer.Flush(1);
  auto second = net.Receive(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(DecodePullRequest(std::move(*second)).second, Ids(1, 100));
}

TEST(PullCoalescerTest, CloseDrainsBuffersAndCountsDrops) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1});
  PullCoalescerOptions opts;
  opts.batch_bytes = 1 << 20;
  opts.flush_us = 1'000'000;
  PullCoalescer coalescer(0, 2, opts, &net, &c0, nullptr);
  coalescer.Enqueue(1, Ids(5));
  coalescer.Close();
  // The buffered ids were drained to the wire, not lost.
  auto msg = net.TryReceive(1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(DecodePullRequest(std::move(*msg)).second, Ids(5));
  EXPECT_EQ(coalescer.dropped_ids(), 0);
  // Post-close enqueues are refused and counted.
  EXPECT_FALSE(coalescer.Enqueue(1, Ids(3)));
  EXPECT_EQ(coalescer.dropped_ids(), 3);
  coalescer.Close();  // idempotent
}

TEST(PullCoalescerTest, DisabledModeSendsEveryEnqueueImmediately) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1});
  PullCoalescerOptions opts;
  opts.enabled = false;
  opts.batch_bytes = 1 << 20;
  PullCoalescer coalescer(0, 2, opts, &net, &c0, nullptr);
  coalescer.Enqueue(1, Ids(2, 0));
  coalescer.Enqueue(1, Ids(3, 2));
  auto first = net.TryReceive(1);
  auto second = net.TryReceive(1);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(DecodePullRequest(std::move(*first)).second, Ids(2, 0));
  EXPECT_EQ(DecodePullRequest(std::move(*second)).second, Ids(3, 2));
  EXPECT_EQ(coalescer.batches_flushed(), 2);
}

TEST(PullCoalescerTest, EnvVarPinsBatchingOnOrOff) {
  // Save any CI-provided value (the batching-off matrix leg exports it).
  const char* prior = std::getenv("GMINER_PULL_BATCH");
  const std::string saved = prior != nullptr ? prior : "";
  ASSERT_EQ(setenv("GMINER_PULL_BATCH", "off", 1), 0);
  EXPECT_FALSE(PullBatchingEnabled(true));
  EXPECT_FALSE(PullBatchingEnabled(false));
  ASSERT_EQ(setenv("GMINER_PULL_BATCH", "on", 1), 0);
  EXPECT_TRUE(PullBatchingEnabled(false));
  ASSERT_EQ(setenv("GMINER_PULL_BATCH", "garbage", 1), 0);
  EXPECT_TRUE(PullBatchingEnabled(true));
  EXPECT_FALSE(PullBatchingEnabled(false));
  ASSERT_EQ(unsetenv("GMINER_PULL_BATCH"), 0);
  EXPECT_TRUE(PullBatchingEnabled(true));
  EXPECT_FALSE(PullBatchingEnabled(false));
  if (prior != nullptr) {
    ASSERT_EQ(setenv("GMINER_PULL_BATCH", saved.c_str(), 1), 0);
  }
}

}  // namespace
}  // namespace gminer
