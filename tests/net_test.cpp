// Tests for the simulated network: delivery, byte accounting, loopback
// exemption, close semantics, and the shared-link transmission timing.
#include <gtest/gtest.h>

#include <thread>

#include "common/timer.h"
#include "net/network.h"

namespace gminer {
namespace {

TEST(NetworkTest, DeliversInOrder) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1});
  net.Send(0, 1, MessageType::kPullRequest, {1, 2, 3});
  net.Send(0, 1, MessageType::kPullResponse, {4});
  auto m1 = net.Receive(1);
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(m1->type, MessageType::kPullRequest);
  EXPECT_EQ(m1->from, 0);
  EXPECT_EQ(m1->payload, (std::vector<uint8_t>{1, 2, 3}));
  auto m2 = net.Receive(1);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->type, MessageType::kPullResponse);
}

TEST(NetworkTest, AccountsBytesBothSides) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1});
  net.Send(0, 1, MessageType::kPullRequest, std::vector<uint8_t>(100));
  EXPECT_EQ(c0.net_bytes_sent.load(), 100 + kMessageHeaderBytes);
  EXPECT_EQ(c1.net_bytes_received.load(), 100 + kMessageHeaderBytes);
  EXPECT_EQ(c0.net_messages.load(), 1);
}

TEST(NetworkTest, LoopbackIsFree) {
  WorkerCounters c0;
  Network net(1, {&c0});
  net.Send(0, 0, MessageType::kProgressReport, std::vector<uint8_t>(50));
  EXPECT_EQ(c0.net_bytes_sent.load(), 0);
  EXPECT_EQ(c0.net_bytes_received.load(), 0);
  EXPECT_TRUE(net.Receive(0).has_value());
}

TEST(NetworkTest, CloseWakesReceivers) {
  WorkerCounters c0;
  Network net(1, {&c0});
  std::thread receiver([&net] { EXPECT_FALSE(net.Receive(0).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  net.Close();
  receiver.join();
}

TEST(NetworkTest, NullCounterEndpointAllowed) {
  WorkerCounters c0;
  Network net(2, {&c0, nullptr});  // master endpoint has no accounting
  net.Send(0, 1, MessageType::kProgressReport, {1});
  EXPECT_TRUE(net.Receive(1).has_value());
}

TEST(NetworkTest, SimulatedTransmissionDelays) {
  WorkerCounters c0;
  WorkerCounters c1;
  // 1 Mbps link: a 10 KB payload takes ~80 ms on the wire.
  Network net(2, {&c0, &c1}, /*simulate_time=*/true, /*bandwidth_gbps=*/0.001,
              /*latency_us=*/1000);
  WallTimer timer;
  net.Send(0, 1, MessageType::kPullResponse, std::vector<uint8_t>(10000));
  const auto msg = net.Receive(1);
  const double elapsed = timer.ElapsedSeconds();
  ASSERT_TRUE(msg.has_value());
  EXPECT_GT(elapsed, 0.05) << "transmission time not simulated";
}

TEST(NetworkTest, SimulatedLinkSerializesTransfers) {
  WorkerCounters c0;
  WorkerCounters c1;
  Network net(2, {&c0, &c1}, true, 0.001, 0);
  WallTimer timer;
  for (int i = 0; i < 4; ++i) {
    net.Send(0, 1, MessageType::kPullResponse, std::vector<uint8_t>(5000));
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(net.Receive(1).has_value());
  }
  // Four 5 KB messages over a shared 1 Mbps link: ≥ 4 * 40 ms.
  EXPECT_GT(timer.ElapsedSeconds(), 0.12);
}

// Helper: the accounting identity that must hold at every quiescent point,
// per messages and per bytes: everything sent (plus injected duplicates) is
// either delivered or counted as dropped — nothing vanishes silently.
void ExpectBalanced(const std::vector<WorkerCounters*>& counters) {
  int64_t sent_msgs = 0, delivered = 0, dropped = 0, duplicated = 0;
  int64_t sent_bytes = 0, recv_bytes = 0, dropped_bytes = 0, dup_bytes = 0;
  for (const WorkerCounters* c : counters) {
    if (c == nullptr) {
      continue;
    }
    sent_msgs += c->net_messages.load();
    delivered += c->net_messages_delivered.load();
    dropped += c->net_messages_dropped.load();
    duplicated += c->net_messages_duplicated.load();
    sent_bytes += c->net_bytes_sent.load();
    recv_bytes += c->net_bytes_received.load();
    dropped_bytes += c->net_bytes_dropped.load();
    dup_bytes += c->net_bytes_duplicated.load();
  }
  EXPECT_EQ(delivered + dropped, sent_msgs + duplicated) << "message count imbalance";
  EXPECT_EQ(recv_bytes + dropped_bytes, sent_bytes + dup_bytes) << "byte count imbalance";
}

TEST(NetworkTest, CloseDrainsPendingAsDropped) {
  WorkerCounters c0;
  WorkerCounters c1;
  // Slow simulated link so messages are still pending when Close() hits.
  Network net(2, {&c0, &c1}, /*simulate_time=*/true, /*bandwidth_gbps=*/0.0001,
              /*latency_us=*/50'000);
  for (int i = 0; i < 8; ++i) {
    net.Send(0, 1, MessageType::kPullResponse, std::vector<uint8_t>(2000));
  }
  net.Close();
  EXPECT_GT(c1.net_messages_dropped.load(), 0) << "pending deliveries must count as dropped";
  ExpectBalanced({&c0, &c1});
}

TEST(NetworkTest, MarkDeadFencesBothDirections) {
  WorkerCounters c0;
  WorkerCounters c1;
  WorkerCounters c2;
  Network net(3, {&c0, &c1, &c2});
  net.MarkDead(1);
  EXPECT_TRUE(net.IsDead(1));
  // To the dead endpoint: sender pays, receiver never sees it.
  net.Send(0, 1, MessageType::kPullRequest, {1, 2, 3});
  EXPECT_FALSE(net.TryReceive(1).has_value());
  EXPECT_GT(c1.net_messages_dropped.load(), 0);
  // From the dead endpoint: silently swallowed, not even accounted as sent.
  const int64_t sent_before = c1.net_messages.load();
  net.Send(1, 2, MessageType::kPullResponse, {4});
  EXPECT_FALSE(net.TryReceive(2).has_value());
  EXPECT_EQ(c1.net_messages.load(), sent_before);
  ExpectBalanced({&c0, &c1, &c2});
  // MarkDead closed the mailbox so a blocked listener unblocks.
  EXPECT_FALSE(net.Receive(1).has_value());
}

TEST(NetworkTest, FaultInjectorDropsAreAccounted) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_probability = 0.5;
  FaultInjector injector(plan);
  WorkerCounters c0;
  WorkerCounters c1;
  {
    Network net(2, {&c0, &c1}, false, 1.0, 0, &injector);
    for (int i = 0; i < 200; ++i) {
      net.Send(0, 1, MessageType::kPullRequest, {1});
    }
    while (net.TryReceive(1).has_value()) {
    }
    net.Close();
  }
  EXPECT_GT(c1.net_messages_dropped.load(), 30);
  EXPECT_GT(c1.net_messages_delivered.load(), 30);
  ExpectBalanced({&c0, &c1});
}

TEST(FaultInjectorTest, DecisionsAreDeterministicPerSeed) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop_probability = 0.3;
  plan.duplicate_probability = 0.2;
  plan.delay_probability = 0.1;
  plan.delay_min_us = 10;
  plan.delay_max_us = 50;
  const auto trace = [&plan] {
    FaultInjector injector(plan);
    std::vector<int> decisions;
    for (int i = 0; i < 100; ++i) {
      const auto d = injector.OnSend(0, 1, MessageType::kPullRequest);
      decisions.push_back((d.drop ? 1 : 0) | (d.duplicate ? 2 : 0) |
                          (d.delay_ns > 0 ? 4 : 0));
    }
    return decisions;
  };
  const auto a = trace();
  const auto b = trace();
  EXPECT_EQ(a, b) << "same seed must inject the same fault sequence";
  plan.seed = 4321;
  EXPECT_NE(a, trace()) << "different seed should differ";
}

TEST(FaultInjectorTest, ControlPlaneMessagesAreExempt) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_probability = 1.0;
  FaultInjector injector(plan);
  // Shutdown / migration / adoption traffic must never be randomly faulted.
  for (const MessageType type :
       {MessageType::kShutdown, MessageType::kMigrateTasks, MessageType::kAdoptTasks,
        MessageType::kAdoptDone, MessageType::kSeedDone}) {
    const auto d = injector.OnSend(0, 1, type);
    EXPECT_FALSE(d.drop) << "control message type " << static_cast<int>(type) << " dropped";
  }
  EXPECT_TRUE(injector.OnSend(0, 1, MessageType::kPullRequest).drop);
}

TEST(FaultInjectorTest, MessageCountKillTriggersOnce) {
  FaultPlan plan;
  plan.seed = 5;
  FaultPlan::Kill kill;
  kill.worker = 0;
  kill.after_messages = 3;
  kill.after_seeding = false;
  plan.kills.push_back(kill);
  FaultInjector injector(plan);
  int kills = 0;
  for (int i = 0; i < 10; ++i) {
    const auto d = injector.OnSend(0, 1, MessageType::kPullRequest);
    if (d.kill == 0) {
      ++kills;
      EXPECT_EQ(i, 2) << "kill must fire on the configured message ordinal";
    }
  }
  EXPECT_EQ(kills, 1) << "a kill fires exactly once";
  // Messages from other workers never trip worker 0's trigger.
  FaultInjector other(plan);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(other.OnSend(1, 2, MessageType::kPullRequest).kill, kInvalidWorker);
  }
}

}  // namespace
}  // namespace gminer
