// End-to-end fault-injection tests (DESIGN.md "Fault model & recovery
// protocol"): for every fault class the job must produce results identical to
// a fault-free run, while the recovery counters prove the faults actually
// fired and were absorbed — never silently skipped.
#include <gtest/gtest.h>

#include <filesystem>

#include "apps/tc.h"
#include "baselines/serial.h"
#include "core/cluster.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

// Small RCV cache keeps steady pull traffic flowing so the data-plane fault
// classes have messages to bite; stealing is off because migration batches
// are fire-and-forget (Cluster::Run validates this for blackouts).
JobConfig FaultConfig() {
  JobConfig config = FastTestConfig(3, 2);
  config.enable_stealing = false;
  config.rcv_cache_capacity = 64;
  config.pull_timeout_ms = 30;  // quick retries keep the test fast
  return config;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : graph_(RandomTestGraph(400, 8.0, 19)) {
    expected_ = SerialTriangleCount(graph_);
  }

  JobResult Run(const JobConfig& config, const RunOptions& options) {
    TriangleCountJob job;
    Cluster cluster(config);
    return cluster.Run(graph_, job, options);
  }

  Graph graph_;
  uint64_t expected_ = 0;
};

TEST_F(FaultInjectionTest, DroppedMessagesAreRetriedAndResultExact) {
  RunOptions options;
  options.faults.seed = 11;
  options.faults.drop_probability = 0.05;
  const JobResult result = Run(FaultConfig(), options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected_);
  EXPECT_GT(result.totals.net_messages_dropped, 0) << "no drops injected";
  EXPECT_GT(result.totals.pull_retries, 0) << "drops never forced a retry";
}

TEST_F(FaultInjectionTest, DuplicatedMessagesAreIdempotent) {
  RunOptions options;
  options.faults.seed = 12;
  options.faults.duplicate_probability = 0.25;
  const JobResult result = Run(FaultConfig(), options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected_)
      << "duplicate deliveries must not double-count";
  EXPECT_GT(result.totals.net_messages_duplicated, 0) << "no duplicates injected";
}

TEST_F(FaultInjectionTest, DelayedMessagesReorderButResultExact) {
  RunOptions options;
  options.faults.seed = 13;
  options.faults.delay_probability = 0.3;
  options.faults.delay_min_us = 100;
  options.faults.delay_max_us = 2000;
  const JobResult result = Run(FaultConfig(), options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected_);
  EXPECT_GT(result.totals.net_messages_delayed, 0) << "no delays injected";
}

TEST_F(FaultInjectionTest, BlackoutWindowIsRiddenOutByRetries) {
  // Worker 1 goes dark for its first 40ms: its kSeedDone is swallowed (the
  // seeded flag piggybacked on progress reports heals that) and every pull
  // touching it times out until the window passes.
  RunOptions options;
  options.faults.seed = 14;
  options.faults.blackouts.push_back({/*endpoint=*/1, /*start_ms=*/0, /*duration_ms=*/40});
  const JobResult result = Run(FaultConfig(), options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected_);
  EXPECT_GT(result.totals.net_messages_dropped, 0) << "blackout dropped nothing";
  EXPECT_GT(result.totals.pull_retries, 0) << "blackout never forced a retry";
}

TEST_F(FaultInjectionTest, CombinedFaultSoakStaysExact) {
  RunOptions options;
  options.faults.seed = 15;
  options.faults.drop_probability = 0.03;
  options.faults.duplicate_probability = 0.1;
  options.faults.delay_probability = 0.15;
  options.faults.delay_min_us = 50;
  options.faults.delay_max_us = 1000;
  const JobResult result = Run(FaultConfig(), options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected_);
  EXPECT_GT(result.totals.net_messages_dropped, 0);
  EXPECT_GT(result.totals.net_messages_duplicated, 0);
  EXPECT_GT(result.totals.net_messages_delayed, 0);
}

TEST_F(FaultInjectionTest, SameSeedReproducesIdenticalFaultCounts) {
  RunOptions options;
  options.faults.seed = 16;
  options.faults.drop_probability = 0.05;
  JobConfig config = FaultConfig();
  config.threads_per_worker = 1;  // fixed thread interleaving per link ordinal
  const JobResult a = Run(config, options);
  const JobResult b = Run(config, options);
  ASSERT_EQ(a.status, JobStatus::kOk);
  ASSERT_EQ(b.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(a.final_aggregate), expected_);
  EXPECT_EQ(TriangleCountJob::Count(b.final_aggregate), expected_);
  // Both runs saw faults; exact sequences per link are seed-deterministic
  // (unit-tested in net_test), here we check the end-to-end plumbing.
  EXPECT_GT(a.totals.net_messages_dropped, 0);
  EXPECT_GT(b.totals.net_messages_dropped, 0);
}

TEST_F(FaultInjectionTest, WallClockKillRecoversViaAdoption) {
  // Complements the message-count kill of integration_test: the timer-driven
  // trigger fires mid-job and a survivor adopts the dead worker's checkpoint.
  // A bigger graph and a throttled pipeline keep the job comfortably longer
  // than the kill timer, so the kill always lands mid-processing.
  const Graph g = RandomTestGraph(1000, 8.0, 23);
  const uint64_t expected = SerialTriangleCount(g);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gminer_fi_kill_ckpt").string();
  std::filesystem::create_directories(dir);
  JobConfig config = FaultConfig();
  config.enable_fault_tolerance = true;
  config.heartbeat_timeout_ms = 100;
  config.threads_per_worker = 1;  // throttle so the job outlasts the timer
  config.pipeline_depth = 8;
  RunOptions options;
  options.checkpoint_dir = dir;
  options.faults.seed = 17;
  // after_seeding: the countdown starts only once worker 2's checkpoint is
  // durable, so the kill lands mid-processing on every machine speed.
  options.faults.kills.push_back(
      {/*worker=*/2, /*after_messages=*/-1, /*after_seconds=*/0.005, /*after_seeding=*/true});
  TriangleCountJob job;
  Cluster cluster(config);
  const JobResult result = cluster.Run(g, job, options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected);
  EXPECT_GE(result.totals.failovers, 1);
  EXPECT_GT(result.totals.tasks_adopted, 0);
  EXPECT_GT(result.totals.recovery_wall_ns, 0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gminer
