// End-to-end fault-injection tests (DESIGN.md "Fault model & recovery
// protocol"): for every fault class the job must produce results identical to
// a fault-free run, while the recovery counters prove the faults actually
// fired and were absorbed — never silently skipped.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "apps/tc.h"
#include "baselines/serial.h"
#include "core/cluster.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

// Small RCV cache keeps steady pull traffic flowing so the data-plane fault
// classes have messages to bite; stealing is off because migration batches
// are fire-and-forget (Cluster::Run validates this for blackouts).
JobConfig FaultConfig() {
  JobConfig config = FastTestConfig(3, 2);
  config.enable_stealing = false;
  config.rcv_cache_capacity = 64;
  config.pull_timeout_ms = 30;  // quick retries keep the test fast
  // Small wire batches: coalescing collapses the pull traffic into a handful
  // of messages otherwise, starving the data-plane fault classes of targets.
  config.pull_batch_bytes = 256;
  return config;
}

// Pins GMINER_PULL_BATCH for a scope. The batched-vs-unbatched A/B tests must
// control both sides themselves; without this, a CI leg that exports
// GMINER_PULL_BATCH=off would silently collapse the comparison to
// unbatched-vs-unbatched.
class ScopedPullBatchEnv {
 public:
  explicit ScopedPullBatchEnv(const char* value) {
    const char* old = std::getenv("GMINER_PULL_BATCH");
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    setenv("GMINER_PULL_BATCH", value, 1);
  }
  ~ScopedPullBatchEnv() {
    if (had_old_) {
      setenv("GMINER_PULL_BATCH", old_.c_str(), 1);
    } else {
      unsetenv("GMINER_PULL_BATCH");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : graph_(RandomTestGraph(400, 8.0, 19)) {
    expected_ = SerialTriangleCount(graph_);
  }

  JobResult Run(const JobConfig& config, const RunOptions& options) {
    TriangleCountJob job;
    Cluster cluster(config);
    return cluster.Run(graph_, job, options);
  }

  Graph graph_;
  uint64_t expected_ = 0;
};

TEST_F(FaultInjectionTest, DroppedMessagesAreRetriedAndResultExact) {
  RunOptions options;
  options.faults.seed = 11;
  options.faults.drop_probability = 0.1;
  const JobResult result = Run(FaultConfig(), options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected_);
  EXPECT_GT(result.totals.net_messages_dropped, 0) << "no drops injected";
  EXPECT_GT(result.totals.pull_retries, 0) << "drops never forced a retry";
}

TEST_F(FaultInjectionTest, DuplicatedMessagesAreIdempotent) {
  RunOptions options;
  options.faults.seed = 12;
  options.faults.duplicate_probability = 0.25;
  const JobResult result = Run(FaultConfig(), options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected_)
      << "duplicate deliveries must not double-count";
  EXPECT_GT(result.totals.net_messages_duplicated, 0) << "no duplicates injected";
}

TEST_F(FaultInjectionTest, DelayedMessagesReorderButResultExact) {
  RunOptions options;
  options.faults.seed = 13;
  options.faults.delay_probability = 0.3;
  options.faults.delay_min_us = 100;
  options.faults.delay_max_us = 2000;
  const JobResult result = Run(FaultConfig(), options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected_);
  EXPECT_GT(result.totals.net_messages_delayed, 0) << "no delays injected";
}

TEST_F(FaultInjectionTest, BlackoutWindowIsRiddenOutByRetries) {
  // Worker 1 goes dark for its first 40ms: its kSeedDone is swallowed (the
  // seeded flag piggybacked on progress reports heals that) and every pull
  // touching it times out until the window passes.
  RunOptions options;
  options.faults.seed = 14;
  options.faults.blackouts.push_back({/*endpoint=*/1, /*start_ms=*/0, /*duration_ms=*/40});
  const JobResult result = Run(FaultConfig(), options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected_);
  EXPECT_GT(result.totals.net_messages_dropped, 0) << "blackout dropped nothing";
  EXPECT_GT(result.totals.pull_retries, 0) << "blackout never forced a retry";
}

TEST_F(FaultInjectionTest, CombinedFaultSoakStaysExact) {
  RunOptions options;
  options.faults.seed = 15;
  // Batched pulls mean far fewer data-plane messages than the unbatched
  // runtime sent; higher rates keep every fault class firing.
  options.faults.drop_probability = 0.1;
  options.faults.duplicate_probability = 0.2;
  options.faults.delay_probability = 0.25;
  options.faults.delay_min_us = 50;
  options.faults.delay_max_us = 1000;
  const JobResult result = Run(FaultConfig(), options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected_);
  EXPECT_GT(result.totals.net_messages_dropped, 0);
  EXPECT_GT(result.totals.net_messages_duplicated, 0);
  EXPECT_GT(result.totals.net_messages_delayed, 0);
}

TEST_F(FaultInjectionTest, SameSeedReproducesIdenticalFaultCounts) {
  RunOptions options;
  options.faults.seed = 16;
  options.faults.drop_probability = 0.15;
  JobConfig config = FaultConfig();
  config.threads_per_worker = 1;  // fixed thread interleaving per link ordinal
  const JobResult a = Run(config, options);
  const JobResult b = Run(config, options);
  ASSERT_EQ(a.status, JobStatus::kOk);
  ASSERT_EQ(b.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(a.final_aggregate), expected_);
  EXPECT_EQ(TriangleCountJob::Count(b.final_aggregate), expected_);
  // Both runs saw faults; exact sequences per link are seed-deterministic
  // (unit-tested in net_test), here we check the end-to-end plumbing.
  EXPECT_GT(a.totals.net_messages_dropped, 0);
  EXPECT_GT(b.totals.net_messages_dropped, 0);
}

TEST_F(FaultInjectionTest, BatchedPullsMatchUnbatchedUnderDropsAndDuplicates) {
  // The coalescer must be invisible to application results: the same faulty
  // run, batched and unbatched, produces bit-identical triangle counts.
  RunOptions options;
  options.faults.seed = 21;
  options.faults.drop_probability = 0.1;
  options.faults.duplicate_probability = 0.2;
  JobConfig batched = FaultConfig();
  JobConfig unbatched = FaultConfig();
  unbatched.enable_pull_batching = false;
  JobResult with, without;
  {
    ScopedPullBatchEnv env("on");
    with = Run(batched, options);
  }
  {
    ScopedPullBatchEnv env("off");
    without = Run(unbatched, options);
  }
  ASSERT_EQ(with.status, JobStatus::kOk);
  ASSERT_EQ(without.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(with.final_aggregate), expected_);
  EXPECT_EQ(TriangleCountJob::Count(without.final_aggregate), expected_);
  // Both modes saw faults. (Vertex-level request counts are NOT compared:
  // they depend on cache-eviction timing, which legitimately differs.)
  EXPECT_GT(with.totals.net_messages_dropped, 0);
  EXPECT_GT(without.totals.net_messages_dropped, 0);
}

TEST_F(FaultInjectionTest, DuplicateResponsesNeverResendArrivedVertices) {
  // Regression for the retry path: delays longer than the pull timeout force
  // a retry of every in-flight vertex, then BOTH responses arrive. The
  // duplicate response must settle per-vertex bookkeeping idempotently, and
  // the next retry sweep must re-send only vertices still missing — the job
  // finishes exact instead of thrashing re-sends of already-arrived records.
  RunOptions options;
  options.faults.seed = 22;
  options.faults.duplicate_probability = 0.3;
  options.faults.delay_probability = 0.3;
  options.faults.delay_min_us = 12'000;  // > pull_timeout_ms below
  options.faults.delay_max_us = 25'000;
  JobConfig config = FaultConfig();
  config.pull_timeout_ms = 10;  // tight: delayed responses race retries
  const JobResult result = Run(config, options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected_);
  EXPECT_GT(result.totals.net_messages_duplicated, 0) << "no duplicates injected";
  EXPECT_GT(result.totals.pull_retries, 0) << "delays never forced a retry";
  EXPECT_GT(result.totals.duplicate_pull_responses, 0)
      << "retries racing delayed responses must produce duplicate responses";
}

TEST_F(FaultInjectionTest, BatchingCutsPullRequestMessagesAtLeast4x) {
  // Table-3-style run: multi-worker, simulated transmission. Batching must
  // collapse the kPullRequest wire-message count by >= 4x while leaving the
  // application result bit-identical.
  const Graph g = RandomTestGraph(1500, 8.0, 29);
  const uint64_t expected = SerialTriangleCount(g);
  JobConfig batched = FastTestConfig(4, 2);
  batched.enable_stealing = false;
  batched.rcv_cache_capacity = 256;
  batched.net_latency_us = 50;  // enables the shared-link transmission sim
  JobConfig unbatched = batched;
  unbatched.enable_pull_batching = false;
  TriangleCountJob job;
  JobResult with, without;
  {
    ScopedPullBatchEnv env("on");
    Cluster cluster_batched(batched);
    with = cluster_batched.Run(g, job, {});
  }
  {
    ScopedPullBatchEnv env("off");
    Cluster cluster_unbatched(unbatched);
    without = cluster_unbatched.Run(g, job, {});
  }
  ASSERT_EQ(with.status, JobStatus::kOk);
  ASSERT_EQ(without.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(with.final_aggregate), expected);
  EXPECT_EQ(TriangleCountJob::Count(without.final_aggregate), expected);
  // pull_batches_sent counts kPullRequest wire messages in both modes (the
  // disabled coalescer flushes one message per enqueue, like the old runtime).
  ASSERT_GT(with.totals.pull_batches_sent, 0);
  ASSERT_GT(without.totals.pull_batches_sent, 0);
  EXPECT_GE(without.totals.pull_batches_sent, 4 * with.totals.pull_batches_sent)
      << "coalescing should cut wire messages by >= 4x (batched="
      << with.totals.pull_batches_sent << ", unbatched=" << without.totals.pull_batches_sent
      << ")";
  // The batched run actually aggregated: its median batch carries several ids.
  EXPECT_GT(with.totals.PullBatchSizePercentile(0.50), 1);
}

TEST_F(FaultInjectionTest, WallClockKillRecoversViaAdoption) {
  // Complements the message-count kill of integration_test: the timer-driven
  // trigger fires mid-job and a survivor adopts the dead worker's checkpoint.
  // A bigger graph and a throttled pipeline keep the job comfortably longer
  // than the kill timer, so the kill always lands mid-processing.
  const Graph g = RandomTestGraph(1000, 8.0, 23);
  const uint64_t expected = SerialTriangleCount(g);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gminer_fi_kill_ckpt").string();
  std::filesystem::create_directories(dir);
  JobConfig config = FaultConfig();
  config.enable_fault_tolerance = true;
  config.heartbeat_timeout_ms = 100;
  config.threads_per_worker = 1;  // throttle so the job outlasts the timer
  config.pipeline_depth = 8;
  RunOptions options;
  options.checkpoint_dir = dir;
  options.faults.seed = 17;
  // after_seeding: the countdown starts only once worker 2's checkpoint is
  // durable, so the kill lands mid-processing on every machine speed.
  options.faults.kills.push_back(
      {/*worker=*/2, /*after_messages=*/-1, /*after_seconds=*/0.005, /*after_seeding=*/true});
  TriangleCountJob job;
  Cluster cluster(config);
  const JobResult result = cluster.Run(g, job, options);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(TriangleCountJob::Count(result.final_aggregate), expected);
  EXPECT_GE(result.totals.failovers, 1);
  EXPECT_GT(result.totals.tasks_adopted, 0);
  EXPECT_GT(result.totals.recovery_wall_ns, 0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gminer
