// Tests for static load balancing: hash and BDG partitioning. The key
// properties: every vertex assigned exactly once, bounded imbalance, and the
// locality advantage of BDG over hashing that Figure 11 builds on.
#include <gtest/gtest.h>

#include <set>

#include "partition/bdg_partitioner.h"
#include "partition/hash_partitioner.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

struct PartitionCase {
  int k;
  uint64_t seed;
  VertexId n;
  double avg_deg;
};

class PartitionPropertyTest : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionPropertyTest, HashCoversAllVertices) {
  const auto& c = GetParam();
  const Graph g = RandomTestGraph(c.n, c.avg_deg, c.seed);
  HashPartitioner p;
  const auto owner = p.Partition(g, c.k);
  ASSERT_EQ(owner.size(), g.num_vertices());
  for (const WorkerId w : owner) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, c.k);
  }
}

TEST_P(PartitionPropertyTest, BdgCoversAllVertices) {
  const auto& c = GetParam();
  const Graph g = RandomTestGraph(c.n, c.avg_deg, c.seed);
  BdgPartitioner p(/*num_sources=*/16, /*bfs_depth=*/3, /*max_rounds=*/8, c.seed);
  const auto owner = p.Partition(g, c.k);
  ASSERT_EQ(owner.size(), g.num_vertices());
  for (const WorkerId w : owner) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, c.k);
  }
}

TEST_P(PartitionPropertyTest, BdgBlocksCoverEveryVertexOnce) {
  const auto& c = GetParam();
  const Graph g = RandomTestGraph(c.n, c.avg_deg, c.seed);
  BdgPartitioner p(16, 3, 8, c.seed);
  const auto blocks = p.ComputeBlocks(g);
  ASSERT_EQ(blocks.size(), g.num_vertices());
  for (const uint32_t b : blocks) {
    EXPECT_NE(b, 0xffffffffu) << "uncolored vertex escaped the CC fallback";
  }
}

TEST_P(PartitionPropertyTest, BdgImbalanceBounded) {
  const auto& c = GetParam();
  const Graph g = RandomTestGraph(c.n, c.avg_deg, c.seed);
  BdgPartitioner p(16, 2, 8, c.seed);
  const auto owner = p.Partition(g, c.k);
  const PartitionQuality q = EvaluatePartition(g, owner, c.k);
  // Blocks are small relative to |V|/k, so the greedy capacity term keeps
  // partitions near balanced.
  EXPECT_LT(q.imbalance, 1.0) << "worst partition more than 2x ideal size";
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionPropertyTest,
                         ::testing::Values(PartitionCase{2, 1, 300, 6},
                                           PartitionCase{4, 2, 500, 8},
                                           PartitionCase{4, 3, 1000, 4},
                                           PartitionCase{8, 4, 1000, 10},
                                           PartitionCase{3, 5, 64, 3}));

TEST(BdgPartitionerTest, PreservesLocalityVsHash) {
  // Community-structured graph: BDG should cut far fewer edges than hashing.
  GraphBuilder b(400);
  Rng rng(13);
  for (int comm = 0; comm < 8; ++comm) {
    const VertexId base = static_cast<VertexId>(comm * 50);
    for (int e = 0; e < 300; ++e) {
      b.AddEdge(base + rng.NextUint32(50), base + rng.NextUint32(50));
    }
  }
  for (int e = 0; e < 60; ++e) {  // sparse inter-community edges
    b.AddEdge(rng.NextUint32(400), rng.NextUint32(400));
  }
  const Graph g = b.Build();

  HashPartitioner hash;
  BdgPartitioner bdg(16, 3, 8, 7);
  const auto hq = EvaluatePartition(g, hash.Partition(g, 4), 4);
  const auto bq = EvaluatePartition(g, bdg.Partition(g, 4), 4);
  EXPECT_GT(bq.locality, hq.locality)
      << "BDG locality " << bq.locality << " vs hash " << hq.locality;
  EXPECT_GT(bq.locality, 0.5);
}

TEST(BdgPartitionerTest, SingleWorkerTrivial) {
  const Graph g = SmallTestGraph();
  BdgPartitioner p(4, 2, 4, 1);
  const auto owner = p.Partition(g, 1);
  for (const WorkerId w : owner) {
    EXPECT_EQ(w, 0);
  }
}

TEST(BdgPartitionerTest, ManyTinyComponentsHandledByCcFallback) {
  // 64 disconnected pairs: random source sampling cannot reach them all in
  // one round; the Hash-Min fallback must color the rest.
  GraphBuilder b(128);
  for (VertexId v = 0; v < 128; v += 2) {
    b.AddEdge(v, v + 1);
  }
  const Graph g = b.Build();
  BdgPartitioner p(/*num_sources=*/2, /*bfs_depth=*/1, /*max_rounds=*/2, 3);
  const auto blocks = p.ComputeBlocks(g);
  for (const uint32_t c : blocks) {
    EXPECT_NE(c, 0xffffffffu);
  }
  // Components must not be split across blocks: both endpoints share a color.
  for (VertexId v = 0; v < 128; v += 2) {
    EXPECT_EQ(blocks[v], blocks[v + 1]);
  }
}

TEST(PartitionQualityTest, EdgeCutComputation) {
  const Graph g = SmallTestGraph();
  std::vector<WorkerId> owner(g.num_vertices(), 0);
  const auto all_local = EvaluatePartition(g, owner, 2);
  EXPECT_DOUBLE_EQ(all_local.edge_cut_fraction, 0.0);
  EXPECT_DOUBLE_EQ(all_local.locality, 1.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    owner[v] = static_cast<WorkerId>(v % 2);
  }
  const auto split = EvaluatePartition(g, owner, 2);
  EXPECT_GT(split.edge_cut_fraction, 0.0);
}

}  // namespace
}  // namespace gminer
