// Unit tests for the common substrate: serialization, blocking queue,
// thread pool, RNG determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/thread_pool.h"

namespace gminer {
namespace {

TEST(SerializeTest, RoundTripsScalarsStringsVectors) {
  OutArchive out;
  out.Write<uint32_t>(42);
  out.Write<int64_t>(-7);
  out.Write<double>(3.25);
  out.WriteString("hello graph");
  out.WriteVector<uint32_t>({1, 2, 3, 5, 8});
  out.WriteVector<uint8_t>({});

  InArchive in(out.TakeBuffer());
  EXPECT_EQ(in.Read<uint32_t>(), 42u);
  EXPECT_EQ(in.Read<int64_t>(), -7);
  EXPECT_DOUBLE_EQ(in.Read<double>(), 3.25);
  EXPECT_EQ(in.ReadString(), "hello graph");
  EXPECT_EQ(in.ReadVector<uint32_t>(), (std::vector<uint32_t>{1, 2, 3, 5, 8}));
  EXPECT_TRUE(in.ReadVector<uint8_t>().empty());
  EXPECT_TRUE(in.AtEnd());
}

TEST(SerializeTest, NestedBytesRoundTrip) {
  OutArchive inner;
  inner.WriteString("payload");
  OutArchive outer;
  outer.WriteBytes(inner.buffer());
  outer.Write<uint16_t>(99);

  InArchive in(outer.TakeBuffer());
  InArchive nested(in.ReadBytes());
  EXPECT_EQ(nested.ReadString(), "payload");
  EXPECT_EQ(in.Read<uint16_t>(), 99);
}

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));  // rejected after close
  EXPECT_EQ(*q.Pop(), 1);   // drains remaining items
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.Pop().has_value());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
  EXPECT_TRUE(woke);
}

TEST(BlockingQueueTest, ConcurrentProducersConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 1000;
  constexpr int kProducers = 4;
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) {
        q.Push(i);
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto item = q.Pop()) {
        sum += *item;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<size_t>(p)].join();
  }
  q.Close();
  for (size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_EQ(sum.load(), int64_t{kProducers} * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(ThreadPoolTest, RunsAllSubmittedWork) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(pool, 257, [&hits](int64_t i) { hits[static_cast<size_t>(i)].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(1000000), b.NextUint64(1000000));
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(5);
  Rng child = parent.Fork();
  Rng parent2(5);
  // The fork consumes parent state, so the parent diverges from a fresh
  // stream; the child should not replay the parent seed either.
  int equal = 0;
  Rng fresh(5);
  for (int i = 0; i < 100; ++i) {
    if (child.NextUint64(1000) == fresh.NextUint64(1000)) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 20);
  (void)parent2;
}

TEST(RngTest, BoundsRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint32(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace gminer
