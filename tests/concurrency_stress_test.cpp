// Concurrency stress tests for the shared pipeline primitives. These are
// written to run under TSan (scripts/ci.sh, GMINER_SANITIZE=thread): the
// hammers are short enough for the regular suite but create the real
// multi-producer/multi-consumer interleavings the pipeline sees, so a data
// race or a lost wakeup shows up as a sanitizer report or a ctest TIMEOUT
// rather than a once-a-month CI flake.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/rcv_cache.h"
#include "core/task.h"
#include "core/task_store.h"
#include "storage/spill_file.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

// ---------------------------------------------------------------------------
// BlockingQueue: the CMQ/CPQ/mailbox backbone.
// ---------------------------------------------------------------------------

TEST(BlockingQueueStress, MpmcHammerDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;

  BlockingQueue<int> q;
  std::atomic<int64_t> popped_sum{0};
  std::atomic<int64_t> popped_count{0};

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.Pop()) {
        popped_sum.fetch_add(*item, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  q.Close();  // consumers drain the backlog, then see nullopt
  for (auto& t : consumers) {
    t.join();
  }

  const int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped_count.load(), n);
  EXPECT_EQ(popped_sum.load(), n * (n - 1) / 2);
}

TEST(BlockingQueueStress, CloseWakesEveryBlockedConsumer) {
  BlockingQueue<int> q;
  constexpr int kConsumers = 8;
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      EXPECT_FALSE(q.Pop().has_value());  // queue stays empty; must not hang
      woke.fetch_add(1);
    });
  }
  // Give the consumers a moment to actually block inside Pop() so Close()
  // exercises the notify path, not just the closed_ fast path.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  for (auto& t : consumers) {
    t.join();
  }
  EXPECT_EQ(woke.load(), kConsumers);
}

TEST(BlockingQueueStress, PushRacingCloseNeverLosesAcceptedItems) {
  // Items for which Push() returned true must all be popped before nullopt;
  // items rejected after Close() must never appear.
  for (int round = 0; round < 20; ++round) {
    BlockingQueue<int> q;
    std::atomic<int> accepted{0};
    std::thread producer([&] {
      for (int i = 0; i < 10000; ++i) {
        if (q.Push(i)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          break;  // closed; everything after would be rejected too
        }
      }
    });
    std::thread closer([&] { q.Close(); });
    int got = 0;
    while (q.Pop().has_value()) {
      ++got;
    }
    producer.join();
    closer.join();
    EXPECT_EQ(got, accepted.load());
  }
}

// ---------------------------------------------------------------------------
// ThreadPool: Submit / Shutdown / Wait.
// ---------------------------------------------------------------------------

// Regression test: Submit() used to ignore the Push() result, so a closure
// dropped by a racing Shutdown() leaked its pending count and a later Wait()
// blocked forever on work that would never run. On the broken code this test
// wedges and fails via the ctest TIMEOUT.
TEST(ThreadPoolStress, WaitReturnsAfterSubmitShutdownRace) {
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(4);
    std::atomic<bool> go{false};
    std::vector<std::thread> submitters;
    submitters.reserve(4);
    for (int s = 0; s < 4; ++s) {
      submitters.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < 200; ++i) {
          pool.Submit([] {});
        }
      });
    }
    go.store(true, std::memory_order_release);
    pool.Shutdown();  // races the submitters
    for (auto& t : submitters) {
      t.join();
    }
    // Every submitted closure either ran before the queue closed or was
    // rolled back; either way the pending count is balanced and Wait()
    // returns immediately instead of hanging.
    pool.Wait();
  }
}

TEST(ThreadPoolStress, ConcurrentSubmittersAllExecute) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 2500;
  std::atomic<int> executed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        pool.Submit([&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : submitters) {
    t.join();
  }
  pool.Wait();
  EXPECT_EQ(executed.load(), kSubmitters * kPerSubmitter);
  pool.Shutdown();
}

// ---------------------------------------------------------------------------
// RcvCache: retriever (AddRef/Insert), executor (Get/Release) and eviction.
// ---------------------------------------------------------------------------

TEST(RcvCacheStress, ConcurrentInsertGetReleaseEvict) {
  constexpr size_t kCapacity = 64;
  constexpr int kListeners = 3;
  constexpr int kRetrievers = 3;
  constexpr int kPerThread = 4000;
  constexpr VertexId kUniverse = 512;  // far above capacity: constant eviction

  RcvCache cache(kCapacity, nullptr, nullptr);
  std::atomic<int64_t> hits{0};

  // Listener role: install a vertex with one reference held on our behalf,
  // read it back while referenced (the pointer-validity protocol), release.
  std::vector<std::thread> threads;
  for (int t = 0; t < kListeners; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        VertexRecord r;
        r.id = static_cast<VertexId>(rng.NextUint64(kUniverse));
        r.adj = {1, 2, 3};
        const VertexId v = r.id;
        cache.Insert(std::move(r), /*initial_refs=*/1);
        const VertexRecord* rec = cache.Get(v);
        ASSERT_NE(rec, nullptr);  // referenced entries are never evicted
        ASSERT_EQ(rec->id, v);
        cache.Release(v);
      }
    });
  }
  // Retriever role: opportunistic hits on whatever is resident.
  for (int t = 0; t < kRetrievers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(2000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const VertexId v = static_cast<VertexId>(rng.NextUint64(kUniverse));
        if (cache.AddRefIfPresent(v)) {
          const VertexRecord* rec = cache.Get(v);
          ASSERT_NE(rec, nullptr);
          ASSERT_EQ(rec->id, v);
          cache.Release(v);
          hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // All references are released, so nothing can pin the cache above the
  // transient overshoot bound: resident ≤ capacity + in-flight inserters.
  EXPECT_LE(cache.size(), kCapacity + kListeners + kRetrievers);
  EXPECT_GT(hits.load(), 0);
  cache.Shutdown();
}

TEST(RcvCacheStress, BackpressureWakesWhenReferencesDrain) {
  // Fill the cache with referenced entries, park a waiter on
  // WaitBelowCapacity(), then release everything: the waiter must wake via
  // the eviction path, not time out.
  constexpr size_t kCapacity = 16;
  RcvCache cache(kCapacity, nullptr, nullptr);
  for (VertexId v = 0; v < static_cast<VertexId>(kCapacity); ++v) {
    VertexRecord r;
    r.id = v;
    cache.Insert(std::move(r), /*initial_refs=*/1);
  }
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    EXPECT_TRUE(cache.WaitBelowCapacity());
    woke.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(woke.load(std::memory_order_acquire));  // everything referenced
  for (VertexId v = 0; v < static_cast<VertexId>(kCapacity); ++v) {
    cache.Release(v);
  }
  waiter.join();
  EXPECT_TRUE(woke.load());
  cache.Shutdown();
}

// ---------------------------------------------------------------------------
// TaskStore: insert / pop / steal under spill pressure.
// ---------------------------------------------------------------------------

class StressTask : public Task<uint32_t> {
 public:
  void Update(UpdateContext& ctx) override {
    (void)ctx;
    MarkDead();
  }
};

std::unique_ptr<StressTask> MakeStressTask(uint32_t id) {
  auto t = std::make_unique<StressTask>();
  t->context() = id;
  t->subgraph().AddVertex(id);
  t->set_candidates({id, id + 1, id + 2});
  t->set_to_pull({id + 1, id + 2});
  return t;
}

TEST(TaskStoreStress, StealVsSpillVsPopConservesTasks) {
  const std::string spill_dir = MakeSpillDir("", 991);
  {
    TaskStore::Options options;
    options.block_capacity = 16;  // tiny: inserts constantly spill
    options.memory_blocks = 1;
    options.enable_lsh = true;
    options.spill_dir = spill_dir;
    TaskStore store(options, [] { return std::make_unique<StressTask>(); }, nullptr, nullptr);

    constexpr int kInserters = 2;
    constexpr int kBatches = 60;
    constexpr int kBatchSize = 24;  // > block_capacity: every batch spills
    constexpr int kTotal = kInserters * kBatches * kBatchSize;

    std::atomic<int> inserted{0};
    std::atomic<int> removed{0};
    std::atomic<bool> producers_done{false};

    std::vector<std::thread> threads;
    for (int t = 0; t < kInserters; ++t) {
      threads.emplace_back([&, t] {
        for (int b = 0; b < kBatches; ++b) {
          std::vector<std::unique_ptr<TaskBase>> batch;
          batch.reserve(kBatchSize);
          for (int i = 0; i < kBatchSize; ++i) {
            batch.push_back(
                MakeStressTask(static_cast<uint32_t>((t * kBatches + b) * kBatchSize + i)));
          }
          store.InsertBatch(std::move(batch));
          inserted.fetch_add(kBatchSize, std::memory_order_relaxed);
        }
      });
    }
    // Popper: drains like the candidate retriever.
    threads.emplace_back([&] {
      while (removed.load(std::memory_order_relaxed) < kTotal) {
        if (auto task = store.TryPop()) {
          removed.fetch_add(1, std::memory_order_relaxed);
        } else if (producers_done.load(std::memory_order_acquire) &&
                   store.ApproxSize() == 0) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
    });
    // Stealer: periodically takes in-memory batches like a MigrateTasks
    // command, then reinserts them (a migration round-trip).
    threads.emplace_back([&] {
      Rng rng(5);
      while (removed.load(std::memory_order_relaxed) < kTotal &&
             !(producers_done.load(std::memory_order_acquire) && store.ApproxSize() == 0)) {
        auto stolen =
            store.StealBatch(8, [](const TaskBase&) { return true; }, rng.NextUint64(2) == 0);
        if (!stolen.empty()) {
          store.InsertBatch(std::move(stolen));
        }
        std::this_thread::yield();
      }
    });

    for (int t = 0; t < kInserters; ++t) {
      threads[static_cast<size_t>(t)].join();
    }
    producers_done.store(true, std::memory_order_release);
    for (size_t t = kInserters; t < threads.size(); ++t) {
      threads[t].join();
    }

    EXPECT_EQ(inserted.load(), kTotal);
    // Steal round-trips move tasks but never destroy them: everything
    // inserted is eventually popped exactly once.
    EXPECT_EQ(removed.load() + static_cast<int>(store.ApproxSize()), kTotal);
  }
  RemoveSpillDir(spill_dir);
}

// The tracing merge intentionally races still-running writers (the network
// delivery thread outlives Network::Close): writers publish with a release
// store, Merge reads with an acquire load and copies only the published
// prefix. TSan must see no race, and every merged prefix must be coherent.
TEST(TraceRingStress, MergeRacesLiveWritersWithoutTearing) {
  constexpr int kWriters = 4;
  constexpr int kEvents = 20'000;
  Tracer tracer(/*ring_capacity=*/kEvents);
  std::atomic<bool> go{false};
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&tracer, &go, w] {
      TraceThreadScope scope(&tracer, w, "writer-" + std::to_string(w));
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (int i = 0; i < kEvents; ++i) {
        // Monotone payloads so a torn or re-ordered read is detectable.
        TraceInstant(TraceEventType::kNetSend, static_cast<uint64_t>(i), i);
      }
    });
  }

  std::thread merger([&tracer, &go, &done] {
    while (!go.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    while (!done.load(std::memory_order_acquire)) {
      const Tracer::MergedTrace merged = tracer.Merge();
      for (const auto& track : merged.tracks) {
        // Each track's published prefix counts 0..n-1 without gaps.
        for (size_t i = track.begin; i < track.end; ++i) {
          ASSERT_EQ(merged.events[i].arg, static_cast<int32_t>(i - track.begin));
        }
      }
    }
  });

  go.store(true, std::memory_order_release);
  for (auto& th : writers) {
    th.join();
  }
  done.store(true, std::memory_order_release);
  merger.join();

  const Tracer::MergedTrace final_merge = tracer.Merge();
#ifndef GMINER_TRACE_DISABLED
  EXPECT_EQ(final_merge.events.size(), static_cast<size_t>(kWriters * kEvents));
#endif
  EXPECT_EQ(final_merge.dropped, 0);
}

}  // namespace
}  // namespace gminer
