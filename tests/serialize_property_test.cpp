// Property-style serialization tests: randomized round trips for every
// serializable structure that crosses a worker boundary (tasks of each app,
// vertex records, subgraphs). A task that survives serialize → deserialize →
// serialize with identical bytes is safe to migrate, spill and checkpoint.
#include <gtest/gtest.h>

#include "apps/cd.h"
#include "apps/gc.h"
#include "apps/gm.h"
#include "apps/mcf.h"
#include "apps/mcf_split.h"
#include "apps/tc.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

std::vector<VertexId> RandomIds(Rng& rng, size_t max_count) {
  std::vector<VertexId> ids(rng.NextUint64(max_count + 1));
  for (auto& id : ids) {
    id = rng.NextUint32(100000);
  }
  return ids;
}

void FillRandomTaskFields(TaskBase& task, Rng& rng) {
  for (int i = 0; i < 5; ++i) {
    task.subgraph().AddVertex(rng.NextUint32(1000));
  }
  task.subgraph().AddEdge(rng.NextUint32(1000), rng.NextUint32(1000));
  task.set_candidates(RandomIds(rng, 20));
  task.set_to_pull(RandomIds(rng, 10));
  for (uint64_t r = rng.NextUint64(4); r > 0; --r) {
    task.advance_round();
  }
}

// Round trip: serialize, deserialize into a fresh instance from the job
// factory, re-serialize, and require byte equality.
void ExpectStableRoundTrip(const TaskBase& original, JobBase& job) {
  OutArchive first;
  original.Serialize(first);
  std::unique_ptr<TaskBase> copy = job.MakeTask();
  InArchive in(first.buffer().data(), first.buffer().size());
  copy->Deserialize(in);
  EXPECT_TRUE(in.AtEnd()) << "trailing bytes after deserialization";
  OutArchive second;
  copy->Serialize(second);
  EXPECT_EQ(first.buffer(), second.buffer());
}

class TaskRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TaskRoundTripTest, TriangleCountTask) {
  Rng rng(GetParam());
  TriangleCountJob job;
  TriangleCountTask task;
  task.context() = rng.NextUint32(5000);
  FillRandomTaskFields(task, rng);
  ExpectStableRoundTrip(task, job);
}

TEST_P(TaskRoundTripTest, MaxCliqueTask) {
  Rng rng(GetParam());
  MaxCliqueJob job;
  MaxCliqueTask task;
  task.context() = rng.NextUint32(5000);
  FillRandomTaskFields(task, rng);
  ExpectStableRoundTrip(task, job);
}

TEST_P(TaskRoundTripTest, SplittingCliqueTask) {
  Rng rng(GetParam());
  SplittingCliqueJob job;
  SplittingCliqueTask task;
  task.clique_size = rng.NextUint32(10) + 1;
  task.depth = static_cast<int32_t>(rng.NextUint32(4));
  FillRandomTaskFields(task, rng);
  ExpectStableRoundTrip(task, job);
}

TEST_P(TaskRoundTripTest, GraphMatchTask) {
  Rng rng(GetParam());
  GraphMatchJob job(Fig1Pattern());
  GraphMatchTask task;
  for (uint64_t i = rng.NextUint64(8); i > 0; --i) {
    task.frontier().push_back({static_cast<int32_t>(rng.NextUint32(5)),
                               rng.NextUint32(1000), rng.NextUint32(1000)});
  }
  FillRandomTaskFields(task, rng);
  ExpectStableRoundTrip(task, job);
}

TEST_P(TaskRoundTripTest, CommunityTask) {
  Rng rng(GetParam());
  CommunityJob job;
  CommunityTask task;
  task.seed = rng.NextUint32(5000);
  task.seed_attrs = {rng.NextUint32(10), rng.NextUint32(10), rng.NextUint32(10)};
  FillRandomTaskFields(task, rng);
  ExpectStableRoundTrip(task, job);
}

TEST_P(TaskRoundTripTest, FocusedClusterTask) {
  Rng rng(GetParam());
  GcParams params;
  params.exemplars = {1, 2};
  params.weights = {0.5, 0.5};
  FocusedClusteringJob job(params);
  FocusedClusterTask task;
  task.seed = rng.NextUint32(5000);
  for (uint64_t i = rng.NextUint64(4) + 1; i > 0; --i) {
    FocusedClusterTask::Member m;
    m.id = rng.NextUint32(5000);
    m.attrs = {rng.NextUint32(10), rng.NextUint32(10)};
    m.adj = RandomIds(rng, 12);
    task.members.push_back(std::move(m));
  }
  task.banned = RandomIds(rng, 6);
  FillRandomTaskFields(task, rng);
  ExpectStableRoundTrip(task, job);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace gminer
