// Error-path coverage: the runtime's invariant checks must fire loudly on
// misuse rather than corrupt state silently.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "apps/tc.h"
#include "common/serialize.h"
#include "core/cluster.h"
#include "graph/builder.h"
#include "graph/io.h"
#include "lsh/minhash.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

TEST(ErrorPathDeathTest, ArchiveUnderflowAborts) {
  OutArchive out;
  out.Write<uint32_t>(7);
  InArchive in(out.TakeBuffer());
  in.Read<uint32_t>();
  EXPECT_DEATH(in.Read<uint64_t>(), "underflow");
}

TEST(ErrorPathDeathTest, ArchiveVectorUnderflowAborts) {
  OutArchive out;
  out.Write<uint64_t>(1000);  // claims 1000 elements, provides none
  InArchive in(out.TakeBuffer());
  EXPECT_DEATH(in.ReadVector<uint32_t>(), "underflow");
}

TEST(ErrorPathDeathTest, MissingGraphFileAborts) {
  EXPECT_DEATH(LoadEdgeList("/nonexistent/path/graph.el"), "cannot open");
}

TEST(ErrorPathDeathTest, CorruptAdjacencyHeaderAborts) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gminer_bad_header.adj").string();
  {
    std::ofstream out(path);
    out << "NOT_A_HEADER 5 0 0\n";
  }
  EXPECT_DEATH(LoadAdjacency(path), "bad adjacency header");
  std::filesystem::remove(path);
}

TEST(ErrorPathTest, BuilderIgnoresOutOfRangeEdges) {
  GraphBuilder b(4);
  b.AddEdge(0, 99);  // silently dropped: out of range
  b.AddEdge(99, 0);
  b.AddEdge(1, 2);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
}

// --- Job-submission validation: malformed configs must be rejected before
// anything is deployed (kConfigError), not wedge or crash mid-run. ---

JobStatus SubmitWith(JobConfig config, const RunOptions& options = {}) {
  const Graph g = SmallTestGraph();
  TriangleCountJob job;
  return Cluster(std::move(config)).Run(g, job, options).status;
}

TEST(ConfigValidationTest, RejectsNonPositiveClusterShape) {
  JobConfig config = FastTestConfig();
  config.num_workers = 0;
  EXPECT_EQ(SubmitWith(config), JobStatus::kConfigError);
  config = FastTestConfig();
  config.threads_per_worker = -1;
  EXPECT_EQ(SubmitWith(config), JobStatus::kConfigError);
  config = FastTestConfig();
  config.pipeline_depth = 0;
  EXPECT_EQ(SubmitWith(config), JobStatus::kConfigError);
}

TEST(ConfigValidationTest, RejectsDegeneratePullBatchingKnobs) {
  JobConfig config = FastTestConfig();
  config.pull_batch_bytes = 0;  // size trigger could never fire
  EXPECT_EQ(SubmitWith(config), JobStatus::kConfigError);
  config = FastTestConfig();
  config.pull_flush_us = 0;  // deadline trigger could never fire
  EXPECT_EQ(SubmitWith(config), JobStatus::kConfigError);
  config = FastTestConfig();
  config.pull_queue_bytes = config.pull_batch_bytes - 1;  // bound < one batch
  EXPECT_EQ(SubmitWith(config), JobStatus::kConfigError);
}

TEST(ConfigValidationTest, RejectsFaultToleranceWithStealing) {
  JobConfig config = FastTestConfig();
  config.enable_fault_tolerance = true;
  config.enable_stealing = true;  // checkpoints are seed-granular
  config.heartbeat_timeout_ms = 100;
  EXPECT_EQ(SubmitWith(config), JobStatus::kConfigError);
}

TEST(ConfigValidationTest, RejectsTightHeartbeatWindow) {
  JobConfig config = FastTestConfig();
  config.enable_fault_tolerance = true;
  config.enable_stealing = false;
  config.progress_interval_ms = 50;
  config.heartbeat_timeout_ms = 60;  // < 2 reports: one hiccup = false positive
  EXPECT_EQ(SubmitWith(config), JobStatus::kConfigError);
}

TEST(ConfigValidationTest, RejectsOutOfRangeFaultPlan) {
  JobConfig config = FastTestConfig();
  RunOptions options;
  options.faults.drop_probability = 1.5;
  EXPECT_EQ(SubmitWith(config, options), JobStatus::kConfigError);

  options = {};
  options.faults.delay_probability = 0.5;
  options.faults.delay_min_us = 100;
  options.faults.delay_max_us = 10;  // inverted range
  EXPECT_EQ(SubmitWith(config, options), JobStatus::kConfigError);
}

TEST(ConfigValidationTest, RejectsKillsWithoutRecoveryPath) {
  FaultPlan::Kill kill;
  kill.worker = 0;
  kill.after_messages = 1;

  // No fault tolerance: nobody would detect the death.
  JobConfig config = FastTestConfig();
  RunOptions options;
  options.faults.kills.push_back(kill);
  EXPECT_EQ(SubmitWith(config, options), JobStatus::kConfigError);

  // Fault tolerance but no checkpoint: nothing to adopt from.
  config.enable_fault_tolerance = true;
  config.enable_stealing = false;
  config.heartbeat_timeout_ms = 100;
  EXPECT_EQ(SubmitWith(config, options), JobStatus::kConfigError);

  // Kill naming a worker outside the cluster.
  options.checkpoint_dir =
      (std::filesystem::temp_directory_path() / "gminer_val_ckpt").string();
  options.faults.kills[0].worker = 99;
  EXPECT_EQ(SubmitWith(config, options), JobStatus::kConfigError);
  std::filesystem::remove_all(options.checkpoint_dir);
}

TEST(ConfigValidationTest, RejectsBadRecoverAssignment) {
  JobConfig config = FastTestConfig(3, 1);
  RunOptions options;
  options.recover_assignment = {0, 1};  // wrong size for 3 workers
  EXPECT_EQ(SubmitWith(config, options), JobStatus::kConfigError);
  options.recover_assignment = {0, 1, 7};  // out of range
  EXPECT_EQ(SubmitWith(config, options), JobStatus::kConfigError);
}

// --- Corrupted / truncated checkpoints must fail the run gracefully with
// kCheckpointError, never crash or silently return partial results. ---

class CheckpointCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "gminer_corrupt_ckpt").string();
    std::filesystem::remove_all(dir_);
    graph_ = RandomTestGraph(200, 6.0, 5);
    JobConfig config = FastTestConfig(2, 1);
    RunOptions options;
    options.checkpoint_dir = dir_;
    TriangleCountJob job;
    ASSERT_EQ(Cluster(config).Run(graph_, job, options).status, JobStatus::kOk);
    checkpoint_ = dir_ + "/worker_1.tasks";
    ASSERT_TRUE(std::filesystem::exists(checkpoint_));
    ASSERT_GT(std::filesystem::file_size(checkpoint_), 0u);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  JobStatus Recover() {
    JobConfig config = FastTestConfig(2, 1);
    RunOptions options;
    options.recover_dir = dir_;
    TriangleCountJob job;
    return Cluster(config).Run(graph_, job, options).status;
  }

  std::string dir_;
  std::string checkpoint_;
  Graph graph_;
};

TEST_F(CheckpointCorruptionTest, TruncatedCheckpointFailsGracefully) {
  std::filesystem::resize_file(checkpoint_, std::filesystem::file_size(checkpoint_) / 2);
  EXPECT_EQ(Recover(), JobStatus::kCheckpointError);
}

TEST_F(CheckpointCorruptionTest, EmptyCheckpointFailsGracefully) {
  std::filesystem::resize_file(checkpoint_, 0);
  EXPECT_EQ(Recover(), JobStatus::kCheckpointError);
}

TEST_F(CheckpointCorruptionTest, GarbageHeaderFailsGracefully) {
  std::ofstream out(checkpoint_, std::ios::binary | std::ios::trunc);
  out << "this is not a spill block";
  out.close();
  EXPECT_EQ(Recover(), JobStatus::kCheckpointError);
}

TEST_F(CheckpointCorruptionTest, MissingCheckpointFailsGracefully) {
  std::filesystem::remove(checkpoint_);
  EXPECT_EQ(Recover(), JobStatus::kCheckpointError);
}

TEST(ErrorPathTest, EdgeListLoaderSkipsCommentsAndGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gminer_messy.el").string();
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "0 1\n"
        << "\n"
        << "not numbers\n"
        << "1 2\n";
  }
  const Graph g = LoadEdgeList(path);
  EXPECT_EQ(g.num_edges(), 2u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gminer
