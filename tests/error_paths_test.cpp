// Error-path coverage: the runtime's invariant checks must fire loudly on
// misuse rather than corrupt state silently.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/serialize.h"
#include "graph/builder.h"
#include "graph/io.h"
#include "lsh/minhash.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

TEST(ErrorPathDeathTest, ArchiveUnderflowAborts) {
  OutArchive out;
  out.Write<uint32_t>(7);
  InArchive in(out.TakeBuffer());
  in.Read<uint32_t>();
  EXPECT_DEATH(in.Read<uint64_t>(), "underflow");
}

TEST(ErrorPathDeathTest, ArchiveVectorUnderflowAborts) {
  OutArchive out;
  out.Write<uint64_t>(1000);  // claims 1000 elements, provides none
  InArchive in(out.TakeBuffer());
  EXPECT_DEATH(in.ReadVector<uint32_t>(), "underflow");
}

TEST(ErrorPathDeathTest, MissingGraphFileAborts) {
  EXPECT_DEATH(LoadEdgeList("/nonexistent/path/graph.el"), "cannot open");
}

TEST(ErrorPathDeathTest, CorruptAdjacencyHeaderAborts) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gminer_bad_header.adj").string();
  {
    std::ofstream out(path);
    out << "NOT_A_HEADER 5 0 0\n";
  }
  EXPECT_DEATH(LoadAdjacency(path), "bad adjacency header");
  std::filesystem::remove(path);
}

TEST(ErrorPathTest, BuilderIgnoresOutOfRangeEdges) {
  GraphBuilder b(4);
  b.AddEdge(0, 99);  // silently dropped: out of range
  b.AddEdge(99, 0);
  b.AddEdge(1, 2);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(ErrorPathTest, EdgeListLoaderSkipsCommentsAndGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gminer_messy.el").string();
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "0 1\n"
        << "\n"
        << "not numbers\n"
        << "1 2\n";
  }
  const Graph g = LoadEdgeList(path);
  EXPECT_EQ(g.num_edges(), 2u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gminer
