// Correctness of the five mining applications on the G-Miner runtime,
// compared against the independent serial oracles.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/cd.h"
#include "apps/dsg.h"
#include "apps/gc.h"
#include "apps/gm.h"
#include "apps/kclique.h"
#include "apps/mcf.h"
#include "apps/quasi_clique.h"
#include "apps/mcf_split.h"
#include "apps/tc.h"
#include "baselines/serial.h"
#include "core/cluster.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

TEST(McfTest, SmallGraphFindsThe4Clique) {
  const Graph g = SmallTestGraph();
  MaxCliqueJob job;
  Cluster cluster(FastTestConfig());
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(MaxCliqueJob::MaxCliqueSize(result.final_aggregate), 4u);
  EXPECT_EQ(SerialMaxClique(g), 4u);
}

class McfRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(McfRandomTest, MatchesSerialOracle) {
  Rng rng(GetParam());
  const Graph g = GenerateBarabasiAlbert(250, 8, rng);
  const uint64_t expected = SerialMaxClique(g);
  MaxCliqueJob job;
  Cluster cluster(FastTestConfig());
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(MaxCliqueJob::MaxCliqueSize(result.final_aggregate), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McfRandomTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(GmTest, Fig1PatternOnHandBuiltGraph) {
  // Data graph mirroring Fig. 1: labels a=0,...,g=6.
  GraphBuilder b(10);
  b.AddEdge(3, 4);
  b.AddEdge(3, 5);
  b.AddEdge(4, 5);
  b.AddEdge(5, 6);
  b.AddEdge(5, 7);
  b.AddEdge(5, 8);
  b.AddEdge(5, 9);
  b.AddEdge(3, 1);
  b.AddEdge(3, 2);
  b.AddEdge(0, 1);
  //            0    1    2    3    4    5    6    7    8    9
  b.SetLabels({1, 4, 3, 0, 1, 2, 3, 4, 3, 5});
  const Graph g = b.Build();
  const TreePattern pattern = Fig1Pattern();
  const uint64_t expected = SerialGraphMatch(g, pattern);
  GraphMatchJob job(pattern);
  Cluster cluster(FastTestConfig());
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(GraphMatchJob::MatchCount(result.final_aggregate), expected);
  EXPECT_GT(expected, 0u);
}

struct GmCase {
  uint64_t seed;
  int labels;
};

class GmRandomTest : public ::testing::TestWithParam<GmCase> {};

TEST_P(GmRandomTest, MatchesSerialOracle) {
  Rng rng(GetParam().seed);
  Graph g = GenerateErdosRenyi(400, 8.0, rng);
  g = WithUniformLabels(g, GetParam().labels, rng);
  const TreePattern pattern = Fig1Pattern();
  const uint64_t expected = SerialGraphMatch(g, pattern);
  GraphMatchJob job(pattern);
  Cluster cluster(FastTestConfig());
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(GraphMatchJob::MatchCount(result.final_aggregate), expected);
}

TEST_P(GmRandomTest, PerSeedBaselineAgreesWithDp) {
  Rng rng(GetParam().seed);
  Graph g = GenerateErdosRenyi(300, 8.0, rng);
  g = WithUniformLabels(g, GetParam().labels, rng);
  const TreePattern pattern = Fig1Pattern();
  EXPECT_EQ(SerialGraphMatchPerSeed(g, pattern), SerialGraphMatch(g, pattern));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GmRandomTest,
                         ::testing::Values(GmCase{1, 7}, GmCase{2, 7}, GmCase{3, 4},
                                           GmCase{4, 3}, GmCase{5, 7}));

TEST(GmTest, DeepPatternMultiRound) {
  // A 4-level path pattern exercises several pull rounds per task.
  Rng rng(11);
  Graph g = WithUniformLabels(GenerateErdosRenyi(300, 6.0, rng), 4, rng);
  const TreePattern pattern =
      TreePattern::Build({{0, -1}, {1, 0}, {2, 1}, {3, 2}});
  const uint64_t expected = SerialGraphMatch(g, pattern);
  GraphMatchJob job(pattern);
  Cluster cluster(FastTestConfig(4, 2));
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(GraphMatchJob::MatchCount(result.final_aggregate), expected);
}

class CdRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CdRandomTest, MatchesSerialOracle) {
  Rng rng(GetParam());
  Graph g = GenerateBarabasiAlbert(300, 6, rng);
  g = WithPlantedAttributeGroups(g, 6, 5, 8, 0.8, rng);
  CdParams params;
  params.min_similarity = 0.4;
  params.min_size = 3;
  const uint64_t expected = SerialCommunityCount(g, params);
  CommunityJob job(params);
  Cluster cluster(FastTestConfig());
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(CommunityJob::CommunityCount(result.final_aggregate), expected);
  EXPECT_GT(expected, 0u) << "test graph should contain communities";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdRandomTest, ::testing::Values(1, 2, 3));

class GcRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GcRandomTest, MatchesSerialOracleClusters) {
  Rng rng(GetParam());
  // Community topology with aligned attribute groups: focused clusters have
  // real structure to find (BA graphs are expanders — nothing to cluster).
  Graph g = GenerateCommunityGraph(8, 50, 0.25, /*inter_edges=*/200, rng);
  g = WithPlantedAttributeGroups(g, 8, 5, 8, 0.9, rng);
  g = ShuffleVertexIds(g, rng);  // ids must carry no community information
  GcParams params = MakeGcParams(g, 6, GetParam());
  params.emit_outputs = true;
  const auto expected = SerialFocusedClusters(g, params);
  EXPECT_FALSE(expected.empty()) << "workload should produce focused clusters";
  FocusedClusteringJob job(params);
  Cluster cluster(FastTestConfig());
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(FocusedClusteringJob::ClusterCount(result.final_aggregate), expected.size());
  // Each reported cluster must match the oracle exactly (same members).
  std::vector<std::vector<VertexId>> reported;
  for (const auto& line : result.outputs) {
    const auto pos = line.find("members=");
    ASSERT_NE(pos, std::string::npos);
    std::vector<VertexId> members;
    VertexId current = 0;
    bool in_number = false;
    for (const char c : line.substr(pos + 8)) {
      if (c == ',') {
        members.push_back(current);
        current = 0;
        in_number = false;
      } else {
        current = current * 10 + static_cast<VertexId>(c - '0');
        in_number = true;
      }
    }
    if (in_number) {
      members.push_back(current);
    }
    std::sort(members.begin(), members.end());
    reported.push_back(std::move(members));
  }
  std::sort(reported.begin(), reported.end());
  auto sorted_expected = expected;
  std::sort(sorted_expected.begin(), sorted_expected.end());
  EXPECT_EQ(reported, sorted_expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcRandomTest, ::testing::Values(1, 2, 3));

// Recursive task splitting (the paper's future-work extension): big
// candidate sets split into independent child tasks via ctx.Spawn(); the
// result must still match the oracle and children must actually be created.
class McfSplitTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(McfSplitTest, SplittingMatchesSerialOracle) {
  Rng rng(GetParam());
  const Graph g = GenerateBarabasiAlbert(400, 12, rng);
  const uint64_t expected = SerialMaxClique(g);
  McfSplitParams params;
  params.split_threshold = 16;  // force splitting on this graph
  params.max_split_depth = 2;
  SplittingCliqueJob job(params);
  Cluster cluster(FastTestConfig(3, 2));
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(SplittingCliqueJob::MaxCliqueSize(result.final_aggregate), expected);
  EXPECT_GT(result.totals.tasks_created, static_cast<int64_t>(g.num_vertices()))
      << "no child tasks were spawned";
  EXPECT_EQ(result.totals.tasks_created, result.totals.tasks_completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McfSplitTest, ::testing::Values(1, 2, 3));

// k-clique counting (enumeration category of §4.1): distributed counts must
// match the serial oracle for several k; k=3 must equal the triangle count.
struct KCliqueCase {
  uint32_t k;
  uint64_t seed;
};

class KCliqueTestP : public ::testing::TestWithParam<KCliqueCase> {};

TEST_P(KCliqueTestP, MatchesSerialOracle) {
  Rng rng(GetParam().seed);
  const Graph g = GenerateBarabasiAlbert(300, 7, rng);
  const uint64_t expected = SerialKCliqueCount(g, GetParam().k);
  KCliqueJob job(GetParam().k);
  Cluster cluster(FastTestConfig());
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(KCliqueJob::Count(result.final_aggregate), expected);
  if (GetParam().k == 3) {
    EXPECT_EQ(expected, SerialTriangleCount(g)) << "3-cliques are triangles";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KCliqueTestP,
                         ::testing::Values(KCliqueCase{3, 1}, KCliqueCase{4, 1},
                                           KCliqueCase{5, 1}, KCliqueCase{4, 2},
                                           KCliqueCase{6, 3}));

// Densest-neighborhood subgraph (subgraph-finding category of §4.1): the
// distributed peel must match the serial oracle, and on a graph with a
// planted clique the best density must reach the clique's density.
class DsgTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DsgTest, MatchesSerialOracle) {
  Rng rng(GetParam());
  Graph g = GenerateErdosRenyi(400, 6.0, rng);
  const DsgParams params;
  const double expected = SerialDensestNeighborhood(g, params);
  DensestSubgraphJob job(params);
  Cluster cluster(FastTestConfig());
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_DOUBLE_EQ(DensestSubgraphJob::BestDensity(result.final_aggregate), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsgTest, ::testing::Values(1, 2, 3));

TEST(DsgTest, FindsPlantedClique) {
  // A 10-clique inside a sparse graph: density (45 edges / 10 vertices) = 4.5.
  GraphBuilder b(200);
  Rng rng(5);
  for (VertexId i = 0; i < 10; ++i) {
    for (VertexId j = i + 1; j < 10; ++j) {
      b.AddEdge(i, j);
    }
  }
  for (int e = 0; e < 300; ++e) {
    b.AddEdge(rng.NextUint32(200), rng.NextUint32(200));
  }
  const Graph g = b.Build();
  DensestSubgraphJob job;
  Cluster cluster(FastTestConfig());
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_GE(DensestSubgraphJob::BestDensity(result.final_aggregate), 4.5);
}

// γ-quasi-clique detection (enumeration category of §4.1): distributed count
// equals the oracle; γ = 1 degenerates to "the neighborhood is a clique".
struct QcCase {
  double gamma;
  uint64_t seed;
};

class QuasiCliqueTestP : public ::testing::TestWithParam<QcCase> {};

TEST_P(QuasiCliqueTestP, MatchesSerialOracle) {
  Rng rng(GetParam().seed);
  const Graph g = GenerateCommunityGraph(10, 40, 0.5, 400, rng);
  QuasiCliqueParams params;
  params.gamma = GetParam().gamma;
  params.min_size = 5;
  const uint64_t expected = SerialQuasiCliqueCount(g, params);
  QuasiCliqueJob job(params);
  Cluster cluster(FastTestConfig());
  const JobResult result = cluster.Run(g, job);
  ASSERT_EQ(result.status, JobStatus::kOk);
  EXPECT_EQ(QuasiCliqueJob::Count(result.final_aggregate), expected);
  EXPECT_GT(expected, 0u) << "dense communities should contain quasi-cliques";
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuasiCliqueTestP,
                         ::testing::Values(QcCase{0.6, 1}, QcCase{0.7, 1}, QcCase{0.8, 2},
                                           QcCase{0.7, 3}));

TEST(TreePatternTest, BuildComputesLevelsAndChildren) {
  const TreePattern p = Fig1Pattern();
  EXPECT_EQ(p.nodes.size(), 5u);
  EXPECT_EQ(p.max_depth(), 2);
  EXPECT_EQ(p.levels[0], (std::vector<int>{0}));
  EXPECT_EQ(p.levels[1], (std::vector<int>{1, 2}));
  EXPECT_EQ(p.levels[2], (std::vector<int>{3, 4}));
  EXPECT_EQ(p.nodes[2].children, (std::vector<int>{3, 4}));
  EXPECT_EQ(p.parent[3], 2);
}

}  // namespace
}  // namespace gminer
