// Protocol-level tests of the master (Fig. 4): steal scheduling
// (REQ → MIGRATE / No_Task), aggregator folding and broadcast, termination
// detection, and budget cancellation — driven by hand-crafted messages over
// a real Network, with the test playing the workers.
#include <gtest/gtest.h>

#include <thread>

#include "apps/tc.h"
#include "common/config.h"
#include "core/master.h"
#include "tests/test_util.h"

namespace gminer {
namespace {

class MasterProtocolTest : public ::testing::Test {
 protected:
  static constexpr int kWorkers = 2;
  static constexpr WorkerId kMaster = kWorkers;

  MasterProtocolTest()
      : config_(MakeConfig()),
        net_(kWorkers + 1, {&c0_, &c1_, nullptr}),
        master_(config_, &net_, &state_, &job_) {}

  static JobConfig MakeConfig() {
    JobConfig config = FastTestConfig(kWorkers, 1);
    config.steal_batch = 8;
    return config;
  }

  void StartMaster() {
    master_thread_ = std::thread([this] { final_ = master_.Run(); });
  }

  // Plays both workers' shutdown handshake and joins the master. Each worker
  // reports `final_values[w]` as its final aggregator partial.
  void FinishMaster(std::vector<uint64_t> final_values = {0, 0}) {
    state_.live_tasks.store(0);
    // A progress tick makes the master re-evaluate completion.
    SendProgress(0, 0, 0, 0);
    for (WorkerId w = 0; w < kWorkers; ++w) {
      // Consume messages until the shutdown arrives, then send the final
      // partial as a worker's listener would.
      while (true) {
        auto msg = net_.Receive(w);
        ASSERT_TRUE(msg.has_value());
        if (msg->type == MessageType::kShutdown) {
          break;
        }
      }
      OutArchive final_report;
      final_report.Write<uint8_t>(1);
      final_report.Write<uint64_t>(final_values[static_cast<size_t>(w)]);
      net_.Send(w, kMaster, MessageType::kAggPartial, final_report.TakeBuffer());
    }
    master_thread_.join();
  }

  void SendProgress(WorkerId from, uint64_t inactive, uint64_t ready, int64_t local,
                    bool seeded = true) {
    OutArchive out;
    out.Write<uint64_t>(inactive);
    out.Write<uint64_t>(ready);
    out.Write<int64_t>(local);
    out.Write<uint8_t>(seeded ? 1 : 0);  // piggybacked seeding status
    net_.Send(from, kMaster, MessageType::kProgressReport, out.TakeBuffer());
  }

  void SendSeedDone(WorkerId from) { net_.Send(from, kMaster, MessageType::kSeedDone, {}); }

  JobConfig config_;
  WorkerCounters c0_;
  WorkerCounters c1_;
  Network net_;
  ClusterState state_;
  TriangleCountJob job_;
  Master master_;
  std::thread master_thread_;
  std::vector<uint8_t> final_;
};

TEST_F(MasterProtocolTest, StealRequestRoutedToMostLoadedWorker) {
  state_.live_tasks.store(100);
  StartMaster();
  SendSeedDone(0);
  SendSeedDone(1);
  SendProgress(0, /*inactive=*/200, 0, 200);  // worker 0 is heavily loaded
  SendProgress(1, /*inactive=*/0, 0, 0);
  net_.Send(1, kMaster, MessageType::kStealRequest, {});

  // Worker 0 must receive a MIGRATE command naming worker 1 as destination.
  while (true) {
    auto msg = net_.Receive(0);
    ASSERT_TRUE(msg.has_value());
    if (msg->type == MessageType::kMigrateCommand) {
      InArchive in(std::move(msg->payload));
      EXPECT_EQ(in.Read<WorkerId>(), 1);
      EXPECT_EQ(in.Read<int32_t>(), config_.steal_batch);
      break;
    }
  }
  FinishMaster();
}

TEST_F(MasterProtocolTest, StealRequestDeclinedWhenNobodyLoaded) {
  state_.live_tasks.store(10);
  StartMaster();
  SendSeedDone(0);
  SendSeedDone(1);
  SendProgress(0, /*inactive=*/2, 0, 2);  // below the steal batch: not worth it
  SendProgress(1, 0, 0, 0);
  net_.Send(1, kMaster, MessageType::kStealRequest, {});

  while (true) {
    auto msg = net_.Receive(1);
    ASSERT_TRUE(msg.has_value());
    if (msg->type == MessageType::kNoTask) {
      break;
    }
  }
  FinishMaster();
}

TEST_F(MasterProtocolTest, AggregatorPartialsFoldAndBroadcast) {
  state_.live_tasks.store(5);
  StartMaster();
  SendSeedDone(0);
  SendSeedDone(1);
  // Worker 0 reports a partial sum of 7, worker 1 a partial sum of 35.
  for (const auto& [w, value] : {std::pair<WorkerId, uint64_t>{0, 7}, {1, 35}}) {
    OutArchive out;
    out.Write<uint8_t>(0);
    out.Write<uint64_t>(value);
    net_.Send(w, kMaster, MessageType::kAggPartial, out.TakeBuffer());
  }
  // Eventually worker 0 observes a folded global value of 42 broadcast back.
  bool saw_42 = false;
  for (int i = 0; i < 20 && !saw_42; ++i) {
    auto msg = net_.Receive(0);
    ASSERT_TRUE(msg.has_value());
    if (msg->type == MessageType::kAggGlobal) {
      InArchive raw(msg->payload.data(), msg->payload.size());
      saw_42 = raw.Read<uint64_t>() == 42;
    }
  }
  EXPECT_TRUE(saw_42) << "folded global (7 + 35) never broadcast";
  // Cumulative partials are replaced, not added: the final fold must combine
  // exactly the last partial of each worker.
  FinishMaster({7, 35});
  EXPECT_EQ(SumAggregator::DecodeFinal(final_), 42u);
}

TEST_F(MasterProtocolTest, TimeBudgetCancelsJob) {
  config_.time_budget_seconds = 0.02;
  Master master(config_, &net_, &state_, &job_);
  state_.live_tasks.store(1);  // never completes on its own
  std::thread t([&master, this] { final_ = master.Run(); });
  // Keep ticking so the master re-checks its budget.
  for (int i = 0; i < 50 && !state_.cancelled.load(); ++i) {
    SendProgress(0, 1, 0, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(state_.cancelled.load());
  EXPECT_EQ(state_.final_status(), JobStatus::kTimeout);
  // Complete the shutdown handshake.
  for (WorkerId w = 0; w < kWorkers; ++w) {
    while (true) {
      auto msg = net_.Receive(w);
      ASSERT_TRUE(msg.has_value());
      if (msg->type == MessageType::kShutdown) {
        break;
      }
    }
    OutArchive final_report;
    final_report.Write<uint8_t>(1);
    SumAggregator agg;
    agg.SerializePartial(final_report);
    net_.Send(w, kMaster, MessageType::kAggPartial, final_report.TakeBuffer());
  }
  t.join();
}

}  // namespace
}  // namespace gminer
