# Empty dependencies file for bench_fig11_bdg.
# This may be replaced when dependencies are built.
