file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_bdg.dir/bench_fig11_bdg.cpp.o"
  "CMakeFiles/bench_fig11_bdg.dir/bench_fig11_bdg.cpp.o.d"
  "bench_fig11_bdg"
  "bench_fig11_bdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_bdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
