file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_heavy.dir/bench_table5_heavy.cpp.o"
  "CMakeFiles/bench_table5_heavy.dir/bench_table5_heavy.cpp.o.d"
  "bench_table5_heavy"
  "bench_table5_heavy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_heavy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
