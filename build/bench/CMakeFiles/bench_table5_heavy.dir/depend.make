# Empty dependencies file for bench_table5_heavy.
# This may be replaced when dependencies are built.
