# Empty dependencies file for bench_fig10_other_scalability.
# This may be replaced when dependencies are built.
