file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_stealing.dir/bench_fig13_stealing.cpp.o"
  "CMakeFiles/bench_fig13_stealing.dir/bench_fig13_stealing.cpp.o.d"
  "bench_fig13_stealing"
  "bench_fig13_stealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_stealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
