file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_gm.dir/bench_table4_gm.cpp.o"
  "CMakeFiles/bench_table4_gm.dir/bench_table4_gm.cpp.o.d"
  "bench_table4_gm"
  "bench_table4_gm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_gm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
