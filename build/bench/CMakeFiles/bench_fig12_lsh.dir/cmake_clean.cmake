file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_lsh.dir/bench_fig12_lsh.cpp.o"
  "CMakeFiles/bench_fig12_lsh.dir/bench_fig12_lsh.cpp.o.d"
  "bench_fig12_lsh"
  "bench_fig12_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
