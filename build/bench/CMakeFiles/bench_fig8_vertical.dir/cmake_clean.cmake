file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_vertical.dir/bench_fig8_vertical.cpp.o"
  "CMakeFiles/bench_fig8_vertical.dir/bench_fig8_vertical.cpp.o.d"
  "bench_fig8_vertical"
  "bench_fig8_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
