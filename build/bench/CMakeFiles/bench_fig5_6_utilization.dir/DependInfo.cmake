
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_6_utilization.cpp" "bench/CMakeFiles/bench_fig5_6_utilization.dir/bench_fig5_6_utilization.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_6_utilization.dir/bench_fig5_6_utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gminer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/gminer_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gminer_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/lsh/CMakeFiles/gminer_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/gminer_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gminer_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gminer_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gminer_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gminer_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gminer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
