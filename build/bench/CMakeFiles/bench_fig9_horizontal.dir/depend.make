# Empty dependencies file for bench_fig9_horizontal.
# This may be replaced when dependencies are built.
