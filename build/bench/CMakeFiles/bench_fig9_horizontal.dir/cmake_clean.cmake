file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_horizontal.dir/bench_fig9_horizontal.cpp.o"
  "CMakeFiles/bench_fig9_horizontal.dir/bench_fig9_horizontal.cpp.o.d"
  "bench_fig9_horizontal"
  "bench_fig9_horizontal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_horizontal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
