# Empty dependencies file for gminer_net.
# This may be replaced when dependencies are built.
