file(REMOVE_RECURSE
  "CMakeFiles/gminer_net.dir/network.cc.o"
  "CMakeFiles/gminer_net.dir/network.cc.o.d"
  "libgminer_net.a"
  "libgminer_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gminer_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
