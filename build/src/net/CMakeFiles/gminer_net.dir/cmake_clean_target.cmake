file(REMOVE_RECURSE
  "libgminer_net.a"
)
