file(REMOVE_RECURSE
  "CMakeFiles/gminer_baselines.dir/batch_engine.cc.o"
  "CMakeFiles/gminer_baselines.dir/batch_engine.cc.o.d"
  "CMakeFiles/gminer_baselines.dir/bsp_apps.cc.o"
  "CMakeFiles/gminer_baselines.dir/bsp_apps.cc.o.d"
  "CMakeFiles/gminer_baselines.dir/bsp_engine.cc.o"
  "CMakeFiles/gminer_baselines.dir/bsp_engine.cc.o.d"
  "CMakeFiles/gminer_baselines.dir/embed_engine.cc.o"
  "CMakeFiles/gminer_baselines.dir/embed_engine.cc.o.d"
  "CMakeFiles/gminer_baselines.dir/serial.cc.o"
  "CMakeFiles/gminer_baselines.dir/serial.cc.o.d"
  "libgminer_baselines.a"
  "libgminer_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gminer_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
