file(REMOVE_RECURSE
  "libgminer_baselines.a"
)
