# Empty dependencies file for gminer_baselines.
# This may be replaced when dependencies are built.
