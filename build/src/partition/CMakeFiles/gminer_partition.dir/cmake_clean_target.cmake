file(REMOVE_RECURSE
  "libgminer_partition.a"
)
