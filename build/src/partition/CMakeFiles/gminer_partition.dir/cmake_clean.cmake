file(REMOVE_RECURSE
  "CMakeFiles/gminer_partition.dir/bdg_partitioner.cc.o"
  "CMakeFiles/gminer_partition.dir/bdg_partitioner.cc.o.d"
  "CMakeFiles/gminer_partition.dir/hash_partitioner.cc.o"
  "CMakeFiles/gminer_partition.dir/hash_partitioner.cc.o.d"
  "libgminer_partition.a"
  "libgminer_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gminer_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
