# Empty compiler generated dependencies file for gminer_partition.
# This may be replaced when dependencies are built.
