file(REMOVE_RECURSE
  "CMakeFiles/gminer_graph.dir/builder.cc.o"
  "CMakeFiles/gminer_graph.dir/builder.cc.o.d"
  "CMakeFiles/gminer_graph.dir/generators.cc.o"
  "CMakeFiles/gminer_graph.dir/generators.cc.o.d"
  "CMakeFiles/gminer_graph.dir/graph.cc.o"
  "CMakeFiles/gminer_graph.dir/graph.cc.o.d"
  "CMakeFiles/gminer_graph.dir/io.cc.o"
  "CMakeFiles/gminer_graph.dir/io.cc.o.d"
  "libgminer_graph.a"
  "libgminer_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gminer_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
