# Empty compiler generated dependencies file for gminer_graph.
# This may be replaced when dependencies are built.
