file(REMOVE_RECURSE
  "libgminer_graph.a"
)
