# Empty dependencies file for gminer_common.
# This may be replaced when dependencies are built.
