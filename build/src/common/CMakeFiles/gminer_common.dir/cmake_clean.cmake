file(REMOVE_RECURSE
  "CMakeFiles/gminer_common.dir/logging.cc.o"
  "CMakeFiles/gminer_common.dir/logging.cc.o.d"
  "CMakeFiles/gminer_common.dir/thread_pool.cc.o"
  "CMakeFiles/gminer_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/gminer_common.dir/timer.cc.o"
  "CMakeFiles/gminer_common.dir/timer.cc.o.d"
  "libgminer_common.a"
  "libgminer_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gminer_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
