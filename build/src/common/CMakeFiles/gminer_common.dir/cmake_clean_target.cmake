file(REMOVE_RECURSE
  "libgminer_common.a"
)
