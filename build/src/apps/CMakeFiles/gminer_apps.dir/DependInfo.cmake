
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cd.cc" "src/apps/CMakeFiles/gminer_apps.dir/cd.cc.o" "gcc" "src/apps/CMakeFiles/gminer_apps.dir/cd.cc.o.d"
  "/root/repo/src/apps/dsg.cc" "src/apps/CMakeFiles/gminer_apps.dir/dsg.cc.o" "gcc" "src/apps/CMakeFiles/gminer_apps.dir/dsg.cc.o.d"
  "/root/repo/src/apps/gc.cc" "src/apps/CMakeFiles/gminer_apps.dir/gc.cc.o" "gcc" "src/apps/CMakeFiles/gminer_apps.dir/gc.cc.o.d"
  "/root/repo/src/apps/gm.cc" "src/apps/CMakeFiles/gminer_apps.dir/gm.cc.o" "gcc" "src/apps/CMakeFiles/gminer_apps.dir/gm.cc.o.d"
  "/root/repo/src/apps/kclique.cc" "src/apps/CMakeFiles/gminer_apps.dir/kclique.cc.o" "gcc" "src/apps/CMakeFiles/gminer_apps.dir/kclique.cc.o.d"
  "/root/repo/src/apps/mcf.cc" "src/apps/CMakeFiles/gminer_apps.dir/mcf.cc.o" "gcc" "src/apps/CMakeFiles/gminer_apps.dir/mcf.cc.o.d"
  "/root/repo/src/apps/mcf_split.cc" "src/apps/CMakeFiles/gminer_apps.dir/mcf_split.cc.o" "gcc" "src/apps/CMakeFiles/gminer_apps.dir/mcf_split.cc.o.d"
  "/root/repo/src/apps/quasi_clique.cc" "src/apps/CMakeFiles/gminer_apps.dir/quasi_clique.cc.o" "gcc" "src/apps/CMakeFiles/gminer_apps.dir/quasi_clique.cc.o.d"
  "/root/repo/src/apps/similarity.cc" "src/apps/CMakeFiles/gminer_apps.dir/similarity.cc.o" "gcc" "src/apps/CMakeFiles/gminer_apps.dir/similarity.cc.o.d"
  "/root/repo/src/apps/tc.cc" "src/apps/CMakeFiles/gminer_apps.dir/tc.cc.o" "gcc" "src/apps/CMakeFiles/gminer_apps.dir/tc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gminer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lsh/CMakeFiles/gminer_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/gminer_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gminer_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gminer_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gminer_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gminer_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gminer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
