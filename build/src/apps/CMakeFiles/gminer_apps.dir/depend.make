# Empty dependencies file for gminer_apps.
# This may be replaced when dependencies are built.
