file(REMOVE_RECURSE
  "libgminer_apps.a"
)
