file(REMOVE_RECURSE
  "CMakeFiles/gminer_apps.dir/cd.cc.o"
  "CMakeFiles/gminer_apps.dir/cd.cc.o.d"
  "CMakeFiles/gminer_apps.dir/dsg.cc.o"
  "CMakeFiles/gminer_apps.dir/dsg.cc.o.d"
  "CMakeFiles/gminer_apps.dir/gc.cc.o"
  "CMakeFiles/gminer_apps.dir/gc.cc.o.d"
  "CMakeFiles/gminer_apps.dir/gm.cc.o"
  "CMakeFiles/gminer_apps.dir/gm.cc.o.d"
  "CMakeFiles/gminer_apps.dir/kclique.cc.o"
  "CMakeFiles/gminer_apps.dir/kclique.cc.o.d"
  "CMakeFiles/gminer_apps.dir/mcf.cc.o"
  "CMakeFiles/gminer_apps.dir/mcf.cc.o.d"
  "CMakeFiles/gminer_apps.dir/mcf_split.cc.o"
  "CMakeFiles/gminer_apps.dir/mcf_split.cc.o.d"
  "CMakeFiles/gminer_apps.dir/quasi_clique.cc.o"
  "CMakeFiles/gminer_apps.dir/quasi_clique.cc.o.d"
  "CMakeFiles/gminer_apps.dir/similarity.cc.o"
  "CMakeFiles/gminer_apps.dir/similarity.cc.o.d"
  "CMakeFiles/gminer_apps.dir/tc.cc.o"
  "CMakeFiles/gminer_apps.dir/tc.cc.o.d"
  "libgminer_apps.a"
  "libgminer_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gminer_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
