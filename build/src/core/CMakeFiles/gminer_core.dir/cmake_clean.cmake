file(REMOVE_RECURSE
  "CMakeFiles/gminer_core.dir/cluster.cc.o"
  "CMakeFiles/gminer_core.dir/cluster.cc.o.d"
  "CMakeFiles/gminer_core.dir/master.cc.o"
  "CMakeFiles/gminer_core.dir/master.cc.o.d"
  "CMakeFiles/gminer_core.dir/rcv_cache.cc.o"
  "CMakeFiles/gminer_core.dir/rcv_cache.cc.o.d"
  "CMakeFiles/gminer_core.dir/report.cc.o"
  "CMakeFiles/gminer_core.dir/report.cc.o.d"
  "CMakeFiles/gminer_core.dir/task_store.cc.o"
  "CMakeFiles/gminer_core.dir/task_store.cc.o.d"
  "CMakeFiles/gminer_core.dir/worker.cc.o"
  "CMakeFiles/gminer_core.dir/worker.cc.o.d"
  "libgminer_core.a"
  "libgminer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gminer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
