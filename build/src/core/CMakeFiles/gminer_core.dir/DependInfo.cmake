
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/gminer_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/gminer_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/master.cc" "src/core/CMakeFiles/gminer_core.dir/master.cc.o" "gcc" "src/core/CMakeFiles/gminer_core.dir/master.cc.o.d"
  "/root/repo/src/core/rcv_cache.cc" "src/core/CMakeFiles/gminer_core.dir/rcv_cache.cc.o" "gcc" "src/core/CMakeFiles/gminer_core.dir/rcv_cache.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/gminer_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/gminer_core.dir/report.cc.o.d"
  "/root/repo/src/core/task_store.cc" "src/core/CMakeFiles/gminer_core.dir/task_store.cc.o" "gcc" "src/core/CMakeFiles/gminer_core.dir/task_store.cc.o.d"
  "/root/repo/src/core/worker.cc" "src/core/CMakeFiles/gminer_core.dir/worker.cc.o" "gcc" "src/core/CMakeFiles/gminer_core.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gminer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gminer_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lsh/CMakeFiles/gminer_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/gminer_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gminer_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gminer_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gminer_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
