# Empty compiler generated dependencies file for gminer_core.
# This may be replaced when dependencies are built.
