file(REMOVE_RECURSE
  "libgminer_core.a"
)
