# Empty compiler generated dependencies file for gminer_metrics.
# This may be replaced when dependencies are built.
