file(REMOVE_RECURSE
  "libgminer_metrics.a"
)
