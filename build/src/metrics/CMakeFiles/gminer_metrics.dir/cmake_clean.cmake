file(REMOVE_RECURSE
  "CMakeFiles/gminer_metrics.dir/sampler.cc.o"
  "CMakeFiles/gminer_metrics.dir/sampler.cc.o.d"
  "libgminer_metrics.a"
  "libgminer_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gminer_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
