file(REMOVE_RECURSE
  "CMakeFiles/gminer_storage.dir/spill_file.cc.o"
  "CMakeFiles/gminer_storage.dir/spill_file.cc.o.d"
  "CMakeFiles/gminer_storage.dir/vertex_table.cc.o"
  "CMakeFiles/gminer_storage.dir/vertex_table.cc.o.d"
  "libgminer_storage.a"
  "libgminer_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gminer_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
