# Empty dependencies file for gminer_storage.
# This may be replaced when dependencies are built.
