file(REMOVE_RECURSE
  "libgminer_storage.a"
)
