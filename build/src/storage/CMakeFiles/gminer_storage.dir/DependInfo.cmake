
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/spill_file.cc" "src/storage/CMakeFiles/gminer_storage.dir/spill_file.cc.o" "gcc" "src/storage/CMakeFiles/gminer_storage.dir/spill_file.cc.o.d"
  "/root/repo/src/storage/vertex_table.cc" "src/storage/CMakeFiles/gminer_storage.dir/vertex_table.cc.o" "gcc" "src/storage/CMakeFiles/gminer_storage.dir/vertex_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gminer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gminer_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
