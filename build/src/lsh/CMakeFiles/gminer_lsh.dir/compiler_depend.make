# Empty compiler generated dependencies file for gminer_lsh.
# This may be replaced when dependencies are built.
