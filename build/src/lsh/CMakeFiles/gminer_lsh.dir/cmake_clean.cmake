file(REMOVE_RECURSE
  "CMakeFiles/gminer_lsh.dir/minhash.cc.o"
  "CMakeFiles/gminer_lsh.dir/minhash.cc.o.d"
  "libgminer_lsh.a"
  "libgminer_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gminer_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
