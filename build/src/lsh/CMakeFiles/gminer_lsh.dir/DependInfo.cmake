
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsh/minhash.cc" "src/lsh/CMakeFiles/gminer_lsh.dir/minhash.cc.o" "gcc" "src/lsh/CMakeFiles/gminer_lsh.dir/minhash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gminer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gminer_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
