file(REMOVE_RECURSE
  "libgminer_lsh.a"
)
