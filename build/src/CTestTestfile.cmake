# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("metrics")
subdirs("graph")
subdirs("lsh")
subdirs("partition")
subdirs("storage")
subdirs("net")
subdirs("core")
subdirs("apps")
subdirs("baselines")
