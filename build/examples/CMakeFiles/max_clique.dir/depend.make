# Empty dependencies file for max_clique.
# This may be replaced when dependencies are built.
