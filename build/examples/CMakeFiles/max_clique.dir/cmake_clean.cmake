file(REMOVE_RECURSE
  "CMakeFiles/max_clique.dir/max_clique.cpp.o"
  "CMakeFiles/max_clique.dir/max_clique.cpp.o.d"
  "max_clique"
  "max_clique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/max_clique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
