file(REMOVE_RECURSE
  "CMakeFiles/focused_clustering.dir/focused_clustering.cpp.o"
  "CMakeFiles/focused_clustering.dir/focused_clustering.cpp.o.d"
  "focused_clustering"
  "focused_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focused_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
