# Empty compiler generated dependencies file for focused_clustering.
# This may be replaced when dependencies are built.
