file(REMOVE_RECURSE
  "CMakeFiles/pattern_match.dir/pattern_match.cpp.o"
  "CMakeFiles/pattern_match.dir/pattern_match.cpp.o.d"
  "pattern_match"
  "pattern_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
