# Empty dependencies file for pattern_match.
# This may be replaced when dependencies are built.
