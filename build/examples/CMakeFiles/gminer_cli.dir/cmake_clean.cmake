file(REMOVE_RECURSE
  "CMakeFiles/gminer_cli.dir/gminer_cli.cpp.o"
  "CMakeFiles/gminer_cli.dir/gminer_cli.cpp.o.d"
  "gminer_cli"
  "gminer_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gminer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
