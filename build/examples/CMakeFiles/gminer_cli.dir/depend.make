# Empty dependencies file for gminer_cli.
# This may be replaced when dependencies are built.
