# Empty compiler generated dependencies file for bsp_apps_test.
# This may be replaced when dependencies are built.
