file(REMOVE_RECURSE
  "CMakeFiles/bsp_apps_test.dir/bsp_apps_test.cpp.o"
  "CMakeFiles/bsp_apps_test.dir/bsp_apps_test.cpp.o.d"
  "bsp_apps_test"
  "bsp_apps_test.pdb"
  "bsp_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsp_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
