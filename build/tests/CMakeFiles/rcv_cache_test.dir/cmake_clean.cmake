file(REMOVE_RECURSE
  "CMakeFiles/rcv_cache_test.dir/rcv_cache_test.cpp.o"
  "CMakeFiles/rcv_cache_test.dir/rcv_cache_test.cpp.o.d"
  "rcv_cache_test"
  "rcv_cache_test.pdb"
  "rcv_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcv_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
