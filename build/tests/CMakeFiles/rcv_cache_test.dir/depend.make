# Empty dependencies file for rcv_cache_test.
# This may be replaced when dependencies are built.
