file(REMOVE_RECURSE
  "CMakeFiles/serialize_property_test.dir/serialize_property_test.cpp.o"
  "CMakeFiles/serialize_property_test.dir/serialize_property_test.cpp.o.d"
  "serialize_property_test"
  "serialize_property_test.pdb"
  "serialize_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialize_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
