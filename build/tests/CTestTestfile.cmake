# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/lsh_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/task_test[1]_include.cmake")
include("/root/repo/build/tests/rcv_cache_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_property_test[1]_include.cmake")
include("/root/repo/build/tests/bsp_apps_test[1]_include.cmake")
include("/root/repo/build/tests/master_test[1]_include.cmake")
include("/root/repo/build/tests/worker_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/error_paths_test[1]_include.cmake")
