// Table 5 (§8.2, "G-Miner on heavy workloads"): community detection and
// graph clustering — the convergent attributed workloads no comparator
// system of the paper could express — on five datasets. The paper reports
// time and memory for G-Miner only; this harness does the same (plus result
// counts so the cells are verifiable). Tencent is excluded for GC as in the
// paper; Skitter/Orkut/Friendster get synthetic attribute lists (footnote 7).
#include <string>

#include "apps/cd.h"
#include "apps/gc.h"
#include "bench/bench_common.h"
#include "core/cluster.h"

namespace gminer {
namespace {

JobConfig Table5Config() {
  JobConfig config = BenchConfig(8, 2);
  config.time_budget_seconds = 60.0;
  return config;
}

void RunCd(benchmark::State& state, const std::string& dataset) {
  const Graph& g = BenchAttributedDataset(dataset);
  for (auto _ : state) {
    CdParams params;
    params.min_similarity = 0.4;
    params.min_size = 3;
    CommunityJob job(params);
    Cluster cluster(Table5Config());
    const JobResult r = cluster.Run(g, job);
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["communities"] =
        static_cast<double>(CommunityJob::CommunityCount(r.final_aggregate));
  }
}

void RunGc(benchmark::State& state, const std::string& dataset) {
  const Graph& g = BenchAttributedDataset(dataset);
  for (auto _ : state) {
    GcParams params = MakeGcParams(g, /*num_exemplars=*/12, /*seed=*/5);
    params.emit_outputs = false;
    FocusedClusteringJob job(params);
    Cluster cluster(Table5Config());
    const JobResult r = cluster.Run(g, job);
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["clusters"] =
        static_cast<double>(FocusedClusteringJob::ClusterCount(r.final_aggregate));
  }
}

void RegisterCells() {
  const char* cd_datasets[] = {"skitter", "orkut", "friendster", "dblp", "tencent"};
  for (const char* dataset : cd_datasets) {
    benchmark::RegisterBenchmark(
        (std::string("Table5/CD/") + dataset).c_str(),
        [dataset = std::string(dataset)](benchmark::State& s) { RunCd(s, dataset); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  const char* gc_datasets[] = {"skitter", "orkut", "friendster", "dblp"};  // no tencent (~)
  for (const char* dataset : gc_datasets) {
    benchmark::RegisterBenchmark(
        (std::string("Table5/GC/") + dataset).c_str(),
        [dataset = std::string(dataset)](benchmark::State& s) { RunGc(s, dataset); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  gminer::RegisterCells();
  return gminer::bench::RunBenchSuite(argc, argv, "table5_heavy");
}
