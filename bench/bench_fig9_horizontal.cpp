// Figure 9 (§8.3): horizontal scalability — MCF and GM on the
// Friendster-like graph with threads-per-worker fixed and the worker (node)
// count swept, as the paper does with 10 / 15 / 20 nodes.
#include <string>

#include "apps/gm.h"
#include "apps/mcf.h"
#include "bench/bench_common.h"
#include "core/cluster.h"

namespace gminer {
namespace {

void RunPoint(benchmark::State& state, const std::string& app, int workers) {
  for (auto _ : state) {
    JobConfig config = BenchConfig(workers, /*threads=*/2);
    JobResult r;
    if (app == "MCF") {
      MaxCliqueJob job;
      r = Cluster(config).Run(BenchDataset("friendster"), job);
    } else {
      GraphMatchJob job(Fig1Pattern());
      r = Cluster(config).Run(BenchLabeledDataset("friendster"), job);
    }
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
  }
}

void RegisterCells() {
  const char* apps[] = {"MCF", "GM"};
  const int worker_points[] = {5, 10, 15, 20};
  for (const char* app : apps) {
    for (const int workers : worker_points) {
      const std::string name = std::string("Fig9/Horizontal/") + app +
                               "-friendster/workers:" + std::to_string(workers);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [app = std::string(app), workers](benchmark::State& s) { RunPoint(s, app, workers); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  gminer::RegisterCells();
  return gminer::bench::RunBenchSuite(argc, argv, "fig9_horizontal");
}
