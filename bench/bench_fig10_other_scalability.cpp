// Figure 10 (§8.3): scalability of the comparator systems, as a reference
// against Figs. 8/9 — TC on Skitter and Orkut with the node count swept.
// Paper shape: without a load-balancing design there is no guarantee the
// curves improve with more nodes (Giraph on Orkut famously degrades).
#include <string>

#include "baselines/batch_engine.h"
#include "baselines/bsp_engine.h"
#include "baselines/embed_engine.h"
#include "bench/bench_common.h"

#include "apps/tc.h"

namespace gminer {
namespace {

constexpr double kTimeBudget = 30.0;

void RunPoint(benchmark::State& state, const std::string& system, const std::string& dataset,
              int workers) {
  const Graph& g = BenchDataset(dataset);
  JobConfig config = BenchConfig(workers, 2);
  config.time_budget_seconds = kTimeBudget;
  for (auto _ : state) {
    if (system == "ArabesqueModel") {
      auto app = MakeEmbedTriangleCount();
      const EmbedResult r = RunEmbed(g, *app, config);
      ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                        r.peak_memory_bytes, 0);
    } else if (system == "GiraphModel") {
      auto app = MakeBspTriangleCount();
      const BspResult r = RunBsp(g, *app, config);
      ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                        r.peak_memory_bytes, r.net_bytes);
    } else {
      TriangleCountJob job;
      const JobResult r = RunBatch(g, job, config);
      ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                        r.peak_memory_bytes, r.totals.net_bytes_sent);
    }
  }
}

void RegisterCells() {
  const char* systems[] = {"ArabesqueModel", "GiraphModel", "GthinkerModel"};
  const char* datasets[] = {"skitter", "orkut"};
  const int worker_points[] = {5, 10, 15, 20};
  for (const char* dataset : datasets) {
    for (const char* system : systems) {
      for (const int workers : worker_points) {
        const std::string name = std::string("Fig10/TC-") + dataset + "/" + system +
                                 "/workers:" + std::to_string(workers);
        benchmark::RegisterBenchmark(name.c_str(),
                                     [system = std::string(system),
                                      dataset = std::string(dataset),
                                      workers](benchmark::State& s) {
                                       RunPoint(s, system, dataset, workers);
                                     })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  gminer::RegisterCells();
  return gminer::bench::RunBenchSuite(argc, argv, "fig10_other_scalability");
}
