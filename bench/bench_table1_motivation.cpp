// Table 1 (§3, Motivation): maximum clique finding on the Orkut-like graph
// across system models. Paper's result: the single-threaded baseline succeeds
// (slowly, 100% CPU), Arabesque runs >24h, Giraph OOMs, GraphX runs >24h,
// G-thinker succeeds (164.6 s, 16.2% CPU), and (per the rest of the paper)
// G-Miner succeeds fastest. GraphX shares the vertex-centric BSP model with
// Giraph; one BSP engine stands in for both (see EXPERIMENTS.md).
//
// Budgets scale the paper's limits to the scaled dataset: the ">24h" timeout
// becomes time_budget, the per-node RAM limit becomes memory_budget.
#include "apps/mcf.h"
#include "baselines/batch_engine.h"
#include "baselines/bsp_engine.h"
#include "baselines/embed_engine.h"
#include "baselines/serial.h"
#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/cluster.h"

namespace gminer {
namespace {

constexpr double kTimeBudget = 20.0;          // stands in for the paper's 24 h cap
constexpr size_t kMemoryBudget = 10u << 20;   // stands in for the 48 GB/node limit

JobConfig MotivationConfig() {
  JobConfig config = BenchConfig(4, 2);
  config.time_budget_seconds = kTimeBudget;
  config.memory_budget_bytes = kMemoryBudget;
  return config;
}

void BM_Table1_SingleThread(benchmark::State& state) {
  const Graph& g = BenchDataset("orkut");
  for (auto _ : state) {
    bool timed_out = false;
    WallTimer timer;
    const uint64_t best = SerialMaxClique(g, kTimeBudget, &timed_out);
    const double elapsed = timer.ElapsedSeconds();
    benchmark::DoNotOptimize(best);
    ReportJobCounters(state, timed_out ? JobStatus::kTimeout : JobStatus::kOk, elapsed,
                      /*cpu=*/1.0, static_cast<int64_t>(g.ByteSize()), 0);
    state.counters["clique"] = static_cast<double>(best);
  }
}
BENCHMARK(BM_Table1_SingleThread)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Table1_ArabesqueModel(benchmark::State& state) {
  const Graph& g = BenchDataset("orkut");
  for (auto _ : state) {
    auto app = MakeEmbedMaxClique();
    const EmbedResult r = RunEmbed(g, *app, MotivationConfig());
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, 0);
    state.counters["clique"] = static_cast<double>(r.result);
  }
}
BENCHMARK(BM_Table1_ArabesqueModel)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Table1_GiraphModel(benchmark::State& state) {
  const Graph& g = BenchDataset("orkut");
  for (auto _ : state) {
    auto app = MakeBspMaxClique();
    const BspResult r = RunBsp(g, *app, MotivationConfig());
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.net_bytes);
    state.counters["clique"] = static_cast<double>(r.result);
  }
}
BENCHMARK(BM_Table1_GiraphModel)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Table1_GthinkerModel(benchmark::State& state) {
  const Graph& g = BenchDataset("orkut");
  for (auto _ : state) {
    MaxCliqueJob job;
    const JobResult r = RunBatch(g, job, MotivationConfig());
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["clique"] =
        static_cast<double>(MaxCliqueJob::MaxCliqueSize(r.final_aggregate));
  }
}
BENCHMARK(BM_Table1_GthinkerModel)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Table1_GMiner(benchmark::State& state) {
  const Graph& g = BenchDataset("orkut");
  for (auto _ : state) {
    MaxCliqueJob job;
    Cluster cluster(MotivationConfig());
    const JobResult r = cluster.Run(g, job);
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["clique"] =
        static_cast<double>(MaxCliqueJob::MaxCliqueSize(r.final_aggregate));
  }
}
BENCHMARK(BM_Table1_GMiner)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  return gminer::bench::RunBenchSuite(argc, argv, "table1_motivation");
}
