// Figures 5 and 6 (§8.2): CPU / network / disk utilization timelines of the
// batch-synchronous engine (Fig. 5, G-thinker) versus the G-Miner task
// pipeline (Fig. 6), running GM on the Friendster-like graph. Network
// transmission is simulated (shared 1 Gbit-class link) so communication takes
// wall time: the batch engine's compute stalls during its communication
// phases, while the pipeline overlaps them. Each series is printed as
// "FIG5 ..." / "FIG6 ..." lines after the corresponding benchmark.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/gm.h"
#include "apps/tc.h"
#include "baselines/batch_engine.h"
#include "bench/bench_common.h"
#include "core/cluster.h"

namespace gminer {
namespace {

JobConfig UtilizationConfig() {
  JobConfig config = BenchConfig(8, 2);
  config.sample_utilization = true;
  config.sample_interval_ms = 25;
  config.net_latency_us = 50;          // enables transmission-time simulation
  config.net_bandwidth_gbps = 0.5;     // scaled-down shared fabric
  config.time_budget_seconds = 120.0;
  return config;
}

void PrintSeries(const char* tag, const std::vector<UtilizationSample>& samples) {
  for (const auto& s : samples) {
    std::printf("%s t=%.3f cpu=%.1f net=%.1f disk=%.1f\n", tag, s.t_seconds, s.cpu_pct,
                s.net_pct, s.disk_pct);
  }
}

double AvgCpu(const std::vector<UtilizationSample>& samples) {
  if (samples.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& s : samples) {
    total += s.cpu_pct;
  }
  return total / static_cast<double>(samples.size());
}

void BM_Fig5_GthinkerUtilization(benchmark::State& state) {
  const Graph& g = BenchLabeledDataset("friendster");
  for (auto _ : state) {
    GraphMatchJob job(Fig1Pattern());
    const JobResult r = RunBatch(g, job, UtilizationConfig());
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["avg_cpu_series"] = AvgCpu(r.utilization);
    PrintSeries("FIG5", r.utilization);
  }
}
BENCHMARK(BM_Fig5_GthinkerUtilization)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Fig6_GMinerUtilization(benchmark::State& state) {
  const Graph& g = BenchLabeledDataset("friendster");
  // The pipeline run doubles as the tracing demo: the merged Chrome trace
  // lands next to bench_output.txt (override with GMINER_TRACE_FILE) so
  // scripts/plot_results.py and scripts/trace_summary.py can pick it up.
  RunOptions options;
  options.enable_tracing = true;
  const char* trace_file = std::getenv("GMINER_TRACE_FILE");
  options.trace_json_path = trace_file != nullptr ? trace_file : "fig6_trace.json";
  for (auto _ : state) {
    GraphMatchJob job(Fig1Pattern());
    Cluster cluster(UtilizationConfig());
    const JobResult r = cluster.Run(g, job, options);
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["avg_cpu_series"] = AvgCpu(r.utilization);
    state.counters["trace_events"] = static_cast<double>(r.trace_events);
    PrintSeries("FIG6", r.utilization);
    std::printf("TRACE file=%s events=%ld dropped=%ld\n", r.trace_file.c_str(),
                static_cast<long>(r.trace_events), static_cast<long>(r.trace_events_dropped));
  }
}
BENCHMARK(BM_Fig6_GMinerUtilization)->Iterations(1)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// Pull-batching rows (network-utilization companion, gated in CI): the same
// Table-3-style TC run with simulated transmission, batched versus unbatched
// (enable_pull_batching = false reproduces the one-message-per-pull runtime).
// The counters record what coalescing buys on the wire — kPullRequest
// messages, ids per message, dedup hits — and tracing folds the pull_rtt
// stage percentiles into the snapshot, so a regression in either the batch
// sizes or the round-trip latency shows up in the bench gate.
// --------------------------------------------------------------------------

JobConfig PullBatchingConfig(bool batched) {
  JobConfig config = BenchConfig(8, 2);
  config.enable_stealing = false;    // keep the data plane pull-only
  config.rcv_cache_capacity = 1024;  // small cache keeps pull traffic flowing
  config.enable_pull_batching = batched;
  return config;
}

void RunPullBatchingRow(benchmark::State& state, bool batched, const std::string& row_name) {
  const Graph& g = BenchDataset("skitter");
  for (auto _ : state) {
    TriangleCountJob job;
    Cluster cluster(PullBatchingConfig(batched));
    RunOptions options;
    options.enable_tracing = true;  // records pull_rtt stage percentiles
    const JobResult r = cluster.Run(g, job, options);
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["result"] =
        static_cast<double>(TriangleCountJob::Count(r.final_aggregate));
    const double msgs = static_cast<double>(r.totals.pull_batches_sent);
    state.counters["pull_msgs"] = msgs;
    state.counters["pull_ids"] = static_cast<double>(r.totals.pull_requests);
    state.counters["ids_per_msg"] =
        msgs > 0 ? static_cast<double>(r.totals.pull_requests) / msgs : 0.0;
    state.counters["batch_p50"] =
        static_cast<double>(r.totals.PullBatchSizePercentile(0.50));
    state.counters["batch_p95"] =
        static_cast<double>(r.totals.PullBatchSizePercentile(0.95));
    state.counters["dedup_hits"] = static_cast<double>(r.totals.dedup_hits);
    bench::RecordStages(row_name, r.stage_latencies);
  }
}

// --------------------------------------------------------------------------
// Metrics-plane overhead rows (gated in CI next to the pull-batching rows):
// the same TC/skitter run with the live metrics plane on versus pinned off
// via the GMINER_METRICS escape hatch — the env override is exactly what an
// operator would use, so the rows measure the real toggle. The On row carries
// the full cost (registry registration, 50 ms snapshot serialization on every
// worker, master-side merge); linked counters make the hot paths themselves
// free, so the two rows must stay within the gate's 15% band of their
// baselines — an On-row regression that the Off row doesn't share is the
// metrics plane getting expensive.
// --------------------------------------------------------------------------

void RunMetricsOverheadRow(benchmark::State& state, bool metrics_on,
                           const std::string& row_name) {
  const Graph& g = BenchDataset("skitter");
  ::setenv("GMINER_METRICS", metrics_on ? "on" : "off", 1);
  for (auto _ : state) {
    TriangleCountJob job;
    Cluster cluster(PullBatchingConfig(/*batched=*/true));
    const JobResult r = cluster.Run(g, job);
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["result"] =
        static_cast<double>(TriangleCountJob::Count(r.final_aggregate));
    state.counters["metrics_enabled"] = r.metrics_enabled ? 1.0 : 0.0;
    state.counters["metrics_dropped"] =
        static_cast<double>(r.cluster_metrics.Value("metrics.dropped"));
    bench::RecordStages(row_name, r.stage_latencies);
  }
  ::unsetenv("GMINER_METRICS");
}

void RegisterMetricsOverheadRows() {
  for (const bool metrics_on : {true, false}) {
    const std::string name =
        std::string("MetricsOverhead/TC/skitter/") + (metrics_on ? "On" : "Off");
    bench::AnnotateRow(name, "TC", "skitter");
    benchmark::RegisterBenchmark(name.c_str(),
                                 [metrics_on, name](benchmark::State& s) {
                                   RunMetricsOverheadRow(s, metrics_on, name);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void RegisterPullBatchingRows() {
  for (const bool batched : {true, false}) {
    const std::string name =
        std::string("PullBatching/TC/skitter/") + (batched ? "Batched" : "Unbatched");
    bench::AnnotateRow(name, "TC", "skitter");
    benchmark::RegisterBenchmark(name.c_str(),
                                 [batched, name](benchmark::State& s) {
                                   RunPullBatchingRow(s, batched, name);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  gminer::RegisterPullBatchingRows();
  gminer::RegisterMetricsOverheadRows();
  return gminer::bench::RunBenchSuite(argc, argv, "fig5_6_utilization");
}
