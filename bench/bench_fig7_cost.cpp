// Figure 7 (§8.3): the COST metric of McSherry et al. — the core count at
// which a single-node G-Miner deployment overtakes an optimized
// single-threaded implementation — for TC and GM on Skitter and Orkut. The
// harness sweeps computing threads on one worker and reports the speedup over
// the serial baseline per point; the COST per workload is printed at the end.
// NOTE: on a host with few physical cores the sweep oversubscribes and the
// speedup curve flattens at the hardware limit (see EXPERIMENTS.md).
#include <cstdio>
#include <map>
#include <string>

#include "apps/gm.h"
#include "apps/tc.h"
#include "baselines/serial.h"
#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/cluster.h"

namespace gminer {
namespace {

std::map<std::string, double>& SerialBaselines() {
  static std::map<std::string, double> baselines;
  return baselines;
}

std::map<std::string, std::map<int, double>>& SweepTimes() {
  static std::map<std::string, std::map<int, double>> times;
  return times;
}

double SerialTime(const std::string& app, const std::string& dataset) {
  const std::string key = app + "/" + dataset;
  auto it = SerialBaselines().find(key);
  if (it != SerialBaselines().end()) {
    return it->second;
  }
  WallTimer timer;
  if (app == "TC") {
    benchmark::DoNotOptimize(SerialTriangleCount(BenchDataset(dataset)));
  } else {
    // Like-for-like baseline: the same per-seed exploration, one thread.
    benchmark::DoNotOptimize(
        SerialGraphMatchPerSeed(BenchLabeledDataset(dataset), Fig1Pattern()));
  }
  const double t = timer.ElapsedSeconds();
  SerialBaselines()[key] = t;
  return t;
}

void RunPoint(benchmark::State& state, const std::string& app, const std::string& dataset,
              int cores) {
  const double serial = SerialTime(app, dataset);
  for (auto _ : state) {
    JobConfig config = BenchConfig(/*workers=*/1, /*threads=*/cores);
    JobResult r;
    if (app == "TC") {
      TriangleCountJob job;
      r = Cluster(config).Run(BenchDataset(dataset), job);
    } else {
      GraphMatchJob job(Fig1Pattern());
      r = Cluster(config).Run(BenchLabeledDataset(dataset), job);
    }
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["serial_s"] = serial;
    state.counters["speedup"] = serial / r.elapsed_seconds;
    SweepTimes()[app + "/" + dataset][cores] = r.elapsed_seconds;
  }
}

void RegisterCells() {
  const char* apps[] = {"TC", "GM"};
  const char* datasets[] = {"skitter", "orkut"};
  const int core_points[] = {1, 2, 4, 8, 12, 24};
  for (const char* app : apps) {
    for (const char* dataset : datasets) {
      for (const int cores : core_points) {
        const std::string name = std::string("Fig7/COST/") + app + "/" + dataset + "/cores:" +
                                 std::to_string(cores);
        benchmark::RegisterBenchmark(name.c_str(),
                                     [app = std::string(app), dataset = std::string(dataset),
                                      cores](benchmark::State& s) {
                                       RunPoint(s, app, dataset, cores);
                                     })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

void PrintCost() {
  std::printf("\n=== Fig. 7: COST (cores needed to beat the single-threaded baseline) ===\n");
  for (const auto& [key, times] : SweepTimes()) {
    const double serial = SerialBaselines()[key];
    int cost = -1;
    for (const auto& [cores, t] : times) {
      if (t < serial) {
        cost = cores;
        break;
      }
    }
    if (cost > 0) {
      std::printf("COST %-12s serial=%.3fs cost=%d cores\n", key.c_str(), serial, cost);
    } else {
      std::printf("COST %-12s serial=%.3fs unbounded on this host (hw core limit)\n",
                  key.c_str(), serial);
    }
  }
}

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  gminer::RegisterCells();
  benchmark::Initialize(&argc, argv);
  gminer::bench::SnapshotReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  gminer::PrintCost();
  const bool ok = gminer::bench::WriteSnapshotFile("fig7_cost");
  benchmark::Shutdown();
  return ok ? 0 : 1;
}
