// Figure 8 (§8.3): vertical scalability — MCF and GM on the Friendster-like
// graph with the worker count fixed and the computing threads per worker
// swept (the paper fixes 15 nodes and sweeps 1..24 cores per node). On a
// host with fewer physical cores than the swept total the curve flattens at
// the hardware limit; the harness still reports every point.
#include <string>

#include "apps/gm.h"
#include "apps/mcf.h"
#include "bench/bench_common.h"
#include "core/cluster.h"

namespace gminer {
namespace {

constexpr int kWorkers = 8;

void RunPoint(benchmark::State& state, const std::string& app, int threads) {
  for (auto _ : state) {
    JobConfig config = BenchConfig(kWorkers, threads);
    JobResult r;
    if (app == "MCF") {
      MaxCliqueJob job;
      r = Cluster(config).Run(BenchDataset("friendster"), job);
    } else {
      GraphMatchJob job(Fig1Pattern());
      r = Cluster(config).Run(BenchLabeledDataset("friendster"), job);
    }
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
  }
}

void RegisterCells() {
  const char* apps[] = {"MCF", "GM"};
  const int thread_points[] = {1, 2, 4, 8};  // 8 workers × t = 8..64 logical cores
  for (const char* app : apps) {
    for (const int threads : thread_points) {
      const std::string name = std::string("Fig8/Vertical/") + app + "-friendster/threads:" +
                               std::to_string(threads);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [app = std::string(app), threads](benchmark::State& s) { RunPoint(s, app, threads); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  gminer::RegisterCells();
  return gminer::bench::RunBenchSuite(argc, argv, "fig8_vertical");
}
