// Figure 13 (§8.4): impact of task stealing — the paper's four cells
// (GM / MCF × Orkut-like / Friendster-like) with stealing enabled and
// disabled. BDG partitioning concentrates the heavy regions of power-law
// graphs, which is exactly the skew dynamic load balancing exists for.
// Reported: time and the number of migrated tasks.
#include <string>

#include "apps/gm.h"
#include "apps/mcf.h"
#include "bench/bench_common.h"
#include "core/cluster.h"

namespace gminer {
namespace {

JobConfig StealConfig(bool enable_stealing) {
  JobConfig config = BenchConfig(8, 2);
  config.partition = PartitionStrategy::kBdg;
  config.enable_stealing = enable_stealing;
  config.steal_batch = 16;
  config.pipeline_depth = 32;  // queued tasks stay in the (stealable) store
  config.progress_interval_ms = 2;
  return config;
}

void RunCell(benchmark::State& state, const std::string& app, const std::string& dataset,
             bool stealing) {
  for (auto _ : state) {
    JobResult r;
    if (app == "MCF") {
      MaxCliqueJob job;
      r = Cluster(StealConfig(stealing)).Run(BenchDataset(dataset), job);
    } else {
      GraphMatchJob job(Fig1Pattern());
      r = Cluster(StealConfig(stealing)).Run(BenchLabeledDataset(dataset), job);
    }
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["migrated"] = static_cast<double>(r.totals.tasks_stolen_in);
  }
}

void RegisterCells() {
  const char* apps[] = {"GM", "MCF"};
  const char* datasets[] = {"orkut", "friendster"};
  for (const char* app : apps) {
    for (const char* dataset : datasets) {
      for (const bool stealing : {true, false}) {
        const std::string name = std::string("Fig13/") + app + "-" + dataset + "/" +
                                 (stealing ? "En-Stealing" : "Dis-Stealing");
        benchmark::RegisterBenchmark(name.c_str(),
                                     [app = std::string(app), dataset = std::string(dataset),
                                      stealing](benchmark::State& s) {
                                       RunCell(s, app, dataset, stealing);
                                     })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  gminer::RegisterCells();
  return gminer::bench::RunBenchSuite(argc, argv, "fig13_stealing");
}
