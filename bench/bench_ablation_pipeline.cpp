// Ablation for a design decision this reproduction adds on top of the paper
// (DESIGN.md §4, "Bounded pipeline depth"): the candidate retriever admits at
// most `pipeline_depth` tasks into the CMQ/CPQ at once. Too shallow starves
// the computing threads; too deep drains the task store, defeating both the
// LSH ordering (nothing left to sort) and task stealing (nothing left to
// steal). The sweep runs GM on the friendster-like graph across depths and
// reports time, pulls and cache hit rate.
#include <string>

#include "apps/gm.h"
#include "bench/bench_common.h"
#include "core/cluster.h"

namespace gminer {
namespace {

void RunPoint(benchmark::State& state, size_t depth) {
  const Graph& g = BenchLabeledDataset("friendster");
  for (auto _ : state) {
    JobConfig config = BenchConfig(4, 2);
    config.pipeline_depth = depth;
    config.rcv_cache_capacity = 1024;
    GraphMatchJob job(Fig1Pattern());
    Cluster cluster(config);
    const JobResult r = cluster.Run(g, job);
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["pulls"] = static_cast<double>(r.totals.pull_responses);
    state.counters["cache_hit_pct"] = 100.0 * r.totals.CacheHitRate();
    state.counters["matches"] =
        static_cast<double>(GraphMatchJob::MatchCount(r.final_aggregate));
  }
}

void RegisterCells() {
  for (const size_t depth : {2, 8, 32, 128, 1024}) {
    const std::string name =
        "Ablation/PipelineDepth/GM-friendster/depth:" + std::to_string(depth);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [depth](benchmark::State& s) { RunPoint(s, depth); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  gminer::RegisterCells();
  return gminer::bench::RunBenchSuite(argc, argv, "ablation_pipeline");
}
