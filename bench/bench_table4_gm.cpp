// Table 4 (§8.2, "G-Miner vs G-thinker"): graph matching with the Fig. 1
// pattern on the four non-attributed graphs with uniform random labels
// {a..g}. Reported per cell: elapsed time, average CPU utilization, peak
// tracked memory, and network traffic. Paper shape: G-Miner wins every cell
// with several-fold higher CPU utilization and a fraction of the memory and
// network traffic of the batch-synchronous engine.
#include <string>

#include "apps/gm.h"
#include "baselines/batch_engine.h"
#include "bench/bench_common.h"
#include "core/cluster.h"

namespace gminer {
namespace {

JobConfig Table4Config() {
  JobConfig config = BenchConfig(8, 2);
  config.time_budget_seconds = 60.0;
  return config;
}

void RunCell(benchmark::State& state, bool gminer, const std::string& dataset) {
  const Graph& g = BenchLabeledDataset(dataset);
  const TreePattern pattern = Fig1Pattern();
  for (auto _ : state) {
    GraphMatchJob job(pattern);
    JobResult r;
    if (gminer) {
      Cluster cluster(Table4Config());
      r = cluster.Run(g, job);
    } else {
      r = RunBatch(g, job, Table4Config());
    }
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["matches"] =
        static_cast<double>(GraphMatchJob::MatchCount(r.final_aggregate));
    state.counters["pulls"] = static_cast<double>(r.totals.pull_responses);
  }
}

void RegisterCells() {
  const char* datasets[] = {"skitter", "orkut", "btc", "friendster"};
  for (const char* dataset : datasets) {
    for (const bool gminer : {false, true}) {
      const std::string name = std::string("Table4/GM/") + dataset + "/" +
                               (gminer ? "GMiner" : "GthinkerModel");
      benchmark::RegisterBenchmark(
          name.c_str(), [gminer, dataset = std::string(dataset)](benchmark::State& s) {
            RunCell(s, gminer, dataset);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  gminer::RegisterCells();
  return gminer::bench::RunBenchSuite(argc, argv, "table4_gm");
}
