// Figure 12 (§8.4): impact of the LSH-based task priority queue — the same
// four cells as the paper (GM / MCF × Orkut-like / Friendster-like) with the
// LSH signatures enabled (En-LSH) and disabled (Dis-LSH; the store degrades
// to FIFO). The mechanism needs pressure to show: a small RCV cache and a
// bounded pipeline so queue order actually governs execution order. Reported:
// time, distinct vertices pulled, and the cache hit rate.
#include <string>

#include "apps/gm.h"
#include "apps/mcf.h"
#include "bench/bench_common.h"
#include "core/cluster.h"

namespace gminer {
namespace {

JobConfig LshConfig(bool enable_lsh) {
  JobConfig config = BenchConfig(8, 2);
  config.partition = PartitionStrategy::kHash;  // maximize remote candidates
  config.enable_lsh = enable_lsh;
  config.enable_stealing = false;  // migration noise would confound the ablation
  config.rcv_cache_capacity = 512;
  config.pipeline_depth = 16;
  config.lsh_num_hashes = 8;  // cheap signatures: key cost matters on few cores
  config.lsh_bands = 8;       // 1-row bands: collisions at probability = Jaccard
  return config;
}

void RunCell(benchmark::State& state, const std::string& app, const std::string& dataset,
             bool enable_lsh) {
  for (auto _ : state) {
    JobResult r;
    if (app == "MCF") {
      MaxCliqueJob job;
      r = Cluster(LshConfig(enable_lsh)).Run(BenchDataset(dataset), job);
    } else {
      GraphMatchJob job(Fig1Pattern());
      r = Cluster(LshConfig(enable_lsh)).Run(BenchLabeledDataset(dataset), job);
    }
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["pulls"] = static_cast<double>(r.totals.pull_responses);
    state.counters["cache_hit_pct"] = 100.0 * r.totals.CacheHitRate();
  }
}

void RegisterCells() {
  const char* apps[] = {"GM", "MCF"};
  const char* datasets[] = {"orkut", "friendster"};
  for (const char* app : apps) {
    for (const char* dataset : datasets) {
      for (const bool lsh : {true, false}) {
        const std::string name = std::string("Fig12/") + app + "-" + dataset + "/" +
                                 (lsh ? "En-LSH" : "Dis-LSH");
        benchmark::RegisterBenchmark(name.c_str(),
                                     [app = std::string(app), dataset = std::string(dataset),
                                      lsh](benchmark::State& s) {
                                       RunCell(s, app, dataset, lsh);
                                     })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  gminer::RegisterCells();
  return gminer::bench::RunBenchSuite(argc, argv, "fig12_lsh");
}
