// Figure 11 (§8.4): BDG partitioning vs hash partitioning, running MCF on
// the Orkut-like and Friendster-like graphs. Reported per bar group:
// partitioning time, job time, peak memory, and network traffic. Paper
// shape: BDG costs more to compute but repays it with less vertex pulling
// (network), less cache pressure (memory) and a faster job.
#include <string>

#include "apps/mcf.h"
#include "bench/bench_common.h"
#include "core/cluster.h"
#include "partition/partitioner.h"

#include "partition/bdg_partitioner.h"
#include "partition/hash_partitioner.h"

namespace gminer {
namespace {

void RunCell(benchmark::State& state, PartitionStrategy strategy, const std::string& dataset) {
  const Graph& g = BenchDataset(dataset);
  for (auto _ : state) {
    JobConfig config = BenchConfig(8, 2);
    config.partition = strategy;
    MaxCliqueJob job;
    Cluster cluster(config);
    const JobResult r = cluster.Run(g, job);
    ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                      r.peak_memory_bytes, r.totals.net_bytes_sent);
    state.counters["partition_s"] = r.partition_seconds;
    state.counters["pulls"] = static_cast<double>(r.totals.pull_responses);

    // Partition-quality context for the row (edge cut drives the pulls).
    std::unique_ptr<Partitioner> partitioner;
    if (strategy == PartitionStrategy::kBdg) {
      partitioner = std::make_unique<BdgPartitioner>(config.bdg_num_sources,
                                                     config.bdg_bfs_depth,
                                                     config.bdg_max_rounds, config.seed);
    } else {
      partitioner = std::make_unique<HashPartitioner>();
    }
    const auto owner = partitioner->Partition(g, config.num_workers);
    state.counters["locality_pct"] =
        100.0 * EvaluatePartition(g, owner, config.num_workers).locality;
  }
}

void RegisterCells() {
  const char* datasets[] = {"orkut", "friendster"};
  for (const char* dataset : datasets) {
    for (const bool bdg : {false, true}) {
      const std::string name = std::string("Fig11/MCF-") + dataset + "/" +
                               (bdg ? "BDG-Partition" : "Hash-Partition");
      benchmark::RegisterBenchmark(
          name.c_str(), [bdg, dataset = std::string(dataset)](benchmark::State& s) {
            RunCell(s, bdg ? PartitionStrategy::kBdg : PartitionStrategy::kHash, dataset);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  gminer::RegisterCells();
  return gminer::bench::RunBenchSuite(argc, argv, "fig11_bdg");
}
