// Shared helpers for the benchmark harness. Each bench binary regenerates
// one table or figure of the paper's evaluation (§8) on the scaled-down
// dataset stand-ins. Absolute numbers differ from the paper (simulated
// cluster, ~1000x smaller graphs); the *shape* — which system wins, by
// roughly what factor, who fails with OOM/timeout — is what each harness
// reports. EXPERIMENTS.md records paper-vs-measured for every row.
#ifndef GMINER_BENCH_BENCH_COMMON_H_
#define GMINER_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "common/config.h"
#include "core/job_result.h"
#include "graph/generators.h"

namespace gminer {

// Lazily-built dataset cache so repeated benchmark registrations share one
// graph instance.
inline const Graph& BenchDataset(const std::string& name, double scale = 1.0) {
  static std::map<std::string, std::unique_ptr<Graph>> cache;
  const std::string key = name + "@" + std::to_string(scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<Graph>(MakeDataset(name, scale, 42))).first;
  }
  return *it->second;
}

// Labeled variant for the GM experiments (uniform labels a..g, as in §8.2).
inline const Graph& BenchLabeledDataset(const std::string& name, double scale = 1.0) {
  static std::map<std::string, std::unique_ptr<Graph>> cache;
  const std::string key = name + "@" + std::to_string(scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Rng rng(43);
    it = cache
             .emplace(key, std::make_unique<Graph>(
                               WithUniformLabels(MakeDataset(name, scale, 42), 7, rng)))
             .first;
  }
  return *it->second;
}

// Attributed variant for the CD / GC experiments (footnote 7's 5-dimension
// uniform attributes for the non-attributed graphs).
inline const Graph& BenchAttributedDataset(const std::string& name, double scale = 1.0) {
  static std::map<std::string, std::unique_ptr<Graph>> cache;
  const std::string key = name + "@" + std::to_string(scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const Graph& base = BenchDataset(name, scale);
    Rng rng(44);
    std::unique_ptr<Graph> g;
    if (base.has_attributes()) {
      g = std::make_unique<Graph>(base);
    } else {
      g = std::make_unique<Graph>(WithPlantedAttributeGroups(base, 16, 5, 10, 0.8, rng));
    }
    it = cache.emplace(key, std::move(g)).first;
  }
  return *it->second;
}

// Default cluster shape for the benches: the paper's 15-node cluster scaled
// to an in-process deployment.
inline JobConfig BenchConfig(int workers = 4, int threads = 2) {
  JobConfig config;
  config.num_workers = workers;
  config.threads_per_worker = threads;
  config.rcv_cache_capacity = 1 << 14;
  config.task_block_capacity = 2048;
  config.task_buffer_batch = 128;
  // Simulated Gigabit-class interconnect: transfers take wall time in every
  // engine, so overlapping communication with computation (the task
  // pipeline's purpose) is visible in elapsed time.
  config.net_latency_us = 50;
  config.net_bandwidth_gbps = 1.0;
  config.seed = 42;
  return config;
}

// Attaches the standard result counters to a benchmark row.
inline void ReportJobCounters(benchmark::State& state, JobStatus status, double elapsed,
                              double cpu_util, int64_t peak_mem, int64_t net_bytes) {
  state.counters["time_s"] = elapsed;
  state.counters["cpu_util_pct"] = 100.0 * cpu_util;
  state.counters["mem_MB"] = static_cast<double>(peak_mem) / 1e6;
  state.counters["net_MB"] = static_cast<double>(net_bytes) / 1e6;
  if (status == JobStatus::kOutOfMemory) {
    state.SetLabel("OOM(x)");
  } else if (status == JobStatus::kTimeout) {
    state.SetLabel("TIMEOUT(-)");
  }
}

}  // namespace gminer

#endif  // GMINER_BENCH_BENCH_COMMON_H_
