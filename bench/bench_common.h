// Shared helpers for the benchmark harness. Each bench binary regenerates
// one table or figure of the paper's evaluation (§8) on the scaled-down
// dataset stand-ins. Absolute numbers differ from the paper (simulated
// cluster, ~1000x smaller graphs); the *shape* — which system wins, by
// roughly what factor, who fails with OOM/timeout — is what each harness
// reports. EXPERIMENTS.md records paper-vs-measured for every row.
#ifndef GMINER_BENCH_BENCH_COMMON_H_
#define GMINER_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/config.h"
#include "core/job_result.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "metrics/trace_stats.h"

namespace gminer {

// Lazily-built dataset cache so repeated benchmark registrations share one
// graph instance.
inline const Graph& BenchDataset(const std::string& name, double scale = 1.0) {
  static std::map<std::string, std::unique_ptr<Graph>> cache;
  const std::string key = name + "@" + std::to_string(scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<Graph>(MakeDataset(name, scale, 42))).first;
  }
  return *it->second;
}

// Labeled variant for the GM experiments (uniform labels a..g, as in §8.2).
inline const Graph& BenchLabeledDataset(const std::string& name, double scale = 1.0) {
  static std::map<std::string, std::unique_ptr<Graph>> cache;
  const std::string key = name + "@" + std::to_string(scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Rng rng(43);
    it = cache
             .emplace(key, std::make_unique<Graph>(
                               WithUniformLabels(MakeDataset(name, scale, 42), 7, rng)))
             .first;
  }
  return *it->second;
}

// Attributed variant for the CD / GC experiments (footnote 7's 5-dimension
// uniform attributes for the non-attributed graphs).
inline const Graph& BenchAttributedDataset(const std::string& name, double scale = 1.0) {
  static std::map<std::string, std::unique_ptr<Graph>> cache;
  const std::string key = name + "@" + std::to_string(scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const Graph& base = BenchDataset(name, scale);
    Rng rng(44);
    std::unique_ptr<Graph> g;
    if (base.has_attributes()) {
      g = std::make_unique<Graph>(base);
    } else {
      g = std::make_unique<Graph>(WithPlantedAttributeGroups(base, 16, 5, 10, 0.8, rng));
    }
    it = cache.emplace(key, std::move(g)).first;
  }
  return *it->second;
}

// Default cluster shape for the benches: the paper's 15-node cluster scaled
// to an in-process deployment.
inline JobConfig BenchConfig(int workers = 4, int threads = 2) {
  JobConfig config;
  config.num_workers = workers;
  config.threads_per_worker = threads;
  config.rcv_cache_capacity = 1 << 14;
  config.task_block_capacity = 2048;
  config.task_buffer_batch = 128;
  // Simulated Gigabit-class interconnect: transfers take wall time in every
  // engine, so overlapping communication with computation (the task
  // pipeline's purpose) is visible in elapsed time.
  config.net_latency_us = 50;
  config.net_bandwidth_gbps = 1.0;
  config.seed = 42;
  return config;
}

// Degree-reordered variant: the same dataset after the orientation
// preprocessing pass (graph/orientation.h). Used by the kernel-sensitive
// benches (Table 3) so every engine sees the identical relabeled graph —
// apples-to-apples, with the `u > v` extension order equal to degree order.
inline const Graph& BenchOrientedDataset(const std::string& name, double scale = 1.0) {
  static std::map<std::string, std::unique_ptr<Graph>> cache;
  const std::string key = name + "@" + std::to_string(scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<Graph>(ReorderByDegree(
                                BenchDataset(name, scale)))).first;
  }
  return *it->second;
}

// Attaches the standard result counters to a benchmark row.
inline void ReportJobCounters(benchmark::State& state, JobStatus status, double elapsed,
                              double cpu_util, int64_t peak_mem, int64_t net_bytes) {
  state.counters["time_s"] = elapsed;
  state.counters["cpu_util_pct"] = 100.0 * cpu_util;
  state.counters["mem_MB"] = static_cast<double>(peak_mem) / 1e6;
  state.counters["net_MB"] = static_cast<double>(net_bytes) / 1e6;
  if (status == JobStatus::kOutOfMemory) {
    state.SetLabel("OOM(x)");
  } else if (status == JobStatus::kTimeout) {
    state.SetLabel("TIMEOUT(-)");
  }
}

namespace bench {

// ---------------------------------------------------------------------------
// BENCH_<name>.json snapshots: every bench binary writes a machine-readable
// record of the run (bench name, per-row wall ms + counters, optional
// app/graph annotations and per-stage latency percentiles from the trace
// layer, git SHA from $GMINER_GIT_SHA). scripts/check_bench.py diffs these
// against the committed bench/baseline/ snapshots in the CI bench-gate job,
// so the perf trajectory accumulates per commit and cannot silently regress.
// ---------------------------------------------------------------------------

struct SnapshotRow {
  std::string name;
  double wall_ms = 0.0;
  int64_t iterations = 0;
  std::string label;
  std::map<std::string, double> counters;
};

struct SnapshotState {
  std::vector<SnapshotRow> rows;
  // Registration-time annotations and run-time stage percentiles, keyed by
  // full row name (as reported by the benchmark library).
  std::map<std::string, std::pair<std::string, std::string>> app_graph;
  std::map<std::string, std::vector<StageLatency>> stages;
};

inline SnapshotState& Snapshot() {
  static SnapshotState state;
  return state;
}

// Tags a row with its app/graph for the snapshot (call at registration time
// with the same name handed to RegisterBenchmark; the library appends
// modifiers like "/iterations:1", so matching is by prefix at write time).
inline void AnnotateRow(const std::string& row_name, const std::string& app,
                        const std::string& graph) {
  Snapshot().app_graph[row_name] = {app, graph};
}

// Attaches per-stage p50/p95/p99 (from a traced run's JobResult) to a row.
inline void RecordStages(const std::string& row_name,
                         const std::vector<StageLatency>& stages) {
  if (!stages.empty()) {
    Snapshot().stages[row_name] = stages;
  }
}

// Console reporter that also captures every run for the snapshot.
class SnapshotReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) {
        continue;
      }
      SnapshotRow row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      row.wall_ms = run.iterations > 0
                        ? run.real_accumulated_time / static_cast<double>(run.iterations) * 1e3
                        : 0.0;
      row.label = run.report_label;
      for (const auto& [key, counter] : run.counters) {
        row.counters[key] = counter.value;
      }
      Snapshot().rows.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }
};

inline void JsonEscapeTo(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
}

// Writes BENCH_<bench_name>.json into $GMINER_BENCH_OUT (default: cwd).
// Returns false (and complains on stderr) if the file cannot be written.
inline bool WriteSnapshotFile(const std::string& bench_name) {
  const SnapshotState& snap = Snapshot();
  const char* out_dir = std::getenv("GMINER_BENCH_OUT");
  const char* git_sha = std::getenv("GMINER_GIT_SHA");
  const std::string path = std::string(out_dir != nullptr ? out_dir : ".") +
                           "/BENCH_" + bench_name + ".json";

  // Row names as captured carry run modifiers ("/iterations:1"); annotations
  // were keyed by the registration name — match by longest prefix.
  const auto annotation_for = [&snap](const std::string& row_name)
      -> const std::pair<std::string, std::string>* {
    const std::pair<std::string, std::string>* best = nullptr;
    size_t best_len = 0;
    for (const auto& [key, value] : snap.app_graph) {
      if (row_name.compare(0, key.size(), key) == 0 && key.size() >= best_len) {
        best = &value;
        best_len = key.size();
      }
    }
    return best;
  };
  const auto stages_for = [&snap](const std::string& row_name)
      -> const std::vector<StageLatency>* {
    const std::vector<StageLatency>* best = nullptr;
    size_t best_len = 0;
    for (const auto& [key, value] : snap.stages) {
      if (row_name.compare(0, key.size(), key) == 0 && key.size() >= best_len) {
        best = &value;
        best_len = key.size();
      }
    }
    return best;
  };

  std::string json;
  json += "{\n  \"schema_version\": 1,\n  \"bench\": \"";
  JsonEscapeTo(json, bench_name);
  json += "\",\n  \"git_sha\": \"";
  JsonEscapeTo(json, git_sha != nullptr ? git_sha : "unknown");
  json += "\",\n  \"rows\": [";
  bool first_row = true;
  char buf[64];
  for (const SnapshotRow& row : snap.rows) {
    json += first_row ? "\n" : ",\n";
    first_row = false;
    json += "    {\"name\": \"";
    JsonEscapeTo(json, row.name);
    std::snprintf(buf, sizeof(buf), "\", \"wall_ms\": %.6g", row.wall_ms);
    json += buf;
    std::snprintf(buf, sizeof(buf), ", \"iterations\": %lld",
                  static_cast<long long>(row.iterations));
    json += buf;
    if (const auto* ag = annotation_for(row.name)) {
      json += ", \"app\": \"";
      JsonEscapeTo(json, ag->first);
      json += "\", \"graph\": \"";
      JsonEscapeTo(json, ag->second);
      json += "\"";
    }
    if (!row.label.empty()) {
      json += ", \"label\": \"";
      JsonEscapeTo(json, row.label);
      json += "\"";
    }
    if (!row.counters.empty()) {
      json += ", \"counters\": {";
      bool first_counter = true;
      for (const auto& [key, value] : row.counters) {
        json += first_counter ? "" : ", ";
        first_counter = false;
        json += "\"";
        JsonEscapeTo(json, key);
        std::snprintf(buf, sizeof(buf), "\": %.6g", value);
        json += buf;
      }
      json += "}";
    }
    if (const auto* stages = stages_for(row.name)) {
      json += ", \"stages\": [";
      bool first_stage = true;
      for (const StageLatency& s : *stages) {
        json += first_stage ? "" : ", ";
        first_stage = false;
        json += "{\"stage\": \"";
        JsonEscapeTo(json, s.stage);
        std::snprintf(buf, sizeof(buf), "\", \"count\": %lld",
                      static_cast<long long>(s.count));
        json += buf;
        std::snprintf(buf, sizeof(buf), ", \"p50_ns\": %lld",
                      static_cast<long long>(s.p50_ns));
        json += buf;
        std::snprintf(buf, sizeof(buf), ", \"p95_ns\": %lld",
                      static_cast<long long>(s.p95_ns));
        json += buf;
        std::snprintf(buf, sizeof(buf), ", \"p99_ns\": %lld",
                      static_cast<long long>(s.p99_ns));
        json += buf;
        std::snprintf(buf, sizeof(buf), ", \"max_ns\": %lld",
                      static_cast<long long>(s.max_ns));
        json += buf;
        json += "}";
      }
      json += "]";
    }
    json += "}";
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench snapshot: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("bench snapshot: %s (%zu rows)\n", path.c_str(), snap.rows.size());
  return true;
}

// Drop-in main body for every bench binary: run the registered benchmarks
// with the capturing reporter, then write the BENCH_<name>.json snapshot.
inline int RunBenchSuite(int argc, char** argv, const std::string& bench_name) {
  benchmark::Initialize(&argc, argv);
  SnapshotReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const bool ok = WriteSnapshotFile(bench_name);
  benchmark::Shutdown();
  return ok ? 0 : 1;
}

}  // namespace bench

}  // namespace gminer

#endif  // GMINER_BENCH_BENCH_COMMON_H_
