// Table 3 (§8.2, "All systems"): TC and MCF elapsed time on the four
// non-attributed graphs across the system models. Paper shape: the
// Arabesque-model and Giraph-model engines only survive the small graphs for
// TC and fail (OOM / >24h) on everything else; the subgraph-centric engines
// (G-thinker model, G-Miner) complete every cell, with G-Miner ahead —
// decisively so on the largest graph.
#include <string>

#include "apps/mcf.h"
#include "apps/tc.h"
#include "baselines/batch_engine.h"
#include "baselines/bsp_engine.h"
#include "baselines/embed_engine.h"
#include "bench/bench_common.h"
#include "core/cluster.h"

namespace gminer {
namespace {

constexpr double kTimeBudget = 15.0;
constexpr size_t kMemoryBudget = 48u << 20;

JobConfig Table3Config() {
  JobConfig config = BenchConfig(8, 2);
  config.time_budget_seconds = kTimeBudget;
  config.memory_budget_bytes = kMemoryBudget;
  return config;
}

enum class App { kTc, kMcf };
enum class System { kArabesque, kGiraph, kGthinker, kGMiner };

void RunCell(benchmark::State& state, App app, System system, const std::string& dataset,
             const std::string& row_name) {
  // Original vertex ids: degree-reordering (BenchOrientedDataset) speeds up
  // the serial kernels but clusters the hubs at the high end of the id range,
  // which skews the range partitions and inflates spill on the
  // memory-budgeted cells (~20% wall on btc). The pipeline engines get their
  // kernel win from graph/intersect.h internally either way; orientation is
  // benchmarked where it pays, in bench_intersect.
  const Graph& g = BenchDataset(dataset);
  for (auto _ : state) {
    switch (system) {
      case System::kArabesque: {
        auto embed_app = app == App::kTc ? MakeEmbedTriangleCount() : MakeEmbedMaxClique();
        const EmbedResult r = RunEmbed(g, *embed_app, Table3Config());
        ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                          r.peak_memory_bytes, 0);
        state.counters["result"] = static_cast<double>(r.result);
        break;
      }
      case System::kGiraph: {
        auto bsp_app = app == App::kTc ? MakeBspTriangleCount() : MakeBspMaxClique();
        const BspResult r = RunBsp(g, *bsp_app, Table3Config());
        ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                          r.peak_memory_bytes, r.net_bytes);
        state.counters["result"] = static_cast<double>(r.result);
        break;
      }
      case System::kGthinker: {
        JobResult r;
        if (app == App::kTc) {
          TriangleCountJob job;
          r = RunBatch(g, job, Table3Config());
          state.counters["result"] =
              static_cast<double>(TriangleCountJob::Count(r.final_aggregate));
        } else {
          MaxCliqueJob job;
          r = RunBatch(g, job, Table3Config());
          state.counters["result"] =
              static_cast<double>(MaxCliqueJob::MaxCliqueSize(r.final_aggregate));
        }
        ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                          r.peak_memory_bytes, r.totals.net_bytes_sent);
        break;
      }
      case System::kGMiner: {
        Cluster cluster(Table3Config());
        // Trace the G-Miner cells so the snapshot records per-stage
        // p50/p95/p99 (compute, queue wait, pull RTT, ...) alongside wall
        // time — the before/after evidence for kernel changes.
        RunOptions options;
        options.enable_tracing = true;
        JobResult r;
        if (app == App::kTc) {
          TriangleCountJob job;
          r = cluster.Run(g, job, options);
          state.counters["result"] =
              static_cast<double>(TriangleCountJob::Count(r.final_aggregate));
        } else {
          MaxCliqueJob job;
          r = cluster.Run(g, job, options);
          state.counters["result"] =
              static_cast<double>(MaxCliqueJob::MaxCliqueSize(r.final_aggregate));
        }
        ReportJobCounters(state, r.status, r.elapsed_seconds, r.avg_cpu_utilization,
                          r.peak_memory_bytes, r.totals.net_bytes_sent);
        bench::RecordStages(row_name, r.stage_latencies);
        break;
      }
    }
  }
}

void RegisterCells() {
  const std::pair<App, const char*> apps[] = {{App::kTc, "TC"}, {App::kMcf, "MCF"}};
  const std::pair<System, const char*> systems[] = {{System::kArabesque, "ArabesqueModel"},
                                                    {System::kGiraph, "GiraphModel"},
                                                    {System::kGthinker, "GthinkerModel"},
                                                    {System::kGMiner, "GMiner"}};
  const char* datasets[] = {"skitter", "orkut", "btc", "friendster"};
  for (const auto& [app, app_name] : apps) {
    for (const char* dataset : datasets) {
      for (const auto& [system, system_name] : systems) {
        const std::string name =
            std::string("Table3/") + app_name + "/" + dataset + "/" + system_name;
        bench::AnnotateRow(name, app_name, dataset);
        benchmark::RegisterBenchmark(name.c_str(),
                                     [app = app, system = system,
                                      dataset = std::string(dataset),
                                      name](benchmark::State& s) {
                                       RunCell(s, app, system, dataset, name);
                                     })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  gminer::RegisterCells();
  return gminer::bench::RunBenchSuite(argc, argv, "table3_overall");
}
