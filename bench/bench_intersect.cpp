// Set-intersection kernel microbench + TC/k-clique kernel-level wall time.
//
// Two groups of rows:
//   Intersect/<shape>/<kernel>  — the raw kernels (scalar merge, galloping,
//       AVX2, auto dispatch) over synthetic sorted lists: balanced, skewed
//       (the 10000:1 hub case galloping exists for) and short lists (the
//       deep-search-tree case).
//   SerialTC|SerialKClique/<dataset>/<mode> — the end-to-end serial kernels
//       on a bench dataset, with the dispatcher forced to scalar vs. left on
//       auto, plus the pre-orientation id-ordered TC loop as the historical
//       baseline. These rows are the PR-over-PR perf trajectory the CI
//       bench-gate guards (scripts/check_bench.py vs bench/baseline/).
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/kclique.h"
#include "baselines/serial.h"
#include "bench/bench_common.h"
#include "common/rng.h"
#include "graph/intersect.h"

namespace gminer {
namespace {

// Sorted duplicate-free list of `n` values drawn from [0, universe).
std::vector<VertexId> MakeSortedList(size_t n, VertexId universe, Rng& rng) {
  std::vector<VertexId> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(rng.NextUint32(universe));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

using KernelFn = size_t (*)(std::span<const VertexId>, std::span<const VertexId>);

void RunKernelRow(benchmark::State& state, size_t na, size_t nb, KernelFn fn) {
  Rng rng(42);
  // Shared universe sized for ~25% overlap of the smaller list.
  const VertexId universe = static_cast<VertexId>(4 * std::min(na, nb) +
                                                  2 * std::max(na, nb));
  const auto a = MakeSortedList(na, universe, rng);
  const auto b = MakeSortedList(nb, universe, rng);
  uint64_t matches = 0;
  uint64_t calls = 0;
  for (auto _ : state) {
    matches += fn(a, b);
    ++calls;
  }
  benchmark::DoNotOptimize(matches);
  state.counters["matches_per_call"] =
      calls > 0 ? static_cast<double>(matches) / static_cast<double>(calls) : 0.0;
  state.SetItemsProcessed(static_cast<int64_t>(calls * (na + nb)));
}

// The pre-orientation TC loop (id-ordered, two-pointer), kept here as the
// historical baseline row so the orientation + SIMD win stays measured.
uint64_t IdOrderedScalarTriangleCount(const Graph& g) {
  uint64_t triangles = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto adj = g.neighbors(v);
    for (const VertexId u : adj) {
      if (u <= v) {
        continue;
      }
      const auto adj_u = g.neighbors(u);
      auto it_v = std::upper_bound(adj.begin(), adj.end(), u);
      auto it_u = adj_u.begin();
      while (it_v != adj.end() && it_u != adj_u.end()) {
        if (*it_v < *it_u) {
          ++it_v;
        } else if (*it_u < *it_v) {
          ++it_u;
        } else {
          ++triangles;
          ++it_v;
          ++it_u;
        }
      }
    }
  }
  return triangles;
}

void RunSerialTc(benchmark::State& state, const std::string& dataset,
                 IntersectKernel mode, bool oriented) {
  const Graph& g = BenchDataset(dataset);
  SetIntersectModeForTest(mode);
  uint64_t result = 0;
  for (auto _ : state) {
    result = oriented ? SerialTriangleCount(g) : IdOrderedScalarTriangleCount(g);
  }
  SetIntersectModeForTest(IntersectKernel::kAuto);
  state.counters["result"] = static_cast<double>(result);
}

void RunSerialKClique(benchmark::State& state, const std::string& dataset, uint32_t k,
                      IntersectKernel mode) {
  const Graph& g = BenchDataset(dataset);
  SetIntersectModeForTest(mode);
  uint64_t result = 0;
  for (auto _ : state) {
    result = SerialKCliqueCount(g, k);
  }
  SetIntersectModeForTest(IntersectKernel::kAuto);
  state.counters["result"] = static_cast<double>(result);
}

void RegisterCells() {
  struct Shape {
    const char* name;
    size_t na;
    size_t nb;
  };
  const Shape shapes[] = {
      {"short64x64", 64, 64},
      {"balanced4Kx4K", 4096, 4096},
      {"skew64x64K", 64, 65536},
      {"skew16x160K", 16, 160000},
  };
  struct Kernel {
    const char* name;
    KernelFn fn;
  };
  const Kernel kernels[] = {
      {"scalar", &IntersectCountScalar},
      {"galloping", &IntersectCountGalloping},
      {"avx2", &IntersectCountAvx2},
      {"auto", &IntersectCount},
  };
  for (const Shape& shape : shapes) {
    for (const Kernel& kernel : kernels) {
      const std::string name =
          std::string("Intersect/") + shape.name + "/" + kernel.name;
      benchmark::RegisterBenchmark(name.c_str(),
                                   [na = shape.na, nb = shape.nb,
                                    fn = kernel.fn](benchmark::State& s) {
                                     RunKernelRow(s, na, nb, fn);
                                   })
          ->Unit(benchmark::kMicrosecond);
    }
  }

  struct TcRow {
    const char* name;
    IntersectKernel mode;
    bool oriented;
  };
  const TcRow tc_rows[] = {
      {"unoriented-scalar", IntersectKernel::kScalar, false},
      {"scalar", IntersectKernel::kScalar, true},
      {"auto", IntersectKernel::kAuto, true},
  };
  for (const char* dataset : {"orkut", "btc"}) {
    for (const TcRow& row : tc_rows) {
      const std::string name =
          std::string("SerialTC/") + dataset + "/" + row.name;
      bench::AnnotateRow(name, "TC", dataset);
      benchmark::RegisterBenchmark(name.c_str(),
                                   [dataset = std::string(dataset), mode = row.mode,
                                    oriented = row.oriented](benchmark::State& s) {
                                     RunSerialTc(s, dataset, mode, oriented);
                                   })
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (const IntersectKernel mode :
       {IntersectKernel::kScalar, IntersectKernel::kAuto}) {
    const std::string name =
        std::string("SerialKClique4/orkut/") + IntersectKernelName(mode);
    bench::AnnotateRow(name, "KClique4", "orkut");
    benchmark::RegisterBenchmark(
        name.c_str(), [mode](benchmark::State& s) { RunSerialKClique(s, "orkut", 4, mode); })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace gminer

int main(int argc, char** argv) {
  gminer::RegisterCells();
  std::printf("intersect kernels: avx2 %s, mode %s\n",
              gminer::IntersectAvx2Available() ? "available" : "unavailable",
              gminer::IntersectKernelName(gminer::IntersectMode()));
  return gminer::bench::RunBenchSuite(argc, argv, "intersect");
}
