// Graph matching example: find a labeled tree pattern (the paper's Fig. 1
// pattern by default) in a labeled R-MAT graph, the workload of Table 4.
//
//   ./pattern_match [rmat_scale] [num_labels]
#include <cstdio>
#include <cstdlib>

#include "apps/gm.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace gminer;
  const int scale = argc > 1 ? std::atoi(argv[1]) : 11;
  const int num_labels = argc > 2 ? std::atoi(argv[2]) : 7;

  Rng rng(7);
  Graph graph = GenerateRMat(scale, /*edge_factor=*/8.0, rng);
  graph = WithUniformLabels(graph, num_labels, rng);
  std::printf("data graph: %u vertices, %lu edges, %d uniform labels\n", graph.num_vertices(),
              static_cast<unsigned long>(graph.num_edges()), num_labels);

  // Pattern P of Fig. 1: a → {b, c}, c → {d, e}. Build your own with
  // TreePattern::Build({{label, parent_index}, ...}).
  const TreePattern pattern = Fig1Pattern();
  std::printf("pattern: %zu nodes, depth %d (Fig. 1 of the paper)\n", pattern.nodes.size(),
              pattern.max_depth());

  JobConfig config;
  config.num_workers = 4;
  config.threads_per_worker = 2;
  Cluster cluster(config);
  GraphMatchJob job(pattern);
  const JobResult result = cluster.Run(graph, job);

  std::printf("status:       %s\n", JobStatusName(result.status));
  std::printf("matches:      %lu homomorphic embeddings\n",
              static_cast<unsigned long>(GraphMatchJob::MatchCount(result.final_aggregate)));
  std::printf("elapsed:      %.3f s\n", result.elapsed_seconds);
  std::printf("pull traffic: %.2f MB (%ld vertices pulled, %.1f%% cache hits)\n",
              static_cast<double>(result.totals.net_bytes_sent) / 1e6,
              static_cast<long>(result.totals.pull_responses),
              100.0 * result.totals.CacheHitRate());
  return result.status == JobStatus::kOk ? 0 : 1;
}
