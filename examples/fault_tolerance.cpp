// Fault-tolerance demo (§7): run a job with seed checkpointing, then simulate
// a node failure and recover — including handing the dead worker's tasks to a
// different worker, which task independence makes trivially correct.
//
//   ./fault_tolerance [n]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "apps/tc.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace gminer;
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 3000;

  Rng rng(7);
  const Graph graph = GenerateBarabasiAlbert(n, 8, rng);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gminer_ft_demo").string();
  std::filesystem::remove_all(dir);

  JobConfig config;
  config.num_workers = 3;
  config.threads_per_worker = 2;
  Cluster cluster(config);

  // 1. Run with checkpointing: every worker writes its seed tasks to
  //    <dir>/worker_<i>.tasks before processing.
  RunOptions checkpoint;
  checkpoint.checkpoint_dir = dir;
  TriangleCountJob job;
  const JobResult original = cluster.Run(graph, job, checkpoint);
  std::printf("original run:  %s, triangles = %lu (checkpoint in %s)\n",
              JobStatusName(original.status),
              static_cast<unsigned long>(TriangleCountJob::Count(original.final_aggregate)),
              dir.c_str());

  // 2. "Worker 2 died." Recover by re-running every worker's checkpointed
  //    tasks — with worker 0 adopting the dead worker's file. Tasks are
  //    independent (§4.2), so any worker can re-run any task.
  RunOptions recover;
  recover.recover_dir = dir;
  recover.recover_assignment = {2, 1, 0};  // worker 0 ↔ worker 2 swap files
  TriangleCountJob job2;
  const JobResult recovered = cluster.Run(graph, job2, recover);
  std::printf("recovered run: %s, triangles = %lu (worker 0 re-ran worker 2's tasks)\n",
              JobStatusName(recovered.status),
              static_cast<unsigned long>(TriangleCountJob::Count(recovered.final_aggregate)));

  const bool ok = TriangleCountJob::Count(original.final_aggregate) ==
                  TriangleCountJob::Count(recovered.final_aggregate);
  std::printf("%s\n", ok ? "results identical: recovery is exact"
                         : "MISMATCH: recovery diverged!");
  std::filesystem::remove_all(dir);
  return ok && recovered.status == JobStatus::kOk ? 0 : 1;
}
