// Fault-tolerance demo (§7): run a job with seed checkpointing, kill a worker
// mid-job and watch a survivor adopt its tasks online, then additionally show
// offline recovery (restart from checkpoints with a reassignment) — task
// independence makes both trivially exact.
//
//   ./fault_tolerance [n]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "apps/tc.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace gminer;
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 3000;

  Rng rng(7);
  const Graph graph = GenerateBarabasiAlbert(n, 8, rng);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gminer_ft_demo").string();
  std::filesystem::remove_all(dir);

  JobConfig config;
  config.num_workers = 4;
  config.threads_per_worker = 2;
  Cluster cluster(config);

  // 1. Baseline run with checkpointing: every worker writes its seed tasks to
  //    <dir>/worker_<i>.tasks before processing.
  RunOptions checkpoint;
  checkpoint.checkpoint_dir = dir;
  TriangleCountJob job;
  const JobResult original = cluster.Run(graph, job, checkpoint);
  const uint64_t expected = TriangleCountJob::Count(original.final_aggregate);
  std::printf("baseline run:  %s, triangles = %lu (checkpoint in %s)\n",
              JobStatusName(original.status), static_cast<unsigned long>(expected),
              dir.c_str());

  // 2. Online failover: kill worker 2 shortly after it seeds. The master's
  //    failure detector fences it, a survivor adopts its vertex partition and
  //    re-runs its checkpointed tasks (kAdoptTasks), and the job completes
  //    with the exact result — no restart.
  JobConfig ft_config = config;
  ft_config.enable_fault_tolerance = true;
  ft_config.enable_stealing = false;  // checkpoints are seed-granular
  ft_config.heartbeat_timeout_ms = 100;
  Cluster ft_cluster(ft_config);
  RunOptions kill_run;
  kill_run.checkpoint_dir = dir;
  kill_run.faults.seed = 99;
  FaultPlan::Kill kill;
  kill.worker = 2;
  kill.after_messages = 5;  // shortly after its seed checkpoint is written
  kill_run.faults.kills.push_back(kill);
  TriangleCountJob job_kill;
  const JobResult survived = ft_cluster.Run(graph, job_kill, kill_run);
  std::printf(
      "kill worker 2: %s, triangles = %lu (failovers=%ld, tasks adopted=%ld, "
      "recovery=%.1fms)\n",
      JobStatusName(survived.status),
      static_cast<unsigned long>(TriangleCountJob::Count(survived.final_aggregate)),
      static_cast<long>(survived.totals.failovers),
      static_cast<long>(survived.totals.tasks_adopted),
      static_cast<double>(survived.totals.recovery_wall_ns) / 1e6);

  // 3. Offline recovery: restart the whole job from the checkpoints, with
  //    worker 0 re-running dead worker 2's file (any worker can re-run any
  //    task, §4.2).
  RunOptions recover;
  recover.recover_dir = dir;
  recover.recover_assignment = {2, 1, 0, 3};  // worker 0 ↔ worker 2 swap files
  TriangleCountJob job2;
  const JobResult recovered = cluster.Run(graph, job2, recover);
  std::printf("offline rerun: %s, triangles = %lu (worker 0 re-ran worker 2's tasks)\n",
              JobStatusName(recovered.status),
              static_cast<unsigned long>(TriangleCountJob::Count(recovered.final_aggregate)));

  const bool ok =
      survived.status == JobStatus::kOk && recovered.status == JobStatus::kOk &&
      TriangleCountJob::Count(survived.final_aggregate) == expected &&
      TriangleCountJob::Count(recovered.final_aggregate) == expected;
  std::printf("%s\n", ok ? "results identical: recovery is exact"
                         : "MISMATCH: recovery diverged!");
  std::filesystem::remove_all(dir);
  return ok ? 0 : 1;
}
