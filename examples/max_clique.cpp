// Maximum clique finding example, demonstrating the global aggregator: the
// current best clique size is shared across workers and prunes every task's
// branch-and-bound — the source of the superlinear speedup discussed in §3
// of the paper. Also compares against the single-threaded baseline.
//
//   ./max_clique [n] [ba_m]
#include <cstdio>
#include <cstdlib>

#include "apps/mcf.h"
#include "baselines/serial.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/cluster.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace gminer;
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 3000;
  const int m = argc > 2 ? std::atoi(argv[2]) : 16;

  Rng rng(1234);
  const Graph graph = GenerateBarabasiAlbert(n, m, rng);
  std::printf("graph: %u vertices, %lu edges, avg degree %.1f\n", graph.num_vertices(),
              static_cast<unsigned long>(graph.num_edges()), graph.avg_degree());

  WallTimer serial_timer;
  const uint64_t serial_best = SerialMaxClique(graph);
  const double serial_seconds = serial_timer.ElapsedSeconds();
  std::printf("single-threaded: clique of %lu in %.3f s\n",
              static_cast<unsigned long>(serial_best), serial_seconds);

  JobConfig config;
  config.num_workers = 4;
  config.threads_per_worker = 2;
  config.aggregator_interval_ms = 1;  // fresh global bound = better pruning
  Cluster cluster(config);
  MaxCliqueJob job;
  const JobResult result = cluster.Run(graph, job);

  const uint64_t best = MaxCliqueJob::MaxCliqueSize(result.final_aggregate);
  std::printf("g-miner (%d workers x %d threads): clique of %lu in %.3f s (%.1fx)\n",
              config.num_workers, config.threads_per_worker,
              static_cast<unsigned long>(best), result.elapsed_seconds,
              serial_seconds / result.elapsed_seconds);
  if (best != serial_best) {
    std::printf("MISMATCH against serial baseline!\n");
    return 1;
  }
  return result.status == JobStatus::kOk ? 0 : 1;
}
