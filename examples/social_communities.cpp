// Community detection example: mine attribute-coherent dense communities
// from an attributed social graph (the Tencent-style workload of Table 5).
//
//   ./social_communities [n] [similarity_threshold]
#include <cstdio>
#include <cstdlib>

#include "apps/cd.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace gminer;
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 3000;
  const double tau = argc > 2 ? std::atof(argv[2]) : 0.4;

  // Attributed social graph: power-law topology + planted attribute groups
  // (communities share interests).
  Rng rng(99);
  Graph graph = GenerateBarabasiAlbert(n, 10, rng);
  graph = WithPlantedAttributeGroups(graph, /*num_groups=*/16, /*dims=*/8,
                                     /*values_per_dim=*/12, /*fidelity=*/0.85, rng);
  std::printf("graph: %u vertices, %lu edges, 8-dimensional attributes\n", graph.num_vertices(),
              static_cast<unsigned long>(graph.num_edges()));

  CdParams params;
  params.min_similarity = tau;
  params.min_size = 4;
  params.emit_outputs = true;

  JobConfig config;
  config.num_workers = 4;
  config.threads_per_worker = 2;
  Cluster cluster(config);
  CommunityJob job(params);
  const JobResult result = cluster.Run(graph, job);

  std::printf("status:      %s\n", JobStatusName(result.status));
  std::printf("communities: %lu (size >= %u, attribute similarity >= %.2f)\n",
              static_cast<unsigned long>(CommunityJob::CommunityCount(result.final_aggregate)),
              params.min_size, params.min_similarity);
  std::printf("elapsed:     %.3f s, peak memory %.2f MB\n", result.elapsed_seconds,
              static_cast<double>(result.peak_memory_bytes) / 1e6);
  int shown = 0;
  for (const auto& line : result.outputs) {
    if (shown++ >= 5) {
      std::printf("  ... (%zu more)\n", result.outputs.size() - 5);
      break;
    }
    std::printf("  %s\n", line.c_str());
  }
  return result.status == JobStatus::kOk ? 0 : 1;
}
