// Command-line driver: run any of the mining applications on a synthetic
// dataset or a graph file, with the cluster shape and pipeline knobs exposed
// as flags. This is the "use it on your own data" entry point.
//
//   gminer_cli --app tc --dataset orkut --workers 8 --threads 2
//   gminer_cli --app mcf --graph my_edges.el --partition hash --no-steal
//   gminer_cli --app gm --dataset friendster --labels 7
//   gminer_cli --app kclique --k 5 --dataset skitter
//   gminer_cli --app cd --dataset tencent --outputs
//
// Formats: --graph reads an edge list ("u v" per line); --adjacency reads the
// labeled/attributed adjacency format written by SaveAdjacency().
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/cd.h"
#include "apps/dsg.h"
#include "apps/gc.h"
#include "apps/gm.h"
#include "apps/kclique.h"
#include "apps/mcf.h"
#include "apps/mcf_split.h"
#include "apps/tc.h"
#include "common/logging.h"
#include "core/cluster.h"
#include "core/report.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: gminer_cli --app tc|mcf|mcf-split|kclique|dsg|gm|cd|gc\n"
               "                  [--dataset skitter|orkut|btc|friendster|tencent|dblp]\n"
               "                  [--graph edges.el | --adjacency graph.adj]\n"
               "                  [--scale F] [--workers N] [--threads N] [--k K]\n"
               "                  [--labels L] [--partition bdg|hash] [--no-lsh]\n"
               "                  [--no-steal] [--outputs] [--json out.json] [--trace out.json]\n"
               "                  [--metrics-port P] [--verbose] [--seed S]\n"
               "\n"
               "  --metrics-port P  serve live GET /metrics (Prometheus) and GET /status\n"
               "                    (JSON) on 127.0.0.1:P for the duration of the run\n"
               "                    (0 = ephemeral port, printed at startup)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gminer;
  std::string app;
  std::string dataset;
  std::string graph_path;
  std::string adjacency_path;
  std::string json_path;
  std::string trace_path;
  int metrics_port = -1;
  double scale = 1.0;
  uint32_t k = 4;
  int labels = 7;
  bool print_outputs = false;
  uint64_t seed = 42;
  JobConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      GM_CHECK(i + 1 < argc) << "missing value for " << arg;
      return argv[++i];
    };
    if (arg == "--app") {
      app = next();
    } else if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--graph") {
      graph_path = next();
    } else if (arg == "--adjacency") {
      adjacency_path = next();
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--workers") {
      config.num_workers = std::atoi(next());
    } else if (arg == "--threads") {
      config.threads_per_worker = std::atoi(next());
    } else if (arg == "--k") {
      k = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--labels") {
      labels = std::atoi(next());
    } else if (arg == "--partition") {
      const std::string strategy = next();
      config.partition =
          strategy == "hash" ? PartitionStrategy::kHash : PartitionStrategy::kBdg;
    } else if (arg == "--no-lsh") {
      config.enable_lsh = false;
    } else if (arg == "--no-steal") {
      config.enable_stealing = false;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics-port") {
      metrics_port = std::atoi(next());
    } else if (arg == "--outputs") {
      print_outputs = true;
    } else if (arg == "--verbose") {
      SetLogLevel(LogLevel::kInfo);
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else {
      Usage();
      return 2;
    }
  }
  if (app.empty()) {
    Usage();
    return 2;
  }
  config.seed = seed;

  // --- Load or generate the graph ---
  Graph graph;
  if (!graph_path.empty()) {
    graph = LoadEdgeList(graph_path);
  } else if (!adjacency_path.empty()) {
    graph = LoadAdjacency(adjacency_path);
  } else {
    graph = MakeDataset(dataset.empty() ? "orkut" : dataset, scale, seed);
  }
  Rng rng(seed + 1);
  if (app == "gm" && !graph.has_labels()) {
    graph = WithUniformLabels(graph, labels, rng);
  }
  if ((app == "cd" || app == "gc") && !graph.has_attributes()) {
    graph = WithPlantedAttributeGroups(graph, 16, 5, 10, 0.8, rng);
  }
  std::printf("graph: %u vertices, %lu edges, avg degree %.1f, max degree %u\n",
              graph.num_vertices(), static_cast<unsigned long>(graph.num_edges()),
              graph.avg_degree(), graph.max_degree());

  // --- Run the job ---
  Cluster cluster(config);
  RunOptions options;
  if (!trace_path.empty()) {
    options.enable_tracing = true;
    options.trace_json_path = trace_path;
  }
  if (metrics_port >= 0) {
    options.metrics_port = metrics_port;
    options.on_metrics_ready = [](int port) {
      std::printf("metrics:  http://127.0.0.1:%d/metrics and /status\n", port);
      std::fflush(stdout);
    };
  }
  JobResult result;
  std::string headline;
  if (app == "tc") {
    TriangleCountJob job;
    result = cluster.Run(graph, job, options);
    headline = "triangles = " + std::to_string(TriangleCountJob::Count(result.final_aggregate));
  } else if (app == "mcf") {
    MaxCliqueJob job;
    result = cluster.Run(graph, job, options);
    headline =
        "max clique = " + std::to_string(MaxCliqueJob::MaxCliqueSize(result.final_aggregate));
  } else if (app == "mcf-split") {
    SplittingCliqueJob job;
    result = cluster.Run(graph, job, options);
    headline = "max clique = " +
               std::to_string(SplittingCliqueJob::MaxCliqueSize(result.final_aggregate));
  } else if (app == "kclique") {
    KCliqueJob job(k);
    result = cluster.Run(graph, job, options);
    headline = std::to_string(k) +
               "-cliques = " + std::to_string(KCliqueJob::Count(result.final_aggregate));
  } else if (app == "dsg") {
    DensestSubgraphJob job;
    result = cluster.Run(graph, job, options);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "densest neighborhood density = %.3f",
                  DensestSubgraphJob::BestDensity(result.final_aggregate));
    headline = buf;
  } else if (app == "gm") {
    GraphMatchJob job(Fig1Pattern());
    result = cluster.Run(graph, job, options);
    headline =
        "matches = " + std::to_string(GraphMatchJob::MatchCount(result.final_aggregate));
  } else if (app == "cd") {
    CdParams params;
    params.emit_outputs = print_outputs;
    CommunityJob job(params);
    result = cluster.Run(graph, job, options);
    headline = "communities = " +
               std::to_string(CommunityJob::CommunityCount(result.final_aggregate));
  } else if (app == "gc") {
    GcParams params = MakeGcParams(graph, 12, seed);
    params.emit_outputs = print_outputs;
    FocusedClusteringJob job(params);
    result = cluster.Run(graph, job, options);
    headline = "clusters = " +
               std::to_string(FocusedClusteringJob::ClusterCount(result.final_aggregate));
  } else {
    Usage();
    return 2;
  }

  // --- Report ---
  std::printf("status:   %s\n", JobStatusName(result.status));
  std::printf("result:   %s\n", headline.c_str());
  std::printf("time:     %.3f s (+%.3f s partitioning)\n", result.elapsed_seconds,
              result.partition_seconds);
  std::printf("tasks:    %ld created / %ld completed / %ld migrated\n",
              static_cast<long>(result.totals.tasks_created),
              static_cast<long>(result.totals.tasks_completed),
              static_cast<long>(result.totals.tasks_stolen_in));
  std::printf("network:  %.2f MB, %ld pulls, %.1f%% cache hits\n",
              static_cast<double>(result.totals.net_bytes_sent) / 1e6,
              static_cast<long>(result.totals.pull_responses),
              100.0 * result.totals.CacheHitRate());
  std::printf("disk:     %.2f MB spilled\n",
              static_cast<double>(result.totals.disk_bytes_written) / 1e6);
  std::printf("memory:   %.2f MB peak (tracked)\n",
              static_cast<double>(result.peak_memory_bytes) / 1e6);
  std::printf("cpu:      %.1f%% average utilization\n", 100.0 * result.avg_cpu_utilization);
  if (result.trace_enabled) {
    std::printf("trace:    %ld events (%ld dropped)%s%s\n",
                static_cast<long>(result.trace_events),
                static_cast<long>(result.trace_events_dropped),
                result.trace_file.empty() ? "" : ", written to ",
                result.trace_file.c_str());
    if (!result.stage_latencies.empty()) {
      std::printf("  %-14s %10s %12s %12s %12s\n", "stage", "count", "p50", "p95", "p99");
      for (const auto& stage : result.stage_latencies) {
        std::printf("  %-14s %10ld %10.3fms %10.3fms %10.3fms\n", stage.stage.c_str(),
                    static_cast<long>(stage.count), stage.p50_ns / 1e6, stage.p95_ns / 1e6,
                    stage.p99_ns / 1e6);
      }
    }
  }
  if (print_outputs) {
    for (const auto& line : result.outputs) {
      std::printf("  %s\n", line.c_str());
    }
  }
  if (!json_path.empty()) {
    WriteJobResultJson(result, json_path);
    std::printf("json:     written to %s\n", json_path.c_str());
  }
  return result.status == JobStatus::kOk ? 0 : 1;
}
