// Graph clustering example (FocusCO-style): given a handful of exemplar
// users, infer which attributes matter to them and extract the focused
// clusters around them — the convergent GC workload of Table 5.
//
//   ./focused_clustering [n] [num_exemplars]
#include <cstdio>
#include <algorithm>
#include <cstdlib>

#include "apps/gc.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace gminer;
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 4000;
  const int exemplars = argc > 2 ? std::atoi(argv[2]) : 8;

  Rng rng(2026);
  const VertexId num_comms = std::max<VertexId>(8, n / 80);
  Graph graph = GenerateCommunityGraph(num_comms, /*community_size=*/80, /*p_in=*/0.15,
                                       /*inter_edges=*/num_comms * 30ull, rng);
  graph = WithPlantedAttributeGroups(graph, /*num_groups=*/static_cast<int>(num_comms),
                                     /*dims=*/6, /*values_per_dim=*/10, /*fidelity=*/0.9, rng);

  // User preference: a few exemplar vertices from one planted group. The
  // weight-inference step learns which attribute dimensions they agree on.
  GcParams params = MakeGcParams(graph, exemplars, /*seed=*/5);
  params.emit_outputs = true;
  std::printf("graph: %u vertices, %lu edges; %zu exemplars\n", graph.num_vertices(),
              static_cast<unsigned long>(graph.num_edges()), params.exemplars.size());
  std::printf("inferred attribute weights:");
  for (const double w : params.weights) {
    std::printf(" %.3f", w);
  }
  std::printf("\n");

  JobConfig config;
  config.num_workers = 4;
  config.threads_per_worker = 2;
  Cluster cluster(config);
  FocusedClusteringJob job(params);
  const JobResult result = cluster.Run(graph, job);

  std::printf("status:   %s\n", JobStatusName(result.status));
  std::printf("clusters: %lu focused clusters converged\n",
              static_cast<unsigned long>(
                  FocusedClusteringJob::ClusterCount(result.final_aggregate)));
  std::printf("elapsed:  %.3f s over %ld update rounds\n", result.elapsed_seconds,
              static_cast<long>(result.totals.update_rounds));
  for (const auto& line : result.outputs) {
    std::printf("  %s\n", line.c_str());
  }
  return result.status == JobStatus::kOk ? 0 : 1;
}
