// Quickstart: build a small graph, deploy an in-process G-Miner cluster, and
// run triangle counting end to end.
//
//   ./quickstart [num_workers] [threads_per_worker]
#include <cstdio>
#include <cstdlib>

#include "apps/tc.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace gminer;

  // 1. A dataset: a 4096-vertex power-law social graph.
  Rng rng(42);
  const Graph graph = GenerateBarabasiAlbert(/*n=*/4096, /*m=*/8, rng);
  std::printf("graph: %u vertices, %lu edges, max degree %u\n", graph.num_vertices(),
              static_cast<unsigned long>(graph.num_edges()), graph.max_degree());

  // 2. A cluster: N workers, each with its own partition, task pipeline and
  //    computing threads. BDG partitioning keeps neighborhoods local.
  JobConfig config;
  config.num_workers = argc > 1 ? std::atoi(argv[1]) : 4;
  config.threads_per_worker = argc > 2 ? std::atoi(argv[2]) : 2;
  config.partition = PartitionStrategy::kBdg;
  Cluster cluster(config);

  // 3. A job: triangle counting, one task per vertex, one pull round each.
  TriangleCountJob job;
  const JobResult result = cluster.Run(graph, job);

  std::printf("status:           %s\n", JobStatusName(result.status));
  std::printf("triangles:        %lu\n",
              static_cast<unsigned long>(TriangleCountJob::Count(result.final_aggregate)));
  std::printf("elapsed:          %.3f s (+ %.3f s partitioning)\n", result.elapsed_seconds,
              result.partition_seconds);
  std::printf("tasks:            %ld created, %ld completed\n",
              static_cast<long>(result.totals.tasks_created),
              static_cast<long>(result.totals.tasks_completed));
  std::printf("network:          %.2f MB pulled, cache hit rate %.1f%%\n",
              static_cast<double>(result.totals.net_bytes_sent) / 1e6,
              100.0 * result.totals.CacheHitRate());
  std::printf("cpu utilization:  %.1f%%\n", 100.0 * result.avg_cpu_utilization);
  std::printf("peak memory:      %.2f MB (tracked structures)\n",
              static_cast<double>(result.peak_memory_bytes) / 1e6);
  return result.status == JobStatus::kOk ? 0 : 1;
}
