// Classic vertex-centric programs on the BSP engine: PageRank and Hash-Min
// connected components. These are the workloads the paper's §1 credits
// vertex-centric systems with handling well (light per-vertex state, linear
// per-superstep work) — including them keeps the comparator engine honest: it
// is a real Pregel-model engine, not a strawman that only runs mining.
#ifndef GMINER_BASELINES_BSP_APPS_H_
#define GMINER_BASELINES_BSP_APPS_H_

#include <memory>
#include <vector>

#include "baselines/bsp_engine.h"

namespace gminer {

// PageRank with damping 0.85 for a fixed number of iterations (dangling mass
// is dropped, as the serial oracle does). Ranks live in app-owned per-vertex
// state; Compute() touches only state[v], so parallel supersteps are safe.
class BspPageRank : public BspApp {
 public:
  BspPageRank(VertexId num_vertices, int iterations);

  void Compute(int superstep, const Graph& g, VertexId v,
               const std::vector<const BspMessage*>& inbox, std::vector<BspMessage>& outbox,
               std::atomic<uint64_t>& result) override;
  int max_supersteps() const override { return iterations_ + 1; }

  const std::vector<double>& ranks() const { return ranks_; }

 private:
  int iterations_;
  std::vector<double> ranks_;
  std::vector<double> incoming_;
};

// Hash-Min connected components: every vertex repeatedly adopts the smallest
// component id seen, propagating only on change (vote-to-halt). This is the
// same algorithm BDG partitioning's fallback uses (§6.1, [39]).
class BspConnectedComponents : public BspApp {
 public:
  explicit BspConnectedComponents(VertexId num_vertices);

  void Compute(int superstep, const Graph& g, VertexId v,
               const std::vector<const BspMessage*>& inbox, std::vector<BspMessage>& outbox,
               std::atomic<uint64_t>& result) override;
  int max_supersteps() const override { return 1 << 20; }  // runs to quiescence

  const std::vector<VertexId>& components() const { return components_; }

 private:
  std::vector<VertexId> components_;
};

std::unique_ptr<BspPageRank> MakeBspPageRank(VertexId num_vertices, int iterations);
std::unique_ptr<BspConnectedComponents> MakeBspConnectedComponents(VertexId num_vertices);

}  // namespace gminer

#endif  // GMINER_BASELINES_BSP_APPS_H_
