#include "baselines/embed_engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "metrics/memory_tracker.h"

namespace gminer {

namespace {

int64_t EmbeddingBytes(const std::vector<VertexId>& e) {
  return static_cast<int64_t>(sizeof(std::vector<VertexId>)) +
         static_cast<int64_t>(e.capacity() * sizeof(VertexId));
}

}  // namespace

EmbedResult RunEmbed(const Graph& g, EmbedApp& app, const JobConfig& config) {
  EmbedResult result;
  const int total_threads = std::max(1, config.num_workers * config.threads_per_worker);
  const int effective_cores = EffectiveCores(total_threads);
  ThreadPool pool(total_threads);
  MemoryTracker memory;
  memory.Add(static_cast<int64_t>(g.ByteSize()));

  // Level 1: every vertex is an embedding.
  std::vector<std::vector<VertexId>> frontier;
  frontier.reserve(g.num_vertices());
  int64_t frontier_bytes = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    frontier.push_back({v});
    frontier_bytes += EmbeddingBytes(frontier.back());
  }
  memory.Add(frontier_bytes);

  std::atomic<uint64_t> global{0};
  std::atomic<int64_t> busy_ns{0};
  WallTimer timer;

  while (!frontier.empty()) {
    ++result.rounds;
    result.peak_frontier = std::max(result.peak_frontier, static_cast<uint64_t>(frontier.size()));

    // --- Expansion: generate ALL candidate embeddings of the next level
    // before any filtering (the Arabesque model), behind a barrier. ---
    std::vector<std::vector<std::vector<VertexId>>> thread_candidates(
        static_cast<size_t>(total_threads));
    std::atomic<size_t> cursor{0};
    std::atomic<int64_t> candidate_bytes{0};
    for (int t = 0; t < total_threads; ++t) {
      pool.Submit([&, t] {
        auto& out = thread_candidates[static_cast<size_t>(t)];
        while (true) {
          const size_t begin = cursor.fetch_add(64);
          if (begin >= frontier.size()) {
            return;
          }
          const size_t end = std::min(begin + 64, frontier.size());
          ThreadCpuTimer compute_timer;
          for (size_t i = begin; i < end; ++i) {
            const auto& e = frontier[i];
            if (!app.ShouldExpand(g, e)) {
              continue;
            }
            const VertexId max_member = *std::max_element(e.begin(), e.end());
            for (const VertexId m : e) {
              for (const VertexId u : g.neighbors(m)) {
                if (u <= max_member) {
                  continue;  // canonical extension: strictly increasing ids
                }
                // Avoid obvious duplicates: extend from the member whose id
                // is the smallest neighbor of u inside e.
                bool first = true;
                for (const VertexId w : e) {
                  if (w < m && g.HasEdge(w, u)) {
                    first = false;
                    break;
                  }
                }
                if (!first) {
                  continue;
                }
                std::vector<VertexId> candidate = e;
                candidate.push_back(u);
                candidate_bytes.fetch_add(EmbeddingBytes(candidate),
                                          std::memory_order_relaxed);
                out.push_back(std::move(candidate));
              }
            }
          }
          busy_ns.fetch_add(compute_timer.ElapsedNanos(), std::memory_order_relaxed);
        }
      });
    }
    pool.Wait();
    memory.Add(candidate_bytes.load());

    if (config.memory_budget_bytes > 0 &&
        memory.peak() > static_cast<int64_t>(config.memory_budget_bytes)) {
      result.status = JobStatus::kOutOfMemory;
      break;
    }

    // --- Filter + process phase ---
    std::vector<std::vector<VertexId>> next;
    int64_t next_bytes = 0;
    for (auto& out : thread_candidates) {
      for (auto& candidate : out) {
        ThreadCpuTimer compute_timer;
        const bool keep = app.Filter(g, candidate);
        if (keep) {
          global.store(app.Combine(global.load(std::memory_order_relaxed),
                                   app.Process(g, candidate)),
                       std::memory_order_relaxed);
        }
        busy_ns.fetch_add(compute_timer.ElapsedNanos(), std::memory_order_relaxed);
        const int64_t bytes = EmbeddingBytes(candidate);
        if (keep) {
          next_bytes += bytes;
          next.push_back(std::move(candidate));
        } else {
          memory.Sub(bytes);
        }
      }
    }
    memory.Sub(frontier_bytes);
    frontier = std::move(next);
    frontier_bytes = next_bytes;

    if (config.time_budget_seconds > 0.0 &&
        timer.ElapsedSeconds() > config.time_budget_seconds) {
      result.status = JobStatus::kTimeout;
      break;
    }
  }

  result.elapsed_seconds = timer.ElapsedSeconds();
  result.result = global.load();
  result.peak_memory_bytes = memory.peak();
  result.avg_cpu_utilization =
      result.elapsed_seconds > 0.0
          ? static_cast<double>(busy_ns.load()) /
                (result.elapsed_seconds * 1e9 * effective_cores)
          : 0.0;
  return result;
}

namespace {

// Shared clique predicate: the newest member must connect to every older one.
bool IsCliqueExtension(const Graph& g, const std::vector<VertexId>& e) {
  const VertexId added = e.back();
  for (size_t i = 0; i + 1 < e.size(); ++i) {
    if (!g.HasEdge(e[i], added)) {
      return false;
    }
  }
  return true;
}

class EmbedTriangleCount : public EmbedApp {
 public:
  bool Filter(const Graph& g, const std::vector<VertexId>& e) override {
    return IsCliqueExtension(g, e);
  }
  uint64_t Process(const Graph& g, const std::vector<VertexId>& e) override {
    (void)g;
    return e.size() == 3 ? 1 : 0;
  }
  bool ShouldExpand(const Graph& g, const std::vector<VertexId>& e) override {
    (void)g;
    return e.size() < 3;
  }
};

class EmbedMaxClique : public EmbedApp {
 public:
  bool Filter(const Graph& g, const std::vector<VertexId>& e) override {
    return IsCliqueExtension(g, e);
  }
  uint64_t Process(const Graph& g, const std::vector<VertexId>& e) override {
    (void)g;
    return e.size();
  }
  bool ShouldExpand(const Graph& g, const std::vector<VertexId>& e) override {
    (void)g;
    (void)e;
    return true;  // grow until no clique embedding survives
  }
  uint64_t Combine(uint64_t a, uint64_t b) const override { return std::max(a, b); }
};

}  // namespace

std::unique_ptr<EmbedApp> MakeEmbedTriangleCount() {
  return std::make_unique<EmbedTriangleCount>();
}

std::unique_ptr<EmbedApp> MakeEmbedMaxClique() { return std::make_unique<EmbedMaxClique>(); }

}  // namespace gminer
