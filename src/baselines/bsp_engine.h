// Vertex-centric BSP engine reproducing the computational model of Pregel /
// Giraph / GraphX: per-vertex compute functions, message passing between
// supersteps, and a global synchronization barrier after every superstep.
// This is the comparator model behind the Giraph and GraphX rows of Tables 1
// and 3 — the barrier throttles CPU utilization and the need to materialize
// whole neighborhoods in messages blows up memory on dense graphs (OOM).
#ifndef GMINER_BASELINES_BSP_ENGINE_H_
#define GMINER_BASELINES_BSP_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.h"
#include "core/job_result.h"
#include "graph/graph.h"

namespace gminer {

struct BspMessage {
  VertexId source = kInvalidVertex;
  VertexId target = kInvalidVertex;
  std::vector<VertexId> payload;
  double value = 0.0;  // scalar payload (e.g. PageRank mass)

  int64_t ByteSize() const {
    return static_cast<int64_t>(sizeof(BspMessage)) +
           static_cast<int64_t>(payload.capacity() * sizeof(VertexId));
  }
};

// A vertex program. Superstep 0 is invoked on every vertex with an empty
// inbox; afterwards only vertices with pending messages run. The engine halts
// when no messages were produced in a superstep (or max_supersteps passed).
class BspApp {
 public:
  virtual ~BspApp() = default;

  virtual void Compute(int superstep, const Graph& g, VertexId v,
                       const std::vector<const BspMessage*>& inbox,
                       std::vector<BspMessage>& outbox, std::atomic<uint64_t>& result) = 0;

  // Fold `value` into the running global result (sum or max semantics).
  virtual uint64_t Combine(uint64_t a, uint64_t b) const { return a + b; }

  virtual int max_supersteps() const = 0;
};

struct BspResult {
  JobStatus status = JobStatus::kOk;
  double elapsed_seconds = 0.0;
  uint64_t result = 0;
  int64_t peak_memory_bytes = 0;
  int64_t net_bytes = 0;
  double avg_cpu_utilization = 0.0;
  int supersteps = 0;
};

// Runs the app over g with config.num_workers × config.threads_per_worker
// compute slots, hash partitioning, and the configured memory / time budgets.
BspResult RunBsp(const Graph& g, BspApp& app, const JobConfig& config);

// Vertex-centric triangle counting: superstep 0 sends, per higher neighbor u,
// the still-higher part of N+(v); superstep 1 intersects with local adjacency.
std::unique_ptr<BspApp> MakeBspTriangleCount();

// Vertex-centric maximum clique: materializes every vertex's higher-neighbor
// adjacency via messages, then solves a local clique problem per vertex — the
// memory-hungry strategy that drives Giraph out of memory on dense graphs.
std::unique_ptr<BspApp> MakeBspMaxClique();

}  // namespace gminer

#endif  // GMINER_BASELINES_BSP_ENGINE_H_
