// Optimized single-threaded implementations of the five mining applications.
// They serve two roles: (1) the single-thread baseline of Table 1 and the
// COST measurement of Fig. 7 (McSherry et al.), and (2) the correctness
// oracle the test suite compares every distributed engine against. Semantics
// match the distributed apps exactly (same seed rules, same filters, same
// counting), so results must be equal, not merely close.
#ifndef GMINER_BASELINES_SERIAL_H_
#define GMINER_BASELINES_SERIAL_H_

#include <cstdint>
#include <vector>

#include "apps/cd.h"
#include "apps/gc.h"
#include "apps/gm.h"
#include "graph/graph.h"

namespace gminer {

// Triangle count via sorted higher-neighbor intersection.
uint64_t SerialTriangleCount(const Graph& g);

// Maximum clique size via Tomita-style branch and bound with a greedy
// coloring bound. `budget_seconds` = 0 disables the timeout; on timeout the
// best bound found so far is returned and *timed_out is set.
uint64_t SerialMaxClique(const Graph& g, double budget_seconds = 0.0,
                         bool* timed_out = nullptr);

// Tree-pattern homomorphism count (same semantics as GraphMatchJob), via a
// global bottom-up dynamic program — the fastest single-threaded algorithm,
// used as the correctness oracle.
uint64_t SerialGraphMatch(const Graph& g, const TreePattern& pattern);

// Same count via sequential per-seed exploration — one root task at a time,
// expanding level by level exactly as the distributed tasks do. This is the
// like-for-like single-threaded baseline for the COST measurement (Fig. 7):
// the same algorithm on one thread, as the paper compares.
uint64_t SerialGraphMatchPerSeed(const Graph& g, const TreePattern& pattern);

// Community count with CommunityJob's exact seed/filter/maximal-clique rules.
uint64_t SerialCommunityCount(const Graph& g, const CdParams& params);

// Focused clusters with FocusedClusterTask's exact expand/shrink algorithm;
// returns the sorted member lists of clusters meeting min_cluster.
std::vector<std::vector<VertexId>> SerialFocusedClusters(const Graph& g,
                                                         const GcParams& params);

}  // namespace gminer

#endif  // GMINER_BASELINES_SERIAL_H_
