#include "baselines/serial.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "apps/similarity.h"
#include "common/logging.h"
#include "common/timer.h"
#include "graph/intersect.h"
#include "graph/orientation.h"

namespace gminer {

uint64_t SerialTriangleCount(const Graph& g) {
  // Degree-oriented counting: each triangle has a unique minimum-rank vertex
  // a with forward edges to the other two, so it is counted exactly once at
  // the edge (a, b) as a common forward neighbor. Forward lists are bounded
  // by the degeneracy, which keeps the intersections short even at hubs.
  const Graph dag = BuildOrientedDag(g);
  uint64_t triangles = 0;
  for (VertexId v = 0; v < dag.num_vertices(); ++v) {
    const auto fwd = dag.neighbors(v);
    for (const VertexId u : fwd) {
      triangles += IntersectCount(fwd, dag.neighbors(u));
    }
  }
  return triangles;
}

namespace {

struct CliqueSearch {
  const Graph& g;
  uint64_t best = 0;
  WallTimer timer;
  double budget_seconds;
  bool timed_out = false;
  int steps = 0;

  bool Cancelled() {
    if (budget_seconds <= 0.0) {
      return false;
    }
    if (++steps >= 4096) {
      steps = 0;
      if (timer.ElapsedSeconds() > budget_seconds) {
        timed_out = true;
      }
    }
    return timed_out;
  }

  uint32_t ColorBound(const std::vector<VertexId>& cand) {
    std::unordered_map<VertexId, uint32_t> color;
    uint32_t num_colors = 0;
    std::vector<bool> used;
    for (const VertexId v : cand) {
      used.assign(num_colors + 1, false);
      for (const VertexId u : g.neighbors(v)) {
        auto it = color.find(u);
        if (it != color.end()) {
          used[it->second] = true;
        }
      }
      uint32_t c = 0;
      while (c < used.size() && used[c]) {
        ++c;
      }
      color[v] = c;
      num_colors = std::max(num_colors, c + 1);
    }
    return num_colors;
  }

  void Expand(std::vector<VertexId>& cand, uint64_t r_size) {
    if (Cancelled()) {
      return;
    }
    if (cand.empty()) {
      best = std::max(best, r_size);
      return;
    }
    if (r_size + cand.size() <= best) {
      return;
    }
    if (r_size + ColorBound(cand) <= best) {
      return;
    }
    while (!cand.empty()) {
      if (r_size + cand.size() <= best || Cancelled()) {
        return;
      }
      const VertexId v = cand.back();
      cand.pop_back();
      const auto adj = g.neighbors(v);
      std::vector<VertexId> next;
      for (const VertexId u : cand) {
        if (std::binary_search(adj.begin(), adj.end(), u)) {
          next.push_back(u);
        }
      }
      if (r_size + 1 + next.size() > best) {
        Expand(next, r_size + 1);
      } else {
        best = std::max(best, r_size + 1);
      }
    }
  }
};

}  // namespace

uint64_t SerialMaxClique(const Graph& g, double budget_seconds, bool* timed_out) {
  CliqueSearch search{g, /*best=*/0, WallTimer(), budget_seconds};
  if (g.num_vertices() > 0) {
    search.best = 1;
  }
  // Degeneracy-flavored order: ascending degree, branched from the back
  // (densest first).
  std::vector<VertexId> order(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    order[v] = v;
  }
  std::sort(order.begin(), order.end(),
            [&g](VertexId a, VertexId b) { return g.degree(a) < g.degree(b); });
  search.Expand(order, 0);
  if (timed_out != nullptr) {
    *timed_out = search.timed_out;
  }
  return search.best;
}

uint64_t SerialGraphMatch(const Graph& g, const TreePattern& pattern) {
  // Bottom-up homomorphism DP: cnt[pn][v] for v with the right label.
  std::vector<std::unordered_map<VertexId, uint64_t>> cnt(pattern.nodes.size());
  for (int level = pattern.max_depth(); level >= 0; --level) {
    for (const int pn : pattern.levels[static_cast<size_t>(level)]) {
      const Label label = pattern.nodes[static_cast<size_t>(pn)].label;
      const auto& children = pattern.nodes[static_cast<size_t>(pn)].children;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (g.label(v) != label) {
          continue;
        }
        uint64_t product = 1;
        for (const int child : children) {
          uint64_t sum = 0;
          const auto& child_cnt = cnt[static_cast<size_t>(child)];
          for (const VertexId u : g.neighbors(v)) {
            auto it = child_cnt.find(u);
            if (it != child_cnt.end()) {
              sum += it->second;
            }
          }
          product *= sum;
          if (product == 0) {
            break;
          }
        }
        if (product > 0) {
          cnt[static_cast<size_t>(pn)][v] = product;
        }
      }
    }
  }
  uint64_t total = 0;
  for (const auto& [v, c] : cnt[0]) {
    total += c;
  }
  return total;
}

uint64_t SerialGraphMatchPerSeed(const Graph& g, const TreePattern& pattern) {
  uint64_t total = 0;
  const Label root_label = pattern.nodes[0].label;
  for (VertexId seed = 0; seed < g.num_vertices(); ++seed) {
    if (g.label(seed) != root_label) {
      continue;
    }
    // Frontier expansion identical to GraphMatchTask, with direct access.
    struct Entry {
      int pn;
      VertexId parent;
      VertexId vertex;
    };
    std::vector<Entry> frontier{{0, kInvalidVertex, seed}};
    // match edges per (pattern child, parent vertex) → children.
    std::map<std::pair<int, VertexId>, std::vector<VertexId>> edges;
    std::set<std::pair<int, VertexId>> matched;
    bool dead = false;
    while (!dead) {
      std::vector<Entry> level_matched;
      for (const Entry& e : frontier) {
        if (g.label(e.vertex) == pattern.nodes[static_cast<size_t>(e.pn)].label) {
          level_matched.push_back(e);
        }
      }
      if (level_matched.empty()) {
        dead = true;
        break;
      }
      for (const Entry& e : level_matched) {
        if (e.parent != kInvalidVertex) {
          edges[{e.pn, e.parent}].push_back(e.vertex);
          matched.emplace(e.pn, e.vertex);
        }
      }
      std::set<std::pair<int, VertexId>> expanded;
      std::vector<Entry> next;
      for (const Entry& e : level_matched) {
        if (!expanded.emplace(e.pn, e.vertex).second) {
          continue;
        }
        for (const int child : pattern.nodes[static_cast<size_t>(e.pn)].children) {
          for (const VertexId u : g.neighbors(e.vertex)) {
            next.push_back({child, e.vertex, u});
          }
        }
      }
      if (next.empty()) {
        // Count via the same bottom-up product the task uses.
        std::map<std::pair<int, VertexId>, uint64_t> memo;
        for (int level = pattern.max_depth(); level >= 0; --level) {
          for (const int pn : pattern.levels[static_cast<size_t>(level)]) {
            std::vector<VertexId> here;
            if (pn == 0) {
              here.push_back(seed);
            } else {
              for (const auto& [node, v] : matched) {
                if (node == pn) {
                  here.push_back(v);
                }
              }
            }
            for (const VertexId v : here) {
              uint64_t product = 1;
              for (const int child : pattern.nodes[static_cast<size_t>(pn)].children) {
                uint64_t sum = 0;
                auto it = edges.find({child, v});
                if (it != edges.end()) {
                  std::vector<VertexId> ws = it->second;
                  std::sort(ws.begin(), ws.end());
                  ws.erase(std::unique(ws.begin(), ws.end()), ws.end());
                  for (const VertexId w : ws) {
                    auto mt = memo.find({child, w});
                    if (mt != memo.end()) {
                      sum += mt->second;
                    }
                  }
                }
                product *= sum;
                if (product == 0) {
                  break;
                }
              }
              memo[{pn, v}] = product;
            }
          }
        }
        auto it = memo.find({0, seed});
        if (it != memo.end()) {
          total += it->second;
        }
        break;
      }
      frontier = std::move(next);
    }
  }
  return total;
}

namespace {

// Independent Bron–Kerbosch (with pivot) used by the CD oracle. Counts
// maximal cliques of the induced graph over `members` whose size + 1 (for the
// implicit seed) reaches min_size.
void OracleBk(const std::vector<std::vector<uint32_t>>& adj, std::vector<uint32_t>& r,
              std::vector<uint32_t> p, std::vector<uint32_t> x, uint32_t min_size,
              uint64_t& found) {
  if (p.empty() && x.empty()) {
    if (r.size() + 1 >= min_size) {
      ++found;
    }
    return;
  }
  uint32_t pivot = 0;
  size_t best = 0;
  bool have = false;
  for (const auto* set : {&p, &x}) {
    for (const uint32_t u : *set) {
      size_t cnt = 0;
      for (const uint32_t w : p) {
        if (std::binary_search(adj[u].begin(), adj[u].end(), w)) {
          ++cnt;
        }
      }
      if (!have || cnt > best) {
        best = cnt;
        pivot = u;
        have = true;
      }
    }
  }
  std::vector<uint32_t> branch;
  for (const uint32_t u : p) {
    if (!std::binary_search(adj[pivot].begin(), adj[pivot].end(), u)) {
      branch.push_back(u);
    }
  }
  for (const uint32_t v : branch) {
    std::vector<uint32_t> p_next;
    std::vector<uint32_t> x_next;
    for (const uint32_t u : p) {
      if (std::binary_search(adj[v].begin(), adj[v].end(), u)) {
        p_next.push_back(u);
      }
    }
    for (const uint32_t u : x) {
      if (std::binary_search(adj[v].begin(), adj[v].end(), u)) {
        x_next.push_back(u);
      }
    }
    r.push_back(v);
    OracleBk(adj, r, std::move(p_next), std::move(x_next), min_size, found);
    r.pop_back();
    p.erase(std::find(p.begin(), p.end(), v));
    x.push_back(v);
  }
}

}  // namespace

uint64_t SerialCommunityCount(const Graph& g, const CdParams& params) {
  uint64_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto adj = g.neighbors(v);
    if (adj.size() < params.min_degree) {
      continue;
    }
    std::vector<VertexId> cand;
    for (const VertexId u : adj) {
      if (u > v) {
        cand.push_back(u);
      }
    }
    if (cand.size() + 1 < params.min_size) {
      continue;
    }
    std::vector<VertexId> filtered;
    for (const VertexId u : cand) {
      if (AttrSimilarity(g.attributes(u), g.attributes(v)) >= params.min_similarity) {
        filtered.push_back(u);
      }
    }
    if (filtered.size() + 1 < params.min_size) {
      continue;
    }
    // Induced adjacency over the filtered candidates via the shared
    // intersection kernels; `filtered` is sorted, so the intersection comes
    // back ascending and maps to ascending 0-based indices directly.
    std::vector<std::vector<uint32_t>> iadj(filtered.size());
    std::vector<VertexId> common;
    for (uint32_t i = 0; i < filtered.size(); ++i) {
      common.clear();
      Intersect(filtered, g.neighbors(filtered[i]), common);
      size_t pos = 0;
      for (const VertexId w : common) {
        pos = static_cast<size_t>(
            std::lower_bound(filtered.begin() + static_cast<int64_t>(pos),
                             filtered.end(), w) -
            filtered.begin());
        iadj[i].push_back(static_cast<uint32_t>(pos));
        ++pos;
      }
    }
    std::vector<uint32_t> p(filtered.size());
    for (uint32_t i = 0; i < p.size(); ++i) {
      p[i] = i;
    }
    std::vector<uint32_t> r;
    OracleBk(iadj, r, std::move(p), {}, params.min_size, total);
  }
  return total;
}

std::vector<std::vector<VertexId>> SerialFocusedClusters(const Graph& g,
                                                         const GcParams& params) {
  std::vector<std::vector<VertexId>> clusters;
  for (const VertexId seed : params.exemplars) {
    // Mirror FocusedClusterTask exactly, with direct graph access.
    struct Member {
      VertexId id;
      std::vector<AttrValue> attrs;
      std::vector<VertexId> adj;
    };
    const auto make_member = [&g](VertexId v) {
      const auto attrs = g.attributes(v);
      const auto adj = g.neighbors(v);
      return Member{v, {attrs.begin(), attrs.end()}, {adj.begin(), adj.end()}};
    };
    std::vector<Member> members{make_member(seed)};
    std::set<VertexId> banned;
    const auto boundary_of = [&] {
      std::set<VertexId> ids;
      for (const Member& m : members) {
        ids.insert(m.id);
      }
      std::set<VertexId> boundary;
      for (const Member& m : members) {
        for (const VertexId u : m.adj) {
          if (!ids.contains(u) && !banned.contains(u)) {
            boundary.insert(u);
          }
        }
      }
      return boundary;
    };
    std::set<VertexId> boundary = boundary_of();
    if (boundary.empty()) {
      continue;
    }
    for (int round = 0; round < params.max_rounds; ++round) {
      bool changed = false;
      std::vector<std::pair<double, VertexId>> scored;
      for (const VertexId u : boundary) {
        const auto u_adj = g.neighbors(u);
        const auto u_attrs = g.attributes(u);
        double total = 0.0;
        size_t adjacent = 0;
        for (const Member& m : members) {
          if (std::binary_search(u_adj.begin(), u_adj.end(), m.id)) {
            total += WeightedAttrSimilarity(u_attrs, m.attrs, params.weights);
            ++adjacent;
          }
        }
        double score = 0.0;
        if (adjacent > 0) {
          const double semantic = total / static_cast<double>(adjacent);
          const double structural =
              static_cast<double>(adjacent) / static_cast<double>(members.size());
          score = semantic * std::sqrt(structural);
        }
        if (score >= params.accept_threshold) {
          scored.emplace_back(score, u);
        }
      }
      std::sort(scored.begin(), scored.end(), std::greater<>());
      for (const auto& [score, u] : scored) {
        if (members.size() >= params.max_cluster) {
          break;
        }
        members.push_back(make_member(u));
        changed = true;
      }
      if (members.size() > 1) {
        std::vector<Member> kept;
        for (size_t i = 0; i < members.size(); ++i) {
          if (members[i].id == seed) {
            kept.push_back(std::move(members[i]));
            continue;
          }
          double total = 0.0;
          for (size_t j = 0; j < members.size(); ++j) {
            if (j != i) {
              total +=
                  WeightedAttrSimilarity(members[i].attrs, members[j].attrs, params.weights);
            }
          }
          if (total / static_cast<double>(members.size() - 1) < params.shrink_threshold) {
            banned.insert(members[i].id);
            changed = true;
          } else {
            kept.push_back(std::move(members[i]));
          }
        }
        members = std::move(kept);
      }
      if (!changed && round > 0) {
        break;
      }
      boundary = boundary_of();
      if (boundary.empty() || members.size() >= params.max_cluster) {
        break;
      }
    }
    if (members.size() >= params.min_cluster) {
      std::vector<VertexId> ids;
      ids.reserve(members.size());
      for (const Member& m : members) {
        ids.push_back(m.id);
      }
      std::sort(ids.begin(), ids.end());
      clusters.push_back(std::move(ids));
    }
  }
  return clusters;
}

}  // namespace gminer
