#include "baselines/bsp_engine.h"

#include <algorithm>

#include "common/logging.h"
#include <chrono>
#include <thread>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "graph/intersect.h"
#include "metrics/memory_tracker.h"
#include "net/message.h"

namespace gminer {

BspResult RunBsp(const Graph& g, BspApp& app, const JobConfig& config) {
  BspResult result;
  const int total_threads = std::max(1, config.num_workers * config.threads_per_worker);
  const int effective_cores = EffectiveCores(total_threads);
  ThreadPool pool(total_threads);
  MemoryTracker memory;
  memory.Add(static_cast<int64_t>(g.ByteSize()));

  // Hash partitioning of vertices to workers, as in Giraph's default.
  const auto worker_of = [&config](VertexId v) {
    return static_cast<int>(v % static_cast<uint32_t>(config.num_workers));
  };

  std::vector<std::vector<BspMessage>> inbox(g.num_vertices());
  std::atomic<uint64_t> global{0};
  std::atomic<int64_t> busy_ns{0};
  std::atomic<int64_t> net_bytes{0};
  std::atomic<int64_t> inbox_bytes{0};

  WallTimer timer;
  bool halted = false;
  int64_t prev_net_bytes = 0;
  for (int step = 0; step < app.max_supersteps() && !halted; ++step) {
    result.supersteps = step + 1;
    // --- Compute phase (parallel, barrier at the end: the BSP hallmark) ---
    std::vector<std::vector<BspMessage>> thread_outbox(static_cast<size_t>(total_threads));
    std::atomic<size_t> cursor{0};
    const VertexId n = g.num_vertices();
    for (int t = 0; t < total_threads; ++t) {
      pool.Submit([&, t] {
        std::vector<const BspMessage*> local_inbox;
        while (true) {
          const size_t begin = cursor.fetch_add(256);
          if (begin >= n) {
            return;
          }
          const size_t end = std::min<size_t>(begin + 256, n);
          for (size_t v = begin; v < end; ++v) {
            if (step > 0 && inbox[v].empty()) {
              continue;  // vote-to-halt semantics: only message receivers run
            }
            local_inbox.clear();
            for (const BspMessage& m : inbox[v]) {
              local_inbox.push_back(&m);
            }
            ThreadCpuTimer compute_timer;
            app.Compute(step, g, static_cast<VertexId>(v), local_inbox,
                        thread_outbox[static_cast<size_t>(t)], global);
            busy_ns.fetch_add(compute_timer.ElapsedNanos(), std::memory_order_relaxed);
          }
        }
      });
    }
    pool.Wait();

    // --- Message routing phase (sequential barrier work) ---
    memory.Sub(inbox_bytes.exchange(0));
    for (auto& box : inbox) {
      box.clear();
      box.shrink_to_fit();
    }
    bool any_messages = false;
    for (auto& outbox : thread_outbox) {
      for (BspMessage& m : outbox) {
        any_messages = true;
        const int64_t bytes = m.ByteSize();
        // Cross-worker messages pay network cost.
        if (worker_of(m.target) != worker_of(m.source)) {
          net_bytes.fetch_add(bytes + kMessageHeaderBytes, std::memory_order_relaxed);
        }
        inbox_bytes.fetch_add(bytes, std::memory_order_relaxed);
        memory.Add(bytes);
        inbox[m.target].push_back(std::move(m));
      }
      outbox.clear();
    }
    if (!any_messages) {
      halted = true;
    }
    // Simulated transfer time for the cross-worker traffic of this superstep
    // (matches the shared-link model of the other engines).
    if (config.net_latency_us > 0) {
      const int64_t step_bytes = net_bytes.load() - prev_net_bytes;
      prev_net_bytes = net_bytes.load();
      if (step_bytes > 0) {
        const double seconds =
            static_cast<double>(step_bytes) / (config.net_bandwidth_gbps * 1e9 / 8.0) +
            static_cast<double>(config.net_latency_us) / 1e6;
        std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
      }
    }
    if (config.memory_budget_bytes > 0 &&
        memory.peak() > static_cast<int64_t>(config.memory_budget_bytes)) {
      result.status = JobStatus::kOutOfMemory;
      break;
    }
    if (config.time_budget_seconds > 0.0 && timer.ElapsedSeconds() > config.time_budget_seconds) {
      result.status = JobStatus::kTimeout;
      break;
    }
  }
  result.elapsed_seconds = timer.ElapsedSeconds();
  result.result = global.load();
  result.peak_memory_bytes = memory.peak();
  result.net_bytes = net_bytes.load();
  result.avg_cpu_utilization =
      result.elapsed_seconds > 0.0
          ? static_cast<double>(busy_ns.load()) /
                (result.elapsed_seconds * 1e9 * effective_cores)
          : 0.0;
  return result;
}

namespace {

class BspTriangleCount : public BspApp {
 public:
  void Compute(int superstep, const Graph& g, VertexId v,
               const std::vector<const BspMessage*>& inbox, std::vector<BspMessage>& outbox,
               std::atomic<uint64_t>& result) override {
    if (superstep == 0) {
      const auto adj = g.neighbors(v);
      auto first_higher = std::upper_bound(adj.begin(), adj.end(), v);
      for (auto it = first_higher; it != adj.end(); ++it) {
        // Send to u the members of N+(v) above u; u checks adjacency locally.
        BspMessage m;
        m.source = v;
        m.target = *it;
        m.payload.assign(it + 1, adj.end());
        if (!m.payload.empty()) {
          outbox.push_back(std::move(m));
        }
      }
      return;
    }
    const auto adj = g.neighbors(v);
    uint64_t triangles = 0;
    for (const BspMessage* m : inbox) {
      // payload = the sender's higher-id neighbors above v, sorted; count the
      // ones adjacent to v with the shared kernel.
      triangles += IntersectCount(m->payload, adj);
    }
    result.fetch_add(triangles, std::memory_order_relaxed);
  }

  int max_supersteps() const override { return 2; }
};

class BspMaxClique : public BspApp {
 public:
  void Compute(int superstep, const Graph& g, VertexId v,
               const std::vector<const BspMessage*>& inbox, std::vector<BspMessage>& outbox,
               std::atomic<uint64_t>& result) override {
    if (superstep == 0) {
      Offer(result, 1);
      // Ship N+(v) to every lower neighbor so each vertex can materialize the
      // full 1-hop-higher neighborhood subgraph — the memory-hungry strategy
      // of vertex-centric mining.
      const auto adj = g.neighbors(v);
      std::vector<VertexId> higher(std::upper_bound(adj.begin(), adj.end(), v), adj.end());
      for (const VertexId u : adj) {
        if (u >= v) {
          break;
        }
        BspMessage m;
        m.source = v;
        m.target = u;
        m.payload.reserve(higher.size() + 1);
        m.payload.push_back(v);
        m.payload.insert(m.payload.end(), higher.begin(), higher.end());
        outbox.push_back(std::move(m));
      }
      return;
    }
    // Superstep 1: v holds N+(u) for every u ∈ N+(v). Build the induced
    // adjacency among N+(v) and search for the largest clique locally, with
    // no cross-vertex pruning (each vertex only knows its own best).
    const auto adj = g.neighbors(v);
    std::vector<VertexId> cand(std::upper_bound(adj.begin(), adj.end(), v), adj.end());
    if (cand.empty()) {
      return;
    }
    std::unordered_map<VertexId, uint32_t> index;
    for (uint32_t i = 0; i < cand.size(); ++i) {
      index.emplace(cand[i], i);
    }
    std::vector<std::vector<uint32_t>> iadj(cand.size());
    for (const BspMessage* m : inbox) {
      if (m->payload.empty()) {
        continue;
      }
      auto it = index.find(m->payload[0]);
      if (it == index.end()) {
        continue;
      }
      const uint32_t i = it->second;
      for (size_t k = 1; k < m->payload.size(); ++k) {
        auto jt = index.find(m->payload[k]);
        if (jt != index.end()) {
          iadj[i].push_back(jt->second);
          iadj[jt->second].push_back(i);
        }
      }
    }
    for (auto& a : iadj) {
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
    }
    std::vector<uint32_t> order(cand.size());
    for (uint32_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    uint64_t best = 1;
    Expand(iadj, order, 1, best);
    Offer(result, best);
  }

  uint64_t Combine(uint64_t a, uint64_t b) const override { return std::max(a, b); }
  int max_supersteps() const override { return 2; }

 private:
  static void Offer(std::atomic<uint64_t>& result, uint64_t value) {
    uint64_t cur = result.load(std::memory_order_relaxed);
    while (value > cur &&
           !result.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  static void Expand(const std::vector<std::vector<uint32_t>>& adj, std::vector<uint32_t>& cand,
                     uint64_t r_size, uint64_t& best) {
    if (cand.empty()) {
      best = std::max(best, r_size);
      return;
    }
    while (!cand.empty()) {
      if (r_size + cand.size() <= best) {
        return;
      }
      const uint32_t u = cand.back();
      cand.pop_back();
      std::vector<uint32_t> next;
      Intersect(cand, adj[u], next);
      Expand(adj, next, r_size + 1, best);
    }
  }
};

}  // namespace

std::unique_ptr<BspApp> MakeBspTriangleCount() { return std::make_unique<BspTriangleCount>(); }
std::unique_ptr<BspApp> MakeBspMaxClique() { return std::make_unique<BspMaxClique>(); }

}  // namespace gminer
