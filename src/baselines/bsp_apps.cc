#include "baselines/bsp_apps.h"

#include <algorithm>

namespace gminer {

namespace {
constexpr double kDamping = 0.85;
}  // namespace

BspPageRank::BspPageRank(VertexId num_vertices, int iterations)
    : iterations_(iterations),
      ranks_(num_vertices, 0.0),
      incoming_(num_vertices, 0.0) {}

void BspPageRank::Compute(int superstep, const Graph& g, VertexId v,
                          const std::vector<const BspMessage*>& inbox,
                          std::vector<BspMessage>& outbox, std::atomic<uint64_t>& result) {
  (void)result;
  const double n = static_cast<double>(g.num_vertices());
  const auto adj = g.neighbors(v);
  if (superstep == 0) {
    ranks_[v] = adj.empty() ? (1.0 - kDamping) / n : 1.0 / n;
    if (!adj.empty() && iterations_ > 0) {
      const double share = ranks_[v] / static_cast<double>(adj.size());
      for (const VertexId u : adj) {
        BspMessage m;
        m.source = v;
        m.target = u;
        m.value = share;
        outbox.push_back(std::move(m));
      }
    }
    return;
  }
  double sum = 0.0;
  for (const BspMessage* m : inbox) {
    sum += m->value;
  }
  ranks_[v] = (1.0 - kDamping) / n + kDamping * sum;
  if (superstep < iterations_ && !adj.empty()) {
    const double share = ranks_[v] / static_cast<double>(adj.size());
    for (const VertexId u : adj) {
      BspMessage m;
      m.source = v;
      m.target = u;
      m.value = share;
      outbox.push_back(std::move(m));
    }
  }
}

BspConnectedComponents::BspConnectedComponents(VertexId num_vertices)
    : components_(num_vertices, kInvalidVertex) {}

void BspConnectedComponents::Compute(int superstep, const Graph& g, VertexId v,
                                     const std::vector<const BspMessage*>& inbox,
                                     std::vector<BspMessage>& outbox,
                                     std::atomic<uint64_t>& result) {
  (void)result;
  const auto adj = g.neighbors(v);
  if (superstep == 0) {
    components_[v] = v;
    for (const VertexId u : adj) {
      if (u > v) {  // only the smaller endpoint needs announcing
        BspMessage m;
        m.source = v;
        m.target = u;
        m.payload = {v};
        outbox.push_back(std::move(m));
      }
    }
    return;
  }
  VertexId best = components_[v];
  for (const BspMessage* m : inbox) {
    for (const VertexId c : m->payload) {
      best = std::min(best, c);
    }
  }
  if (best < components_[v]) {
    components_[v] = best;
    for (const VertexId u : adj) {
      BspMessage m;
      m.source = v;
      m.target = u;
      m.payload = {best};
      outbox.push_back(std::move(m));
    }
  }
}

std::unique_ptr<BspPageRank> MakeBspPageRank(VertexId num_vertices, int iterations) {
  return std::make_unique<BspPageRank>(num_vertices, iterations);
}

std::unique_ptr<BspConnectedComponents> MakeBspConnectedComponents(VertexId num_vertices) {
  return std::make_unique<BspConnectedComponents>(num_vertices);
}

}  // namespace gminer
