#include "baselines/batch_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <list>
#include <thread>
#include <unordered_map>

#include "common/logging.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "metrics/memory_tracker.h"
#include "metrics/sampler.h"
#include "net/message.h"
#include "partition/hash_partitioner.h"
#include "storage/vertex_table.h"

namespace gminer {

namespace {

// Plain LRU cache of remote vertex records. It only deduplicates network
// fetches; unlike G-Miner's RCV cache it has no reference counting, so hot
// vertices get evicted and re-pulled (the Fig. 3 problem).
class LruCache {
 public:
  LruCache(size_t capacity, MemoryTracker* memory) : capacity_(capacity), memory_(memory) {}

  ~LruCache() {
    for (const auto& [v, entry] : entries_) {
      memory_->Sub(entry.record.ByteSize());
    }
  }

  // Copies out when resident, so the caller stays independent of eviction.
  bool Lookup(VertexId v, VertexRecord* out) {
    auto it = entries_.find(v);
    if (it == entries_.end()) {
      return false;
    }
    order_.splice(order_.begin(), order_, it->second.pos);
    *out = it->second.record;
    return true;
  }

  void Insert(VertexRecord record) {
    if (entries_.contains(record.id)) {
      return;
    }
    while (entries_.size() >= capacity_ && !order_.empty()) {
      const VertexId victim = order_.back();
      order_.pop_back();
      auto it = entries_.find(victim);
      memory_->Sub(it->second.record.ByteSize());
      entries_.erase(it);
    }
    memory_->Add(record.ByteSize());
    const VertexId id = record.id;
    order_.push_front(id);
    entries_.emplace(id, Entry{std::move(record), order_.begin()});
  }

 private:
  struct Entry {
    VertexRecord record;
    std::list<VertexId>::iterator pos;
  };
  size_t capacity_;
  MemoryTracker* memory_;
  std::unordered_map<VertexId, Entry> entries_;
  std::list<VertexId> order_;
};

// A task plus private copies of the remote vertices it needs this round.
// G-thinker keeps pulled data with the requesting task — which is also why
// its memory footprint runs high (Table 4).
struct BatchTask {
  std::unique_ptr<TaskBase> task;
  std::unordered_map<VertexId, VertexRecord> stash;
  int64_t stash_bytes = 0;

  void ClearStash(MemoryTracker& memory) {
    memory.Sub(stash_bytes);
    stash.clear();
    stash_bytes = 0;
  }
};

struct BatchWorker {
  VertexTable table;
  std::unique_ptr<LruCache> cache;
  std::vector<BatchTask> ready;    // stash filled, runnable
  std::vector<BatchTask> waiting;  // need remote vertices
  std::unique_ptr<AggregatorBase> aggregator;
  Mutex mutex;  // guards `waiting` during the parallel compute phase
};

class BatchSeedSink : public SeedSink {
 public:
  BatchSeedSink(BatchWorker* worker, MemoryTracker* memory, std::atomic<int64_t>* created)
      : worker_(worker), memory_(memory), created_(created) {}

  void Emit(std::unique_ptr<TaskBase> task) override {
    task->accounted_bytes = task->ByteSize();
    memory_->Add(task->accounted_bytes);
    created_->fetch_add(1, std::memory_order_relaxed);
    BatchTask bt;
    bt.task = std::move(task);
    worker_->waiting.push_back(std::move(bt));
  }

 private:
  BatchWorker* worker_;
  MemoryTracker* memory_;
  std::atomic<int64_t>* created_;
};

class BatchUpdateContext : public UpdateContext {
 public:
  BatchUpdateContext(BatchWorker* worker, const JobConfig* config, WorkerId id,
                     MemoryTracker* memory, std::atomic<int64_t>* created,
                     std::atomic<bool>* cancelled, std::vector<std::string>* outputs,
                     Mutex* output_mutex, Rng rng)
      : worker_(worker),
        config_(config),
        id_(id),
        memory_(memory),
        created_(created),
        cancelled_(cancelled),
        outputs_(outputs),
        output_mutex_(output_mutex),
        rng_(std::move(rng)) {}

  void set_current(BatchTask* current) { current_ = current; }

  const VertexRecord* GetVertex(VertexId v) override {
    const VertexRecord* local = worker_->table.Find(v);
    if (local != nullptr) {
      return local;
    }
    if (current_ != nullptr) {
      auto it = current_->stash.find(v);
      if (it != current_->stash.end()) {
        return &it->second;
      }
    }
    return nullptr;
  }

  bool IsLocal(VertexId v) const override { return worker_->table.Contains(v); }

  void Spawn(std::unique_ptr<TaskBase> task) override {
    task->accounted_bytes = task->ByteSize();
    memory_->Add(task->accounted_bytes);
    created_->fetch_add(1, std::memory_order_relaxed);
    BatchTask bt;
    bt.task = std::move(task);
    MutexLock lock(worker_->mutex);
    worker_->waiting.push_back(std::move(bt));
  }

  void Output(const std::string& line) override {
    MutexLock lock(*output_mutex_);
    outputs_->push_back(line);
  }

  void* aggregator() override { return worker_->aggregator.get(); }
  bool cancelled() const override { return cancelled_->load(std::memory_order_acquire); }
  WorkerId worker_id() const override { return id_; }
  int num_workers() const override { return config_->num_workers; }
  Rng& rng() override { return rng_; }

 private:
  BatchWorker* worker_;
  const JobConfig* config_;
  WorkerId id_;
  MemoryTracker* memory_;
  std::atomic<int64_t>* created_;
  std::atomic<bool>* cancelled_;
  std::vector<std::string>* outputs_;
  Mutex* output_mutex_;
  Rng rng_;
  BatchTask* current_ = nullptr;
};

// Remote candidates of a task, independent of caching (the stash decides
// reuse).
std::vector<VertexId> RemoteCandidates(const BatchWorker& worker, const TaskBase& task) {
  std::vector<VertexId> to_pull;
  for (const VertexId v : task.candidates()) {
    if (!worker.table.Contains(v)) {
      to_pull.push_back(v);
    }
  }
  std::sort(to_pull.begin(), to_pull.end());
  to_pull.erase(std::unique(to_pull.begin(), to_pull.end()), to_pull.end());
  return to_pull;
}

}  // namespace

JobResult RunBatch(const Graph& g, JobBase& job, const JobConfig& config) {
  JobResult result;
  const int num_workers = config.num_workers;
  const int total_threads = std::max(1, num_workers * config.threads_per_worker);
  const int effective_cores = EffectiveCores(total_threads);

  // G-thinker-style deployment always hash-partitions.
  WallTimer partition_timer;
  HashPartitioner partitioner;
  const std::vector<WorkerId> owner = partitioner.Partition(g, num_workers);
  result.partition_seconds = partition_timer.ElapsedSeconds();

  MemoryTracker memory;
  WorkerCounters counters;  // engine-wide counters
  std::vector<std::unique_ptr<BatchWorker>> workers;
  workers.reserve(static_cast<size_t>(num_workers));
  std::atomic<int64_t> created{0};
  std::atomic<int64_t> completed{0};
  std::atomic<bool> cancelled{false};
  std::vector<std::string> outputs;
  Mutex output_mutex;

  for (int w = 0; w < num_workers; ++w) {
    auto worker = std::make_unique<BatchWorker>();
    worker->table.LoadPartition(g, owner, w);
    memory.Add(worker->table.byte_size());
    worker->cache = std::make_unique<LruCache>(config.rcv_cache_capacity, &memory);
    worker->aggregator = job.MakeAggregator();
    workers.push_back(std::move(worker));
  }

  ThreadPool pool(total_threads);
  std::unique_ptr<UtilizationSampler> sampler;
  const auto snapshot = [&counters] { return Snapshot(counters); };
  // The baseline has no metrics plane; a local sink keeps the utilization
  // series for the report. Written only by the sampler thread; read after
  // Stop() has joined it.
  std::vector<UtilizationSample> samples;
  if (config.sample_utilization) {
    auto* out = &samples;
    sampler = std::make_unique<UtilizationSampler>(
        snapshot, [out](const UtilizationSample& s) { out->push_back(s); },
        /*registry=*/nullptr, effective_cores, config.net_bandwidth_gbps,
        config.sample_interval_ms);
    sampler->Start();
  }

  WallTimer timer;
  for (int w = 0; w < num_workers; ++w) {
    BatchSeedSink sink(workers[static_cast<size_t>(w)].get(), &memory, &created);
    job.GenerateSeeds(workers[static_cast<size_t>(w)]->table, sink);
  }
  for (int w = 0; w < num_workers; ++w) {
    auto& worker = *workers[static_cast<size_t>(w)];
    for (auto& bt : worker.waiting) {
      bt.task->set_to_pull(RemoteCandidates(worker, *bt.task));
    }
  }

  while (!cancelled.load()) {
    // ---- Communication phase: fill every waiting task's private stash; the
    // LRU cache deduplicates the actual fetches. ----
    int64_t phase_bytes = 0;
    bool any_waiting = false;
    for (int w = 0; w < num_workers; ++w) {
      auto& worker = *workers[static_cast<size_t>(w)];
      if (worker.waiting.empty()) {
        continue;
      }
      any_waiting = true;
      // G-thinker admits a bounded batch of tasks per round (its task queue
      // has fixed capacity); the remainder waits for a later round. Without
      // this cap every task's pulled data would materialize at once.
      const size_t admit = std::min(worker.waiting.size(), config.pipeline_depth);
      for (size_t i = 0; i < admit; ++i) {
        auto& bt = worker.waiting[i];
        for (const VertexId v : bt.task->to_pull()) {
          if (bt.stash.contains(v)) {
            continue;
          }
          VertexRecord record;
          if (worker.cache->Lookup(v, &record)) {
            counters.cache_hits.fetch_add(1, std::memory_order_relaxed);
          } else {
            counters.cache_misses.fetch_add(1, std::memory_order_relaxed);
            const VertexRecord* remote =
                workers[static_cast<size_t>(owner[v])]->table.Find(v);
            GM_CHECK(remote != nullptr);
            record = *remote;
            counters.pull_requests.fetch_add(1, std::memory_order_relaxed);
            counters.pull_responses.fetch_add(1, std::memory_order_relaxed);
            const int64_t bytes = record.ByteSize() +
                                  static_cast<int64_t>(sizeof(VertexId)) + kMessageHeaderBytes;
            counters.net_bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
            counters.net_bytes_received.fetch_add(bytes, std::memory_order_relaxed);
            phase_bytes += bytes;
            worker.cache->Insert(record);
          }
          bt.stash_bytes += record.ByteSize();
          memory.Add(record.ByteSize());
          bt.stash.emplace(v, std::move(record));
        }
        worker.ready.push_back(std::move(bt));
      }
      worker.waiting.erase(worker.waiting.begin(),
                           worker.waiting.begin() + static_cast<ptrdiff_t>(admit));
    }
    // Simulated transfer time: the whole cluster waits out the batch transfer
    // (CPU idles — the Fig. 5 gaps).
    if (config.net_latency_us > 0 && phase_bytes > 0) {
      const double seconds =
          static_cast<double>(phase_bytes) / (config.net_bandwidth_gbps * 1e9 / 8.0) +
          static_cast<double>(config.net_latency_us) / 1e6;
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }

    // ---- Compute phase: run every ready task to its next pull or death
    // (cluster-wide parallel, barrier at the end). ----
    std::vector<std::pair<int, BatchTask>> batch;
    for (int w = 0; w < num_workers; ++w) {
      auto& worker = *workers[static_cast<size_t>(w)];
      for (auto& bt : worker.ready) {
        batch.emplace_back(w, std::move(bt));
      }
      worker.ready.clear();
    }
    const bool any_ready = !batch.empty();
    std::atomic<size_t> cursor{0};
    for (int t = 0; t < total_threads; ++t) {
      pool.Submit([&, t] {
        while (true) {
          const size_t i = cursor.fetch_add(1);
          if (i >= batch.size()) {
            return;
          }
          const int w = batch[i].first;
          BatchTask& bt = batch[i].second;
          auto& worker = *workers[static_cast<size_t>(w)];
          BatchUpdateContext ctx(&worker, &config, w, &memory, &created, &cancelled, &outputs,
                                 &output_mutex,
                                 Rng(config.seed + static_cast<uint64_t>(i * 131 + t)));
          ctx.set_current(&bt);
          while (true) {
            if (cancelled.load(std::memory_order_acquire)) {
              bt.task->MarkDead();
            } else {
              ThreadCpuTimer update_timer;
              bt.task->Update(ctx);
              counters.compute_busy_ns.fetch_add(update_timer.ElapsedNanos(),
                                                 std::memory_order_relaxed);
              counters.update_rounds.fetch_add(1, std::memory_order_relaxed);
            }
            if (bt.task->dead()) {
              bt.ClearStash(memory);
              memory.Sub(bt.task->accounted_bytes);
              completed.fetch_add(1, std::memory_order_relaxed);
              bt.task.reset();
              break;
            }
            bt.task->advance_round();
            const std::vector<VertexId> to_pull = RemoteCandidates(worker, *bt.task);
            bool missing = false;
            for (const VertexId v : to_pull) {
              if (!bt.stash.contains(v)) {
                missing = true;
                break;
              }
            }
            bt.task->set_to_pull(to_pull);
            if (missing) {
              memory.Sub(bt.task->accounted_bytes);
              bt.task->accounted_bytes = bt.task->ByteSize();
              memory.Add(bt.task->accounted_bytes);
              MutexLock lock(worker.mutex);
              worker.waiting.push_back(std::move(bt));
              break;
            }
            // Everything needed is local or already stashed: run on.
          }
        }
      });
    }
    pool.Wait();

    // ---- Barrier: aggregator synchronization (G-thinker's global pruning
    // advances only at batch boundaries). ----
    std::unique_ptr<AggregatorBase> fold = job.MakeAggregator();
    if (fold != nullptr) {
      for (auto& worker : workers) {
        OutArchive partial;
        worker->aggregator->SerializePartial(partial);
        InArchive in(partial.TakeBuffer());
        fold->MergePartial(in);
      }
      OutArchive global;
      fold->SerializeGlobal(global);
      for (auto& worker : workers) {
        InArchive in(global.buffer().data(), global.buffer().size());
        worker->aggregator->ApplyGlobal(in);
      }
    }

    if (!any_ready && !any_waiting) {
      break;  // no work anywhere: job complete
    }
    if (config.memory_budget_bytes > 0 &&
        memory.peak() > static_cast<int64_t>(config.memory_budget_bytes)) {
      result.status = JobStatus::kOutOfMemory;
      cancelled.store(true);
      break;
    }
    if (config.time_budget_seconds > 0.0 &&
        timer.ElapsedSeconds() > config.time_budget_seconds) {
      result.status = JobStatus::kTimeout;
      cancelled.store(true);
      break;
    }
  }
  result.elapsed_seconds = timer.ElapsedSeconds();

  if (sampler != nullptr) {
    sampler->Stop();
    result.utilization = std::move(samples);
  }

  // Final aggregate.
  std::unique_ptr<AggregatorBase> fold = job.MakeAggregator();
  if (fold != nullptr) {
    for (auto& worker : workers) {
      OutArchive partial;
      worker->aggregator->SerializePartial(partial);
      InArchive in(partial.TakeBuffer());
      fold->MergePartial(in);
    }
    OutArchive global;
    fold->SerializeGlobal(global);
    result.final_aggregate = global.TakeBuffer();
  }

  counters.tasks_created.store(created.load());
  counters.tasks_completed.store(completed.load());
  result.totals = Snapshot(counters);
  result.peak_memory_bytes = memory.peak();
  result.avg_cpu_utilization =
      result.elapsed_seconds > 0.0
          ? static_cast<double>(result.totals.compute_busy_ns) /
                (result.elapsed_seconds * 1e9 * effective_cores)
          : 0.0;
  result.outputs = std::move(outputs);
  return result;
}

}  // namespace gminer
