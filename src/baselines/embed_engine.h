// Embedding-exploration engine reproducing Arabesque's computational model:
// level-synchronous rounds in which every frontier embedding is expanded by
// one neighboring vertex, candidates are generated *before* the filter runs
// (the paper's §2 criticism — "the pruning step is only executed after the
// exploration steps"), and the whole frontier of a level is materialized in
// memory. Canonicality (only extend with ids above the embedding maximum)
// avoids duplicate embeddings, as in Arabesque.
#ifndef GMINER_BASELINES_EMBED_ENGINE_H_
#define GMINER_BASELINES_EMBED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.h"
#include "core/job_result.h"
#include "graph/graph.h"

namespace gminer {

// An embedding-exploration program over vertex-induced embeddings.
class EmbedApp {
 public:
  virtual ~EmbedApp() = default;

  // Whether a candidate embedding (after expansion) survives the filter.
  virtual bool Filter(const Graph& g, const std::vector<VertexId>& embedding) = 0;

  // Processes a surviving embedding; returns the value to fold into the
  // global result (e.g. 1 for a counted match).
  virtual uint64_t Process(const Graph& g, const std::vector<VertexId>& embedding) = 0;

  // Whether surviving embeddings of this size should be expanded further.
  virtual bool ShouldExpand(const Graph& g, const std::vector<VertexId>& embedding) = 0;

  virtual uint64_t Combine(uint64_t a, uint64_t b) const { return a + b; }
};

struct EmbedResult {
  JobStatus status = JobStatus::kOk;
  double elapsed_seconds = 0.0;
  uint64_t result = 0;
  int64_t peak_memory_bytes = 0;
  double avg_cpu_utilization = 0.0;
  int rounds = 0;
  uint64_t peak_frontier = 0;  // embeddings materialized at the widest level
};

EmbedResult RunEmbed(const Graph& g, EmbedApp& app, const JobConfig& config);

// Triangle counting as 3-clique embedding enumeration.
std::unique_ptr<EmbedApp> MakeEmbedTriangleCount();

// Maximum clique finding by growing clique embeddings until no level
// survives; the result is the deepest non-empty level. Exponential frontier —
// the Arabesque rows of Tables 1 and 3 ("-" / OOM).
std::unique_ptr<EmbedApp> MakeEmbedMaxClique();

}  // namespace gminer

#endif  // GMINER_BASELINES_EMBED_ENGINE_H_
