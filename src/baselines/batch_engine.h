// Batch-synchronous subgraph-centric engine reproducing the G-thinker model
// (§2): the same task/update programming interface as G-Miner, but computation
// and communication proceed in alternating global phases with a barrier
// between them. Remote vertices are cached in a plain LRU cache without
// reference counting, so hot vertices can be evicted and re-pulled (the
// motivating example of Fig. 3). This engine is the comparator for Tables 1,
// 3, 4 and the Fig. 5 utilization timeline.
#ifndef GMINER_BASELINES_BATCH_ENGINE_H_
#define GMINER_BASELINES_BATCH_ENGINE_H_

#include "common/config.h"
#include "core/job.h"
#include "core/job_result.h"
#include "graph/graph.h"

namespace gminer {

// Runs `job` over `g` with config.num_workers workers × threads_per_worker
// compute threads. Honors config.memory_budget_bytes / time_budget_seconds,
// config.rcv_cache_capacity (as the LRU capacity) and — when
// config.net_latency_us > 0 — sleeps through each communication phase for the
// transfer time implied by config.net_bandwidth_gbps, which is what makes the
// CPU idle gaps of Fig. 5 visible. Utilization samples are collected when
// config.sample_utilization is set.
JobResult RunBatch(const Graph& g, JobBase& job, const JobConfig& config);

}  // namespace gminer

#endif  // GMINER_BASELINES_BATCH_ENGINE_H_
