#include "metrics/cluster_series.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/json.h"
#include "common/timer.h"

namespace gminer {

namespace {

// Prometheus exposition metric name for a registry name: prefixed and mapped
// onto the legal alphabet ("pull.batch_size" → "gminer_pull_batch_size").
std::string PromName(const std::string& name) {
  return "gminer_" + SanitizeMetricName(name);
}

// Prometheus label values share JSON's escaping needs (backslash, quote,
// control characters), so the existing JsonEscape covers them.
std::string PromLabel(int worker) {
  return "{worker=\"" + std::to_string(worker) + "\"}";
}

void RenderScalarFamily(std::ostringstream& out, const std::string& type,
                        const std::string& name,
                        const std::vector<std::pair<int, int64_t>>& samples) {
  const std::string prom = PromName(name);
  out << "# TYPE " << prom << ' ' << type << '\n';
  for (const auto& [worker, value] : samples) {
    out << prom << PromLabel(worker) << ' ' << value << '\n';
  }
}

void RenderHistogramFamily(std::ostringstream& out, const std::string& name,
                           const std::vector<std::pair<int, const HistogramCell*>>& cells) {
  const std::string prom = PromName(name);
  out << "# TYPE " << prom << " histogram\n";
  for (const auto& [worker, cell] : cells) {
    int64_t cumulative = 0;
    for (size_t b = 0; b < cell->buckets.size(); ++b) {
      cumulative += cell->buckets[b];
      // Bucket b counts [2^b, 2^(b+1)), so the inclusive upper bound is the
      // next power of two.
      out << prom << "_bucket{worker=\"" << worker << "\",le=\"" << (int64_t{1} << (b + 1))
          << "\"} " << cumulative << '\n';
    }
    out << prom << "_bucket{worker=\"" << worker << "\",le=\"+Inf\"} " << cell->count
        << '\n';
    out << prom << "_sum" << PromLabel(worker) << ' ' << cell->sum << '\n';
    out << prom << "_count" << PromLabel(worker) << ' ' << cell->count << '\n';
  }
}

}  // namespace

ClusterMetrics::ClusterMetrics(int num_workers, size_t ring_points)
    : num_workers_(num_workers),
      ring_points_(ring_points == 0 ? 1 : ring_points),
      start_ns_(MonotonicNanos()),
      status_(static_cast<size_t>(num_workers)),
      worker_series_(static_cast<size_t>(num_workers)) {
  for (auto& s : status_) {
    s.last_seen_ns = start_ns_;
  }
}

MetricsSnapshot ClusterMetrics::MergedLatestLocked() const {
  MetricsSnapshot merged;
  for (const auto& ring : worker_series_) {
    if (!ring.empty()) {
      merged.Merge(ring.back());
    }
  }
  return merged;
}

void ClusterMetrics::RecordWorkerSnapshot(int worker, MetricsSnapshot snap) {
  if (worker < 0 || worker >= num_workers_) {
    return;
  }
  MutexLock lock(mutex_);
  auto& ring = worker_series_[static_cast<size_t>(worker)];
  // Reordered or duplicated frames (injected faults) must not step the
  // series backwards; absolute snapshots make dropping them lossless.
  if (!ring.empty() && snap.captured_at_ns <= ring.back().captured_at_ns) {
    return;
  }
  ring.push_back(std::move(snap));
  while (ring.size() > ring_points_) {
    ring.pop_front();
  }
  cluster_series_.push_back(MergedLatestLocked());
  while (cluster_series_.size() > ring_points_) {
    cluster_series_.pop_front();
  }
}

void ClusterMetrics::UpdateWorkerProgress(int worker, uint64_t inactive, uint64_t ready,
                                          int64_t local_tasks, bool seeded) {
  if (worker < 0 || worker >= num_workers_) {
    return;
  }
  MutexLock lock(mutex_);
  WorkerStatus& s = status_[static_cast<size_t>(worker)];
  s.inactive = inactive;
  s.ready = ready;
  s.local_tasks = local_tasks;
  s.seeded = s.seeded || seeded;
}

void ClusterMetrics::UpdateHeartbeat(int worker, int64_t seen_ns) {
  if (worker < 0 || worker >= num_workers_) {
    return;
  }
  MutexLock lock(mutex_);
  status_[static_cast<size_t>(worker)].last_seen_ns = seen_ns;
}

void ClusterMetrics::MarkDead(int worker) {
  if (worker < 0 || worker >= num_workers_) {
    return;
  }
  MutexLock lock(mutex_);
  status_[static_cast<size_t>(worker)].dead = true;
}

void ClusterMetrics::SetPhase(const std::string& phase) {
  MutexLock lock(mutex_);
  phase_ = phase;
}

std::string ClusterMetrics::phase() const {
  MutexLock lock(mutex_);
  return phase_;
}

void ClusterMetrics::RecordUtilization(const UtilizationSample& sample) {
  MutexLock lock(mutex_);
  utilization_.push_back(sample);
}

std::vector<UtilizationSample> ClusterMetrics::UtilizationSeries() const {
  MutexLock lock(mutex_);
  return utilization_;
}

std::vector<MetricsSnapshot> ClusterMetrics::LatestWorkerSnapshots() const {
  MutexLock lock(mutex_);
  std::vector<MetricsSnapshot> out;
  out.reserve(worker_series_.size());
  for (const auto& ring : worker_series_) {
    out.push_back(ring.empty() ? MetricsSnapshot{} : ring.back());
  }
  return out;
}

MetricsSnapshot ClusterMetrics::ClusterSnapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot merged = MergedLatestLocked();
  if (master_registry_ != nullptr) {
    merged.Merge(master_registry_->Collect());
  }
  return merged;
}

std::string ClusterMetrics::RenderPrometheus() const {
  MutexLock lock(mutex_);
  const int64_t now_ns = MonotonicNanos();
  std::ostringstream out;

  out << "# TYPE gminer_job_phase gauge\n"
      << "gminer_job_phase{phase=\"" << JsonEscape(phase_) << "\"} 1\n";
  out << "# TYPE gminer_job_uptime_seconds gauge\n"
      << "gminer_job_uptime_seconds "
      << static_cast<double>(now_ns - start_ns_) / 1e9 << '\n';

  out << "# TYPE gminer_worker_up gauge\n";
  for (int w = 0; w < num_workers_; ++w) {
    out << "gminer_worker_up" << PromLabel(w) << ' '
        << (status_[static_cast<size_t>(w)].dead ? 0 : 1) << '\n';
  }
  out << "# TYPE gminer_worker_heartbeat_age_seconds gauge\n";
  for (int w = 0; w < num_workers_; ++w) {
    const double age =
        static_cast<double>(now_ns - status_[static_cast<size_t>(w)].last_seen_ns) / 1e9;
    out << "gminer_worker_heartbeat_age_seconds" << PromLabel(w) << ' ' << age << '\n';
  }

  // Union the latest per-worker snapshots into per-family sample lists so
  // every family gets exactly one TYPE header.
  std::map<std::string, std::vector<std::pair<int, int64_t>>> counter_families;
  std::map<std::string, std::vector<std::pair<int, int64_t>>> gauge_families;
  std::map<std::string, std::vector<std::pair<int, const HistogramCell*>>> histogram_families;
  for (int w = 0; w < num_workers_; ++w) {
    const auto& ring = worker_series_[static_cast<size_t>(w)];
    if (ring.empty()) {
      continue;
    }
    const MetricsSnapshot& snap = ring.back();
    for (const auto& c : snap.counters) {
      counter_families[c.first].emplace_back(w, c.second);
    }
    for (const auto& g : snap.gauges) {
      gauge_families[g.first].emplace_back(w, g.second);
    }
    for (const HistogramCell& h : snap.histograms) {
      histogram_families[h.name].emplace_back(w, &h);
    }
  }
  for (const auto& [name, samples] : counter_families) {
    RenderScalarFamily(out, "counter", name, samples);
  }
  for (const auto& [name, samples] : gauge_families) {
    RenderScalarFamily(out, "gauge", name, samples);
  }
  for (const auto& [name, cells] : histogram_families) {
    RenderHistogramFamily(out, name, cells);
  }

  // Master-process metrics (memory tracker, utilization gauges) under a
  // distinguishable label.
  if (master_registry_ != nullptr) {
    const MetricsSnapshot master = master_registry_->Collect();
    for (const auto& c : master.counters) {
      const std::string prom = PromName(c.first);
      out << "# TYPE " << prom << " counter\n"
          << prom << "{worker=\"master\"} " << c.second << '\n';
    }
    for (const auto& g : master.gauges) {
      const std::string prom = PromName(g.first);
      out << "# TYPE " << prom << " gauge\n"
          << prom << "{worker=\"master\"} " << g.second << '\n';
    }
  }
  return out.str();
}

std::string ClusterMetrics::RenderStatusJson() const {
  MutexLock lock(mutex_);
  const int64_t now_ns = MonotonicNanos();
  std::ostringstream out;
  out << "{\"phase\":\"" << JsonEscape(phase_) << "\""
      << ",\"uptime_seconds\":" << static_cast<double>(now_ns - start_ns_) / 1e9
      << ",\"num_workers\":" << num_workers_ << ",\"workers\":[";
  for (int w = 0; w < num_workers_; ++w) {
    const WorkerStatus& s = status_[static_cast<size_t>(w)];
    const auto& ring = worker_series_[static_cast<size_t>(w)];
    const MetricsSnapshot* snap = ring.empty() ? nullptr : &ring.back();
    if (w > 0) {
      out << ',';
    }
    out << "{\"id\":" << w << ",\"dead\":" << (s.dead ? "true" : "false")
        << ",\"seeded\":" << (s.seeded ? "true" : "false")
        << ",\"heartbeat_age_ms\":" << (now_ns - s.last_seen_ns) / 1'000'000
        << ",\"queue\":{\"inactive\":" << s.inactive << ",\"ready\":" << s.ready
        << ",\"local_tasks\":" << s.local_tasks << "}";
    if (snap != nullptr) {
      out << ",\"tasks_created\":" << snap->Value("task.created")
          << ",\"tasks_completed\":" << snap->Value("task.completed")
          << ",\"in_flight_pulls\":" << snap->Value("pull.in_flight")
          << ",\"store_depth\":" << snap->Value("store.depth")
          << ",\"spill_bytes\":" << snap->Value("disk.bytes_written")
          << ",\"cache_resident\":" << snap->Value("cache.resident")
          << ",\"snapshot_age_ms\":" << (now_ns - snap->captured_at_ns) / 1'000'000;
    }
    out << "}";
  }
  out << "],\"cluster\":{";
  const MetricsSnapshot merged = MergedLatestLocked();
  MetricsSnapshot master;
  if (master_registry_ != nullptr) {
    master = master_registry_->Collect();
  }
  out << "\"tasks_created\":" << merged.Value("task.created")
      << ",\"tasks_completed\":" << merged.Value("task.completed")
      << ",\"pull_requests\":" << merged.Value("pull.requests")
      << ",\"cache_hits\":" << merged.Value("cache.hits")
      << ",\"cache_misses\":" << merged.Value("cache.misses")
      << ",\"spill_bytes\":" << merged.Value("disk.bytes_written")
      << ",\"metrics_dropped\":" << merged.Value("metrics.dropped")
      << ",\"mem_current_bytes\":" << master.Value("mem.current_bytes")
      << ",\"mem_peak_bytes\":" << master.Value("mem.peak_bytes") << "}";
  if (!utilization_.empty()) {
    const UtilizationSample& u = utilization_.back();
    out << ",\"utilization\":{\"t\":" << u.t_seconds << ",\"cpu\":" << u.cpu_pct
        << ",\"net\":" << u.net_pct << ",\"disk\":" << u.disk_pct << "}";
  }
  out << "}";
  return out.str();
}

}  // namespace gminer
