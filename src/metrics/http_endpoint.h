// Minimal blocking HTTP/1.0 responder for the live metrics plane: one
// listener thread on a loopback TCP socket serving GET /metrics (Prometheus
// text exposition) and GET /status (JSON), each rendered by a callback at
// request time. No external dependencies — plain POSIX sockets — and no
// concurrency beyond the single accept loop: scrapes are rare (seconds),
// rendering is cheap, and a blocked scraper can never back-pressure the job
// because the renderers only take the ClusterMetrics mutex briefly.
//
// The simulated Network (net/network.h) is an in-process mailbox fabric with
// no real sockets, so this is the one place in the tree that touches the
// host network stack; it binds 127.0.0.1 only.
#ifndef GMINER_METRICS_HTTP_ENDPOINT_H_
#define GMINER_METRICS_HTTP_ENDPOINT_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace gminer {

class MetricsHttpServer {
 public:
  // `port` 0 binds an ephemeral port (query it with port() after Start).
  // The callbacks render the response bodies and must be thread-safe; they
  // run on the server's accept thread.
  MetricsHttpServer(int port, std::function<std::string()> metrics_fn,
                    std::function<std::string()> status_fn);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Binds, listens, and spawns the accept loop. Returns false (with a log
  // line) if the socket cannot be bound — the job proceeds without the
  // endpoint rather than failing.
  bool Start();

  // Closes the listening socket and joins the accept loop. Idempotent.
  void Stop();

  // The bound port (the real one when 0 was requested); -1 before Start.
  int port() const { return port_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  const int requested_port_;
  std::function<std::string()> metrics_fn_;
  std::function<std::string()> status_fn_;

  std::atomic<int> port_{-1};
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  // Owned accept-loop thread (lifetime == Start..Stop). lint:allow(naked-thread)
  std::thread thread_;
};

}  // namespace gminer

#endif  // GMINER_METRICS_HTTP_ENDPOINT_H_
