// Master-side aggregation of the metrics plane (DESIGN.md "Observability"):
// per-worker MetricsSnapshot ring buffers fed by kMetricsReport frames, a
// merged cluster-wide ring, live worker status (queue depths, heartbeat
// ages, liveness) fed by the master's control loop, the job-phase string,
// and the utilization time series fed by the UtilizationSampler.
//
// Rendering lives here too: Prometheus text exposition for /metrics and the
// /status JSON document, both served by MetricsHttpServer. Everything is
// guarded by one mutex — writers are the master control thread and the
// sampler (low rate), readers the HTTP responder thread and the final
// report; none of it is hot-path.
#ifndef GMINER_METRICS_CLUSTER_SERIES_H_
#define GMINER_METRICS_CLUSTER_SERIES_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "metrics/registry.h"
#include "metrics/sampler.h"

namespace gminer {

class ClusterMetrics {
 public:
  // `ring_points` bounds each time series (per-worker and cluster) to that
  // many snapshots; older points fall off the front.
  ClusterMetrics(int num_workers, size_t ring_points);

  ClusterMetrics(const ClusterMetrics&) = delete;
  ClusterMetrics& operator=(const ClusterMetrics&) = delete;

  // --- Master control loop ---
  // Appends an absolute snapshot to worker w's ring and refreshes the merged
  // cluster ring. Duplicate or stale frames (injected faults) are dropped by
  // the captured_at_ns watermark — absolute snapshots make that safe.
  void RecordWorkerSnapshot(int worker, MetricsSnapshot snap) EXCLUDES(mutex_);
  void UpdateWorkerProgress(int worker, uint64_t inactive, uint64_t ready,
                            int64_t local_tasks, bool seeded) EXCLUDES(mutex_);
  void UpdateHeartbeat(int worker, int64_t seen_ns) EXCLUDES(mutex_);
  void MarkDead(int worker) EXCLUDES(mutex_);
  void SetPhase(const std::string& phase) EXCLUDES(mutex_);
  std::string phase() const EXCLUDES(mutex_);

  // --- Utilization sampler sink (replaces the sampler's private series) ---
  void RecordUtilization(const UtilizationSample& sample) EXCLUDES(mutex_);
  std::vector<UtilizationSample> UtilizationSeries() const EXCLUDES(mutex_);

  // Master-process registry (memory tracker gauges, utilization gauges).
  // Sampled at render time under the worker="master" label. The registry
  // must outlive this object.
  void set_master_registry(const MetricsRegistry* registry) {
    master_registry_ = registry;
  }

  // --- Final report ---
  std::vector<MetricsSnapshot> LatestWorkerSnapshots() const EXCLUDES(mutex_);
  // Merged latest per-worker snapshots plus the master registry's state.
  MetricsSnapshot ClusterSnapshot() const EXCLUDES(mutex_);

  // --- HTTP responder thread ---
  std::string RenderPrometheus() const EXCLUDES(mutex_);
  std::string RenderStatusJson() const EXCLUDES(mutex_);

 private:
  struct WorkerStatus {
    int64_t last_seen_ns = 0;
    bool dead = false;
    bool seeded = false;
    uint64_t inactive = 0;
    uint64_t ready = 0;
    int64_t local_tasks = 0;
  };

  MetricsSnapshot MergedLatestLocked() const REQUIRES(mutex_);

  const int num_workers_;
  const size_t ring_points_;
  const int64_t start_ns_;
  const MetricsRegistry* master_registry_ = nullptr;

  mutable Mutex mutex_;
  std::string phase_ GUARDED_BY(mutex_) = "init";
  std::vector<WorkerStatus> status_ GUARDED_BY(mutex_);
  std::vector<std::deque<MetricsSnapshot>> worker_series_ GUARDED_BY(mutex_);
  std::deque<MetricsSnapshot> cluster_series_ GUARDED_BY(mutex_);
  std::vector<UtilizationSample> utilization_ GUARDED_BY(mutex_);
};

}  // namespace gminer

#endif  // GMINER_METRICS_CLUSTER_SERIES_H_
