#include "metrics/sampler.h"

#include <algorithm>
#include <chrono>

#include "common/timer.h"

namespace gminer {

UtilizationSampler::UtilizationSampler(std::function<CountersSnapshot()> snapshot_fn,
                                       SampleSink sink, MetricsRegistry* registry,
                                       int total_cores, double net_bandwidth_gbps,
                                       int interval_ms, double disk_throughput_mbps)
    : snapshot_fn_(std::move(snapshot_fn)),
      sink_(std::move(sink)),
      total_cores_(total_cores),
      net_bytes_per_sec_(net_bandwidth_gbps * 1e9 / 8.0),
      disk_bytes_per_sec_(disk_throughput_mbps * 1e6),
      interval_ms_(interval_ms) {
  if (registry != nullptr) {
    cpu_gauge_ = registry->GetGauge("util.cpu_pct_x100");
    net_gauge_ = registry->GetGauge("util.net_pct_x100");
    disk_gauge_ = registry->GetGauge("util.disk_pct_x100");
  }
}

UtilizationSampler::~UtilizationSampler() { Stop(); }

void UtilizationSampler::Start() {
  MutexLock lock(mutex_);
  if (running_) {
    return;
  }
  stop_requested_ = false;
  running_ = true;
  // Lifetime is bounded by Start/Stop, not a closure. lint:allow(naked-thread)
  thread_ = std::thread([this] { RunLoop(); });
}

void UtilizationSampler::Stop() {
  {
    MutexLock lock(mutex_);
    if (!running_) {
      return;
    }
    stop_requested_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) {
    thread_.join();
  }
  MutexLock lock(mutex_);
  running_ = false;
}

void UtilizationSampler::RunLoop() {
  WallTimer timer;
  CountersSnapshot prev = snapshot_fn_();
  double prev_t = 0.0;
  const int64_t start_ns = MonotonicNanos();
  const int64_t interval_ns = static_cast<int64_t>(interval_ms_) * 1'000'000;
  mutex_.Lock();
  while (!stop_requested_) {
    // Absolute next-deadline anchored to start_ns (see NextDeadlineNs): the
    // per-iteration snapshot cost no longer drifts t_seconds on long jobs.
    // MonotonicNanos() measures steady_clock since epoch, so the deadline
    // converts back to the time_point WaitUntil expects.
    const int64_t deadline_ns = NextDeadlineNs(start_ns, interval_ns, MonotonicNanos());
    const std::chrono::steady_clock::time_point deadline{
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::nanoseconds(deadline_ns))};
    // Sleep out the interval, but let Stop() interrupt it immediately.
    while (!stop_requested_ && cv_.WaitUntil(mutex_, deadline)) {
    }
    if (stop_requested_) {
      break;
    }
    // Snapshot outside the lock: snapshot_fn_ sums every worker's counters,
    // and the sink takes the ClusterMetrics mutex.
    mutex_.Unlock();
    const double now_t = timer.ElapsedSeconds();
    const CountersSnapshot now = snapshot_fn_();
    const double dt = std::max(now_t - prev_t, 1e-6);

    UtilizationSample sample;
    sample.t_seconds = now_t;
    const double busy_s =
        static_cast<double>(now.compute_busy_ns - prev.compute_busy_ns) / 1e9;
    sample.cpu_pct = std::min(100.0, 100.0 * busy_s / (dt * total_cores_));
    const double net_bytes =
        static_cast<double>((now.net_bytes_sent - prev.net_bytes_sent) +
                            (now.net_bytes_received - prev.net_bytes_received));
    sample.net_pct = std::min(100.0, 100.0 * net_bytes / (dt * net_bytes_per_sec_));
    const double disk_bytes =
        static_cast<double>((now.disk_bytes_written - prev.disk_bytes_written) +
                            (now.disk_bytes_read - prev.disk_bytes_read));
    sample.disk_pct = std::min(100.0, 100.0 * disk_bytes / (dt * disk_bytes_per_sec_));

    if (cpu_gauge_ != nullptr) {
      cpu_gauge_->Set(static_cast<int64_t>(sample.cpu_pct * 100.0));
      net_gauge_->Set(static_cast<int64_t>(sample.net_pct * 100.0));
      disk_gauge_->Set(static_cast<int64_t>(sample.disk_pct * 100.0));
    }
    if (sink_) {
      sink_(sample);
    }

    prev = now;
    prev_t = now_t;
    mutex_.Lock();
  }
  mutex_.Unlock();
}

}  // namespace gminer
