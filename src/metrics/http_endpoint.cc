#include "metrics/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/logging.h"

namespace gminer {

namespace {

// Requests are one GET line plus headers; anything beyond this is abuse.
constexpr size_t kMaxRequestBytes = 4096;

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return;  // peer went away; nothing to clean up beyond the caller's close
    }
    sent += static_cast<size_t>(n);
  }
}

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(int port, std::function<std::string()> metrics_fn,
                                     std::function<std::string()> status_fn)
    : requested_port_(port),
      metrics_fn_(std::move(metrics_fn)),
      status_fn_(std::move(status_fn)) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

bool MetricsHttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return true;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    GM_LOG_ERROR << "metrics endpoint: socket() failed: " << std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(requested_port_));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    GM_LOG_ERROR << "metrics endpoint: cannot bind 127.0.0.1:" << requested_port_ << ": "
                 << std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) != 0) {
    GM_LOG_ERROR << "metrics endpoint: listen() failed: " << std::strerror(errno);
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  }
  listen_fd_.store(fd, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  // Joined by Stop(); see the member declaration. lint:allow(naked-thread)
  thread_ = std::thread([this] { AcceptLoop(); });
  GM_LOG_INFO << "metrics endpoint listening on 127.0.0.1:" << port();
  return true;
}

void MetricsHttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() wakes the blocked accept(); close() alone may not on Linux.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

void MetricsHttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) {
      return;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listening socket closed by Stop()
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      return;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  // Parse "GET <path> ..." from the request line.
  if (request.rfind("GET ", 0) != 0) {
    SendAll(fd, HttpResponse("405 Method Not Allowed", "text/plain",
                             "only GET is supported\n"));
    return;
  }
  const size_t path_begin = 4;
  const size_t path_end = request.find_first_of(" \r\n", path_begin);
  const std::string path = request.substr(
      path_begin, path_end == std::string::npos ? std::string::npos : path_end - path_begin);
  if (path == "/metrics") {
    // Prometheus text exposition format version 0.0.4.
    SendAll(fd, HttpResponse("200 OK", "text/plain; version=0.0.4; charset=utf-8",
                             metrics_fn_()));
  } else if (path == "/status") {
    SendAll(fd, HttpResponse("200 OK", "application/json", status_fn_()));
  } else if (path == "/" || path.empty()) {
    SendAll(fd, HttpResponse("200 OK", "text/plain", "gminer: /metrics /status\n"));
  } else {
    SendAll(fd, HttpResponse("404 Not Found", "text/plain", "unknown path\n"));
  }
}

}  // namespace gminer
