// Log-bucketed latency histogram for the per-stage trace breakdowns.
//
// Bucket b holds durations in [2^(b-1), 2^b) nanoseconds (bucket 0 holds
// <= 0). 64 buckets cover the full int64 range in 64 * 8 bytes, so a
// histogram per stage per job costs nothing; percentiles interpolate
// linearly inside the winning bucket and are clamped to the observed max,
// which keeps them honest for single-sample stages.
#ifndef GMINER_METRICS_HISTOGRAM_H_
#define GMINER_METRICS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace gminer {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  static int Bucket(int64_t ns) {
    return ns <= 0 ? 0 : std::bit_width(static_cast<uint64_t>(ns));
  }

  void Add(int64_t ns) {
    buckets_[std::min(Bucket(ns), kBuckets - 1)] += 1;
    count_ += 1;
    sum_ += ns;
    max_ = std::max(max_, ns);
  }

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t max() const { return max_; }

  // p in [0, 1]. Linear interpolation within the bucket that contains the
  // p*count-th sample, clamped to the observed maximum.
  int64_t Percentile(double p) const {
    if (count_ == 0) return 0;
    const double target = p * static_cast<double>(count_);
    int64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      const int64_t next = seen + buckets_[b];
      if (static_cast<double>(next) >= target) {
        const int64_t lo = b == 0 ? 0 : int64_t{1} << (b - 1);
        const int64_t hi = b == 0 ? 0 : int64_t{1} << std::min(b, 62);
        const double frac =
            (target - static_cast<double>(seen)) / static_cast<double>(buckets_[b]);
        const int64_t value = lo + static_cast<int64_t>(frac * static_cast<double>(hi - lo));
        return std::min(value, max_);
      }
      seen = next;
    }
    return max_;
  }

 private:
  std::array<int64_t, kBuckets> buckets_{};
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t max_ = 0;
};

}  // namespace gminer

#endif  // GMINER_METRICS_HISTOGRAM_H_
