// Per-stage latency summaries computed from a merged trace at job end and
// folded into the JSON report (core/report.cc).
#ifndef GMINER_METRICS_TRACE_STATS_H_
#define GMINER_METRICS_TRACE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/trace.h"

namespace gminer {

// Summary of one span type across all threads of a run. Percentiles come
// from a log-bucketed histogram (metrics/histogram.h), so they are exact to
// within one power-of-two bucket and clamped to the observed max.
struct StageLatency {
  std::string stage;
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t max_ns = 0;
  int64_t p50_ns = 0;
  int64_t p95_ns = 0;
  int64_t p99_ns = 0;
};

// Buckets every span event by type and summarizes each. Stages with no
// samples are omitted; the rest appear in pipeline order (queue wait →
// pull wait → ready wait → pull rtt → compute → spill → adoption).
std::vector<StageLatency> BuildStageLatencies(const std::vector<TraceEvent>& events);

}  // namespace gminer

#endif  // GMINER_METRICS_TRACE_STATS_H_
