// Explicit memory accounting. The pipeline's bulky structures (task subgraphs,
// candidate lists, the RCV cache, baseline engines' frontiers and message
// queues) register their footprint here, so the memory columns of the paper's
// tables — and the OOM verdicts of the baseline systems — are measured
// deterministically instead of scraped from the OS.
#ifndef GMINER_METRICS_MEMORY_TRACKER_H_
#define GMINER_METRICS_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>

namespace gminer {

class MemoryTracker {
 public:
  MemoryTracker() = default;
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  void Add(int64_t bytes) {
    const int64_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Lock-free peak update; benign race resolved by the CAS loop.
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak && !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }

  void Sub(int64_t bytes) { current_.fetch_sub(bytes, std::memory_order_relaxed); }

  int64_t current() const { return current_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  // True when a budget is set and current usage exceeds it. Engines poll this
  // to reproduce the paper's out-of-memory failures.
  bool OverBudget(int64_t budget_bytes) const {
    return budget_bytes > 0 && current() > budget_bytes;
  }

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

// RAII registration of a block of accounted memory.
class ScopedMemory {
 public:
  ScopedMemory(MemoryTracker& tracker, int64_t bytes) : tracker_(&tracker), bytes_(bytes) {
    tracker_->Add(bytes_);
  }
  ~ScopedMemory() {
    if (tracker_ != nullptr) {
      tracker_->Sub(bytes_);
    }
  }
  ScopedMemory(const ScopedMemory&) = delete;
  ScopedMemory& operator=(const ScopedMemory&) = delete;
  ScopedMemory(ScopedMemory&& o) noexcept : tracker_(o.tracker_), bytes_(o.bytes_) {
    o.tracker_ = nullptr;
  }

 private:
  MemoryTracker* tracker_;
  int64_t bytes_;
};

}  // namespace gminer

#endif  // GMINER_METRICS_MEMORY_TRACKER_H_
