// Runtime counters collected per worker and aggregated per job. These back
// the evaluation columns of Tables 1, 3, 4 and 5 (CPU utilization, memory,
// network traffic) and the utilization timelines of Figures 5 and 6.
#ifndef GMINER_METRICS_COUNTERS_H_
#define GMINER_METRICS_COUNTERS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace gminer {

// Log2 buckets for the pull batch-size distribution: bucket b counts wire
// batches carrying [2^b, 2^(b+1)) vertex ids, the last bucket absorbs the
// tail. Atomic buckets (unlike metrics/histogram.h) because every pipeline
// thread that triggers a coalescer flush records into the same histogram.
inline constexpr int kPullBatchBuckets = 16;

// All counters are monotonically increasing and updated lock-free from the
// pipeline threads; the utilization sampler reads them periodically.
struct WorkerCounters {
  std::atomic<int64_t> net_bytes_sent{0};
  std::atomic<int64_t> net_bytes_received{0};
  std::atomic<int64_t> net_messages{0};
  // Fault accounting (net/fault.h): per quiescent network,
  //   net_messages == net_messages_delivered + net_messages_dropped
  //                   - net_messages_duplicated   (dups deliver an extra copy)
  std::atomic<int64_t> net_messages_delivered{0};
  std::atomic<int64_t> net_messages_dropped{0};
  std::atomic<int64_t> net_bytes_dropped{0};
  std::atomic<int64_t> net_messages_duplicated{0};
  std::atomic<int64_t> net_bytes_duplicated{0};
  std::atomic<int64_t> net_messages_delayed{0};
  std::atomic<int64_t> pull_retries{0};           // pull requests re-sent on timeout
  std::atomic<int64_t> duplicate_pull_responses{0};
  std::atomic<int64_t> heartbeat_misses{0};       // master-observed silent intervals
  std::atomic<int64_t> failovers{0};              // dead-worker adoptions performed
  std::atomic<int64_t> tasks_adopted{0};          // tasks re-loaded from a dead
                                                  // worker's checkpoint
  std::atomic<int64_t> recovery_wall_ns{0};       // adoption wall time
  std::atomic<int64_t> pull_requests{0};      // remote vertices requested
  std::atomic<int64_t> pull_responses{0};     // remote vertices received
  // Pull batching (net/coalescer.h): kPullRequest wire messages sent, their
  // batch-size distribution, and vertices whose fetch subscribed to an
  // already-in-flight pull instead of re-sending (in-flight dedup).
  std::atomic<int64_t> pull_batches_sent{0};
  std::atomic<int64_t> dedup_hits{0};
  std::atomic<int64_t> pull_batch_size_buckets[kPullBatchBuckets] = {};
  std::atomic<int64_t> cache_hits{0};
  std::atomic<int64_t> cache_misses{0};
  std::atomic<int64_t> disk_bytes_written{0};
  std::atomic<int64_t> disk_bytes_read{0};
  std::atomic<int64_t> tasks_created{0};
  std::atomic<int64_t> tasks_completed{0};
  std::atomic<int64_t> tasks_stolen_in{0};
  std::atomic<int64_t> tasks_stolen_out{0};
  std::atomic<int64_t> update_rounds{0};      // update() invocations
  std::atomic<int64_t> compute_busy_ns{0};    // time computing threads spent in update()

  WorkerCounters() = default;
  WorkerCounters(const WorkerCounters&) = delete;
  WorkerCounters& operator=(const WorkerCounters&) = delete;
};

// Records one flushed pull batch of `ids` vertex ids.
inline void RecordPullBatch(WorkerCounters& c, size_t ids) {
  c.pull_batches_sent.fetch_add(1, std::memory_order_relaxed);
  int bucket = 0;
  while ((ids >> (bucket + 1)) != 0 && bucket < kPullBatchBuckets - 1) {
    ++bucket;
  }
  c.pull_batch_size_buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

// Plain-value snapshot of WorkerCounters, summable across workers.
struct CountersSnapshot {
  int64_t net_bytes_sent = 0;
  int64_t net_bytes_received = 0;
  int64_t net_messages = 0;
  int64_t net_messages_delivered = 0;
  int64_t net_messages_dropped = 0;
  int64_t net_bytes_dropped = 0;
  int64_t net_messages_duplicated = 0;
  int64_t net_bytes_duplicated = 0;
  int64_t net_messages_delayed = 0;
  int64_t pull_retries = 0;
  int64_t duplicate_pull_responses = 0;
  int64_t heartbeat_misses = 0;
  int64_t failovers = 0;
  int64_t tasks_adopted = 0;
  int64_t recovery_wall_ns = 0;
  int64_t pull_requests = 0;
  int64_t pull_responses = 0;
  int64_t pull_batches_sent = 0;
  int64_t dedup_hits = 0;
  int64_t pull_batch_size_buckets[kPullBatchBuckets] = {};
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t disk_bytes_written = 0;
  int64_t disk_bytes_read = 0;
  int64_t tasks_created = 0;
  int64_t tasks_completed = 0;
  int64_t tasks_stolen_in = 0;
  int64_t tasks_stolen_out = 0;
  int64_t update_rounds = 0;
  int64_t compute_busy_ns = 0;

  CountersSnapshot& operator+=(const CountersSnapshot& o) {
    net_bytes_sent += o.net_bytes_sent;
    net_bytes_received += o.net_bytes_received;
    net_messages += o.net_messages;
    net_messages_delivered += o.net_messages_delivered;
    net_messages_dropped += o.net_messages_dropped;
    net_bytes_dropped += o.net_bytes_dropped;
    net_messages_duplicated += o.net_messages_duplicated;
    net_bytes_duplicated += o.net_bytes_duplicated;
    net_messages_delayed += o.net_messages_delayed;
    pull_retries += o.pull_retries;
    duplicate_pull_responses += o.duplicate_pull_responses;
    heartbeat_misses += o.heartbeat_misses;
    failovers += o.failovers;
    tasks_adopted += o.tasks_adopted;
    recovery_wall_ns += o.recovery_wall_ns;
    pull_requests += o.pull_requests;
    pull_responses += o.pull_responses;
    pull_batches_sent += o.pull_batches_sent;
    dedup_hits += o.dedup_hits;
    for (int b = 0; b < kPullBatchBuckets; ++b) {
      pull_batch_size_buckets[b] += o.pull_batch_size_buckets[b];
    }
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    disk_bytes_written += o.disk_bytes_written;
    disk_bytes_read += o.disk_bytes_read;
    tasks_created += o.tasks_created;
    tasks_completed += o.tasks_completed;
    tasks_stolen_in += o.tasks_stolen_in;
    tasks_stolen_out += o.tasks_stolen_out;
    update_rounds += o.update_rounds;
    compute_busy_ns += o.compute_busy_ns;
    return *this;
  }

  double CacheHitRate() const {
    const int64_t total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) / static_cast<double>(total) : 0.0;
  }

  // Nearest-rank percentile (p in (0, 1]) over the batch-size log buckets,
  // linearly interpolated inside the selected bucket. 0 when no batch flushed.
  int64_t PullBatchSizePercentile(double p) const {
    int64_t total = 0;
    for (const int64_t n : pull_batch_size_buckets) {
      total += n;
    }
    if (total <= 0) {
      return 0;
    }
    int64_t rank = static_cast<int64_t>(p * static_cast<double>(total) + 0.5);
    rank = rank < 1 ? 1 : (rank > total ? total : rank);
    int64_t seen = 0;
    for (int b = 0; b < kPullBatchBuckets; ++b) {
      const int64_t n = pull_batch_size_buckets[b];
      if (seen + n < rank) {
        seen += n;
        continue;
      }
      const int64_t lo = int64_t{1} << b;
      const int64_t hi = int64_t{1} << (b + 1);
      const double frac = n > 0 ? static_cast<double>(rank - seen) / static_cast<double>(n) : 0.0;
      return lo + static_cast<int64_t>(static_cast<double>(hi - lo) * frac);
    }
    return int64_t{1} << kPullBatchBuckets;
  }
};

inline CountersSnapshot Snapshot(const WorkerCounters& c) {
  CountersSnapshot s;
  s.net_bytes_sent = c.net_bytes_sent.load(std::memory_order_relaxed);
  s.net_bytes_received = c.net_bytes_received.load(std::memory_order_relaxed);
  s.net_messages = c.net_messages.load(std::memory_order_relaxed);
  s.net_messages_delivered = c.net_messages_delivered.load(std::memory_order_relaxed);
  s.net_messages_dropped = c.net_messages_dropped.load(std::memory_order_relaxed);
  s.net_bytes_dropped = c.net_bytes_dropped.load(std::memory_order_relaxed);
  s.net_messages_duplicated = c.net_messages_duplicated.load(std::memory_order_relaxed);
  s.net_bytes_duplicated = c.net_bytes_duplicated.load(std::memory_order_relaxed);
  s.net_messages_delayed = c.net_messages_delayed.load(std::memory_order_relaxed);
  s.pull_retries = c.pull_retries.load(std::memory_order_relaxed);
  s.duplicate_pull_responses = c.duplicate_pull_responses.load(std::memory_order_relaxed);
  s.heartbeat_misses = c.heartbeat_misses.load(std::memory_order_relaxed);
  s.failovers = c.failovers.load(std::memory_order_relaxed);
  s.tasks_adopted = c.tasks_adopted.load(std::memory_order_relaxed);
  s.recovery_wall_ns = c.recovery_wall_ns.load(std::memory_order_relaxed);
  s.pull_requests = c.pull_requests.load(std::memory_order_relaxed);
  s.pull_responses = c.pull_responses.load(std::memory_order_relaxed);
  s.pull_batches_sent = c.pull_batches_sent.load(std::memory_order_relaxed);
  s.dedup_hits = c.dedup_hits.load(std::memory_order_relaxed);
  for (int b = 0; b < kPullBatchBuckets; ++b) {
    s.pull_batch_size_buckets[b] = c.pull_batch_size_buckets[b].load(std::memory_order_relaxed);
  }
  s.cache_hits = c.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = c.cache_misses.load(std::memory_order_relaxed);
  s.disk_bytes_written = c.disk_bytes_written.load(std::memory_order_relaxed);
  s.disk_bytes_read = c.disk_bytes_read.load(std::memory_order_relaxed);
  s.tasks_created = c.tasks_created.load(std::memory_order_relaxed);
  s.tasks_completed = c.tasks_completed.load(std::memory_order_relaxed);
  s.tasks_stolen_in = c.tasks_stolen_in.load(std::memory_order_relaxed);
  s.tasks_stolen_out = c.tasks_stolen_out.load(std::memory_order_relaxed);
  s.update_rounds = c.update_rounds.load(std::memory_order_relaxed);
  s.compute_busy_ns = c.compute_busy_ns.load(std::memory_order_relaxed);
  return s;
}

}  // namespace gminer

#endif  // GMINER_METRICS_COUNTERS_H_
