// Background utilization sampler producing the CPU / network / disk time
// series plotted in Figures 5 and 6 of the paper. Each sample converts the
// delta of the job-wide counters over one interval into a utilization
// percentage: CPU = busy compute time over available core time, network =
// bytes moved over the configured bandwidth, disk = spill bytes over an
// assumed disk throughput.
//
// The sampler is a producer for the metrics plane, not a store: each sample
// is pushed to the `sink` callback (Cluster wires it to
// ClusterMetrics::RecordUtilization) and mirrored onto registry gauges
// (util.cpu_pct_x100 / util.net_pct_x100 / util.disk_pct_x100, fixed-point
// ×100 so the int64 gauges keep two decimals). The old private sample
// vector and TakeSamples() are gone — the time series lives in one place.
#ifndef GMINER_METRICS_SAMPLER_H_
#define GMINER_METRICS_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <thread>

#include "common/thread_annotations.h"
#include "metrics/counters.h"
#include "metrics/registry.h"

namespace gminer {

struct UtilizationSample {
  double t_seconds = 0.0;  // since sampling started
  double cpu_pct = 0.0;
  double net_pct = 0.0;
  double disk_pct = 0.0;
};

class UtilizationSampler {
 public:
  using SampleSink = std::function<void(const UtilizationSample&)>;

  // snapshot_fn returns the summed counters of every worker in the job.
  // sink receives every sample (null = discard); registry (may be null)
  // gets the util.* gauges. total_cores is workers × computing threads;
  // bandwidth converts bytes/s to a percentage of a Gigabit-class link; disk
  // throughput defaults to a SATA disk as in the paper's testbed.
  UtilizationSampler(std::function<CountersSnapshot()> snapshot_fn, SampleSink sink,
                     MetricsRegistry* registry, int total_cores,
                     double net_bandwidth_gbps, int interval_ms,
                     double disk_throughput_mbps = 150.0);
  ~UtilizationSampler();

  UtilizationSampler(const UtilizationSampler&) = delete;
  UtilizationSampler& operator=(const UtilizationSampler&) = delete;

  void Start() EXCLUDES(mutex_);
  void Stop() EXCLUDES(mutex_);

  // Next absolute sampling deadline: the smallest start_ns + k * interval_ns
  // (k >= 1) that lies strictly after now_ns. Anchoring every deadline to the
  // fixed start keeps the series drift-free — per-iteration snapshot overhead
  // cannot accumulate into t_seconds, and an iteration that overruns its slot
  // skips ahead instead of firing a burst of catch-up samples. Pure function,
  // exposed for testing.
  static int64_t NextDeadlineNs(int64_t start_ns, int64_t interval_ns, int64_t now_ns) {
    const int64_t k = now_ns > start_ns ? (now_ns - start_ns) / interval_ns : 0;
    return start_ns + (k + 1) * interval_ns;
  }

 private:
  void RunLoop() EXCLUDES(mutex_);

  std::function<CountersSnapshot()> snapshot_fn_;
  SampleSink sink_;
  int total_cores_;
  double net_bytes_per_sec_;
  double disk_bytes_per_sec_;
  int interval_ms_;

  // Registry gauges (null when no registry was given).
  MetricGauge* cpu_gauge_ = nullptr;
  MetricGauge* net_gauge_ = nullptr;
  MetricGauge* disk_gauge_ = nullptr;

  // Owned background sampling thread (lifetime == Start..Stop).
  std::thread thread_;  // lint:allow(naked-thread)
  Mutex mutex_;
  CondVar cv_;
  bool stop_requested_ GUARDED_BY(mutex_) = false;
  bool running_ GUARDED_BY(mutex_) = false;
};

}  // namespace gminer

#endif  // GMINER_METRICS_SAMPLER_H_
