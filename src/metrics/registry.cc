#include "metrics/registry.h"

#include <algorithm>
#include <cstdlib>

#include "common/timer.h"
#include "metrics/counters.h"

namespace gminer {

namespace {

// Round-robin stripe assignment: the first kMetricCounterStripes threads get
// distinct stripes, later ones wrap. Assigned once per thread, shared by
// every counter (stripes are per-counter storage, the index is global).
int ThisThreadStripe() {
  static std::atomic<uint32_t> next_stripe{0};
  thread_local const uint32_t stripe =
      next_stripe.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(kMetricCounterStripes);
  return static_cast<int>(stripe);
}

// Log2 bucket with the [2^b, 2^(b+1)) convention; non-positive values land
// in bucket 0, the last bucket absorbs the tail.
int HistogramBucket(int64_t value) {
  int bucket = 0;
  while ((value >> (bucket + 1)) != 0 && bucket < kMetricHistogramBuckets - 1) {
    ++bucket;
  }
  return bucket;
}

// Encoded size of one name→value entry: length prefix + bytes + i64 value.
size_t ScalarEntryBytes(const std::pair<std::string, int64_t>& e) {
  return sizeof(uint64_t) + e.first.size() + sizeof(int64_t);
}

size_t HistogramEntryBytes(const HistogramCell& h) {
  return sizeof(uint64_t) + h.name.size() + 2 * sizeof(int64_t) + sizeof(uint64_t) +
         h.buckets.size() * sizeof(int64_t);
}

}  // namespace

void MetricCounter::Add(int64_t delta) {
  stripes_[ThisThreadStripe()].value.fetch_add(delta, std::memory_order_relaxed);
}

int64_t MetricCounter::Value() const {
  int64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void MetricHistogram::Observe(int64_t value) {
  buckets_[HistogramBucket(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value > 0 ? value : 0, std::memory_order_relaxed);
}

void MetricsSnapshot::Serialize(OutArchive& out) const {
  out.Write<int64_t>(captured_at_ns);
  out.Write<uint64_t>(static_cast<uint64_t>(counters.size()));
  for (const auto& c : counters) {
    out.WriteString(c.first);
    out.Write<int64_t>(c.second);
  }
  out.Write<uint64_t>(static_cast<uint64_t>(gauges.size()));
  for (const auto& g : gauges) {
    out.WriteString(g.first);
    out.Write<int64_t>(g.second);
  }
  out.Write<uint64_t>(static_cast<uint64_t>(histograms.size()));
  for (const HistogramCell& h : histograms) {
    out.WriteString(h.name);
    out.Write<int64_t>(h.count);
    out.Write<int64_t>(h.sum);
    out.WriteVector(h.buckets);
  }
}

MetricsSnapshot MetricsSnapshot::Deserialize(InArchive& in) {
  MetricsSnapshot snap;
  snap.captured_at_ns = in.Read<int64_t>();
  const uint64_t num_counters = in.Read<uint64_t>();
  for (uint64_t i = 0; i < num_counters; ++i) {
    std::string name = in.ReadString();
    const int64_t value = in.Read<int64_t>();
    snap.counters.emplace_back(std::move(name), value);
  }
  const uint64_t num_gauges = in.Read<uint64_t>();
  for (uint64_t i = 0; i < num_gauges; ++i) {
    std::string name = in.ReadString();
    const int64_t value = in.Read<int64_t>();
    snap.gauges.emplace_back(std::move(name), value);
  }
  const uint64_t num_histograms = in.Read<uint64_t>();
  for (uint64_t i = 0; i < num_histograms; ++i) {
    HistogramCell cell;
    cell.name = in.ReadString();
    cell.count = in.Read<int64_t>();
    cell.sum = in.Read<int64_t>();
    cell.buckets = in.ReadVector<int64_t>();
    snap.histograms.push_back(std::move(cell));
  }
  return snap;
}

size_t MetricsSnapshot::EncodedBytes() const {
  size_t total = sizeof(int64_t) + 3 * sizeof(uint64_t);
  for (const auto& c : counters) {
    total += ScalarEntryBytes(c);
  }
  for (const auto& g : gauges) {
    total += ScalarEntryBytes(g);
  }
  for (const HistogramCell& h : histograms) {
    total += HistogramEntryBytes(h);
  }
  return total;
}

int MetricsSnapshot::TrimToBudget(size_t max_bytes) {
  size_t bytes = EncodedBytes();
  int dropped = 0;
  while (bytes > max_bytes && !histograms.empty()) {
    bytes -= HistogramEntryBytes(histograms.back());
    histograms.pop_back();
    ++dropped;
  }
  while (bytes > max_bytes && !gauges.empty()) {
    bytes -= ScalarEntryBytes(gauges.back());
    gauges.pop_back();
    ++dropped;
  }
  while (bytes > max_bytes && !counters.empty()) {
    bytes -= ScalarEntryBytes(counters.back());
    counters.pop_back();
    ++dropped;
  }
  return dropped;
}

namespace {

// Merge-join of two sorted name→value tables, summing on name collisions.
void MergeScalars(std::vector<std::pair<std::string, int64_t>>& into,
                  const std::vector<std::pair<std::string, int64_t>>& from) {
  std::vector<std::pair<std::string, int64_t>> merged;
  merged.reserve(into.size() + from.size());
  size_t i = 0;
  size_t j = 0;
  while (i < into.size() || j < from.size()) {
    if (j >= from.size() || (i < into.size() && into[i].first < from[j].first)) {
      merged.push_back(std::move(into[i++]));
    } else if (i >= into.size() || from[j].first < into[i].first) {
      merged.push_back(from[j++]);
    } else {
      merged.emplace_back(std::move(into[i].first), into[i].second + from[j].second);
      ++i;
      ++j;
    }
  }
  into = std::move(merged);
}

}  // namespace

MetricsSnapshot& MetricsSnapshot::Merge(const MetricsSnapshot& o) {
  captured_at_ns = std::max(captured_at_ns, o.captured_at_ns);
  MergeScalars(counters, o.counters);
  MergeScalars(gauges, o.gauges);
  for (const HistogramCell& oh : o.histograms) {
    auto it = std::find_if(histograms.begin(), histograms.end(),
                           [&oh](const HistogramCell& h) { return h.name == oh.name; });
    if (it == histograms.end()) {
      histograms.push_back(oh);
      continue;
    }
    if (it->buckets.size() < oh.buckets.size()) {
      it->buckets.resize(oh.buckets.size(), 0);
    }
    for (size_t b = 0; b < oh.buckets.size(); ++b) {
      it->buckets[b] += oh.buckets[b];
    }
    it->count += oh.count;
    it->sum += oh.sum;
  }
  std::sort(histograms.begin(), histograms.end(),
            [](const HistogramCell& a, const HistogramCell& b) { return a.name < b.name; });
  return *this;
}

int64_t MetricsSnapshot::Value(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.first == name) {
      return c.second;
    }
  }
  for (const auto& g : gauges) {
    if (g.first == name) {
      return g.second;
    }
  }
  return 0;
}

MetricCounter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  Entry& e = entries_[name];
  if (e.counter == nullptr) {
    e.counter = std::make_unique<MetricCounter>();
  }
  return e.counter.get();
}

MetricGauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  Entry& e = entries_[name];
  if (e.gauge == nullptr) {
    e.gauge = std::make_unique<MetricGauge>();
  }
  return e.gauge.get();
}

MetricHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mutex_);
  Entry& e = entries_[name];
  if (e.histogram == nullptr) {
    e.histogram = std::make_unique<MetricHistogram>();
  }
  return e.histogram.get();
}

void MetricsRegistry::LinkCounter(const std::string& name,
                                  const std::atomic<int64_t>* source) {
  MutexLock lock(mutex_);
  entries_[name].linked_counter = source;
}

void MetricsRegistry::LinkGauge(const std::string& name, std::function<int64_t()> fn) {
  MutexLock lock(mutex_);
  entries_[name].linked_gauge = std::move(fn);
}

void MetricsRegistry::LinkHistogram(const std::string& name,
                                    const std::atomic<int64_t>* buckets, int num_buckets) {
  MutexLock lock(mutex_);
  Entry& e = entries_[name];
  e.linked_buckets = buckets;
  e.linked_bucket_count = num_buckets;
}

MetricsSnapshot MetricsRegistry::Collect() const {
  MetricsSnapshot snap;
  snap.captured_at_ns = MonotonicNanos();
  // Linked-gauge callbacks run under mutex_ and may take subsystem locks
  // (task store, pull table): the lock order is registry → subsystem, and no
  // subsystem path calls back into the registry's guarded sections.
  MutexLock lock(mutex_);
  for (const auto& [name, e] : entries_) {
    if (e.counter != nullptr) {
      snap.counters.emplace_back(name, e.counter->Value());
    } else if (e.linked_counter != nullptr) {
      snap.counters.emplace_back(name, e.linked_counter->load(std::memory_order_relaxed));
    } else if (e.gauge != nullptr) {
      snap.gauges.emplace_back(name, e.gauge->Value());
    } else if (e.linked_gauge) {
      snap.gauges.emplace_back(name, e.linked_gauge());
    } else if (e.histogram != nullptr) {
      HistogramCell cell;
      cell.name = name;
      cell.buckets.resize(kMetricHistogramBuckets);
      for (int b = 0; b < kMetricHistogramBuckets; ++b) {
        cell.buckets[static_cast<size_t>(b)] = e.histogram->BucketValue(b);
      }
      cell.count = e.histogram->Count();
      cell.sum = e.histogram->Sum();
      snap.histograms.push_back(std::move(cell));
    } else if (e.linked_buckets != nullptr) {
      HistogramCell cell;
      cell.name = name;
      cell.buckets.resize(static_cast<size_t>(e.linked_bucket_count));
      for (int b = 0; b < e.linked_bucket_count; ++b) {
        const int64_t n =
            e.linked_buckets[b].load(std::memory_order_relaxed);
        cell.buckets[static_cast<size_t>(b)] = n;
        cell.count += n;
        cell.sum += n << b;  // lower-bound approximation: sources track no sum
      }
      snap.histograms.push_back(std::move(cell));
    }
  }
  return snap;
}

void RegisterWorkerCounters(MetricsRegistry& registry, const WorkerCounters& c) {
  registry.LinkCounter("net.bytes_sent", &c.net_bytes_sent);
  registry.LinkCounter("net.bytes_received", &c.net_bytes_received);
  registry.LinkCounter("net.messages", &c.net_messages);
  registry.LinkCounter("net.messages_delivered", &c.net_messages_delivered);
  registry.LinkCounter("net.messages_dropped", &c.net_messages_dropped);
  registry.LinkCounter("net.bytes_dropped", &c.net_bytes_dropped);
  registry.LinkCounter("net.messages_duplicated", &c.net_messages_duplicated);
  registry.LinkCounter("net.bytes_duplicated", &c.net_bytes_duplicated);
  registry.LinkCounter("net.messages_delayed", &c.net_messages_delayed);
  registry.LinkCounter("pull.retries", &c.pull_retries);
  registry.LinkCounter("pull.duplicate_responses", &c.duplicate_pull_responses);
  registry.LinkCounter("pull.requests", &c.pull_requests);
  registry.LinkCounter("pull.responses", &c.pull_responses);
  registry.LinkCounter("pull.batches_sent", &c.pull_batches_sent);
  registry.LinkCounter("pull.dedup_hits", &c.dedup_hits);
  registry.LinkHistogram("pull.batch_size", c.pull_batch_size_buckets, kPullBatchBuckets);
  registry.LinkCounter("cache.hits", &c.cache_hits);
  registry.LinkCounter("cache.misses", &c.cache_misses);
  registry.LinkCounter("disk.bytes_written", &c.disk_bytes_written);
  registry.LinkCounter("disk.bytes_read", &c.disk_bytes_read);
  registry.LinkCounter("task.created", &c.tasks_created);
  registry.LinkCounter("task.completed", &c.tasks_completed);
  registry.LinkCounter("task.stolen_in", &c.tasks_stolen_in);
  registry.LinkCounter("task.stolen_out", &c.tasks_stolen_out);
  registry.LinkCounter("task.update_rounds", &c.update_rounds);
  registry.LinkCounter("task.compute_busy_ns", &c.compute_busy_ns);
  registry.LinkCounter("fault.heartbeat_misses", &c.heartbeat_misses);
  registry.LinkCounter("fault.failovers", &c.failovers);
  registry.LinkCounter("fault.tasks_adopted", &c.tasks_adopted);
  registry.LinkCounter("fault.recovery_wall_ns", &c.recovery_wall_ns);
}

std::string SanitizeMetricName(std::string_view name) {
  if (name.empty()) {
    return "_";
  }
  std::string out;
  out.reserve(name.size() + 1);
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out += ok ? ch : '_';
  }
  const char first = out[0];
  if (first >= '0' && first <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

bool MetricsEnabled(bool config_default) {
  const char* env = std::getenv("GMINER_METRICS");
  if (env == nullptr || *env == '\0') {
    return config_default;
  }
  const std::string v(env);
  if (v == "off" || v == "0" || v == "false") {
    return false;
  }
  if (v == "on" || v == "1" || v == "true") {
    return true;
  }
  return config_default;
}

}  // namespace gminer
