#include "metrics/trace_stats.h"

#include <array>

#include "metrics/histogram.h"

namespace gminer {

std::vector<StageLatency> BuildStageLatencies(const std::vector<TraceEvent>& events) {
  std::array<LatencyHistogram, static_cast<size_t>(TraceEventType::kEventTypeCount)> hists;
  for (const TraceEvent& e : events) {
    if (!TraceEventIsSpan(e.type)) continue;
    hists[static_cast<size_t>(e.type)].Add(e.dur_ns);
  }

  // Pipeline order: the report reads top-to-bottom as a task's journey.
  static constexpr TraceEventType kOrder[] = {
      TraceEventType::kTaskQueueWait, TraceEventType::kTaskPullWait,
      TraceEventType::kTaskReadyWait, TraceEventType::kPullRoundTrip,
      TraceEventType::kTaskCompute,   TraceEventType::kSpillWrite,
      TraceEventType::kSpillRead,     TraceEventType::kAdoption,
  };

  std::vector<StageLatency> out;
  for (TraceEventType type : kOrder) {
    const LatencyHistogram& h = hists[static_cast<size_t>(type)];
    if (h.count() == 0) continue;
    StageLatency s;
    s.stage = TraceEventTypeName(type);
    s.count = h.count();
    s.total_ns = h.sum();
    s.max_ns = h.max();
    s.p50_ns = h.Percentile(0.50);
    s.p95_ns = h.Percentile(0.95);
    s.p99_ns = h.Percentile(0.99);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace gminer
