// Central metrics plane (DESIGN.md "Observability"): a per-process registry
// of named counters, gauges and log2-bucketed histograms that every subsystem
// registers into by name, replacing bespoke metric structs threaded through
// the report.
//
// Hot-path discipline follows TraceRing (common/trace.h): writers never take
// a lock. Owned counters stripe their value over cache-line-padded atomic
// shards (one stripe per writer thread, assigned round-robin) so concurrent
// Add()s from the pipeline threads do not contend on one cache line; readers
// sum the stripes. Existing lock-free instrumentation (WorkerCounters,
// MemoryTracker, the coalescer's pull-batch buckets) is *linked* rather than
// duplicated: the registry stores a pointer to the live atomic and samples it
// at Collect() time, so migration costs zero cycles on the paths the perf
// gate watches.
//
// Collect() produces a MetricsSnapshot: sorted name→value tables plus
// histogram cells, with a mirrored Serialize/Deserialize pair (untagged
// archive framing, checked by gmlint's serialize-symmetry pass) so workers
// can piggyback absolute cumulative snapshots on the heartbeat path
// (MessageType::kMetricsReport). Snapshots are ABSOLUTE, not deltas: the
// simulated network injects drops and duplicates, and an absolute snapshot
// is idempotent — a lost or repeated report never skews the series.
#ifndef GMINER_METRICS_REGISTRY_H_
#define GMINER_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "common/thread_annotations.h"

namespace gminer {

struct WorkerCounters;

// Stripes per owned counter. 16 covers every pipeline thread shape the
// JobConfig can express without making Value() reads expensive.
inline constexpr int kMetricCounterStripes = 16;

// Log2 buckets for owned histograms: bucket b counts observations in
// [2^b, 2^(b+1)), the same convention as WorkerCounters'
// pull_batch_size_buckets so linked and owned histograms render identically.
// 32 buckets absorb anything up to ~4 G units.
inline constexpr int kMetricHistogramBuckets = 32;

// Owned monotonic counter, striped to keep concurrent writers off one cache
// line. Writers use relaxed adds on their thread's stripe; Value() sums all
// stripes (a torn-across-stripes read is fine — each stripe is monotone, so
// the sum is a valid point between two quiescent values).
class MetricCounter {
 public:
  void Add(int64_t delta);
  void Increment() { Add(1); }
  int64_t Value() const;

 private:
  struct alignas(64) Stripe {
    std::atomic<int64_t> value{0};
  };
  Stripe stripes_[kMetricCounterStripes];
};

// Owned gauge: a single atomic level (queue depth, resident bytes, ...).
class MetricGauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Owned log2 histogram. Observe() is lock-free (relaxed atomics); count and
// sum are tracked exactly.
class MetricHistogram {
 public:
  void Observe(int64_t value);
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t BucketValue(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> buckets_[kMetricHistogramBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

// One histogram's state in a snapshot. `buckets[b]` counts observations in
// [2^b, 2^(b+1)); the vector length is whatever the source histogram had
// (16 for the linked pull-batch buckets, kMetricHistogramBuckets for owned
// ones). For linked histograms `sum` is the lower-bound approximation
// Σ count[b]·2^b — the sources never tracked an exact sum.
struct HistogramCell {
  std::string name;
  std::vector<int64_t> buckets;
  int64_t count = 0;
  int64_t sum = 0;
};

// Point-in-time, absolute-cumulative state of one registry. Name tables are
// sorted by name (registration order is a map walk), which the merge and the
// renderers rely on.
struct MetricsSnapshot {
  int64_t captured_at_ns = 0;
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramCell> histograms;

  // Untagged archive framing for the kMetricsReport payload. Mirrored
  // writer/reader pair — gmlint serialize-symmetry checks the effect streams.
  void Serialize(OutArchive& out) const;
  static MetricsSnapshot Deserialize(InArchive& in);

  // Exact encoded size of Serialize()'s output.
  size_t EncodedBytes() const;

  // Drops entries (histograms first, then gauge tail, then counter tail)
  // until the encoded size fits max_bytes, so a piggybacked snapshot can
  // never bloat a heartbeat past the frame budget. Returns the number of
  // entries dropped; the caller accounts them on the `metrics.dropped`
  // counter so starvation is visible in the next snapshot.
  int TrimToBudget(size_t max_bytes);

  // Name-wise sum (counters, gauges, histogram cells). Entries present in
  // only one side pass through. Used by the master for the cluster series.
  MetricsSnapshot& Merge(const MetricsSnapshot& o);

  // Looks `name` up in counters, then gauges; 0 when absent.
  int64_t Value(std::string_view name) const;
};

// Registry of named metrics for one worker (or the master). Registration is
// mutex-guarded and expected at startup; the returned objects are stable for
// the registry's lifetime and written to lock-free.
//
// Naming convention: lowercase dotted, "<subsystem>.<metric>" (net.bytes_sent,
// task.created, cache.hits, store.depth, mem.current_bytes, util.cpu_pct_x100,
// metrics.dropped). gmlint's metrics-registration pass enforces that each
// literal is registered at exactly one source site — no silent aliasing.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Owned metrics. Re-registering a name returns the existing object.
  MetricCounter* GetCounter(const std::string& name) EXCLUDES(mutex_);
  MetricGauge* GetGauge(const std::string& name) EXCLUDES(mutex_);
  MetricHistogram* GetHistogram(const std::string& name) EXCLUDES(mutex_);

  // Linked metrics: sample an existing lock-free source at Collect() time.
  // The source must outlive the registry's last Collect().
  void LinkCounter(const std::string& name, const std::atomic<int64_t>* source)
      EXCLUDES(mutex_);
  void LinkGauge(const std::string& name, std::function<int64_t()> fn) EXCLUDES(mutex_);
  // `buckets[b]` counts [2^b, 2^(b+1)); count is derived, sum approximated.
  void LinkHistogram(const std::string& name, const std::atomic<int64_t>* buckets,
                     int num_buckets) EXCLUDES(mutex_);

  MetricsSnapshot Collect() const EXCLUDES(mutex_);

 private:
  struct Entry {
    std::unique_ptr<MetricCounter> counter;
    std::unique_ptr<MetricGauge> gauge;
    std::unique_ptr<MetricHistogram> histogram;
    const std::atomic<int64_t>* linked_counter = nullptr;
    std::function<int64_t()> linked_gauge;
    const std::atomic<int64_t>* linked_buckets = nullptr;
    int linked_bucket_count = 0;
  };

  mutable Mutex mutex_;
  std::map<std::string, Entry> entries_ GUARDED_BY(mutex_);
};

// Registers every WorkerCounters field on the registry under its dotted name
// (net.bytes_sent, pull.retries, task.created, ...) as linked metrics —
// zero added cost on the counters' write paths.
void RegisterWorkerCounters(MetricsRegistry& registry, const WorkerCounters& counters);

// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*. Maps the registry's
// dotted names onto that alphabet ('.' and every other invalid byte become
// '_'; a leading digit gets a '_' prefix; empty becomes "_").
std::string SanitizeMetricName(std::string_view name);

// Resolves the GMINER_METRICS escape hatch: "off"/"0"/"false" pins the
// metrics plane off, "on"/"1"/"true" pins it on, anything else (or unset)
// keeps the JobConfig default. Lets the overhead bench and operators toggle
// collection without a rebuild.
bool MetricsEnabled(bool config_default);

}  // namespace gminer

#endif  // GMINER_METRICS_REGISTRY_H_
