#include "graph/generators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "graph/builder.h"

namespace gminer {

Graph GenerateErdosRenyi(VertexId n, double avg_degree, Rng& rng) {
  GM_CHECK(n > 1);
  GraphBuilder builder(n);
  // Sample the target number of undirected edges directly; rejection on
  // duplicates is handled by the builder's dedup.
  const uint64_t target_edges = static_cast<uint64_t>(avg_degree * n / 2.0);
  for (uint64_t i = 0; i < target_edges; ++i) {
    const VertexId u = rng.NextUint32(n);
    const VertexId v = rng.NextUint32(n);
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph GenerateBarabasiAlbert(VertexId n, int m, Rng& rng) {
  GM_CHECK(n > static_cast<VertexId>(m) && m >= 1);
  GraphBuilder builder(n);
  // Repeated-endpoint sampling: picking a uniform element of the endpoint
  // list is equivalent to degree-proportional sampling.
  std::vector<VertexId> endpoints;
  endpoints.reserve(static_cast<size_t>(n) * m * 2);
  // Seed clique over the first m+1 vertices.
  for (VertexId u = 0; u <= static_cast<VertexId>(m); ++u) {
    for (VertexId v = u + 1; v <= static_cast<VertexId>(m); ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (VertexId v = static_cast<VertexId>(m) + 1; v < n; ++v) {
    for (int j = 0; j < m; ++j) {
      const VertexId target = endpoints[rng.NextUint64(endpoints.size())];
      builder.AddEdge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return builder.Build();
}

Graph GenerateRMat(int scale, double edge_factor, Rng& rng, double a, double b, double c) {
  GM_CHECK(scale >= 2 && scale < 31);
  const VertexId n = static_cast<VertexId>(1) << scale;
  const uint64_t target_edges = static_cast<uint64_t>(edge_factor * n);
  GraphBuilder builder(n);
  for (uint64_t i = 0; i < target_edges; ++i) {
    VertexId u = 0;
    VertexId v = 0;
    for (int level = 0; level < scale; ++level) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: neither bit set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph GenerateMultiComponent(VertexId num_components, VertexId component_size, double intra_p,
                             Rng& rng) {
  GM_CHECK(num_components >= 1 && component_size >= 2);
  const VertexId n = num_components * component_size + 1;  // +1 for the hub
  const VertexId hub = n - 1;
  GraphBuilder builder(n);
  for (VertexId comp = 0; comp < num_components; ++comp) {
    const VertexId base = comp * component_size;
    // Spanning path keeps the component connected; extra intra edges add
    // density.
    for (VertexId i = 1; i < component_size; ++i) {
      builder.AddEdge(base + i - 1, base + i);
    }
    const uint64_t extra =
        static_cast<uint64_t>(intra_p * component_size * (component_size - 1) / 2.0);
    for (uint64_t e = 0; e < extra; ++e) {
      const VertexId u = base + rng.NextUint32(component_size);
      const VertexId v = base + rng.NextUint32(component_size);
      builder.AddEdge(u, v);
    }
  }
  // The hub vertex connects to one vertex in a large fraction of components,
  // yielding a BTC-like extreme max degree.
  for (VertexId comp = 0; comp < num_components; ++comp) {
    if (rng.NextBool(0.5)) {
      builder.AddEdge(hub, comp * component_size);
    }
  }
  return builder.Build();
}

Graph GenerateCommunityGraph(VertexId num_communities, VertexId community_size, double p_in,
                             uint64_t inter_edges, Rng& rng) {
  GM_CHECK(num_communities >= 1 && community_size >= 2);
  const VertexId n = num_communities * community_size;
  GraphBuilder builder(n);
  for (VertexId c = 0; c < num_communities; ++c) {
    const VertexId base = c * community_size;
    for (VertexId i = 1; i < community_size; ++i) {
      builder.AddEdge(base + i - 1, base + i);  // spanning path
    }
    const uint64_t intra =
        static_cast<uint64_t>(p_in * community_size * (community_size - 1) / 2.0);
    for (uint64_t e = 0; e < intra; ++e) {
      builder.AddEdge(base + rng.NextUint32(community_size),
                      base + rng.NextUint32(community_size));
    }
  }
  for (uint64_t e = 0; e < inter_edges; ++e) {
    builder.AddEdge(rng.NextUint32(n), rng.NextUint32(n));
  }
  return builder.Build();
}

Graph WithUniformLabels(const Graph& g, int num_labels, Rng& rng) {
  GM_CHECK(num_labels >= 1);
  GraphBuilder builder(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u > v) {
        builder.AddEdge(v, u);
      }
    }
  }
  std::vector<Label> labels(g.num_vertices());
  for (auto& l : labels) {
    l = rng.NextUint32(static_cast<uint32_t>(num_labels));
  }
  builder.SetLabels(std::move(labels));
  return builder.Build();
}

namespace {

std::vector<AttrValue> UniformAttrList(int dims, int values_per_dim, Rng& rng) {
  std::vector<AttrValue> attrs(static_cast<size_t>(dims));
  for (int d = 0; d < dims; ++d) {
    attrs[d] = static_cast<AttrValue>(d * values_per_dim +
                                      rng.NextUint32(static_cast<uint32_t>(values_per_dim)));
  }
  return attrs;
}

GraphBuilder RebuildEdges(const Graph& g) {
  GraphBuilder builder(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u > v) {
        builder.AddEdge(v, u);
      }
    }
  }
  return builder;
}

}  // namespace

Graph WithUniformAttributes(const Graph& g, int dims, int values_per_dim, Rng& rng) {
  GraphBuilder builder = RebuildEdges(g);
  std::vector<std::vector<AttrValue>> attrs(g.num_vertices());
  for (auto& a : attrs) {
    a = UniformAttrList(dims, values_per_dim, rng);
  }
  builder.SetAttributes(std::move(attrs));
  return builder.Build();
}

Graph WithPlantedAttributeGroups(const Graph& g, int num_groups, int dims, int values_per_dim,
                                 double fidelity, Rng& rng) {
  GM_CHECK(num_groups >= 1);
  GraphBuilder builder = RebuildEdges(g);
  // Each group has a prototype attribute list; members copy each prototype
  // value with probability `fidelity`, otherwise draw uniformly.
  std::vector<std::vector<AttrValue>> prototypes(static_cast<size_t>(num_groups));
  for (auto& p : prototypes) {
    p = UniformAttrList(dims, values_per_dim, rng);
  }
  const VertexId group_span = std::max<VertexId>(1, g.num_vertices() / num_groups);
  std::vector<std::vector<AttrValue>> attrs(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto& proto = prototypes[std::min<size_t>(v / group_span, prototypes.size() - 1)];
    auto a = UniformAttrList(dims, values_per_dim, rng);
    for (int d = 0; d < dims; ++d) {
      if (rng.NextBool(fidelity)) {
        a[d] = proto[d];
      }
    }
    attrs[v] = std::move(a);
  }
  builder.SetAttributes(std::move(attrs));
  return builder.Build();
}

Graph ShuffleVertexIds(const Graph& g, Rng& rng) {
  std::vector<VertexId> perm(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    perm[v] = v;
  }
  std::shuffle(perm.begin(), perm.end(), rng.engine());
  GraphBuilder builder(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u > v) {
        builder.AddEdge(perm[v], perm[u]);
      }
    }
  }
  if (g.has_labels()) {
    std::vector<Label> labels(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      labels[perm[v]] = g.label(v);
    }
    builder.SetLabels(std::move(labels));
  }
  if (g.has_attributes()) {
    std::vector<std::vector<AttrValue>> attrs(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto a = g.attributes(v);
      attrs[perm[v]].assign(a.begin(), a.end());
    }
    builder.SetAttributes(std::move(attrs));
  }
  return builder.Build();
}

namespace {

Graph MakeDatasetUnshuffled(const std::string& name, double scale_factor, Rng& rng);

}  // namespace

Graph MakeDataset(const std::string& name, double scale_factor, uint64_t seed) {
  Rng rng(seed);
  Graph g = MakeDatasetUnshuffled(name, scale_factor, rng);
  // Ids of real graph files carry no structure; remove the generator artifact.
  return ShuffleVertexIds(g, rng);
}

namespace {

Graph MakeDatasetUnshuffled(const std::string& name, double scale_factor, Rng& rng) {
  const auto scaled = [scale_factor](VertexId base) {
    return static_cast<VertexId>(std::max(64.0, base * scale_factor));
  };
  if (name == "skitter") {
    // Internet topology: sparse (avg deg ~13), skewed. ~1.7M vertices originally.
    return GenerateRMat(/*scale=*/11, /*edge_factor=*/6.5, rng);
  }
  if (name == "orkut") {
    // Dense social network (avg deg ~76): strong community structure plus a
    // hub overlay for the heavy-tailed degree distribution. ~3M vertices
    // originally.
    const VertexId n = scaled(3072);
    const VertexId comm_size = 128;
    const VertexId num_comms = std::max<VertexId>(2, n / comm_size);
    Graph base = GenerateCommunityGraph(num_comms, comm_size, /*p_in=*/0.42,
                                        /*inter_edges=*/static_cast<uint64_t>(n) * 4, rng);
    GraphBuilder builder(base.num_vertices());
    for (VertexId v = 0; v < base.num_vertices(); ++v) {
      for (const VertexId u : base.neighbors(v)) {
        if (u > v) {
          builder.AddEdge(v, u);
        }
      }
    }
    for (int h = 0; h < 40; ++h) {  // hubs: heavy tail
      const VertexId hub = rng.NextUint32(base.num_vertices());
      for (int e = 0; e < 220; ++e) {
        builder.AddEdge(hub, rng.NextUint32(base.num_vertices()));
      }
    }
    return builder.Build();
  }
  if (name == "btc") {
    // Semantic graph: very sparse (avg deg ~4.7), many components, giant hub.
    return GenerateMultiComponent(scaled(2048), /*component_size=*/80, /*intra_p=*/0.03, rng);
  }
  if (name == "friendster") {
    // The largest graph (avg deg ~55): community structure + hub overlay.
    // ~65M vertices originally.
    const VertexId n = scaled(8192);
    const VertexId comm_size = 96;
    const VertexId num_comms = std::max<VertexId>(2, n / comm_size);
    Graph base = GenerateCommunityGraph(num_comms, comm_size, /*p_in=*/0.38,
                                        /*inter_edges=*/static_cast<uint64_t>(n) * 4, rng);
    GraphBuilder builder(base.num_vertices());
    for (VertexId v = 0; v < base.num_vertices(); ++v) {
      for (const VertexId u : base.neighbors(v)) {
        if (u > v) {
          builder.AddEdge(v, u);
        }
      }
    }
    for (int h = 0; h < 80; ++h) {
      const VertexId hub = rng.NextUint32(base.num_vertices());
      for (int e = 0; e < 180; ++e) {
        builder.AddEdge(hub, rng.NextUint32(base.num_vertices()));
      }
    }
    return builder.Build();
  }
  if (name == "tencent") {
    // Attributed microblog graph with a huge hub and high-dimensional tags.
    Graph base = GenerateRMat(/*scale=*/11, /*edge_factor=*/27.0, rng);
    return WithPlantedAttributeGroups(base, /*num_groups=*/32, /*dims=*/8,
                                      /*values_per_dim=*/16, /*fidelity=*/0.8, rng);
  }
  if (name == "dblp") {
    // Sparse co-authorship graph: strong community structure (research
    // groups) with venue attributes aligned to the communities.
    const VertexId num_comms = std::max<VertexId>(8, scaled(1806) / 75);
    Graph base = GenerateCommunityGraph(num_comms, /*community_size=*/75, /*p_in=*/0.12,
                                        /*inter_edges=*/num_comms * 20ull, rng);
    return WithPlantedAttributeGroups(base, /*num_groups=*/static_cast<int>(num_comms),
                                      /*dims=*/5, /*values_per_dim=*/10, /*fidelity=*/0.85,
                                      rng);
  }
  GM_CHECK(false) << "unknown dataset: " << name;
  return Graph();
}

}  // namespace

DatasetStats ComputeStats(const Graph& g) {
  DatasetStats stats;
  stats.num_vertices = g.num_vertices();
  stats.num_edges = g.num_edges();
  stats.max_degree = g.max_degree();
  stats.avg_degree = g.avg_degree();
  stats.labeled = g.has_labels();
  stats.attributed = g.has_attributes();
  return stats;
}

}  // namespace gminer
