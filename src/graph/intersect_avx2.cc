// AVX2 set-intersection kernels. Kept in their own translation unit so the
// vector code can be compiled via __attribute__((target("avx2"))) without
// passing -mavx2 to the whole build: only these functions may execute AVX2
// instructions, and the dispatcher in intersect.cc calls them only after
// Avx2CompiledAndSupported() confirms the CPU at runtime.
//
// Algorithm: block the A list 8-at-a-time. For each A block, sweep B in
// blocks of 8 and compare the A vector against all 8 lane rotations of the
// B vector with _mm256_cmpeq_epi32 (the all-pairs trick from Lemire et al.'s
// SIMD set-intersection work and G²Miner's GPU kernels, re-idiomized for
// AVX2). The accumulated per-lane match mask drives either a popcount
// (count variant) or a shuffle-table compaction (materialize variant), which
// keeps the output in ascending order. Tails shorter than a block fall back
// to the scalar merge.
//
// -DGMINER_SIMD=OFF (or a non-x86 target, or a compiler without the target
// attribute) compiles the stub versions at the bottom instead; dispatch then
// reports AVX2 as unavailable and never routes here.
#include "graph/intersect.h"

#include <algorithm>

#define GMINER_HAVE_AVX2_TU 0
#if !defined(GMINER_SIMD_DISABLED) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#undef GMINER_HAVE_AVX2_TU
#define GMINER_HAVE_AVX2_TU 1
#endif

#if GMINER_HAVE_AVX2_TU
#include <immintrin.h>
#endif

namespace gminer {
namespace intersect_internal {

namespace {

// Scalar merge used for the <8-element tails; must match the dispatched
// scalar kernel bit-for-bit (ascending output, one hit per common element).
size_t ScalarTailCount(const VertexId* a, const VertexId* ea, const VertexId* b,
                       const VertexId* eb) {
  size_t count = 0;
  while (a != ea && b != eb) {
    const VertexId va = *a;
    const VertexId vb = *b;
    count += va == vb;
    a += va <= vb;
    b += vb <= va;
  }
  return count;
}

size_t ScalarTailWrite(const VertexId* a, const VertexId* ea, const VertexId* b,
                       const VertexId* eb, std::vector<VertexId>& out) {
  size_t count = 0;
  while (a != ea && b != eb) {
    const VertexId va = *a;
    const VertexId vb = *b;
    if (va == vb) {
      out.push_back(va);
      ++count;
    }
    a += va <= vb;
    b += vb <= va;
  }
  return count;
}

}  // namespace

#if GMINER_HAVE_AVX2_TU

namespace {

// compaction_table[mask] lists the set-bit positions of the 8-bit mask in
// ascending order — the permutevar8x32 index vector that packs matched lanes
// to the front while preserving order.
struct CompactionTable {
  alignas(32) uint32_t idx[256][8];
  CompactionTable() {
    for (int mask = 0; mask < 256; ++mask) {
      int n = 0;
      for (int bit = 0; bit < 8; ++bit) {
        if (mask & (1 << bit)) {
          idx[mask][n++] = static_cast<uint32_t>(bit);
        }
      }
      for (; n < 8; ++n) {
        idx[mask][n] = 0;
      }
    }
  }
};
const CompactionTable kCompact;

// Match mask for one 8x8 block: bit i set iff va lane i equals some lane of
// vb. Eight rotations of vb cover all 64 lane pairs.
__attribute__((target("avx2"))) inline int BlockMatchMask(__m256i va, __m256i vb) {
  const __m256i rot1 = _mm256_set_epi32(0, 7, 6, 5, 4, 3, 2, 1);
  __m256i eq = _mm256_cmpeq_epi32(va, vb);
  __m256i r = vb;
  for (int i = 1; i < 8; ++i) {
    r = _mm256_permutevar8x32_epi32(r, rot1);
    eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, r));
  }
  return _mm256_movemask_ps(_mm256_castsi256_ps(eq));
}

}  // namespace

__attribute__((target("avx2"))) size_t CountAvx2Impl(const VertexId* a, size_t na,
                                                     const VertexId* b, size_t nb) {
  size_t count = 0;
  size_t ia = 0;
  size_t ib = 0;
  while (ia + 8 <= na && ib + 8 <= nb) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + ia));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + ib));
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(BlockMatchMask(va, vb))));
    // Advance the block whose maximum is smaller; on ties both advance
    // (every element of each block has been compared against the other).
    const VertexId amax = a[ia + 7];
    const VertexId bmax = b[ib + 7];
    ia += amax <= bmax ? 8 : 0;
    ib += bmax <= amax ? 8 : 0;
  }
  return count + ScalarTailCount(a + ia, a + na, b + ib, b + nb);
}

__attribute__((target("avx2"))) size_t WriteAvx2Impl(const VertexId* a, size_t na,
                                                     const VertexId* b, size_t nb,
                                                     std::vector<VertexId>& out) {
  size_t count = 0;
  size_t ia = 0;
  size_t ib = 0;
  while (ia + 8 <= na && ib + 8 <= nb) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + ia));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + ib));
    const int mask = BlockMatchMask(va, vb);
    if (mask != 0) {
      const __m256i perm = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kCompact.idx[static_cast<unsigned>(mask)]));
      const __m256i packed = _mm256_permutevar8x32_epi32(va, perm);
      const size_t hits = static_cast<size_t>(
          __builtin_popcount(static_cast<unsigned>(mask)));
      const size_t old = out.size();
      out.resize(old + 8);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.data() + old), packed);
      out.resize(old + hits);  // drop the compaction padding
      count += hits;
    }
    const VertexId amax = a[ia + 7];
    const VertexId bmax = b[ib + 7];
    ia += amax <= bmax ? 8 : 0;
    ib += bmax <= amax ? 8 : 0;
  }
  return count + ScalarTailWrite(a + ia, a + na, b + ib, b + nb, out);
}

bool Avx2CompiledAndSupported() {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
}

#else  // !GMINER_HAVE_AVX2_TU — scalar stubs so the symbols always link.

size_t CountAvx2Impl(const VertexId* a, size_t na, const VertexId* b, size_t nb) {
  return ScalarTailCount(a, a + na, b, b + nb);
}

size_t WriteAvx2Impl(const VertexId* a, size_t na, const VertexId* b, size_t nb,
                     std::vector<VertexId>& out) {
  return ScalarTailWrite(a, a + na, b, b + nb, out);
}

bool Avx2CompiledAndSupported() { return false; }

#endif  // GMINER_HAVE_AVX2_TU

}  // namespace intersect_internal
}  // namespace gminer
