// Immutable in-memory graph in compressed sparse row (CSR) form, with optional
// per-vertex labels (graph matching) and attribute lists (community detection,
// graph clustering). Matches the paper's data model in §4: each vertex v has
// id(v), an adjacency list Γ(v), and an optional attribute list a(v).
#ifndef GMINER_GRAPH_GRAPH_H_
#define GMINER_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace gminer {

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  // Wraps prebuilt CSR columns. `offsets` must be non-decreasing with
  // offsets[0] == 0 and offsets.back() == neighbors.size(); each adjacency
  // list must be sorted and duplicate-free (checked in debug builds only).
  // Used by the orientation preprocessing pass (graph/orientation.h), which
  // produces relabeled — and possibly directed — CSR directly; GraphBuilder
  // remains the entry point for edge-list construction.
  static Graph FromCsr(std::vector<uint64_t> offsets, std::vector<VertexId> neighbors);

  VertexId num_vertices() const { return static_cast<VertexId>(offsets_.size()) - 1; }
  uint64_t num_edges() const { return neighbors_.size() / 2; }      // undirected edge count
  uint64_t num_directed_edges() const { return neighbors_.size(); }

  uint32_t degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  // Sorted, deduplicated neighbor list of v.
  std::span<const VertexId> neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v], neighbors_.data() + offsets_[v + 1]};
  }

  // Binary search over the sorted adjacency list.
  bool HasEdge(VertexId u, VertexId v) const;

  bool has_labels() const { return !labels_.empty(); }
  Label label(VertexId v) const { return has_labels() ? labels_[v] : kNoLabel; }

  bool has_attributes() const { return !attr_offsets_.empty(); }
  std::span<const AttrValue> attributes(VertexId v) const {
    if (!has_attributes()) {
      return {};
    }
    return {attrs_.data() + attr_offsets_[v], attrs_.data() + attr_offsets_[v + 1]};
  }

  uint32_t max_degree() const;
  double avg_degree() const {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(num_directed_edges()) / num_vertices();
  }

  // Approximate resident size, used for dataset reporting.
  uint64_t ByteSize() const;

  // Column setters for FromCsr-built graphs (orientation pass): empty input
  // clears the column. Sizes must match num_vertices() when non-empty.
  void SetLabelColumn(std::vector<Label> labels);
  void SetAttributeColumns(const std::vector<std::vector<AttrValue>>& attrs);

 private:
  friend class GraphBuilder;

  std::vector<uint64_t> offsets_ = {0};
  std::vector<VertexId> neighbors_;
  std::vector<Label> labels_;            // empty when unlabeled
  std::vector<uint64_t> attr_offsets_;   // empty when unattributed
  std::vector<AttrValue> attrs_;
};

}  // namespace gminer

#endif  // GMINER_GRAPH_GRAPH_H_
