// Synthetic graph generators. These produce the scaled-down stand-ins for the
// paper's datasets (Table 2): power-law social graphs for Orkut / Friendster,
// a sparse internet-topology-like graph for Skitter, a many-component semantic
// graph with an extreme hub for BTC, and attributed graphs for Tencent / DBLP.
#ifndef GMINER_GRAPH_GENERATORS_H_
#define GMINER_GRAPH_GENERATORS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace gminer {

// G(n, p)-style uniform random graph with the given expected average degree.
Graph GenerateErdosRenyi(VertexId n, double avg_degree, Rng& rng);

// Preferential-attachment graph: each new vertex attaches to `m` existing
// vertices chosen proportionally to degree. Produces a power-law degree
// distribution with a connected core.
Graph GenerateBarabasiAlbert(VertexId n, int m, Rng& rng);

// Recursive-matrix (R-MAT) generator; n = 2^scale vertices and roughly
// n * edge_factor undirected edges. Defaults follow the Graph500 parameters,
// producing heavy skew (a few very high-degree hubs).
Graph GenerateRMat(int scale, double edge_factor, Rng& rng, double a = 0.57, double b = 0.19,
                   double c = 0.19);

// Many small connected components plus one giant hub vertex connected widely —
// mimics the shape of the BTC semantic graph (huge max degree, tiny average).
Graph GenerateMultiComponent(VertexId num_components, VertexId component_size, double intra_p,
                             Rng& rng);

// Planted-partition (community) graph: `num_communities` contiguous-id blocks
// of `community_size` vertices, dense inside (edge probability p_in, plus a
// spanning path for connectivity) and sparse across (`inter_edges` uniform
// random edges). Co-authorship and social graphs have this shape; community
// detection and focused clustering have real structure to find here.
Graph GenerateCommunityGraph(VertexId num_communities, VertexId community_size, double p_in,
                             uint64_t inter_edges, Rng& rng);

// Returns a copy of `g` with uniform-random labels from {0, ..., num_labels-1}
// (the paper's GM experiment assigns labels {a..g} uniformly).
Graph WithUniformLabels(const Graph& g, int num_labels, Rng& rng);

// Returns a copy of `g` where each vertex gets `dims` attributes; attribute d
// takes a value in [d * values_per_dim, (d+1) * values_per_dim). This mirrors
// the paper's footnote 7 ("5-dimension [A-E] uniform distribution from
// [1-10]", e.g. {A1, B5, C10, D6, E4}").
Graph WithUniformAttributes(const Graph& g, int dims, int values_per_dim, Rng& rng);

// Returns a copy with community-correlated attributes: vertices are assigned
// to planted groups (by contiguous id range) and members of a group share a
// biased attribute distribution. Used by CD / GC workloads so that attribute
// filtering has structure to find.
Graph WithPlantedAttributeGroups(const Graph& g, int num_groups, int dims, int values_per_dim,
                                 double fidelity, Rng& rng);

// Returns a copy of g with vertex ids randomly permuted (labels/attributes
// follow their vertices). Real-world graph files carry no structure in their
// id assignment; synthetic generators do (contiguous communities), and
// shuffling removes that artifact. Every MakeDataset() graph is shuffled.
Graph ShuffleVertexIds(const Graph& g, Rng& rng);

// Named scaled-down stand-ins for the paper's Table 2 datasets. `scale_factor`
// of 1.0 yields the default (~1000x smaller than the original); larger values
// grow the graph proportionally. Valid names: "skitter", "orkut", "btc",
// "friendster", "tencent", "dblp".
Graph MakeDataset(const std::string& name, double scale_factor, uint64_t seed);

struct DatasetStats {
  VertexId num_vertices = 0;
  uint64_t num_edges = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0.0;
  bool labeled = false;
  bool attributed = false;
};

DatasetStats ComputeStats(const Graph& g);

}  // namespace gminer

#endif  // GMINER_GRAPH_GENERATORS_H_
