// Shared set-intersection kernels for the mining inner loops (DESIGN.md
// "Mining kernels"). Every candidate-set ∩ adjacency-list operation in
// src/apps/ and the serial/BSP baselines goes through this header — the
// repo lint (scripts/lint.py, raw-intersect) rejects hand-rolled two-pointer
// loops in apps so new workloads stay on the kernel path.
//
// Three kernel families, all over sorted, duplicate-free uint32 lists (the
// invariant GraphBuilder establishes for every adjacency list):
//
//   - scalar:    branchy two-pointer merge; best when |a| ≈ |b| and both are
//                short (the common case deep in a clique search tree);
//   - galloping: binary-probe the larger list for each element of the
//                smaller; wins when the size ratio is skewed (hub adjacency
//                vs. a shrinking candidate set — power-law graphs live here);
//   - AVX2:      8-lane _mm256_cmpeq_epi32 all-pairs block compare with a
//                shuffle-table compaction for the materializing variant;
//                compiled via a target("avx2") attribute so the build needs
//                no special flags, selected only when the CPU reports AVX2.
//
// IntersectCount / Intersect are the dispatched entry points: an explicit
// runtime mode (env GMINER_SIMD, see below) picks a family, and kAuto applies
// the size-ratio heuristic per call. The *Scalar/*Galloping/*Avx2 functions
// are exposed directly for the equivalence fuzz tests and the microbench.
//
// Environment control (read once, cached):
//   GMINER_SIMD=off|0|scalar   force the scalar merge everywhere
//   GMINER_SIMD=galloping      force galloping
//   GMINER_SIMD=avx2           force AVX2 (falls back to scalar if the CPU
//                              or build lacks it)
//   GMINER_SIMD=auto|on|unset  heuristic dispatch (default)
//
// Building with -DGMINER_SIMD=OFF compiles the AVX2 translation unit out
// entirely; dispatch then never selects it.
#ifndef GMINER_GRAPH_INTERSECT_H_
#define GMINER_GRAPH_INTERSECT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace gminer {

enum class IntersectKernel : uint8_t { kAuto = 0, kScalar, kGalloping, kAvx2 };

const char* IntersectKernelName(IntersectKernel k);

// True when the AVX2 path is compiled in AND the CPU reports AVX2 support.
bool IntersectAvx2Available();

// The mode selected by GMINER_SIMD (resolved once per process).
IntersectKernel IntersectMode();

// Test hook: overrides the mode for the calling process. Not thread-safe;
// call only from single-threaded test setup. kAuto restores env behavior.
void SetIntersectModeForTest(IntersectKernel mode);

// Per-thread dispatch counters, used by tests to assert which family ran and
// by the microbench to report the dispatch mix. Plain thread-locals: no
// cross-thread aggregation, no hot-path synchronization.
struct IntersectStats {
  uint64_t scalar_calls = 0;
  uint64_t galloping_calls = 0;
  uint64_t avx2_calls = 0;
  uint64_t Total() const { return scalar_calls + galloping_calls + avx2_calls; }
};
const IntersectStats& IntersectStatsThisThread();
void ResetIntersectStatsThisThread();

// ---------------------------------------------------------------------------
// Dispatched entry points. Preconditions: a and b sorted ascending, no
// duplicates. The materializing variants append matches to out in ascending
// order and return the number appended.
// ---------------------------------------------------------------------------

size_t IntersectCount(std::span<const VertexId> a, std::span<const VertexId> b);
size_t Intersect(std::span<const VertexId> a, std::span<const VertexId> b,
                 std::vector<VertexId>& out);

// Intersection restricted to elements strictly greater than `floor`: the
// ordered-extension idiom (candidates above the branch vertex). Both lists
// are trimmed with a binary search before the kernel runs, so galloping and
// AVX2 benefit from the shrunken inputs.
size_t IntersectCountAbove(std::span<const VertexId> a, std::span<const VertexId> b,
                           VertexId floor);
size_t IntersectAbove(std::span<const VertexId> a, std::span<const VertexId> b,
                      VertexId floor, std::vector<VertexId>& out);

// ---------------------------------------------------------------------------
// Direct kernel entry points (tests, microbench). Same preconditions.
// ---------------------------------------------------------------------------

size_t IntersectCountScalar(std::span<const VertexId> a, std::span<const VertexId> b);
size_t IntersectScalar(std::span<const VertexId> a, std::span<const VertexId> b,
                       std::vector<VertexId>& out);

size_t IntersectCountGalloping(std::span<const VertexId> a, std::span<const VertexId> b);
size_t IntersectGalloping(std::span<const VertexId> a, std::span<const VertexId> b,
                          std::vector<VertexId>& out);

// AVX2 variants fall back to scalar when IntersectAvx2Available() is false,
// so they are always safe to call.
size_t IntersectCountAvx2(std::span<const VertexId> a, std::span<const VertexId> b);
size_t IntersectAvx2(std::span<const VertexId> a, std::span<const VertexId> b,
                     std::vector<VertexId>& out);

}  // namespace gminer

#endif  // GMINER_GRAPH_INTERSECT_H_
