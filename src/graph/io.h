// Text serialization for graphs. The original system loads adjacency data
// from HDFS; here the persistent store is the local filesystem. Two formats:
//
//   * edge list:  "u v" per line, '#' comments, undirected;
//   * adjacency:  "v [label] [k a1..ak] : n1 n2 ..." per line, which carries
//     labels and attribute lists and round-trips everything a Graph holds.
#ifndef GMINER_GRAPH_IO_H_
#define GMINER_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"

namespace gminer {

Graph LoadEdgeList(const std::string& path, VertexId num_vertices_hint = 0);
void SaveEdgeList(const Graph& g, const std::string& path);

Graph LoadAdjacency(const std::string& path);
void SaveAdjacency(const Graph& g, const std::string& path);

}  // namespace gminer

#endif  // GMINER_GRAPH_IO_H_
