#include "graph/orientation.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.h"

namespace gminer {

DegreeOrdering ComputeDegreeOrdering(const Graph& g) {
  const VertexId n = g.num_vertices();
  DegreeOrdering out;
  out.order.resize(n);
  std::iota(out.order.begin(), out.order.end(), 0);
  // Counting sort by degree keeps this O(V + max_degree) and, because the
  // iota input is id-sorted and std::stable_sort-equivalent bucketing is
  // used, ties break by id.
  const uint32_t max_deg = g.max_degree();
  std::vector<uint32_t> bucket_start(static_cast<size_t>(max_deg) + 2, 0);
  for (VertexId v = 0; v < n; ++v) {
    ++bucket_start[g.degree(v) + 1];
  }
  for (size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<VertexId> sorted(n);
  std::vector<uint32_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
  for (VertexId v = 0; v < n; ++v) {  // ascending id within each bucket
    sorted[cursor[g.degree(v)]++] = v;
  }
  out.order = std::move(sorted);
  out.rank.resize(n);
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    out.rank[out.order[new_id]] = new_id;
  }
  return out;
}

Graph ReorderByDegree(const Graph& g, DegreeOrdering* ordering) {
  DegreeOrdering ord = ComputeDegreeOrdering(g);
  const VertexId n = g.num_vertices();
  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (VertexId new_v = 0; new_v < n; ++new_v) {
    offsets[new_v + 1] = offsets[new_v] + g.degree(ord.order[new_v]);
  }
  std::vector<VertexId> neighbors(offsets.back());
  for (VertexId new_v = 0; new_v < n; ++new_v) {
    uint64_t at = offsets[new_v];
    for (const VertexId u : g.neighbors(ord.order[new_v])) {
      neighbors[at++] = ord.rank[u];
    }
    std::sort(neighbors.begin() + static_cast<int64_t>(offsets[new_v]),
              neighbors.begin() + static_cast<int64_t>(at));
  }

  std::vector<Label> labels;
  if (g.has_labels()) {
    labels.resize(n);
    for (VertexId new_v = 0; new_v < n; ++new_v) {
      labels[new_v] = g.label(ord.order[new_v]);
    }
  }
  std::vector<std::vector<AttrValue>> attrs;
  if (g.has_attributes()) {
    attrs.resize(n);
    for (VertexId new_v = 0; new_v < n; ++new_v) {
      const auto a = g.attributes(ord.order[new_v]);
      attrs[new_v].assign(a.begin(), a.end());
    }
  }

  Graph out = Graph::FromCsr(std::move(offsets), std::move(neighbors));
  out.SetLabelColumn(std::move(labels));
  out.SetAttributeColumns(attrs);
  if (ordering != nullptr) {
    *ordering = std::move(ord);
  }
  return out;
}

Graph BuildOrientedDag(const Graph& g, DegreeOrdering* ordering) {
  DegreeOrdering ord = ComputeDegreeOrdering(g);
  const VertexId n = g.num_vertices();
  std::vector<uint64_t> offsets(static_cast<size_t>(n) + 1, 0);
  for (VertexId new_v = 0; new_v < n; ++new_v) {
    uint64_t forward = 0;
    for (const VertexId u : g.neighbors(ord.order[new_v])) {
      forward += ord.rank[u] > new_v;
    }
    offsets[new_v + 1] = offsets[new_v] + forward;
  }
  std::vector<VertexId> neighbors(offsets.back());
  for (VertexId new_v = 0; new_v < n; ++new_v) {
    uint64_t at = offsets[new_v];
    for (const VertexId u : g.neighbors(ord.order[new_v])) {
      if (ord.rank[u] > new_v) {
        neighbors[at++] = ord.rank[u];
      }
    }
    std::sort(neighbors.begin() + static_cast<int64_t>(offsets[new_v]),
              neighbors.begin() + static_cast<int64_t>(at));
  }
  Graph out = Graph::FromCsr(std::move(offsets), std::move(neighbors));
  if (ordering != nullptr) {
    *ordering = std::move(ord);
  }
  return out;
}

}  // namespace gminer
