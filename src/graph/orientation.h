// Degree-ordered orientation preprocessing (DESIGN.md "Mining kernels").
//
// Clique-class searches that extend "upward" (candidates greater than the
// branch vertex) do work proportional to the out-degree of each vertex under
// the chosen order. Vertex ids carry no structure, so ordering by id leaves
// hubs with huge forward neighborhoods. Ranking vertices by ascending degree
// (ties by id) and relabeling bounds every forward neighborhood by the graph
// degeneracy — the G²Miner/Kaleido orientation trick — which shrinks the
// TC / k-clique / quasi-clique search tree without changing the counts for
// order-invariant patterns (every triangle / k-clique is still enumerated
// exactly once, from its minimum-rank vertex).
//
// Two forms:
//   - ReorderByDegree: relabeled *undirected* Graph. Drop-in for the whole
//     pipeline (partitioning, tasks, baselines): the existing `u > v`
//     candidate generation becomes degree-ordered orientation for free.
//   - BuildOrientedDag: relabeled *directed* CSR keeping only forward edges
//     (rank(u) < rank(v)), for tight serial kernels: neighbors(v) is N+(v).
#ifndef GMINER_GRAPH_ORIENTATION_H_
#define GMINER_GRAPH_ORIENTATION_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace gminer {

struct DegreeOrdering {
  // rank[old_id] = position in the ascending (degree, id) order = new id.
  std::vector<VertexId> rank;
  // order[new_id] = old id (the inverse permutation).
  std::vector<VertexId> order;
};

DegreeOrdering ComputeDegreeOrdering(const Graph& g);

// Relabeled copy of g: new id = degree rank. Labels and attributes follow
// their vertices. Adjacency lists stay sorted (by new id). When `ordering`
// is non-null the permutation used is stored there for mapping results back.
Graph ReorderByDegree(const Graph& g, DegreeOrdering* ordering = nullptr);

// Directed forward-edge CSR in rank space: neighbors(v) holds exactly the
// neighbors with rank greater than v, sorted ascending. The returned Graph
// is a DAG view — num_edges() (which assumes symmetric storage) is not
// meaningful on it; use num_directed_edges().
Graph BuildOrientedDag(const Graph& g, DegreeOrdering* ordering = nullptr);

}  // namespace gminer

#endif  // GMINER_GRAPH_ORIENTATION_H_
