#include "graph/builder.h"

#include <algorithm>

#include "common/logging.h"

namespace gminer {

Graph GraphBuilder::Build() {
  // Symmetrize: store each undirected edge in both directions, then sort and
  // deduplicate so adjacency lists come out sorted.
  std::vector<std::pair<VertexId, VertexId>> directed;
  directed.reserve(edges_.size() * 2);
  for (const auto& [u, v] : edges_) {
    directed.emplace_back(u, v);
    directed.emplace_back(v, u);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()), directed.end());

  Graph g;
  std::vector<uint64_t> offsets(static_cast<size_t>(num_vertices_) + 1, 0);
  for (const auto& [u, v] : directed) {
    (void)v;
    ++offsets[u + 1];
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }
  g.offsets_ = std::move(offsets);
  g.neighbors_.resize(directed.size());
  for (size_t i = 0; i < directed.size(); ++i) {
    g.neighbors_[i] = directed[i].second;
  }

  if (!labels_.empty()) {
    GM_CHECK(labels_.size() == num_vertices_) << "label column size mismatch";
    g.labels_ = std::move(labels_);
  }
  if (!attrs_.empty()) {
    GM_CHECK(attrs_.size() == num_vertices_) << "attribute column size mismatch";
    g.attr_offsets_.assign(static_cast<size_t>(num_vertices_) + 1, 0);
    uint64_t total = 0;
    for (VertexId v = 0; v < num_vertices_; ++v) {
      g.attr_offsets_[v] = total;
      total += attrs_[v].size();
    }
    g.attr_offsets_[num_vertices_] = total;
    g.attrs_.reserve(total);
    for (VertexId v = 0; v < num_vertices_; ++v) {
      g.attrs_.insert(g.attrs_.end(), attrs_[v].begin(), attrs_[v].end());
    }
  }

  edges_.clear();
  attrs_.clear();
  return g;
}

}  // namespace gminer
