#include "graph/graph.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace gminer {

Graph Graph::FromCsr(std::vector<uint64_t> offsets, std::vector<VertexId> neighbors) {
  GM_CHECK(!offsets.empty() && offsets.front() == 0);
  GM_CHECK(offsets.back() == neighbors.size());
  Graph g;
  g.offsets_ = std::move(offsets);
  g.neighbors_ = std::move(neighbors);
#ifndef NDEBUG
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    GM_CHECK(g.offsets_[v] <= g.offsets_[v + 1]);
    const auto adj = g.neighbors(v);
    for (size_t i = 1; i < adj.size(); ++i) {
      GM_CHECK(adj[i - 1] < adj[i]) << "adjacency of " << v << " not sorted/unique";
    }
  }
#endif
  return g;
}

void Graph::SetLabelColumn(std::vector<Label> labels) {
  GM_CHECK(labels.empty() || labels.size() == num_vertices());
  labels_ = std::move(labels);
}

void Graph::SetAttributeColumns(const std::vector<std::vector<AttrValue>>& attrs) {
  if (attrs.empty()) {
    attr_offsets_.clear();
    attrs_.clear();
    return;
  }
  GM_CHECK(attrs.size() == num_vertices());
  attr_offsets_.assign(static_cast<size_t>(num_vertices()) + 1, 0);
  uint64_t total = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    attr_offsets_[v] = total;
    total += attrs[v].size();
  }
  attr_offsets_[num_vertices()] = total;
  attrs_.clear();
  attrs_.reserve(total);
  for (VertexId v = 0; v < num_vertices(); ++v) {
    attrs_.insert(attrs_.end(), attrs[v].begin(), attrs[v].end());
  }
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

uint32_t Graph::max_degree() const {
  uint32_t max_deg = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    max_deg = std::max(max_deg, degree(v));
  }
  return max_deg;
}

uint64_t Graph::ByteSize() const {
  return offsets_.size() * sizeof(uint64_t) + neighbors_.size() * sizeof(VertexId) +
         labels_.size() * sizeof(Label) + attr_offsets_.size() * sizeof(uint64_t) +
         attrs_.size() * sizeof(AttrValue);
}

}  // namespace gminer
