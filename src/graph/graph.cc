#include "graph/graph.h"

#include <algorithm>

namespace gminer {

bool Graph::HasEdge(VertexId u, VertexId v) const {
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

uint32_t Graph::max_degree() const {
  uint32_t max_deg = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    max_deg = std::max(max_deg, degree(v));
  }
  return max_deg;
}

uint64_t Graph::ByteSize() const {
  return offsets_.size() * sizeof(uint64_t) + neighbors_.size() * sizeof(VertexId) +
         labels_.size() * sizeof(Label) + attr_offsets_.size() * sizeof(uint64_t) +
         attrs_.size() * sizeof(AttrValue);
}

}  // namespace gminer
