#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "graph/builder.h"

namespace gminer {

Graph LoadEdgeList(const std::string& path, VertexId num_vertices_hint) {
  std::ifstream in(path);
  GM_CHECK(in.good()) << "cannot open " << path;
  std::vector<std::pair<VertexId, VertexId>> edges;
  VertexId max_vertex = num_vertices_hint > 0 ? num_vertices_hint - 1 : 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ss(line);
    VertexId u = 0;
    VertexId v = 0;
    if (!(ss >> u >> v)) {
      continue;
    }
    edges.emplace_back(u, v);
    max_vertex = std::max({max_vertex, u, v});
  }
  GraphBuilder builder(max_vertex + 1);
  for (const auto& [u, v] : edges) {
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

void SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  GM_CHECK(out.good()) << "cannot open " << path;
  out << "# vertices " << g.num_vertices() << "\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.neighbors(v)) {
      if (u > v) {
        out << v << ' ' << u << '\n';
      }
    }
  }
}

void SaveAdjacency(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  GM_CHECK(out.good()) << "cannot open " << path;
  out << "V " << g.num_vertices() << ' ' << (g.has_labels() ? 1 : 0) << ' '
      << (g.has_attributes() ? 1 : 0) << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << v;
    if (g.has_labels()) {
      out << ' ' << g.label(v);
    }
    if (g.has_attributes()) {
      const auto attrs = g.attributes(v);
      out << ' ' << attrs.size();
      for (const AttrValue a : attrs) {
        out << ' ' << a;
      }
    }
    out << " :";
    for (const VertexId u : g.neighbors(v)) {
      out << ' ' << u;
    }
    out << '\n';
  }
}

Graph LoadAdjacency(const std::string& path) {
  std::ifstream in(path);
  GM_CHECK(in.good()) << "cannot open " << path;
  std::string header;
  VertexId n = 0;
  int has_labels = 0;
  int has_attrs = 0;
  in >> header >> n >> has_labels >> has_attrs;
  GM_CHECK(header == "V") << "bad adjacency header in " << path;
  GraphBuilder builder(n);
  std::vector<Label> labels;
  std::vector<std::vector<AttrValue>> attrs;
  if (has_labels != 0) {
    labels.resize(n);
  }
  if (has_attrs != 0) {
    attrs.resize(n);
  }
  for (VertexId i = 0; i < n; ++i) {
    VertexId v = 0;
    in >> v;
    GM_CHECK(v < n) << "vertex id out of range in " << path;
    if (has_labels != 0) {
      in >> labels[v];
    }
    if (has_attrs != 0) {
      size_t k = 0;
      in >> k;
      attrs[v].resize(k);
      for (size_t j = 0; j < k; ++j) {
        in >> attrs[v][j];
      }
    }
    std::string colon;
    in >> colon;
    GM_CHECK(colon == ":") << "bad adjacency row in " << path;
    // Neighbors run until end of line.
    std::string rest;
    std::getline(in, rest);
    std::istringstream ss(rest);
    VertexId u = 0;
    while (ss >> u) {
      if (u > v) {
        builder.AddEdge(v, u);
      }
    }
  }
  if (has_labels != 0) {
    builder.SetLabels(std::move(labels));
  }
  if (has_attrs != 0) {
    builder.SetAttributes(std::move(attrs));
  }
  return builder.Build();
}

}  // namespace gminer
