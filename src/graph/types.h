// Fundamental graph identifiers shared by every module.
#ifndef GMINER_GRAPH_TYPES_H_
#define GMINER_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace gminer {

using VertexId = uint32_t;
using Label = uint32_t;
using AttrValue = uint32_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr Label kNoLabel = std::numeric_limits<Label>::max();

using WorkerId = int32_t;
inline constexpr WorkerId kInvalidWorker = -1;

}  // namespace gminer

#endif  // GMINER_GRAPH_TYPES_H_
