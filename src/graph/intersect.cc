#include "graph/intersect.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>

namespace gminer {

namespace intersect_internal {

thread_local IntersectStats g_stats;

// Implemented in intersect_avx2.cc (stubbed to scalar when the build or
// architecture lacks AVX2).
size_t CountAvx2Impl(const VertexId* a, size_t na, const VertexId* b, size_t nb);
size_t WriteAvx2Impl(const VertexId* a, size_t na, const VertexId* b, size_t nb,
                     std::vector<VertexId>& out);
bool Avx2CompiledAndSupported();

}  // namespace intersect_internal

using intersect_internal::g_stats;

const char* IntersectKernelName(IntersectKernel k) {
  switch (k) {
    case IntersectKernel::kAuto:
      return "auto";
    case IntersectKernel::kScalar:
      return "scalar";
    case IntersectKernel::kGalloping:
      return "galloping";
    case IntersectKernel::kAvx2:
      return "avx2";
  }
  return "?";
}

bool IntersectAvx2Available() { return intersect_internal::Avx2CompiledAndSupported(); }

namespace {

IntersectKernel ModeFromEnv() {
  const char* env = std::getenv("GMINER_SIMD");
  if (env == nullptr) {
    return IntersectKernel::kAuto;
  }
  std::string v(env);
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (v == "off" || v == "0" || v == "scalar" || v == "false") {
    return IntersectKernel::kScalar;
  }
  if (v == "gallop" || v == "galloping") {
    return IntersectKernel::kGalloping;
  }
  if (v == "avx2" || v == "simd") {
    return IntersectKernel::kAvx2;
  }
  return IntersectKernel::kAuto;  // "auto", "on", "1", unrecognized
}

// kAuto here means "no override": fall through to the env-resolved mode.
IntersectKernel g_mode_override = IntersectKernel::kAuto;
bool g_mode_overridden = false;

}  // namespace

IntersectKernel IntersectMode() {
  if (g_mode_overridden) {
    return g_mode_override;
  }
  static const IntersectKernel mode = ModeFromEnv();
  return mode;
}

void SetIntersectModeForTest(IntersectKernel mode) {
  g_mode_overridden = mode != IntersectKernel::kAuto;
  g_mode_override = mode;
}

const IntersectStats& IntersectStatsThisThread() { return g_stats; }
void ResetIntersectStatsThisThread() { g_stats = IntersectStats{}; }

// ---------------------------------------------------------------------------
// Scalar merge
// ---------------------------------------------------------------------------

size_t IntersectCountScalar(std::span<const VertexId> a, std::span<const VertexId> b) {
  ++g_stats.scalar_calls;
  const VertexId* pa = a.data();
  const VertexId* ea = pa + a.size();
  const VertexId* pb = b.data();
  const VertexId* eb = pb + b.size();
  size_t count = 0;
  while (pa != ea && pb != eb) {
    const VertexId va = *pa;
    const VertexId vb = *pb;
    count += va == vb;
    pa += va <= vb;
    pb += vb <= va;
  }
  return count;
}

size_t IntersectScalar(std::span<const VertexId> a, std::span<const VertexId> b,
                       std::vector<VertexId>& out) {
  ++g_stats.scalar_calls;
  const VertexId* pa = a.data();
  const VertexId* ea = pa + a.size();
  const VertexId* pb = b.data();
  const VertexId* eb = pb + b.size();
  size_t count = 0;
  while (pa != ea && pb != eb) {
    const VertexId va = *pa;
    const VertexId vb = *pb;
    if (va == vb) {
      out.push_back(va);
      ++count;
    }
    pa += va <= vb;
    pb += vb <= va;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Galloping (exponential probe into the larger list)
// ---------------------------------------------------------------------------

namespace {

// First index i in [lo, n) with hay[i] >= needle, found by doubling steps
// from lo then a binary search inside the bracketed window. O(log distance),
// so a full pass over the small list costs O(|small| * log |large|).
size_t GallopLowerBound(const VertexId* hay, size_t n, size_t lo, VertexId needle) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < n && hay[hi] < needle) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > n) {
    hi = n;
  }
  return static_cast<size_t>(
      std::lower_bound(hay + lo, hay + hi, needle) - hay);
}

template <typename OnMatch>
size_t GallopImpl(std::span<const VertexId> a, std::span<const VertexId> b,
                  OnMatch&& on_match) {
  // Probe with the smaller list into the larger one.
  std::span<const VertexId> small = a.size() <= b.size() ? a : b;
  std::span<const VertexId> large = a.size() <= b.size() ? b : a;
  const VertexId* hay = large.data();
  const size_t n = large.size();
  size_t cursor = 0;
  size_t count = 0;
  for (const VertexId v : small) {
    cursor = GallopLowerBound(hay, n, cursor, v);
    if (cursor == n) {
      break;
    }
    if (hay[cursor] == v) {
      on_match(v);
      ++count;
      ++cursor;
    }
  }
  return count;
}

}  // namespace

size_t IntersectCountGalloping(std::span<const VertexId> a, std::span<const VertexId> b) {
  ++g_stats.galloping_calls;
  return GallopImpl(a, b, [](VertexId) {});
}

size_t IntersectGalloping(std::span<const VertexId> a, std::span<const VertexId> b,
                          std::vector<VertexId>& out) {
  ++g_stats.galloping_calls;
  return GallopImpl(a, b, [&out](VertexId v) { out.push_back(v); });
}

// ---------------------------------------------------------------------------
// AVX2 wrappers (fall back to scalar when unavailable)
// ---------------------------------------------------------------------------

size_t IntersectCountAvx2(std::span<const VertexId> a, std::span<const VertexId> b) {
  if (!IntersectAvx2Available()) {
    return IntersectCountScalar(a, b);
  }
  ++g_stats.avx2_calls;
  return intersect_internal::CountAvx2Impl(a.data(), a.size(), b.data(), b.size());
}

size_t IntersectAvx2(std::span<const VertexId> a, std::span<const VertexId> b,
                     std::vector<VertexId>& out) {
  if (!IntersectAvx2Available()) {
    return IntersectScalar(a, b, out);
  }
  ++g_stats.avx2_calls;
  return intersect_internal::WriteAvx2Impl(a.data(), a.size(), b.data(), b.size(), out);
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

namespace {

// Size-ratio threshold above which galloping beats a linear merge: probing
// |small| * log |large| comparisons against |small| + |large|. The crossover
// constant is empirical (bench_intersect); 32 is conservative enough that
// near-balanced lists stay on the merge/SIMD path.
constexpr size_t kGallopRatio = 32;

bool PreferGalloping(size_t na, size_t nb) {
  const size_t small = std::min(na, nb);
  const size_t large = std::max(na, nb);
  return small * kGallopRatio < large;
}

// Empty-input and disjoint-range rejection shared by both entry points.
bool TriviallyEmpty(std::span<const VertexId> a, std::span<const VertexId> b) {
  return a.empty() || b.empty() || a.front() > b.back() || b.front() > a.back();
}

}  // namespace

size_t IntersectCount(std::span<const VertexId> a, std::span<const VertexId> b) {
  if (TriviallyEmpty(a, b)) {
    return 0;
  }
  switch (IntersectMode()) {
    case IntersectKernel::kScalar:
      return IntersectCountScalar(a, b);
    case IntersectKernel::kGalloping:
      return IntersectCountGalloping(a, b);
    case IntersectKernel::kAvx2:
      return IntersectCountAvx2(a, b);
    case IntersectKernel::kAuto:
      break;
  }
  if (PreferGalloping(a.size(), b.size())) {
    return IntersectCountGalloping(a, b);
  }
  return IntersectCountAvx2(a, b);  // scalar when AVX2 is unavailable
}

size_t Intersect(std::span<const VertexId> a, std::span<const VertexId> b,
                 std::vector<VertexId>& out) {
  if (TriviallyEmpty(a, b)) {
    return 0;
  }
  switch (IntersectMode()) {
    case IntersectKernel::kScalar:
      return IntersectScalar(a, b, out);
    case IntersectKernel::kGalloping:
      return IntersectGalloping(a, b, out);
    case IntersectKernel::kAvx2:
      return IntersectAvx2(a, b, out);
    case IntersectKernel::kAuto:
      break;
  }
  if (PreferGalloping(a.size(), b.size())) {
    return IntersectGalloping(a, b, out);
  }
  return IntersectAvx2(a, b, out);
}

namespace {

std::span<const VertexId> TrimAbove(std::span<const VertexId> s, VertexId floor) {
  const VertexId* first = std::upper_bound(s.data(), s.data() + s.size(), floor);
  return {first, s.data() + s.size()};
}

}  // namespace

size_t IntersectCountAbove(std::span<const VertexId> a, std::span<const VertexId> b,
                           VertexId floor) {
  return IntersectCount(TrimAbove(a, floor), TrimAbove(b, floor));
}

size_t IntersectAbove(std::span<const VertexId> a, std::span<const VertexId> b,
                      VertexId floor, std::vector<VertexId>& out) {
  return Intersect(TrimAbove(a, floor), TrimAbove(b, floor), out);
}

}  // namespace gminer
