// Mutable staging area for constructing an immutable CSR Graph. Handles
// symmetrization (the paper's discussion focuses on undirected graphs),
// deduplication, self-loop removal and optional label / attribute columns.
#ifndef GMINER_GRAPH_BUILDER_H_
#define GMINER_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace gminer {

class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices) : num_vertices_(num_vertices) {}

  VertexId num_vertices() const { return num_vertices_; }

  // Records an undirected edge {u, v}. Self loops are dropped, duplicates are
  // removed at Build() time.
  void AddEdge(VertexId u, VertexId v) {
    if (u == v || u >= num_vertices_ || v >= num_vertices_) {
      return;
    }
    edges_.emplace_back(u, v);
  }

  size_t num_staged_edges() const { return edges_.size(); }

  void SetLabels(std::vector<Label> labels) { labels_ = std::move(labels); }
  void SetAttributes(std::vector<std::vector<AttrValue>> attrs) { attrs_ = std::move(attrs); }

  // Finalizes into CSR form. The builder is left empty afterwards.
  Graph Build();

 private:
  VertexId num_vertices_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<Label> labels_;
  std::vector<std::vector<AttrValue>> attrs_;
};

}  // namespace gminer

#endif  // GMINER_GRAPH_BUILDER_H_
