// Disk spill primitives for the task store (§7, "Task Priority Queue"):
// batches of serialized blobs written as one block file, read back whole.
// Real file I/O is performed so the pipeline genuinely overlaps disk work
// with computation; byte counts feed the disk-utilization timeline (Fig. 6).
#ifndef GMINER_STORAGE_SPILL_FILE_H_
#define GMINER_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gminer {

// Writes blobs to `path`, returns the number of bytes written on disk. The
// block ends with an FNV-1a checksum of its contents so a torn or corrupted
// write is detected on read instead of resurrecting garbage tasks.
int64_t WriteSpillBlock(const std::string& path, const std::vector<std::vector<uint8_t>>& blobs);

// Reads the blobs back and deletes the file. bytes_read receives the on-disk
// size. The returned order matches the written order. Aborts on a corrupt
// block (task-store spills are same-process, so corruption means a bug).
std::vector<std::vector<uint8_t>> ReadSpillBlock(const std::string& path, int64_t* bytes_read);

// Non-aborting variant for recovery paths, where a checkpoint file may be
// truncated or corrupted by the failure being recovered from. Returns false
// (with a diagnostic in *error) on a missing, truncated, or
// checksum-mismatched block; the file is deleted only on success.
bool TryReadSpillBlock(const std::string& path, std::vector<std::vector<uint8_t>>* blobs,
                       int64_t* bytes_read, std::string* error);

// Canonical per-worker seed-checkpoint file name beneath a checkpoint
// directory. Shared by the deployment (writing / offline recovery) and the
// master (naming the file an adopter should load on failover).
std::string CheckpointTaskFile(const std::string& dir, int worker);

// Creates a unique fresh subdirectory for a worker's spill files beneath
// `base` (or the system temp directory when base is empty).
std::string MakeSpillDir(const std::string& base, int worker_id);

// Recursively removes a spill directory; best-effort.
void RemoveSpillDir(const std::string& dir);

}  // namespace gminer

#endif  // GMINER_STORAGE_SPILL_FILE_H_
