// Per-worker vertex table (§5.1): the worker's slice of the input graph,
// loaded once at job start by the graph loader and queried by the task
// executor (local candidates) and the request listener (serving pulls from
// other workers).
#ifndef GMINER_STORAGE_VERTEX_TABLE_H_
#define GMINER_STORAGE_VERTEX_TABLE_H_

#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "storage/vertex_record.h"

namespace gminer {

class VertexTable {
 public:
  VertexTable() = default;

  // Loads every vertex of g owned by `me` according to the partition map,
  // replacing any previous contents.
  void LoadPartition(const Graph& g, const std::vector<WorkerId>& owner, WorkerId me);

  // Failover (kAdoptTasks): additionally loads the partition of `victim`
  // without discarding what is already resident, so an adopter can accumulate
  // the partitions of several dead peers. Existing entries are kept as-is.
  void AdoptPartition(const Graph& g, const std::vector<WorkerId>& owner, WorkerId victim);

  // Returns nullptr when v is not local.
  const VertexRecord* Find(VertexId v) const {
    auto it = records_.find(v);
    return it == records_.end() ? nullptr : &it->second;
  }

  bool Contains(VertexId v) const { return records_.contains(v); }

  size_t size() const { return records_.size(); }
  int64_t byte_size() const { return byte_size_; }

  const std::unordered_map<VertexId, VertexRecord>& records() const { return records_; }

 private:
  std::unordered_map<VertexId, VertexRecord> records_;
  int64_t byte_size_ = 0;
};

}  // namespace gminer

#endif  // GMINER_STORAGE_VERTEX_TABLE_H_
