// The unit of graph data a worker stores and ships: id(v), Γ(v), and the
// optional label / attribute list a(v). Pull responses, the RCV cache and the
// per-worker vertex table all hold VertexRecords.
#ifndef GMINER_STORAGE_VERTEX_RECORD_H_
#define GMINER_STORAGE_VERTEX_RECORD_H_

#include <vector>

#include "common/serialize.h"
#include "graph/types.h"

namespace gminer {

struct VertexRecord {
  VertexId id = kInvalidVertex;
  std::vector<VertexId> adj;
  Label label = kNoLabel;
  std::vector<AttrValue> attrs;

  void Serialize(OutArchive& out) const {
    out.Write(id);
    out.Write(label);
    out.WriteVector(adj);
    out.WriteVector(attrs);
  }

  static VertexRecord Deserialize(InArchive& in) {
    VertexRecord r;
    r.id = in.Read<VertexId>();
    r.label = in.Read<Label>();
    r.adj = in.ReadVector<VertexId>();
    r.attrs = in.ReadVector<AttrValue>();
    return r;
  }

  // Approximate resident footprint; used by the memory tracker and the RCV
  // cache capacity accounting.
  int64_t ByteSize() const {
    return static_cast<int64_t>(sizeof(VertexRecord)) +
           static_cast<int64_t>(adj.capacity() * sizeof(VertexId)) +
           static_cast<int64_t>(attrs.capacity() * sizeof(AttrValue));
  }
};

}  // namespace gminer

#endif  // GMINER_STORAGE_VERTEX_RECORD_H_
