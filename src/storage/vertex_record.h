// The unit of graph data a worker stores and ships: id(v), Γ(v), and the
// optional label / attribute list a(v). Pull responses, the RCV cache and the
// per-worker vertex table all hold VertexRecords.
#ifndef GMINER_STORAGE_VERTEX_RECORD_H_
#define GMINER_STORAGE_VERTEX_RECORD_H_

#include <vector>

#include "common/logging.h"
#include "common/serialize.h"
#include "graph/types.h"

namespace gminer {

struct VertexRecord {
  VertexId id = kInvalidVertex;
  std::vector<VertexId> adj;
  Label label = kNoLabel;
  std::vector<AttrValue> attrs;

  void Serialize(OutArchive& out) const {
    out.Write(id);
    out.Write(label);
    out.WriteVector(adj);
    out.WriteVector(attrs);
  }

  static VertexRecord Deserialize(InArchive& in) {
    VertexRecord r;
    r.id = in.Read<VertexId>();
    r.label = in.Read<Label>();
    r.adj = in.ReadVector<VertexId>();
    r.attrs = in.ReadVector<AttrValue>();
    return r;
  }

  // Flat wire block used by batched pull responses (DESIGN.md "Batched pull
  // wire protocol"):
  //
  //   [u64 len][VertexId id][Label][u64 |adj|][adj…][u64 |attrs|][attrs…]
  //
  // `len` counts the bytes after itself, so a receiver can skip a block
  // without parsing it. The responder writes through ReserveU64/WriteSpan
  // straight into the send buffer; the receiver reads each span with one
  // memcpy into the record's own vectors (no intermediate archive copies).
  void WriteFlat(OutArchive& out) const {
    const size_t len_at = out.ReserveU64();
    out.Write(id);
    out.Write(label);
    out.Write<uint64_t>(adj.size());
    out.WriteSpan(adj.data(), adj.size());
    out.Write<uint64_t>(attrs.size());
    out.WriteSpan(attrs.data(), attrs.size());
    out.PatchU64(len_at, out.size() - len_at - sizeof(uint64_t));
  }

  static VertexRecord ReadFlat(InArchive& in) {
    const uint64_t len = in.Read<uint64_t>();
    const size_t end = in.position() + len;
    VertexRecord r;
    r.id = in.Read<VertexId>();
    r.label = in.Read<Label>();
    in.ReadSpanInto(r.adj, in.Read<uint64_t>());
    in.ReadSpanInto(r.attrs, in.Read<uint64_t>());
    GM_CHECK(in.position() == end) << "flat vertex block length mismatch";
    return r;
  }

  // Approximate resident footprint; used by the memory tracker and the RCV
  // cache capacity accounting.
  int64_t ByteSize() const {
    return static_cast<int64_t>(sizeof(VertexRecord)) +
           static_cast<int64_t>(adj.capacity() * sizeof(VertexId)) +
           static_cast<int64_t>(attrs.capacity() * sizeof(AttrValue));
  }
};

}  // namespace gminer

#endif  // GMINER_STORAGE_VERTEX_RECORD_H_
