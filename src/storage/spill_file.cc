#include "storage/spill_file.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.h"

namespace gminer {

namespace {

// Rolling FNV-1a over the block's sizes and payload bytes.
class Fnv1a {
 public:
  void Mix(const void* data, size_t size) {
    const auto* bytes = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ = (hash_ ^ bytes[i]) * 0x100000001b3ULL;
    }
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace

int64_t WriteSpillBlock(const std::string& path,
                        const std::vector<std::vector<uint8_t>>& blobs) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GM_CHECK(out.good()) << "cannot open spill file " << path;
  const uint64_t count = blobs.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  int64_t bytes = static_cast<int64_t>(sizeof(count));
  Fnv1a checksum;
  checksum.Mix(&count, sizeof(count));
  for (const auto& blob : blobs) {
    const uint64_t size = blob.size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(blob.data()), static_cast<std::streamsize>(size));
    checksum.Mix(&size, sizeof(size));
    checksum.Mix(blob.data(), size);
    bytes += static_cast<int64_t>(sizeof(size) + size);
  }
  const uint64_t digest = checksum.value();
  out.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
  bytes += static_cast<int64_t>(sizeof(digest));
  GM_CHECK(out.good()) << "spill write failed for " << path;
  return bytes;
}

bool TryReadSpillBlock(const std::string& path, std::vector<std::vector<uint8_t>>* blobs,
                       int64_t* bytes_read, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "spill block " + path + ": " + why;
    }
    return false;
  };
  std::error_code size_ec;
  const uint64_t file_size = std::filesystem::file_size(path, size_ec);
  if (size_ec) {
    return fail("cannot stat");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return fail("cannot open");
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in.good()) {
    return fail("truncated header");
  }
  // A corrupted header can decode as an absurd blob count/size; bound both by
  // the file size so corruption fails cleanly instead of attempting a
  // multi-exabyte allocation.
  if (count > file_size / sizeof(uint64_t)) {
    return fail("corrupt header (blob count exceeds file size)");
  }
  int64_t bytes = static_cast<int64_t>(sizeof(count));
  Fnv1a checksum;
  checksum.Mix(&count, sizeof(count));
  std::vector<std::vector<uint8_t>> out;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t size = 0;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    if (!in.good()) {
      return fail("truncated at blob " + std::to_string(i) + " of " + std::to_string(count));
    }
    if (size > file_size) {
      return fail("corrupt blob size at blob " + std::to_string(i));
    }
    std::vector<uint8_t> blob(size);
    in.read(reinterpret_cast<char*>(blob.data()), static_cast<std::streamsize>(size));
    if (!in.good()) {
      return fail("truncated payload at blob " + std::to_string(i) + " of " +
                  std::to_string(count));
    }
    checksum.Mix(&size, sizeof(size));
    checksum.Mix(blob.data(), size);
    bytes += static_cast<int64_t>(sizeof(size) + size);
    out.push_back(std::move(blob));
  }
  uint64_t digest = 0;
  in.read(reinterpret_cast<char*>(&digest), sizeof(digest));
  if (!in.good()) {
    return fail("missing checksum trailer");
  }
  if (digest != checksum.value()) {
    return fail("checksum mismatch (corrupted block)");
  }
  bytes += static_cast<int64_t>(sizeof(digest));
  in.close();
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (bytes_read != nullptr) {
    *bytes_read = bytes;
  }
  *blobs = std::move(out);
  return true;
}

std::vector<std::vector<uint8_t>> ReadSpillBlock(const std::string& path, int64_t* bytes_read) {
  std::vector<std::vector<uint8_t>> blobs;
  std::string error;
  GM_CHECK(TryReadSpillBlock(path, &blobs, bytes_read, &error))
      << "spill read failed: " << error;
  return blobs;
}

std::string CheckpointTaskFile(const std::string& dir, int worker) {
  return dir + "/worker_" + std::to_string(worker) + ".tasks";
}

std::string MakeSpillDir(const std::string& base, int worker_id) {
  static std::atomic<uint64_t> counter{0};
  namespace fs = std::filesystem;
  const fs::path root = base.empty() ? fs::temp_directory_path() : fs::path(base);
  const fs::path dir = root / ("gminer_spill_w" + std::to_string(worker_id) + "_" +
                               std::to_string(counter.fetch_add(1)) + "_" +
                               std::to_string(::getpid()));
  std::error_code ec;
  fs::create_directories(dir, ec);
  GM_CHECK(!ec) << "cannot create spill dir " << dir.string();
  return dir.string();
}

void RemoveSpillDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace gminer
