#include "storage/spill_file.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.h"

namespace gminer {

int64_t WriteSpillBlock(const std::string& path,
                        const std::vector<std::vector<uint8_t>>& blobs) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GM_CHECK(out.good()) << "cannot open spill file " << path;
  const uint64_t count = blobs.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  int64_t bytes = static_cast<int64_t>(sizeof(count));
  for (const auto& blob : blobs) {
    const uint64_t size = blob.size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(blob.data()), static_cast<std::streamsize>(size));
    bytes += static_cast<int64_t>(sizeof(size) + size);
  }
  GM_CHECK(out.good()) << "spill write failed for " << path;
  return bytes;
}

std::vector<std::vector<uint8_t>> ReadSpillBlock(const std::string& path, int64_t* bytes_read) {
  std::ifstream in(path, std::ios::binary);
  GM_CHECK(in.good()) << "cannot open spill file " << path;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  int64_t bytes = static_cast<int64_t>(sizeof(count));
  std::vector<std::vector<uint8_t>> blobs;
  blobs.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t size = 0;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    std::vector<uint8_t> blob(size);
    in.read(reinterpret_cast<char*>(blob.data()), static_cast<std::streamsize>(size));
    GM_CHECK(in.good()) << "spill read failed for " << path;
    bytes += static_cast<int64_t>(sizeof(size) + size);
    blobs.push_back(std::move(blob));
  }
  in.close();
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (bytes_read != nullptr) {
    *bytes_read = bytes;
  }
  return blobs;
}

std::string MakeSpillDir(const std::string& base, int worker_id) {
  static std::atomic<uint64_t> counter{0};
  namespace fs = std::filesystem;
  const fs::path root = base.empty() ? fs::temp_directory_path() : fs::path(base);
  const fs::path dir = root / ("gminer_spill_w" + std::to_string(worker_id) + "_" +
                               std::to_string(counter.fetch_add(1)) + "_" +
                               std::to_string(::getpid()));
  std::error_code ec;
  fs::create_directories(dir, ec);
  GM_CHECK(!ec) << "cannot create spill dir " << dir.string();
  return dir.string();
}

void RemoveSpillDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace gminer
