#include "storage/vertex_table.h"

#include "common/logging.h"

namespace gminer {

void VertexTable::LoadPartition(const Graph& g, const std::vector<WorkerId>& owner,
                                WorkerId me) {
  records_.clear();
  byte_size_ = 0;
  AdoptPartition(g, owner, me);
}

void VertexTable::AdoptPartition(const Graph& g, const std::vector<WorkerId>& owner,
                                 WorkerId victim) {
  GM_CHECK(owner.size() == g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (owner[v] != victim || records_.contains(v)) {
      continue;
    }
    VertexRecord r;
    r.id = v;
    const auto adj = g.neighbors(v);
    r.adj.assign(adj.begin(), adj.end());
    r.label = g.label(v);
    const auto attrs = g.attributes(v);
    r.attrs.assign(attrs.begin(), attrs.end());
    byte_size_ += r.ByteSize();
    records_.emplace(v, std::move(r));
  }
}

}  // namespace gminer
