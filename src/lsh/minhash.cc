#include "lsh/minhash.h"

#include <limits>

#include "common/logging.h"
#include "common/rng.h"

namespace gminer {

namespace {

// Final avalanche of MurmurHash3; good dispersion for multiply-shift inputs.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

MinHasher::MinHasher(int num_hashes, int num_bands, uint64_t seed)
    : num_hashes_(num_hashes), num_bands_(num_bands) {
  GM_CHECK(num_hashes >= 1 && num_bands >= 1 && num_hashes % num_bands == 0)
      << "num_hashes must be a positive multiple of num_bands";
  Rng rng(seed);
  mults_.resize(static_cast<size_t>(num_hashes));
  adds_.resize(static_cast<size_t>(num_hashes));
  for (int i = 0; i < num_hashes; ++i) {
    mults_[i] = rng.engine()() | 1;  // odd multiplier
    adds_[i] = rng.engine()();
  }
}

uint64_t MinHasher::HashOne(VertexId id, size_t which) const {
  return Mix64(static_cast<uint64_t>(id) * mults_[which] + adds_[which]);
}

std::vector<uint64_t> MinHasher::Signature(std::span<const VertexId> ids) const {
  std::vector<uint64_t> sig(static_cast<size_t>(num_hashes_),
                            std::numeric_limits<uint64_t>::max());
  for (const VertexId id : ids) {
    for (size_t h = 0; h < sig.size(); ++h) {
      const uint64_t value = HashOne(id, h);
      if (value < sig[h]) {
        sig[h] = value;
      }
    }
  }
  return sig;
}

uint64_t MinHasher::Key(std::span<const VertexId> ids) const {
  if (ids.empty()) {
    return 0;
  }
  const std::vector<uint64_t> sig = Signature(ids);
  const int rows = num_hashes_ / num_bands_;
  const int bits_per_band = 64 / num_bands_;
  uint64_t key = 0;
  for (int band = 0; band < num_bands_; ++band) {
    uint64_t band_hash = 0x9e3779b97f4a7c15ULL;
    for (int r = 0; r < rows; ++r) {
      band_hash = Mix64(band_hash ^ sig[static_cast<size_t>(band * rows + r)]);
    }
    key = (key << bits_per_band) | (band_hash >> (64 - bits_per_band));
  }
  return key;
}

double MinHasher::EstimateJaccard(std::span<const uint64_t> sig_a,
                                  std::span<const uint64_t> sig_b) {
  GM_CHECK(sig_a.size() == sig_b.size() && !sig_a.empty());
  size_t equal = 0;
  for (size_t i = 0; i < sig_a.size(); ++i) {
    if (sig_a[i] == sig_b[i]) {
      ++equal;
    }
  }
  return static_cast<double>(equal) / static_cast<double>(sig_a.size());
}

}  // namespace gminer
