// Locality-sensitive hashing over remote-candidate ID sets (§7, "Task
// Priority Queue"). The paper reduces each high-dimension to_pull set to a
// low-dimension key with LSH so that tasks sharing remote candidates sort next
// to each other in the priority queue, raising the RCV cache hit rate.
//
// We use classic MinHash: `num_hashes` independent permutations approximated
// by multiply-shift hashing; the signature is folded band-wise into a single
// 64-bit ordering key. Tasks with similar to_pull sets collide on the leading
// bands and therefore dequeue consecutively.
#ifndef GMINER_LSH_MINHASH_H_
#define GMINER_LSH_MINHASH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace gminer {

class MinHasher {
 public:
  MinHasher(int num_hashes, int num_bands, uint64_t seed);

  // Full MinHash signature of the ID set.
  std::vector<uint64_t> Signature(std::span<const VertexId> ids) const;

  // 64-bit ordering key: bands of the signature are hashed and concatenated
  // most-significant-band first, so keys equal on a prefix of bands indicate
  // high Jaccard similarity. Empty sets map to key 0.
  uint64_t Key(std::span<const VertexId> ids) const;

  // Estimated Jaccard similarity between two sets from their signatures.
  static double EstimateJaccard(std::span<const uint64_t> sig_a,
                                std::span<const uint64_t> sig_b);

  int num_hashes() const { return num_hashes_; }
  int num_bands() const { return num_bands_; }

 private:
  uint64_t HashOne(VertexId id, size_t which) const;

  int num_hashes_;
  int num_bands_;
  std::vector<uint64_t> mults_;
  std::vector<uint64_t> adds_;
};

}  // namespace gminer

#endif  // GMINER_LSH_MINHASH_H_
