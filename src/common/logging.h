// Minimal thread-safe leveled logging for the G-Miner runtime.
//
// The runtime is heavily multi-threaded (per-worker communication threads,
// computing thread pools, the master progress loop), so all sinks serialize
// through a single mutex. Logging defaults to kWarn so that tests and
// benchmarks stay quiet; examples raise it to kInfo.
#ifndef GMINER_COMMON_LOGGING_H_
#define GMINER_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace gminer {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// Sets the global log threshold. Messages below the threshold are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Writes one formatted line to stderr under the global log mutex.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

// Stream-style helper used by the GM_LOG macro. Accumulates into a string and
// emits on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace gminer

#define GM_LOG(level)                                        \
  if (static_cast<int>(level) < static_cast<int>(::gminer::GetLogLevel())) { \
  } else                                                     \
    ::gminer::LogStream(level, __FILE__, __LINE__)

#define GM_LOG_DEBUG GM_LOG(::gminer::LogLevel::kDebug)
#define GM_LOG_INFO GM_LOG(::gminer::LogLevel::kInfo)
#define GM_LOG_WARN GM_LOG(::gminer::LogLevel::kWarn)
#define GM_LOG_ERROR GM_LOG(::gminer::LogLevel::kError)

// Invariant check that stays on in release builds. The runtime relies on these
// for pipeline state-machine transitions that must never be silently wrong.
#define GM_CHECK(cond)                                                            \
  if (cond) {                                                                     \
  } else                                                                          \
    ::gminer::CheckFailure(#cond, __FILE__, __LINE__)

namespace gminer {
// Aborts the process after logging the failed condition.
[[noreturn]] void CheckFailureImpl(const char* cond, const char* file, int line,
                                   const std::string& message);

class CheckFailure {
 public:
  CheckFailure(const char* cond, const char* file, int line)
      : cond_(cond), file_(file), line_(line) {}
  ~CheckFailure() { CheckFailureImpl(cond_, file_, line_, stream_.str()); }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* cond_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace gminer

#endif  // GMINER_COMMON_LOGGING_H_
