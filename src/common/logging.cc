#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/thread_annotations.h"

namespace gminer {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

Mutex& LogMutex() {
  static Mutex mutex;
  return mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  MutexLock lock(LogMutex());
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, message.c_str());
}

void CheckFailureImpl(const char* cond, const char* file, int line, const std::string& message) {
  LogMessage(LogLevel::kError, file, line,
             std::string("CHECK failed: ") + cond + (message.empty() ? "" : " — " + message));
  std::abort();
}

}  // namespace gminer
