// Wall-clock timing helpers used by the runtime, benchmarks and the
// utilization sampler.
#ifndef GMINER_COMMON_TIMER_H_
#define GMINER_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace gminer {

// Monotonic stopwatch. Started on construction; Restart() resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count();
  }

  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Returns a process-wide monotonic timestamp in nanoseconds. Utilization
// samples and pipeline events are stamped with this clock.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// CPU time consumed by the calling thread, in nanoseconds. Compute busy-time
// accounting uses this instead of wall time so that CPU-utilization numbers
// stay honest when worker threads oversubscribe the physical cores.
int64_t ThreadCpuNanos();

// CPU-time stopwatch for the calling thread.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(ThreadCpuNanos()) {}
  int64_t ElapsedNanos() const { return ThreadCpuNanos() - start_; }

 private:
  int64_t start_;
};

// Core count available to utilization math: the configured logical core
// count, capped by what the hardware actually provides.
int EffectiveCores(int configured);

}  // namespace gminer

#endif  // GMINER_COMMON_TIMER_H_
