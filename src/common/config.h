// Configuration for a G-Miner deployment and job run. Mirrors the knobs the
// paper exposes: worker count (cluster size), computing threads per worker
// (cores), RCV cache capacity, task-store block capacity, LSH priority queue
// on/off, task stealing on/off with its thresholds, and resource budgets used
// to reproduce the paper's OOM / timeout verdicts for the baseline engines.
#ifndef GMINER_COMMON_CONFIG_H_
#define GMINER_COMMON_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace gminer {

enum class PartitionStrategy {
  kHash,  // vertex-id hashing (the default of most existing systems)
  kBdg,   // Block-based Deterministic Greedy partitioning (§6.1)
};

struct JobConfig {
  // Cluster shape. One Worker models one slave node of the paper's cluster.
  int num_workers = 4;
  int threads_per_worker = 2;  // computing threads in the task executor

  PartitionStrategy partition = PartitionStrategy::kBdg;

  // BDG partitioning (§6.1).
  int bdg_num_sources = 64;   // BFS sources colored per round
  int bdg_bfs_depth = 3;      // steps taken by each BFS before re-sampling
  int bdg_max_rounds = 16;    // rounds before the Hash-Min CC fallback kicks in

  // Task pipeline (§4.3, §7).
  size_t rcv_cache_capacity = 1 << 16;  // max resident remote vertices per worker
  size_t task_block_capacity = 1024;    // tasks per priority-queue block
  size_t task_store_memory_blocks = 1;  // head blocks kept in memory (paper: 1)
  size_t task_buffer_batch = 64;        // task-buffer flush batch size
  size_t pipeline_depth = 128;          // max tasks admitted into CMQ+CPQ at once
  bool enable_lsh = true;               // LSH-keyed priority queue (Fig. 12 ablation)
  int lsh_num_hashes = 16;
  int lsh_bands = 4;

  // Dynamic load balancing (§6.2, Fig. 13 ablation).
  bool enable_stealing = true;
  int steal_batch = 32;                  // Tnum: tasks migrated per MIGRATE
  size_t steal_cost_threshold = 4096;    // Tc: max |subG| + |candVtxs| to migrate
  double steal_local_rate_threshold = 0.8;  // Tr: max locality for migration
  // Improved cost model (the paper's §9 future work): instead of taking any
  // task under the (Tc, Tr) thresholds, rank the eligible tasks and migrate
  // the cheapest-to-move, least-local ones first.
  bool steal_ranked_selection = true;
  int progress_interval_ms = 5;          // progress reporter period

  // Aggregator sync period (global pruning freshness, e.g. current max clique).
  int aggregator_interval_ms = 2;

  // Simulated network. Bytes are always accounted; latency is optional.
  int64_t net_latency_us = 0;
  double net_bandwidth_gbps = 1.0;  // used to express network utilization in %

  // Batched pull runtime (net/coalescer.h). Pull requests are buffered per
  // destination and flushed as one wire message when the buffered vertex ids
  // reach pull_batch_bytes or the oldest buffered id turns pull_flush_us old.
  // pull_queue_bytes bounds each destination's buffered + in-flight bytes;
  // enqueues block (backpressure) at the bound. The GMINER_PULL_BATCH env var
  // ("off"/"on") pins enable_pull_batching at runtime, overriding the config.
  bool enable_pull_batching = true;
  size_t pull_batch_bytes = 4096;   // ≈1024 vertex ids per wire message
  int64_t pull_flush_us = 100;      // deadline flush for half-empty batches
  size_t pull_queue_bytes = 1 << 16;

  // Fault tolerance (§7, DESIGN.md "Fault model & recovery protocol").
  // Pull reliability is always on: every pull request carries a request id and
  // is re-sent (with exponential backoff) if no response arrives in time, so
  // dropped or duplicated messages never wedge the CMQ. The knobs below size
  // that retry loop; `enable_fault_tolerance` additionally arms the master's
  // heartbeat-based failure detector and the kAdoptTasks online recovery path
  // (requires a checkpoint_dir and, with the current seed-level checkpoint
  // granularity, stealing disabled — Cluster::Run validates this).
  bool enable_fault_tolerance = false;
  int heartbeat_timeout_ms = 200;  // silence window before a worker is declared dead
  int pull_timeout_ms = 200;       // first retry after this; backoff doubles, capped x8
  int max_pull_retries = 12;       // then the job fails with kNetworkError
  int adoption_retry_ms = 500;     // master re-issues kAdoptTasks if unacknowledged

  // Disk spill location for the task store. Empty = std::filesystem::temp_directory_path().
  std::string spill_dir;

  // Resource budgets. Zero means unlimited. Engines that exceed the budget
  // abort the job with JobStatus::kOutOfMemory / kTimeout, reproducing the
  // "x" / "-" entries of Tables 1 and 3.
  size_t memory_budget_bytes = 0;
  double time_budget_seconds = 0.0;

  // Utilization sampling for the Fig. 5 / Fig. 6 timelines.
  bool sample_utilization = false;
  int sample_interval_ms = 20;

  // Live metrics plane (metrics/registry.h, DESIGN.md "Observability").
  // Workers piggyback absolute MetricsSnapshot frames on the heartbeat path
  // every metrics_interval_ms; frames are trimmed to metrics_max_frame_bytes
  // (drop-oldest entries, counted on metrics.dropped) so heartbeats never
  // bloat; the master keeps metrics_ring_points snapshots per time series.
  // The GMINER_METRICS env var ("off"/"on") overrides enable_metrics at
  // runtime — used by the registry-overhead bench row.
  bool enable_metrics = true;
  int metrics_interval_ms = 50;
  size_t metrics_max_frame_bytes = 16384;
  size_t metrics_ring_points = 128;

  uint64_t seed = 42;  // job-level RNG seed (seed ordering, LSH hash seeds)
};

}  // namespace gminer

#endif  // GMINER_COMMON_CONFIG_H_
