#include "common/thread_pool.h"

#include "common/logging.h"

namespace gminer {

ThreadPool::ThreadPool(int num_threads) {
  GM_CHECK(num_threads > 0);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { RunLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> fn) {
  {
    MutexLock lock(wait_mutex_);
    if (shutdown_) {
      // Racing Shutdown(): the closure is dropped without ever being
      // accounted, same outcome as losing the race below.
      return;
    }
    ++pending_;
  }
  if (!queue_.Push(std::move(fn))) {
    // Shutdown() closed the queue between the check above and the push: the
    // closure will never run, so roll the pending count back — otherwise a
    // concurrent Wait() blocks forever on work that was silently dropped.
    MutexLock lock(wait_mutex_);
    if (--pending_ == 0) {
      wait_cv_.NotifyAll();
    }
  }
}

void ThreadPool::Wait() {
  MutexLock lock(wait_mutex_);
  while (pending_ != 0) {
    wait_cv_.Wait(wait_mutex_);
  }
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(wait_mutex_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  queue_.Close();
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void ThreadPool::RunLoop() {
  while (true) {
    auto fn = queue_.Pop();
    if (!fn.has_value()) {
      return;
    }
    (*fn)();
    {
      MutexLock lock(wait_mutex_);
      --pending_;
      if (pending_ == 0) {
        wait_cv_.NotifyAll();
      }
    }
  }
}

void ParallelFor(ThreadPool& pool, int64_t n, const std::function<void(int64_t)>& fn) {
  const int64_t chunks = pool.num_threads() * 4;
  const int64_t chunk = (n + chunks - 1) / (chunks > 0 ? chunks : 1);
  if (chunk <= 0) {
    return;
  }
  for (int64_t begin = 0; begin < n; begin += chunk) {
    const int64_t end = begin + chunk < n ? begin + chunk : n;
    pool.Submit([begin, end, &fn] {
      for (int64_t i = begin; i < end; ++i) {
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace gminer
