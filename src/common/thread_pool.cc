#include "common/thread_pool.h"

#include "common/logging.h"

namespace gminer {

ThreadPool::ThreadPool(int num_threads) {
  GM_CHECK(num_threads > 0);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { RunLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    GM_CHECK(!shutdown_) << "Submit after Shutdown";
    ++pending_;
  }
  queue_.Push(std::move(fn));
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  wait_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  queue_.Close();
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void ThreadPool::RunLoop() {
  while (true) {
    auto fn = queue_.Pop();
    if (!fn.has_value()) {
      return;
    }
    (*fn)();
    {
      std::lock_guard<std::mutex> lock(wait_mutex_);
      --pending_;
      if (pending_ == 0) {
        wait_cv_.notify_all();
      }
    }
  }
}

void ParallelFor(ThreadPool& pool, int64_t n, const std::function<void(int64_t)>& fn) {
  const int64_t chunks = pool.num_threads() * 4;
  const int64_t chunk = (n + chunks - 1) / (chunks > 0 ? chunks : 1);
  if (chunk <= 0) {
    return;
  }
  for (int64_t begin = 0; begin < n; begin += chunk) {
    const int64_t end = begin + chunk < n ? begin + chunk : n;
    pool.Submit([begin, end, &fn] {
      for (int64_t i = begin; i < end; ++i) {
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace gminer
