// Deterministic random number generation. Every source of randomness in the
// repository (graph generators, label assignment, LSH hash seeds, workload
// skew) flows through an explicitly seeded Rng so experiments are repeatable.
#ifndef GMINER_COMMON_RNG_H_
#define GMINER_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace gminer {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound) {
    return std::uniform_int_distribution<uint64_t>(0, bound - 1)(engine_);
  }

  uint32_t NextUint32(uint32_t bound) {
    return std::uniform_int_distribution<uint32_t>(0, bound - 1)(engine_);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

  // Forks an independent stream; child streams are decorrelated by mixing the
  // parent state with a SplitMix64 step.
  Rng Fork() {
    uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gminer

#endif  // GMINER_COMMON_RNG_H_
