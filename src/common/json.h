// JSON string escaping shared by every JSON producer in the tree: the job
// report (core/report.cc), the metrics /status endpoint and the Prometheus
// label renderer (metrics/cluster_series.cc). Lives in common so the metrics
// layer can use it without violating the include layering (metrics -> common
// only).
#ifndef GMINER_COMMON_JSON_H_
#define GMINER_COMMON_JSON_H_

#include <string>
#include <string_view>

namespace gminer {

// Escapes a string for embedding in a JSON double-quoted literal: quotes,
// backslashes, and control characters (\b \f \n \r \t, \u00XX otherwise).
std::string JsonEscape(std::string_view s);

}  // namespace gminer

#endif  // GMINER_COMMON_JSON_H_
