// Task-pipeline event tracing (DESIGN.md "Observability").
//
// Each runtime thread registers a private ring buffer (TraceRing) with the
// job's Tracer and stamps typed events into it through the thread-local
// current-ring pointer installed by TraceThreadScope — no locks, no sharing
// on the hot path. Two event shapes exist:
//
//   - instants: a point in time (cache hit, retry, worker death, ...);
//   - spans: a duration with a begin timestamp captured by the caller
//     (queue wait, pull round-trip, compute, spill I/O, adoption, ...).
//
// Rings are fixed-capacity and drop the NEWEST events on overflow, counting
// the drops, so the surviving prefix is a coherent timeline rather than a
// random sample. At job end Tracer::Merge() snapshots every ring (safe even
// while late threads are still emitting — see TraceRing) into one sorted
// event list that feeds the per-stage latency histograms in the job report
// and the optional Chrome trace-event JSON export (WriteChromeTrace).
//
// Building with -DGMINER_TRACE=OFF defines GMINER_TRACE_DISABLED and turns
// every emit helper into a constant-folded no-op.
#ifndef GMINER_COMMON_TRACE_H_
#define GMINER_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/timer.h"

namespace gminer {

// One value per traced occurrence in the pipeline. Span types carry a
// duration (TraceEventIsSpan); the rest are instants.
enum class TraceEventType : uint8_t {
  // Task lifecycle. `id` is the task's process-unique trace id.
  kTaskCreated = 0,
  kTaskQueueWait,  // span: task-store insert → pop by the retriever
  kTaskPullWait,   // span: parked in the CMQ → last pull response arrived
  kTaskReadyWait,  // span: pushed to the CPQ → popped by a compute thread
  kTaskCompute,    // span: one Update() call; arg = round
  kTaskCompleted,
  kTaskStolenOut,  // instant: arg = batch size migrated away
  kTaskStolenIn,   // instant: arg = batch size received
  // Task-store disk spill. `id` is the spill block id, arg = task count.
  kSpillWrite,  // span
  kSpillRead,   // span
  // Network. `id` is the message type, arg = payload bytes.
  kNetSend,
  kNetRecv,
  kPullRoundTrip,  // span: batch sent → first response; id = request id,
                   // arg = vertex ids in the batch
  kPullRetry,      // instant: timed-out pulls re-enqueued; id = destination
                   // endpoint, arg = vertices retried
  // Pull batching (net/coalescer.h).
  kPullFlush,  // span: batch opened (first buffered id) → flushed to the
               // wire; id = destination endpoint, arg = vertex ids in batch
  kPullStall,  // span: Enqueue blocked on the bounded queue (backpressure);
               // id = destination endpoint, arg = vertex ids being enqueued
  // RCV cache. `id` is the vertex id.
  kCacheHit,
  kCacheMiss,
  kCacheEvict,  // instant: arg = entries evicted in one sweep
  // Fault injection (net/fault.h). Emitted by the sender-side interceptor.
  kFaultDrop,       // id = destination worker
  kFaultDuplicate,  // id = destination worker
  kFaultDelay,      // id = destination worker, arg = delay in microseconds
  kFaultKill,       // id = killed worker
  // Failure detection and recovery (master + adopter).
  kHeartbeatMiss,  // id = silent worker, arg = silence in ms
  kWorkerDead,     // id = dead worker
  kAdoptIssued,    // id = dead worker, arg = adopter
  kAdoption,       // span: adopter-side recovery; id = dead worker, arg = tasks
  kAdoptDone,      // id = dead worker
  kSeedingDone,    // instant: a worker finished seeding its partition
  kEventTypeCount,
};

// Stable lowercase names used in the Chrome trace and the report histograms.
const char* TraceEventTypeName(TraceEventType type);

// True for the duration-carrying types listed above.
bool TraceEventIsSpan(TraceEventType type);

// 32-byte POD stamped into the rings. For spans t_ns is the BEGIN time and
// dur_ns the length; for instants dur_ns is 0.
struct TraceEvent {
  int64_t t_ns = 0;
  int64_t dur_ns = 0;
  uint64_t id = 0;
  int32_t arg = 0;
  TraceEventType type = TraceEventType::kTaskCreated;
};

// Fixed-capacity single-writer event buffer. Exactly one thread calls Emit;
// Merge() on another thread reads up to the released size, so the atomic
// store-release / load-acquire pair is the only synchronization needed even
// when a late thread (e.g. the network delivery loop, which outlives
// Network::Close) is still emitting during the merge.
class TraceRing {
 public:
  TraceRing(size_t capacity, int pid, std::string name)
      : capacity_(capacity), pid_(pid), name_(std::move(name)), events_(capacity) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Owner thread only. Drops (and counts) the event once the ring is full:
  // keeping the oldest events preserves a coherent prefix of the timeline.
  void Emit(const TraceEvent& e) {
    const size_t n = size_.load(std::memory_order_relaxed);
    if (n >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_[n] = e;
    size_.store(n + 1, std::memory_order_release);
  }

  // Safe from any thread; pairs with the release store in Emit.
  size_t size() const { return size_.load(std::memory_order_acquire); }
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Valid for i < a size() read by the same thread.
  const TraceEvent& event(size_t i) const { return events_[i]; }

  int pid() const { return pid_; }
  const std::string& name() const { return name_; }

 private:
  const size_t capacity_;
  const int pid_;
  const std::string name_;
  std::vector<TraceEvent> events_;
  std::atomic<size_t> size_{0};
  std::atomic<int64_t> dropped_{0};
};

// Owns the per-thread rings for one job run. Created by Cluster::Run when
// RunOptions::enable_tracing is set and handed (as a raw pointer) to the
// subsystems that register threads.
class Tracer {
 public:
  // One Chrome-trace track: the events [begin, end) of the merged list that
  // came from the ring `name` on process `pid`.
  struct TrackSlice {
    int pid = 0;
    std::string name;
    size_t begin = 0;
    size_t end = 0;
  };

  struct MergedTrace {
    std::vector<TraceEvent> events;  // grouped by track, in emit order
    std::vector<TrackSlice> tracks;
    std::map<int, std::string> process_names;
    int64_t start_ns = 0;   // job start; Chrome timestamps are relative to it
    int64_t dropped = 0;    // total events lost to ring overflow
  };

  explicit Tracer(size_t ring_capacity)
      : ring_capacity_(ring_capacity), start_ns_(MonotonicNanos()) {}

  // Registers a ring for the calling thread under Chrome process `pid`.
  // The returned ring stays valid for the Tracer's lifetime. Normally called
  // through TraceThreadScope, not directly.
  TraceRing* RegisterThread(int pid, std::string name) EXCLUDES(mutex_);

  // Names a Chrome-trace process row ("worker 0", "master", "network").
  void SetProcessName(int pid, std::string name) EXCLUDES(mutex_);

  // Snapshots every ring. Tolerates writers that are still emitting: each
  // ring contributes the prefix published by its last release store.
  MergedTrace Merge() const EXCLUDES(mutex_);

  int64_t start_ns() const { return start_ns_; }

 private:
  const size_t ring_capacity_;
  const int64_t start_ns_;
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<TraceRing>> rings_ GUARDED_BY(mutex_);
  std::map<int, std::string> process_names_ GUARDED_BY(mutex_);
};

namespace trace_internal {
// The calling thread's current ring; null when tracing is off or the thread
// never entered a TraceThreadScope. Emit helpers below no-op on null.
// constinit so cross-TU reads bind the TLS slot directly instead of going
// through the compiler's thread_local init wrapper — the wrapper is both
// overhead on every instrumentation site and, under combined ASan+UBSan,
// miscompiles to a null TLS address on GCC 12 (caught by the sanitizer leg).
extern thread_local constinit TraceRing* g_ring;
}  // namespace trace_internal

// RAII: registers a ring for this thread (null tracer = leave the current
// ring alone, so scopes nest harmlessly in untraced runs) and restores the
// previous ring on destruction.
class TraceThreadScope {
 public:
  TraceThreadScope(Tracer* tracer, int pid, const std::string& name);
  ~TraceThreadScope();

  TraceThreadScope(const TraceThreadScope&) = delete;
  TraceThreadScope& operator=(const TraceThreadScope&) = delete;

 private:
  TraceRing* prev_ = nullptr;
  bool installed_ = false;
};

// True when this thread can emit events right now. Instrumentation sites use
// it to skip timestamp capture entirely in untraced runs; under
// GMINER_TRACE_DISABLED it is a compile-time false and every emit folds away.
inline bool TraceEnabled() {
#ifdef GMINER_TRACE_DISABLED
  return false;
#else
  return trace_internal::g_ring != nullptr;
#endif
}

// Timestamp for a span begin; 0 when tracing is off so untraced runs never
// touch the clock.
inline int64_t TraceNowNs() { return TraceEnabled() ? MonotonicNanos() : 0; }

// Point event at the current time.
inline void TraceInstant(TraceEventType type, uint64_t id = 0, int32_t arg = 0) {
#ifndef GMINER_TRACE_DISABLED
  if (TraceRing* ring = trace_internal::g_ring) {
    ring->Emit({MonotonicNanos(), 0, id, arg, type});
  }
#else
  (void)type, (void)id, (void)arg;
#endif
}

// Duration event: begin_ns was captured earlier via TraceNowNs(). A zero
// begin (captured while tracing was off, or an unstamped task) is skipped.
inline void TraceSpan(TraceEventType type, uint64_t id, int64_t begin_ns, int32_t arg = 0) {
#ifndef GMINER_TRACE_DISABLED
  if (begin_ns == 0) return;
  if (TraceRing* ring = trace_internal::g_ring) {
    const int64_t now = MonotonicNanos();
    ring->Emit({begin_ns, now > begin_ns ? now - begin_ns : 0, id, arg, type});
  }
#else
  (void)type, (void)id, (void)begin_ns, (void)arg;
#endif
}

// Process-unique id for task lifecycle events (0 is reserved = untraced).
// A migrated, spilled-and-reloaded or recovered task gets a fresh id on its
// new home — lifecycle spans describe residency, not the task's whole life.
uint64_t NextTraceTaskId();

// Writes the merged trace as Chrome trace-event JSON (chrome://tracing and
// Perfetto both load it). Returns false if the file cannot be written.
bool WriteChromeTrace(const Tracer::MergedTrace& trace, const std::string& path);

}  // namespace gminer

#endif  // GMINER_COMMON_TRACE_H_
