// Byte-oriented serialization used for everything that crosses a worker
// boundary: pulled vertex records, migrated tasks, aggregator partials, and
// checkpoint state. Keeping serialization explicit lets the simulated network
// account the exact number of bytes a real deployment would move.
#ifndef GMINER_COMMON_SERIALIZE_H_
#define GMINER_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/logging.h"

namespace gminer {

// Append-only output byte buffer.
class OutArchive {
 public:
  OutArchive() = default;

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>, "Write requires a trivially copyable type");
    const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
    buffer_.insert(buffer_.end(), bytes, bytes + sizeof(T));
  }

  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "WriteVector requires trivially copyable elements");
    Write<uint64_t>(v.size());
    if (!v.empty()) {
      const auto* bytes = reinterpret_cast<const uint8_t*>(v.data());
      buffer_.insert(buffer_.end(), bytes, bytes + v.size() * sizeof(T));
    }
  }

  void WriteBytes(const std::vector<uint8_t>& bytes) {
    Write<uint64_t>(bytes.size());
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

// Sequential reader over a byte buffer produced by OutArchive.
class InArchive {
 public:
  explicit InArchive(std::vector<uint8_t> buffer) : buffer_(std::move(buffer)) {}
  InArchive(const uint8_t* data, size_t size) : buffer_(data, data + size) {}

  template <typename T>
  T Read() {
    static_assert(std::is_trivially_copyable_v<T>, "Read requires a trivially copyable type");
    GM_CHECK(pos_ + sizeof(T) <= buffer_.size()) << "archive underflow";
    T value;
    std::memcpy(&value, buffer_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string ReadString() {
    const uint64_t n = Read<uint64_t>();
    GM_CHECK(pos_ + n <= buffer_.size()) << "archive underflow";
    std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ReadVector requires trivially copyable elements");
    const uint64_t n = Read<uint64_t>();
    GM_CHECK(pos_ + n * sizeof(T) <= buffer_.size()) << "archive underflow";
    std::vector<T> v(n);
    if (n > 0) {
      std::memcpy(v.data(), buffer_.data() + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    }
    return v;
  }

  std::vector<uint8_t> ReadBytes() { return ReadVector<uint8_t>(); }

  bool AtEnd() const { return pos_ == buffer_.size(); }
  size_t remaining() const { return buffer_.size() - pos_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t pos_ = 0;
};

}  // namespace gminer

#endif  // GMINER_COMMON_SERIALIZE_H_
