// Byte-oriented serialization used for everything that crosses a worker
// boundary: pulled vertex records, migrated tasks, aggregator partials, and
// checkpoint state. Keeping serialization explicit lets the simulated network
// account the exact number of bytes a real deployment would move.
#ifndef GMINER_COMMON_SERIALIZE_H_
#define GMINER_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/logging.h"

namespace gminer {

// Append-only output byte buffer.
class OutArchive {
 public:
  OutArchive() = default;

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>, "Write requires a trivially copyable type");
    const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
    buffer_.insert(buffer_.end(), bytes, bytes + sizeof(T));
  }

  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "WriteVector requires trivially copyable elements");
    Write<uint64_t>(v.size());
    if (!v.empty()) {
      const auto* bytes = reinterpret_cast<const uint8_t*>(v.data());
      buffer_.insert(buffer_.end(), bytes, bytes + v.size() * sizeof(T));
    }
  }

  void WriteBytes(const std::vector<uint8_t>& bytes) {
    Write<uint64_t>(bytes.size());
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  // Appends `count` elements as raw bytes with NO length prefix — the flat
  // wire format carries counts and block lengths explicitly, so the responder
  // can serialize straight into the send buffer in one pass.
  template <typename T>
  void WriteSpan(const T* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "WriteSpan requires trivially copyable elements");
    if (count > 0) {
      const auto* bytes = reinterpret_cast<const uint8_t*>(data);
      buffer_.insert(buffer_.end(), bytes, bytes + count * sizeof(T));
    }
  }

  // Reserves an 8-byte slot (e.g. a length or count not known until the rest
  // of the frame is written) and returns its offset for a later PatchU64.
  size_t ReserveU64() {
    const size_t at = buffer_.size();
    buffer_.resize(at + sizeof(uint64_t));
    return at;
  }

  void PatchU64(size_t offset, uint64_t value) {
    GM_CHECK(offset + sizeof(uint64_t) <= buffer_.size()) << "patch past end of archive";
    std::memcpy(buffer_.data() + offset, &value, sizeof(uint64_t));
  }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

// Sequential reader over a byte buffer produced by OutArchive. Owns its
// backing storage when constructed from a vector or a (data, size) copy; the
// View() factory wraps caller-owned bytes without copying (the caller keeps
// the bytes alive for the archive's lifetime). Move-only: a copy of an owning
// archive would dangle its data pointer.
class InArchive {
 public:
  explicit InArchive(std::vector<uint8_t> buffer)
      : owned_(std::move(buffer)), data_(owned_.data()), size_(owned_.size()) {}
  InArchive(const uint8_t* data, size_t size)
      : owned_(data, data + size), data_(owned_.data()), size_(owned_.size()) {}

  // Non-owning view: reads straight from `data` with zero copies.
  static InArchive View(const uint8_t* data, size_t size) {
    InArchive in;
    in.data_ = data;
    in.size_ = size;
    return in;
  }

  InArchive(const InArchive&) = delete;
  InArchive& operator=(const InArchive&) = delete;
  // Moving a std::vector transfers its heap allocation, so data_ stays valid.
  InArchive(InArchive&&) = default;
  InArchive& operator=(InArchive&&) = default;

  template <typename T>
  T Read() {
    static_assert(std::is_trivially_copyable_v<T>, "Read requires a trivially copyable type");
    GM_CHECK(pos_ + sizeof(T) <= size_) << "archive underflow";
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string ReadString() {
    const uint64_t n = Read<uint64_t>();
    GM_CHECK(pos_ + n <= size_) << "archive underflow";
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ReadVector requires trivially copyable elements");
    const uint64_t n = Read<uint64_t>();
    std::vector<T> v;
    ReadSpanInto(v, n);
    return v;
  }

  std::vector<uint8_t> ReadBytes() {
    const uint64_t n = Read<uint64_t>();
    std::vector<uint8_t> v;
    ReadSpanInto(v, n);
    return v;
  }

  // Reads `count` elements (written via WriteSpan, no length prefix) straight
  // into `out` — one memcpy into the final destination, no temporary.
  template <typename T>
  void ReadSpanInto(std::vector<T>& out, uint64_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ReadSpanInto requires trivially copyable elements");
    GM_CHECK(pos_ + count * sizeof(T) <= size_) << "archive underflow";
    out.resize(count);
    if (count > 0) {
      std::memcpy(out.data(), data_ + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    }
  }

  // Pointer to the next `bytes` raw bytes (valid while the archive's backing
  // storage lives); advances the cursor. For alignment-safe element access go
  // through ReadSpanInto instead.
  const uint8_t* RawSpan(size_t bytes) {
    GM_CHECK(pos_ + bytes <= size_) << "archive underflow";
    const uint8_t* p = data_ + pos_;
    pos_ += bytes;
    return p;
  }

  void Skip(size_t bytes) {
    GM_CHECK(pos_ + bytes <= size_) << "archive underflow";
    pos_ += bytes;
  }

  bool AtEnd() const { return pos_ == size_; }
  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  InArchive() = default;

  std::vector<uint8_t> owned_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
};

}  // namespace gminer

#endif  // GMINER_COMMON_SERIALIZE_H_
