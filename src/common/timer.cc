#include "common/timer.h"

#include <time.h>

#include <algorithm>
#include <thread>

namespace gminer {

int64_t ThreadCpuNanos() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

int EffectiveCores(int configured) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) {
    return configured;
  }
  return std::max(1, std::min(configured, hw));
}

}  // namespace gminer
