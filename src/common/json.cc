#include "common/json.h"

#include <cstdio>

namespace gminer {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace gminer
