// Fixed-size worker thread pool. Used by the batch-synchronous baseline
// engine and by parallel phases of BDG partitioning; the G-Miner task
// executor manages its own computing threads directly because their lifetime
// is tied to the pipeline, not to individual closures.
#ifndef GMINER_COMMON_THREAD_POOL_H_
#define GMINER_COMMON_THREAD_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/thread_annotations.h"

namespace gminer {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Schedules a closure. Must not be called after Shutdown() completed; a
  // Submit that races Shutdown() is dropped (never executed) but leaves the
  // pending count balanced, so Wait() cannot hang on a closure that will
  // never run.
  void Submit(std::function<void()> fn) EXCLUDES(wait_mutex_);

  // Blocks until every submitted closure has finished executing.
  void Wait() EXCLUDES(wait_mutex_);

  // Drains outstanding work and joins all threads. Idempotent; also called by
  // the destructor.
  void Shutdown() EXCLUDES(wait_mutex_);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void RunLoop();

  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  Mutex wait_mutex_;
  CondVar wait_cv_;
  int pending_ GUARDED_BY(wait_mutex_) = 0;
  bool shutdown_ GUARDED_BY(wait_mutex_) = false;
};

// Runs fn(i) for i in [0, n) across the pool and waits for completion.
void ParallelFor(ThreadPool& pool, int64_t n, const std::function<void(int64_t)>& fn);

}  // namespace gminer

#endif  // GMINER_COMMON_THREAD_POOL_H_
