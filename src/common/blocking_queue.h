// Multi-producer multi-consumer blocking queue. Backbone of the task pipeline:
// the communication queue (CMQ hand-off), the computation queue (CPQ) and the
// network mailboxes are all instances of this type.
#ifndef GMINER_COMMON_BLOCKING_QUEUE_H_
#define GMINER_COMMON_BLOCKING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace gminer {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Enqueues an item. Returns false when the queue has been closed (the item
  // is dropped in that case).
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  // Returns nullopt only after Close() once all items are consumed.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Blocks up to `timeout` for an item; returns nullopt on timeout or once
  // the queue is closed and drained.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, timeout, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Wakes all waiters; subsequent Pop() calls drain remaining items then
  // return nullopt. Pushing after Close() is a no-op.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool Empty() const { return Size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace gminer

#endif  // GMINER_COMMON_BLOCKING_QUEUE_H_
