// Multi-producer multi-consumer blocking queue. Backbone of the task pipeline:
// the communication queue (CMQ hand-off), the computation queue (CPQ) and the
// network mailboxes are all instances of this type.
#ifndef GMINER_COMMON_BLOCKING_QUEUE_H_
#define GMINER_COMMON_BLOCKING_QUEUE_H_

#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "common/thread_annotations.h"

namespace gminer {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Enqueues an item. Returns false when the queue has been closed (the item
  // is dropped in that case).
  bool Push(T item) EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  // Returns nullopt only after Close() once all items are consumed.
  std::optional<T> Pop() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) {
      cv_.Wait(mutex_);
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Blocks up to `timeout` for an item; returns nullopt on timeout or once
  // the queue is closed and drained.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) EXCLUDES(mutex_) {
    // Sync deadline for wait_until, not a measurement. lint:allow(raw-clock)
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) {
      if (!cv_.WaitUntil(mutex_, deadline)) {
        break;  // timed out; fall through to a final state check
      }
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Wakes all waiters; subsequent Pop() calls drain remaining items then
  // return nullopt. Pushing after Close() is a no-op.
  void Close() EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  bool closed() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  size_t Size() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

  bool Empty() const { return Size() == 0; }

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace gminer

#endif  // GMINER_COMMON_BLOCKING_QUEUE_H_
