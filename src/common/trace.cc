#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace gminer {

namespace trace_internal {
thread_local constinit TraceRing* g_ring = nullptr;
}  // namespace trace_internal

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kTaskCreated:
      return "task_created";
    case TraceEventType::kTaskQueueWait:
      return "queue_wait";
    case TraceEventType::kTaskPullWait:
      return "pull_wait";
    case TraceEventType::kTaskReadyWait:
      return "ready_wait";
    case TraceEventType::kTaskCompute:
      return "compute";
    case TraceEventType::kTaskCompleted:
      return "task_completed";
    case TraceEventType::kTaskStolenOut:
      return "steal_out";
    case TraceEventType::kTaskStolenIn:
      return "steal_in";
    case TraceEventType::kSpillWrite:
      return "spill_write";
    case TraceEventType::kSpillRead:
      return "spill_read";
    case TraceEventType::kNetSend:
      return "net_send";
    case TraceEventType::kNetRecv:
      return "net_recv";
    case TraceEventType::kPullRoundTrip:
      return "pull_rtt";
    case TraceEventType::kPullRetry:
      return "pull_retry";
    case TraceEventType::kPullFlush:
      return "pull_flush";
    case TraceEventType::kPullStall:
      return "pull_stall";
    case TraceEventType::kCacheHit:
      return "cache_hit";
    case TraceEventType::kCacheMiss:
      return "cache_miss";
    case TraceEventType::kCacheEvict:
      return "cache_evict";
    case TraceEventType::kFaultDrop:
      return "fault_drop";
    case TraceEventType::kFaultDuplicate:
      return "fault_duplicate";
    case TraceEventType::kFaultDelay:
      return "fault_delay";
    case TraceEventType::kFaultKill:
      return "fault_kill";
    case TraceEventType::kHeartbeatMiss:
      return "heartbeat_miss";
    case TraceEventType::kWorkerDead:
      return "worker_dead";
    case TraceEventType::kAdoptIssued:
      return "adopt_issued";
    case TraceEventType::kAdoption:
      return "adoption";
    case TraceEventType::kAdoptDone:
      return "adopt_done";
    case TraceEventType::kSeedingDone:
      return "seeding_done";
    case TraceEventType::kEventTypeCount:
      break;
  }
  return "unknown";
}

bool TraceEventIsSpan(TraceEventType type) {
  switch (type) {
    case TraceEventType::kTaskQueueWait:
    case TraceEventType::kTaskPullWait:
    case TraceEventType::kTaskReadyWait:
    case TraceEventType::kTaskCompute:
    case TraceEventType::kSpillWrite:
    case TraceEventType::kSpillRead:
    case TraceEventType::kPullRoundTrip:
    case TraceEventType::kPullFlush:
    case TraceEventType::kPullStall:
    case TraceEventType::kAdoption:
      return true;
    default:
      return false;
  }
}

TraceRing* Tracer::RegisterThread(int pid, std::string name) {
  MutexLock lock(mutex_);
  rings_.push_back(std::make_unique<TraceRing>(ring_capacity_, pid, std::move(name)));
  return rings_.back().get();
}

void Tracer::SetProcessName(int pid, std::string name) {
  MutexLock lock(mutex_);
  process_names_[pid] = std::move(name);
}

Tracer::MergedTrace Tracer::Merge() const {
  MergedTrace out;
  out.start_ns = start_ns_;
  MutexLock lock(mutex_);
  out.process_names = process_names_;
  for (const auto& ring : rings_) {
    const size_t n = ring->size();  // acquire: events [0, n) are published
    TrackSlice track;
    track.pid = ring->pid();
    track.name = ring->name();
    track.begin = out.events.size();
    for (size_t i = 0; i < n; ++i) out.events.push_back(ring->event(i));
    track.end = out.events.size();
    out.tracks.push_back(std::move(track));
    out.dropped += ring->dropped();
  }
  return out;
}

TraceThreadScope::TraceThreadScope(Tracer* tracer, int pid, const std::string& name) {
  if (tracer == nullptr) return;
  prev_ = trace_internal::g_ring;
  trace_internal::g_ring = tracer->RegisterThread(pid, name);
  installed_ = true;
}

TraceThreadScope::~TraceThreadScope() {
  if (installed_) trace_internal::g_ring = prev_;
}

uint64_t NextTraceTaskId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

namespace {

// Microseconds with sub-µs precision, relative to the job start — what the
// Chrome trace-event format expects in "ts"/"dur".
void AppendMicros(std::string& out, int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  out += buf;
}

}  // namespace

bool WriteChromeTrace(const Tracer::MergedTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;

  std::string body;
  body.reserve(trace.events.size() * 96 + 4096);
  body += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) body += ',';
    first = false;
  };

  for (const auto& [pid, name] : trace.process_names) {
    comma();
    body += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + std::to_string(pid) +
            ",\"tid\":0,\"args\":{\"name\":\"" + name + "\"}}";
  }
  // tid 0 is the metadata row; tracks are numbered from 1 in merge order so
  // two same-named threads (e.g. restarted scopes) stay distinct.
  for (size_t t = 0; t < trace.tracks.size(); ++t) {
    const Tracer::TrackSlice& track = trace.tracks[t];
    comma();
    body += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(track.pid) +
            ",\"tid\":" + std::to_string(t + 1) + ",\"args\":{\"name\":\"" + track.name + "\"}}";
  }
  for (size_t t = 0; t < trace.tracks.size(); ++t) {
    const Tracer::TrackSlice& track = trace.tracks[t];
    const std::string ids = ",\"pid\":" + std::to_string(track.pid) +
                            ",\"tid\":" + std::to_string(t + 1);
    for (size_t i = track.begin; i < track.end; ++i) {
      const TraceEvent& e = trace.events[i];
      comma();
      body += "{\"name\":\"";
      body += TraceEventTypeName(e.type);
      body += "\",\"ph\":\"";
      body += TraceEventIsSpan(e.type) ? 'X' : 'i';
      body += '"';
      body += ids;
      body += ",\"ts\":";
      AppendMicros(body, e.t_ns - trace.start_ns);
      if (TraceEventIsSpan(e.type)) {
        body += ",\"dur\":";
        AppendMicros(body, e.dur_ns);
      } else {
        body += ",\"s\":\"t\"";  // thread-scoped instant
      }
      body += ",\"args\":{\"id\":" + std::to_string(e.id) +
              ",\"arg\":" + std::to_string(e.arg) + "}}";
    }
  }
  body += "]}";
  out << body;
  out.close();
  return out.good();
}

}  // namespace gminer
