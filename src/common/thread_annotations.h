// Compile-time thread-safety annotation layer (Clang -Wthread-safety).
//
// Every mutex-guarded member in the concurrent subsystems is declared with
// GUARDED_BY(mu), every function that must run under a lock with REQUIRES(mu),
// and locking itself goes through the annotated Mutex / MutexLock / CondVar
// wrappers below. Under Clang with -DGMINER_THREAD_SAFETY=ON (see the
// top-level CMakeLists.txt) a missing lock is a build error, not a heisenbug;
// under GCC the attributes expand to nothing and the wrappers are zero-cost
// veneers over the standard primitives.
//
// Conventions (see DESIGN.md "Locking discipline"):
//  - condition-variable predicates are evaluated by the *caller* in a
//    `while (!pred) cv.Wait(mu);` loop, so the guarded reads in the predicate
//    sit in a function the analysis can see holds the lock. CondVar::Wait
//    deliberately takes no predicate.
//  - private helpers that assume the lock carry a `Locked` suffix and a
//    REQUIRES(mutex_) annotation.
//  - the annotations describe the *rule*; NO_THREAD_SAFETY_ANALYSIS is the
//    narrow escape hatch for patterns the analysis cannot express (hand-off
//    locking) and must carry a comment justifying it.
#ifndef GMINER_COMMON_THREAD_ANNOTATIONS_H_
#define GMINER_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define GMINER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GMINER_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) GMINER_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY GMINER_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) GMINER_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) GMINER_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) GMINER_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) GMINER_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) GMINER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) GMINER_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) GMINER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) GMINER_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) GMINER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) GMINER_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) GMINER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) GMINER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) GMINER_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) GMINER_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS GMINER_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gminer {

// std::mutex with the capability attribute the analysis keys on. libstdc++
// ships no thread-safety annotations, so the wrapper is what makes
// GUARDED_BY(mutex_) checkable.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Documents (and under Clang, tells the analysis) that the current thread
  // already holds this mutex — for call paths the analysis cannot follow.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock with scope-shaped capability tracking: the analysis knows the
// mutex is held from construction to the end of the enclosing scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to the annotated Mutex. Wait/WaitUntil REQUIRE the
// mutex and atomically release/reacquire it around the block, exactly like
// std::condition_variable — the capability is held again by the time the call
// returns, which is what REQUIRES expresses. There is deliberately no
// predicate overload: callers loop
//
//     MutexLock lock(mutex_);
//     while (!ready_) cv_.Wait(mutex_);
//
// so the predicate's guarded reads live in the analyzed, lock-holding caller
// instead of an opaque lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  // Returns false on timeout (the mutex is re-held either way).
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status != std::cv_status::timeout;
  }

  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout) REQUIRES(mu) {
    // Sync deadline for wait_until, not a measurement. lint:allow(raw-clock)
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gminer

#endif  // GMINER_COMMON_THREAD_ANNOTATIONS_H_
