#include "net/fault.h"

#include "common/logging.h"
#include "common/timer.h"
#include "common/trace.h"

namespace gminer {

namespace {

// Stamps the injected fault(s) into the sending thread's trace ring, so a
// Perfetto timeline shows exactly which messages were tampered with.
FaultInjector::Decision Traced(const FaultInjector::Decision& decision, WorkerId to) {
  if (decision.kill != kInvalidWorker) {
    TraceInstant(TraceEventType::kFaultKill, static_cast<uint64_t>(decision.kill));
  }
  if (decision.drop) {
    TraceInstant(TraceEventType::kFaultDrop, static_cast<uint64_t>(to));
  }
  if (decision.duplicate) {
    TraceInstant(TraceEventType::kFaultDuplicate, static_cast<uint64_t>(to));
  }
  if (decision.delay_ns > 0) {
    TraceInstant(TraceEventType::kFaultDelay, static_cast<uint64_t>(to),
                 static_cast<int32_t>(decision.delay_ns / 1000));
  }
  return decision;
}

inline uint64_t SplitMix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline bool DataPlane(MessageType type) {
  return type == MessageType::kPullRequest || type == MessageType::kPullResponse ||
         type == MessageType::kProgressReport;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), start_ns_(MonotonicNanos()) {
  for (const auto& kill : plan_.kills) {
    KillState state;
    state.spec = kill;
    state.armed = !kill.after_seeding;
    kills_.push_back(state);
  }
}

double FaultInjector::LinkUniform(uint64_t link_key, uint64_t ordinal, uint64_t salt) const {
  const uint64_t mixed = SplitMix64(plan_.seed ^ SplitMix64(link_key ^ salt) ^
                                    ordinal * 0x9e3779b97f4a7c15ULL);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

FaultInjector::Decision FaultInjector::OnSend(WorkerId from, WorkerId to, MessageType type) {
  Decision decision;
  const int64_t now_ms = (MonotonicNanos() - start_ns_) / 1'000'000;
  for (const auto& b : plan_.blackouts) {
    if ((b.endpoint == from || b.endpoint == to) && now_ms >= b.start_ms &&
        now_ms < b.start_ms + b.duration_ms) {
      decision.drop = true;
    }
  }

  MutexLock lock(mutex_);
  for (auto& kill : kills_) {
    if (kill.spec.worker != from || kill.spec.after_messages < 0) {
      continue;
    }
    if (!kill.armed) {
      kill.armed = type == MessageType::kSeedDone;
      continue;
    }
    if (!kill.triggered && ++kill.sent >= kill.spec.after_messages) {
      kill.triggered = true;
      decision.kill = kill.spec.worker;
      decision.drop = true;  // the triggering message dies with the worker
    }
  }
  if (decision.drop) {
    return Traced(decision, to);
  }

  if (!DataPlane(type)) {
    return decision;  // untouched: nothing to trace
  }
  const uint64_t link_key = static_cast<uint64_t>(from) * 0x10001ULL + static_cast<uint64_t>(to);
  const uint64_t ordinal = link_ordinals_[link_key]++;
  if (plan_.drop_probability > 0.0 &&
      LinkUniform(link_key, ordinal, 0xd409) < plan_.drop_probability) {
    decision.drop = true;
    return Traced(decision, to);
  }
  if (plan_.duplicate_probability > 0.0 &&
      LinkUniform(link_key, ordinal, 0xd7b1) < plan_.duplicate_probability) {
    decision.duplicate = true;
  }
  if (plan_.delay_probability > 0.0 &&
      LinkUniform(link_key, ordinal, 0x5e1a) < plan_.delay_probability) {
    const int64_t span_us = plan_.delay_max_us - plan_.delay_min_us;
    const int64_t extra_us =
        span_us > 0 ? static_cast<int64_t>(LinkUniform(link_key, ordinal, 0x71e5) *
                                           static_cast<double>(span_us + 1))
                    : 0;
    decision.delay_ns = (plan_.delay_min_us + extra_us) * 1000;
  }
  return Traced(decision, to);
}

}  // namespace gminer
