// Simulated cluster interconnect. Endpoints 0..num_workers-1 are workers; the
// extra endpoint with id num_workers is the master. Every Send() charges the
// payload (plus framing) to the sender's and receiver's byte counters. When
// transmission simulation is enabled, messages additionally traverse a shared
// serial link of the configured bandwidth/latency via a delivery thread, so
// network transfers take real wall time and contend with each other — this is
// what lets the task pipeline (Fig. 6) visibly hide communication that stalls
// the batch-synchronous baseline (Fig. 5).
#ifndef GMINER_NET_NETWORK_H_
#define GMINER_NET_NETWORK_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "metrics/counters.h"
#include "net/message.h"

namespace gminer {

class Network {
 public:
  // counters[i] may be nullptr (no accounting for that endpoint, e.g. master).
  Network(int num_endpoints, std::vector<WorkerCounters*> counters,
          bool simulate_time = false, double bandwidth_gbps = 1.0, int64_t latency_us = 0);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Enqueues a message for endpoint `to`. Thread safe.
  void Send(WorkerId from, WorkerId to, MessageType type, std::vector<uint8_t> payload);

  // Blocking receive; returns nullopt after Close().
  std::optional<NetMessage> Receive(WorkerId me);
  std::optional<NetMessage> TryReceive(WorkerId me);

  // Closes every mailbox, waking all receivers.
  void Close();

  int num_endpoints() const { return static_cast<int>(mailboxes_.size()); }

 private:
  struct PendingDelivery {
    int64_t deliver_at_ns;
    uint64_t sequence;  // FIFO tie-break
    WorkerId to;
    NetMessage message;
    bool operator>(const PendingDelivery& o) const {
      if (deliver_at_ns != o.deliver_at_ns) {
        return deliver_at_ns > o.deliver_at_ns;
      }
      return sequence > o.sequence;
    }
  };

  void DeliveryLoop();

  std::vector<std::unique_ptr<BlockingQueue<NetMessage>>> mailboxes_;
  std::vector<WorkerCounters*> counters_;

  const bool simulate_time_;
  const double bytes_per_ns_;
  const int64_t latency_ns_;

  std::mutex delivery_mutex_;
  std::condition_variable delivery_cv_;
  std::priority_queue<PendingDelivery, std::vector<PendingDelivery>, std::greater<>> pending_;
  uint64_t next_sequence_ = 0;
  int64_t link_free_at_ns_ = 0;  // shared-link serialization point
  bool stop_delivery_ = false;
  std::thread delivery_thread_;
};

}  // namespace gminer

#endif  // GMINER_NET_NETWORK_H_
