// Simulated cluster interconnect. Endpoints 0..num_workers-1 are workers; the
// extra endpoint with id num_workers is the master. Every Send() charges the
// payload (plus framing) to the sender's byte counters; receiver bytes are
// charged on delivery, so sent == received + dropped (+ duplicated copies)
// holds at every quiescent point. When transmission simulation is enabled,
// messages additionally traverse a shared serial link of the configured
// bandwidth/latency via a delivery thread, so network transfers take real
// wall time and contend with each other — this is what lets the task pipeline
// (Fig. 6) visibly hide communication that stalls the batch-synchronous
// baseline (Fig. 5).
//
// An optional FaultInjector (see net/fault.h) is consulted on every remote
// send: it may drop, duplicate, or delay the message, blackout an endpoint's
// traffic for a window, or declare the sending worker killed — in which case
// the registered kill handler fences the endpoint (MarkDead) so a zombie
// worker can neither send nor receive anything further.
#ifndef GMINER_NET_NETWORK_H_
#define GMINER_NET_NETWORK_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/thread_annotations.h"
#include "common/trace.h"
#include "metrics/counters.h"
#include "net/fault.h"
#include "net/message.h"

namespace gminer {

class Network {
 public:
  // counters[i] may be nullptr (no accounting for that endpoint, e.g. master).
  // `injector` (optional, unowned) injects faults on remote sends.
  // `tracer` (optional, unowned, must outlive the network) gives the delivery
  // thread a trace track; senders emit net events via their own rings.
  Network(int num_endpoints, std::vector<WorkerCounters*> counters,
          bool simulate_time = false, double bandwidth_gbps = 1.0, int64_t latency_us = 0,
          FaultInjector* injector = nullptr, Tracer* tracer = nullptr);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Enqueues a message for endpoint `to`. Thread safe.
  void Send(WorkerId from, WorkerId to, MessageType type, std::vector<uint8_t> payload);

  // Blocking receive; returns nullopt after Close().
  std::optional<NetMessage> Receive(WorkerId me);
  std::optional<NetMessage> TryReceive(WorkerId me);
  // Blocks up to `timeout`; nullopt on timeout or close. Lets the master tick
  // its heartbeat/budget checks even when every worker has gone silent.
  std::optional<NetMessage> ReceiveFor(WorkerId me, std::chrono::nanoseconds timeout);

  // Closes every mailbox, waking all receivers. Messages still sitting in the
  // delivery thread's pending queue are counted as dropped, never silently
  // discarded — the delivered/dropped counters stay balanced across shutdown.
  void Close();

  // True once this endpoint's mailbox has been closed (network Close() or a
  // MarkDead fence). Lets a ReceiveFor loop tell teardown from a quiet tick.
  bool IsClosed(WorkerId me) const { return mailboxes_[static_cast<size_t>(me)]->closed(); }

  // Fences a failed endpoint: subsequent messages from or to it are dropped
  // (and counted), and its mailbox closes so its listener unblocks. Idempotent.
  void MarkDead(WorkerId endpoint);
  bool IsDead(WorkerId endpoint) const {
    return dead_[static_cast<size_t>(endpoint)].load(std::memory_order_acquire);
  }

  // Invoked (once per worker, from whichever Send trips the injector's kill
  // trigger) so the deployment can fence and reap the worker.
  void SetKillHandler(std::function<void(WorkerId)> handler) {
    kill_handler_ = std::move(handler);
  }

  int num_endpoints() const { return static_cast<int>(mailboxes_.size()); }
  WorkerCounters* counter(WorkerId endpoint) {
    return counters_[static_cast<size_t>(endpoint)];
  }

 private:
  struct PendingDelivery {
    int64_t deliver_at_ns;
    uint64_t sequence;  // FIFO tie-break
    WorkerId to;
    NetMessage message;
    bool operator>(const PendingDelivery& o) const {
      if (deliver_at_ns != o.deliver_at_ns) {
        return deliver_at_ns > o.deliver_at_ns;
      }
      return sequence > o.sequence;
    }
  };

  void DeliveryLoop() EXCLUDES(delivery_mutex_);
  // Accounts receiver bytes and pushes into the mailbox, or counts the
  // message as dropped when the destination is dead. Called without
  // delivery_mutex_ so a blocked mailbox push cannot stall the link clock.
  void Deliver(WorkerId to, NetMessage message) EXCLUDES(delivery_mutex_);
  void CountDropped(WorkerId to, int64_t bytes);
  void Schedule(WorkerId to, NetMessage message, int64_t deliver_at_ns)
      EXCLUDES(delivery_mutex_);

  std::vector<std::unique_ptr<BlockingQueue<NetMessage>>> mailboxes_;
  std::vector<WorkerCounters*> counters_;
  std::vector<std::atomic<bool>> dead_;

  const bool simulate_time_;
  const double bytes_per_ns_;
  const int64_t latency_ns_;
  FaultInjector* const injector_;
  Tracer* const tracer_;
  std::function<void(WorkerId)> kill_handler_;

  Mutex delivery_mutex_;
  CondVar delivery_cv_;
  std::priority_queue<PendingDelivery, std::vector<PendingDelivery>, std::greater<>>
      pending_ GUARDED_BY(delivery_mutex_);
  uint64_t next_sequence_ GUARDED_BY(delivery_mutex_) = 0;
  // Shared-link serialization point.
  int64_t link_free_at_ns_ GUARDED_BY(delivery_mutex_) = 0;
  bool stop_delivery_ GUARDED_BY(delivery_mutex_) = false;
  // Background delivery thread; the network owns its lifetime end-to-end, so
  // it stays a plain std::thread rather than a pool closure.
  std::thread delivery_thread_;  // lint:allow(naked-thread)
};

}  // namespace gminer

#endif  // GMINER_NET_NETWORK_H_
