#include "net/network.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/timer.h"

namespace gminer {

Network::Network(int num_endpoints, std::vector<WorkerCounters*> counters, bool simulate_time,
                 double bandwidth_gbps, int64_t latency_us)
    : counters_(std::move(counters)),
      simulate_time_(simulate_time),
      bytes_per_ns_(bandwidth_gbps * 1e9 / 8.0 / 1e9),
      latency_ns_(latency_us * 1000) {
  GM_CHECK(num_endpoints >= 1);
  GM_CHECK(counters_.size() == static_cast<size_t>(num_endpoints));
  mailboxes_.reserve(static_cast<size_t>(num_endpoints));
  for (int i = 0; i < num_endpoints; ++i) {
    mailboxes_.push_back(std::make_unique<BlockingQueue<NetMessage>>());
  }
  if (simulate_time_) {
    delivery_thread_ = std::thread([this] { DeliveryLoop(); });
  }
}

Network::~Network() {
  Close();
  if (delivery_thread_.joinable()) {
    delivery_thread_.join();
  }
}

void Network::Send(WorkerId from, WorkerId to, MessageType type,
                   std::vector<uint8_t> payload) {
  GM_CHECK(to >= 0 && to < static_cast<WorkerId>(mailboxes_.size()))
      << "bad destination " << to;
  const int64_t bytes = static_cast<int64_t>(payload.size()) + kMessageHeaderBytes;
  // Loopback messages (e.g. a worker pulling from its own listener) are free:
  // the paper's workers resolve local vertices without the network.
  const bool remote = from != to;
  if (remote) {
    if (from >= 0 && from < static_cast<WorkerId>(counters_.size()) &&
        counters_[static_cast<size_t>(from)] != nullptr) {
      auto& c = *counters_[static_cast<size_t>(from)];
      c.net_bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
      c.net_messages.fetch_add(1, std::memory_order_relaxed);
    }
    if (counters_[static_cast<size_t>(to)] != nullptr) {
      counters_[static_cast<size_t>(to)]->net_bytes_received.fetch_add(
          bytes, std::memory_order_relaxed);
    }
  }

  NetMessage msg{type, from, std::move(payload)};
  if (!simulate_time_ || !remote) {
    mailboxes_[static_cast<size_t>(to)]->Push(std::move(msg));
    return;
  }

  const int64_t now = MonotonicNanos();
  const int64_t transmit_ns =
      bytes_per_ns_ > 0 ? static_cast<int64_t>(static_cast<double>(bytes) / bytes_per_ns_) : 0;
  {
    std::lock_guard<std::mutex> lock(delivery_mutex_);
    // The shared link serializes transmissions: a message starts after the
    // link frees up, finishes transmit_ns later, and arrives latency_ns after
    // that.
    const int64_t start = std::max(now, link_free_at_ns_);
    link_free_at_ns_ = start + transmit_ns;
    pending_.push(PendingDelivery{link_free_at_ns_ + latency_ns_, next_sequence_++, to,
                                  std::move(msg)});
  }
  delivery_cv_.notify_one();
}

std::optional<NetMessage> Network::Receive(WorkerId me) {
  return mailboxes_[static_cast<size_t>(me)]->Pop();
}

std::optional<NetMessage> Network::TryReceive(WorkerId me) {
  return mailboxes_[static_cast<size_t>(me)]->TryPop();
}

void Network::Close() {
  {
    std::lock_guard<std::mutex> lock(delivery_mutex_);
    stop_delivery_ = true;
  }
  delivery_cv_.notify_all();
  for (auto& mailbox : mailboxes_) {
    mailbox->Close();
  }
}

void Network::DeliveryLoop() {
  std::unique_lock<std::mutex> lock(delivery_mutex_);
  while (true) {
    if (stop_delivery_) {
      return;
    }
    if (pending_.empty()) {
      delivery_cv_.wait(lock, [this] { return stop_delivery_ || !pending_.empty(); });
      continue;
    }
    const int64_t now = MonotonicNanos();
    const int64_t due = pending_.top().deliver_at_ns;
    if (due > now) {
      delivery_cv_.wait_for(lock, std::chrono::nanoseconds(due - now));
      continue;
    }
    PendingDelivery d = std::move(const_cast<PendingDelivery&>(pending_.top()));
    pending_.pop();
    lock.unlock();
    mailboxes_[static_cast<size_t>(d.to)]->Push(std::move(d.message));
    lock.lock();
  }
}

}  // namespace gminer
