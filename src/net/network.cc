#include "net/network.h"

#include <algorithm>
#include <cstdint>

#include "common/logging.h"
#include "common/timer.h"

namespace gminer {

Network::Network(int num_endpoints, std::vector<WorkerCounters*> counters, bool simulate_time,
                 double bandwidth_gbps, int64_t latency_us, FaultInjector* injector,
                 Tracer* tracer)
    : counters_(std::move(counters)),
      dead_(static_cast<size_t>(num_endpoints)),
      simulate_time_(simulate_time),
      bytes_per_ns_(bandwidth_gbps * 1e9 / 8.0 / 1e9),
      latency_ns_(latency_us * 1000),
      injector_(injector),
      tracer_(tracer) {
  GM_CHECK(num_endpoints >= 1);
  GM_CHECK(counters_.size() == static_cast<size_t>(num_endpoints));
  mailboxes_.reserve(static_cast<size_t>(num_endpoints));
  for (int i = 0; i < num_endpoints; ++i) {
    mailboxes_.push_back(std::make_unique<BlockingQueue<NetMessage>>());
  }
  if (simulate_time_ || injector_ != nullptr) {
    // Joined in Close(); outlives any pool. lint:allow(naked-thread)
    delivery_thread_ = std::thread([this] { DeliveryLoop(); });
  }
}

Network::~Network() {
  Close();
  if (delivery_thread_.joinable()) {
    delivery_thread_.join();
  }
}

void Network::CountDropped(WorkerId to, int64_t bytes) {
  WorkerCounters* c = counters_[static_cast<size_t>(to)];
  if (c != nullptr) {
    c->net_messages_dropped.fetch_add(1, std::memory_order_relaxed);
    c->net_bytes_dropped.fetch_add(bytes, std::memory_order_relaxed);
  }
}

void Network::Deliver(WorkerId to, NetMessage message) {
  const int64_t bytes = static_cast<int64_t>(message.payload.size()) + kMessageHeaderBytes;
  const MessageType type = message.type;
  if (IsDead(to) || !mailboxes_[static_cast<size_t>(to)]->Push(std::move(message))) {
    CountDropped(to, bytes);
    return;
  }
  WorkerCounters* c = counters_[static_cast<size_t>(to)];
  if (c != nullptr) {
    c->net_bytes_received.fetch_add(bytes, std::memory_order_relaxed);
    c->net_messages_delivered.fetch_add(1, std::memory_order_relaxed);
  }
  TraceInstant(TraceEventType::kNetRecv, static_cast<uint64_t>(type),
               static_cast<int32_t>(std::min<int64_t>(bytes, INT32_MAX)));
}

void Network::Schedule(WorkerId to, NetMessage message, int64_t deliver_at_ns) {
  const int64_t bytes = static_cast<int64_t>(message.payload.size()) + kMessageHeaderBytes;
  bool scheduled = false;
  {
    MutexLock lock(delivery_mutex_);
    if (!stop_delivery_) {
      pending_.push(PendingDelivery{deliver_at_ns, next_sequence_++, to, std::move(message)});
      scheduled = true;
    }
  }
  if (!scheduled) {
    CountDropped(to, bytes);
    return;
  }
  delivery_cv_.NotifyOne();
}

void Network::Send(WorkerId from, WorkerId to, MessageType type,
                   std::vector<uint8_t> payload) {
  GM_CHECK(to >= 0 && to < static_cast<WorkerId>(mailboxes_.size()))
      << "bad destination " << to;
  const int64_t bytes = static_cast<int64_t>(payload.size()) + kMessageHeaderBytes;
  // Loopback messages (e.g. a worker pulling from its own listener) are free
  // and fault-exempt: the paper's workers resolve local state off the network.
  const bool remote = from != to;
  NetMessage msg{type, from, std::move(payload)};
  if (!remote) {
    mailboxes_[static_cast<size_t>(to)]->Push(std::move(msg));
    return;
  }

  // A fenced (dead) worker can no longer inject anything into the network.
  if (from >= 0 && from < static_cast<WorkerId>(dead_.size()) && IsDead(from)) {
    return;
  }
  if (from >= 0 && from < static_cast<WorkerId>(counters_.size()) &&
      counters_[static_cast<size_t>(from)] != nullptr) {
    auto& c = *counters_[static_cast<size_t>(from)];
    c.net_bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
    c.net_messages.fetch_add(1, std::memory_order_relaxed);
  }
  TraceInstant(TraceEventType::kNetSend, static_cast<uint64_t>(type),
               static_cast<int32_t>(std::min<int64_t>(bytes, INT32_MAX)));

  FaultInjector::Decision decision;
  if (injector_ != nullptr) {
    decision = injector_->OnSend(from, to, type);
    if (decision.kill != kInvalidWorker && kill_handler_) {
      kill_handler_(decision.kill);
    }
  }
  if (decision.drop || IsDead(to)) {
    CountDropped(to, bytes);
    return;
  }
  WorkerCounters* receiver = counters_[static_cast<size_t>(to)];
  if (decision.duplicate && receiver != nullptr) {
    receiver->net_messages_duplicated.fetch_add(1, std::memory_order_relaxed);
    receiver->net_bytes_duplicated.fetch_add(bytes, std::memory_order_relaxed);
  }
  if (decision.delay_ns > 0 && receiver != nullptr) {
    receiver->net_messages_delayed.fetch_add(1, std::memory_order_relaxed);
  }

  if (!simulate_time_ && decision.delay_ns == 0) {
    if (decision.duplicate) {
      Deliver(to, NetMessage{msg.type, msg.from, msg.payload});
    }
    Deliver(to, std::move(msg));
    return;
  }

  int64_t deliver_at = MonotonicNanos() + decision.delay_ns;
  if (simulate_time_) {
    const int64_t transmit_ns =
        bytes_per_ns_ > 0 ? static_cast<int64_t>(static_cast<double>(bytes) / bytes_per_ns_) : 0;
    MutexLock lock(delivery_mutex_);
    // The shared link serializes transmissions: a message starts after the
    // link frees up, finishes transmit_ns later, and arrives latency_ns after
    // that (plus any injected delay).
    const int64_t start = std::max(MonotonicNanos(), link_free_at_ns_);
    link_free_at_ns_ = start + transmit_ns;
    deliver_at = link_free_at_ns_ + latency_ns_ + decision.delay_ns;
  }
  if (decision.duplicate) {
    Schedule(to, NetMessage{msg.type, msg.from, msg.payload}, deliver_at);
  }
  Schedule(to, std::move(msg), deliver_at);
}

std::optional<NetMessage> Network::Receive(WorkerId me) {
  return mailboxes_[static_cast<size_t>(me)]->Pop();
}

std::optional<NetMessage> Network::TryReceive(WorkerId me) {
  return mailboxes_[static_cast<size_t>(me)]->TryPop();
}

std::optional<NetMessage> Network::ReceiveFor(WorkerId me, std::chrono::nanoseconds timeout) {
  return mailboxes_[static_cast<size_t>(me)]->PopFor(timeout);
}

void Network::MarkDead(WorkerId endpoint) {
  GM_CHECK(endpoint >= 0 && endpoint < static_cast<WorkerId>(dead_.size()));
  dead_[static_cast<size_t>(endpoint)].store(true, std::memory_order_release);
  mailboxes_[static_cast<size_t>(endpoint)]->Close();
}

void Network::Close() {
  std::vector<PendingDelivery> undelivered;
  {
    MutexLock lock(delivery_mutex_);
    stop_delivery_ = true;
    // Drain in-flight sends explicitly: each is accounted as dropped so the
    // sent == delivered + dropped (+ duplicated) balance survives shutdown.
    while (!pending_.empty()) {
      undelivered.push_back(std::move(const_cast<PendingDelivery&>(pending_.top())));
      pending_.pop();
    }
  }
  for (const PendingDelivery& d : undelivered) {
    CountDropped(d.to, static_cast<int64_t>(d.message.payload.size()) + kMessageHeaderBytes);
  }
  delivery_cv_.NotifyAll();
  for (auto& mailbox : mailboxes_) {
    mailbox->Close();
  }
}

void Network::DeliveryLoop() {
  // The delivery thread outlives Network::Close() (only ~Network joins it),
  // so its ring may still take events while the cluster merges the trace —
  // TraceRing's release/acquire publication makes that safe.
  TraceThreadScope trace_scope(tracer_, num_endpoints(), "net-delivery");
  delivery_mutex_.Lock();
  while (!stop_delivery_) {
    if (pending_.empty()) {
      delivery_cv_.Wait(delivery_mutex_);
      continue;
    }
    const int64_t now = MonotonicNanos();
    const int64_t due = pending_.top().deliver_at_ns;
    if (due > now) {
      delivery_cv_.WaitFor(delivery_mutex_, std::chrono::nanoseconds(due - now));
      continue;
    }
    PendingDelivery d = std::move(const_cast<PendingDelivery&>(pending_.top()));
    pending_.pop();
    // Deliver outside the lock: a mailbox push may contend with receivers and
    // must not hold up the link clock or Close().
    delivery_mutex_.Unlock();
    Deliver(d.to, std::move(d.message));
    delivery_mutex_.Lock();
  }
  delivery_mutex_.Unlock();
}

}  // namespace gminer
