// Wire messages exchanged between workers and the master. Everything crossing
// a worker boundary is serialized into a payload so the network layer can
// account exact byte counts (Tables 1, 3, 4: "Net. (GB)").
#ifndef GMINER_NET_MESSAGE_H_
#define GMINER_NET_MESSAGE_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace gminer {

enum class MessageType : uint8_t {
  kPullRequest = 0,    // worker → worker: vertex ids to fetch
  kPullResponse = 1,   // worker → worker: serialized VertexRecords
  kProgressReport = 2, // worker → master: pipeline queue depths
  kStealRequest = 3,   // worker → master: REQ, "I am idle"
  kMigrateCommand = 4, // master → worker: MIGRATE Tnum tasks to worker X
  kMigrateTasks = 5,   // worker → worker: serialized task batch
  kNoTask = 6,         // worker → worker: migration declined
  kAggPartial = 7,     // worker → master: serialized aggregator partial
  kAggGlobal = 8,      // master → worker: serialized global aggregate
  kSeedDone = 9,       // worker → master: seed generation finished
  kShutdown = 10,      // master → worker: job complete, stop threads
  kAdoptTasks = 11,    // master → worker: adopt a dead worker's checkpoint + vertices
  kAdoptDone = 12,     // worker → master: adoption finished (count of tasks loaded)
  kMetricsReport = 13, // worker → master: serialized MetricsSnapshot (absolute,
                       // piggybacked on the heartbeat path; metrics/registry.h)
};

struct NetMessage {
  MessageType type = MessageType::kShutdown;
  WorkerId from = kInvalidWorker;
  std::vector<uint8_t> payload;
};

// Fixed per-message framing overhead charged by the network accounting,
// standing in for Ethernet/IP/TCP headers.
inline constexpr int64_t kMessageHeaderBytes = 64;

}  // namespace gminer

#endif  // GMINER_NET_MESSAGE_H_
