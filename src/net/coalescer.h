// Per-endpoint pull-request coalescing (DESIGN.md "Batched pull wire
// protocol"). Workers no longer put a kPullRequest on the wire per
// (task, owner) pair: they enqueue vertex ids here, and the coalescer
// aggregates everything headed for the same destination into one wire
// message, flushed when the buffered ids reach `batch_bytes` or when the
// oldest buffered id turns `flush_us` old (a dedicated flusher thread owns
// the deadline). Each destination's buffer is bounded by `queue_bytes`
// (buffered + handed-to-the-network bytes); Enqueue blocks at the bound, so
// a stalled link back-pressures the retriever instead of growing an
// unbounded queue.
//
// The coalescer owns the kPullRequest wire frame:
//
//   [u64 rid][u64 n][VertexId × n]
//
// `rid` is unique per flushed batch; the on-batch callback hands (to, rid,
// ids) to the worker *before* the send so its response bookkeeping can never
// race the reply. scripts/lint.py bans kPullRequest sends anywhere else
// (check raw-pull-send), so batching cannot be bypassed by future code.
#ifndef GMINER_NET_COALESCER_H_
#define GMINER_NET_COALESCER_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/trace.h"
#include "graph/types.h"
#include "metrics/counters.h"
#include "net/network.h"

namespace gminer {

struct PullCoalescerOptions {
  bool enabled = true;       // false: every Enqueue flushes its own message
  size_t batch_bytes = 4096;  // flush a destination at this many buffered id-bytes
  int64_t flush_us = 100;     // deadline flush for a non-empty buffer
  size_t queue_bytes = 1 << 16;  // per-destination bound; Enqueue blocks at it
};

// Resolves the GMINER_PULL_BATCH escape hatch: "off"/"0"/"false" pins
// batching off, "on"/"1" pins it on, anything else (or unset) keeps
// `config_default` (JobConfig::enable_pull_batching).
bool PullBatchingEnabled(bool config_default);

class PullCoalescer {
 public:
  // Invoked once per flushed batch, before the wire send, outside the
  // coalescer's lock (it may take the caller's own locks).
  using BatchCallback = std::function<void(WorkerId to, uint64_t rid,
                                           const std::vector<VertexId>& ids)>;

  // `net` must outlive the coalescer. `counters` may be null (no batch-size
  // accounting); `tracer` may be null (flusher thread runs untraced).
  PullCoalescer(WorkerId self, int num_endpoints, const PullCoalescerOptions& options,
                Network* net, WorkerCounters* counters, BatchCallback on_batch,
                Tracer* tracer = nullptr);
  ~PullCoalescer();

  PullCoalescer(const PullCoalescer&) = delete;
  PullCoalescer& operator=(const PullCoalescer&) = delete;

  // Buffers `ids` for destination `to`; blocks while the destination is at
  // its queue bound (backpressure). `urgent` (retries) flushes the
  // destination immediately instead of waiting for size or deadline.
  // Returns false (and counts the ids as dropped) once Close() ran.
  bool Enqueue(WorkerId to, std::vector<VertexId> ids, bool urgent = false)
      EXCLUDES(mutex_);

  // Force-flushes one destination / every destination (e.g. when the
  // retriever goes idle and nothing else would hit the size trigger soon).
  void Flush(WorkerId to) EXCLUDES(mutex_);
  void FlushAll() EXCLUDES(mutex_);

  // Drains every buffered id to the wire, then refuses further enqueues
  // (counted in dropped_ids). Safe to call from any thread, including a
  // flush callback; idempotent. Does NOT join the flusher thread — the
  // destructor does, so a kill triggered from inside a send cannot deadlock.
  void Close() EXCLUDES(mutex_);

  int64_t dropped_ids() const { return dropped_ids_.load(std::memory_order_relaxed); }
  int64_t batches_flushed() const { return batches_flushed_.load(std::memory_order_relaxed); }

 private:
  struct Endpoint {
    std::vector<VertexId> ids;     // buffered, not yet handed to the network
    size_t inflight_bytes = 0;     // moved out by a flush still in its send
    int64_t open_ns = 0;           // MonotonicNanos of the first buffered id
    int64_t open_trace_ns = 0;     // TraceNowNs twin for the kPullFlush span
  };

  // Moves out `to`'s buffer and sends it as one wire message. Called with
  // mutex_ held; drops the lock around the callback + send and re-acquires
  // it to release the in-flight bytes, so a slow network back-pressures
  // enqueuers without ever holding the coalescer lock across a send.
  void FlushLocked(WorkerId to) REQUIRES(mutex_);
  void FlusherLoop() EXCLUDES(mutex_);

  const WorkerId self_;
  const PullCoalescerOptions options_;
  Network* const net_;
  WorkerCounters* const counters_;
  const BatchCallback on_batch_;
  Tracer* const tracer_;

  Mutex mutex_;
  CondVar space_cv_;     // signaled when a destination's bytes drop
  CondVar flusher_cv_;   // signaled on new deadlines and on Close
  std::vector<Endpoint> endpoints_ GUARDED_BY(mutex_);
  uint64_t next_rid_ GUARDED_BY(mutex_) = 1;
  bool closed_ GUARDED_BY(mutex_) = false;

  std::atomic<int64_t> dropped_ids_{0};
  std::atomic<int64_t> batches_flushed_{0};
  // Deadline flusher; the coalescer owns its lifetime end-to-end (join in the
  // destructor), mirroring the network delivery thread.
  std::thread flusher_thread_;  // lint:allow(naked-thread)
};

}  // namespace gminer

#endif  // GMINER_NET_COALESCER_H_
