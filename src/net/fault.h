// Deterministic, seed-driven fault injection for the simulated interconnect.
// A FaultPlan describes which faults to inject (message drop / duplication /
// delay-reorder, endpoint blackout windows, worker kills); the FaultInjector
// turns the plan into per-message decisions that Network::Send consults before
// enqueuing a message. Decisions for a given (from, to) link are a pure
// function of the plan seed and the link's message ordinal, so a fixed seed
// injects the same fault sequence per link regardless of how threads
// interleave across links.
//
// Fault classes and the recovery mechanism expected to absorb them:
//   drop/duplicate/delay — pull retries + idempotent responses (worker)
//   blackout             — bounded pull retries with backoff ride it out
//   kill                 — heartbeat-miss detection + kAdoptTasks failover
//                          (master), see DESIGN.md "Fault model & recovery"
#ifndef GMINER_NET_FAULT_H_
#define GMINER_NET_FAULT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "graph/types.h"
#include "net/message.h"

namespace gminer {

struct FaultPlan {
  uint64_t seed = 1;

  // Probabilistic per-message faults. These apply only to data-plane traffic
  // (kPullRequest, kPullResponse, kProgressReport): the pull path retries and
  // the heartbeat window tolerates lost progress reports, while control
  // messages (shutdown, migration batches, adoption commands) carry task
  // state the protocol recovers through its own acknowledgement/retry logic
  // rather than random re-sends.
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double delay_probability = 0.0;
  int64_t delay_min_us = 0;  // uniform delay drawn from [min, max]
  int64_t delay_max_us = 0;

  // Blackout: every message to or from `endpoint` (any type) is dropped
  // during [start_ms, start_ms + duration_ms) measured from injector
  // creation, i.e. job deployment.
  struct Blackout {
    WorkerId endpoint = kInvalidWorker;
    int64_t start_ms = 0;
    int64_t duration_ms = 0;
  };
  std::vector<Blackout> blackouts;

  // Kill: the worker is declared failed once it has sent `after_messages`
  // messages (counted from its kSeedDone when `after_seeding`, matching the
  // checkpoint-then-fail scenario of §7), or after `after_seconds` wall time
  // (driven by a timer in Cluster::Run). Exactly one trigger should be set.
  struct Kill {
    WorkerId worker = kInvalidWorker;
    int64_t after_messages = -1;
    double after_seconds = -1.0;
    bool after_seeding = true;
  };
  std::vector<Kill> kills;

  bool Empty() const {
    return drop_probability <= 0.0 && duplicate_probability <= 0.0 &&
           delay_probability <= 0.0 && blackouts.empty() && kills.empty();
  }
};

class FaultInjector {
 public:
  struct Decision {
    bool drop = false;
    bool duplicate = false;   // deliver a second copy of the message
    int64_t delay_ns = 0;     // >0: hold the message back (reorders traffic)
    WorkerId kill = kInvalidWorker;  // trigger the kill handler for this worker
  };

  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Called by Network::Send for every remote message before enqueuing.
  // Thread safe.
  Decision OnSend(WorkerId from, WorkerId to, MessageType type) EXCLUDES(mutex_);

  const FaultPlan& plan() const { return plan_; }

 private:
  struct KillState {
    FaultPlan::Kill spec;
    bool armed = false;      // false until kSeedDone seen when after_seeding
    int64_t sent = 0;        // messages counted toward the trigger
    bool triggered = false;  // latched: a kill fires exactly once
  };

  // Deterministic U[0,1) draw for the n-th decision of a link.
  double LinkUniform(uint64_t link_key, uint64_t ordinal, uint64_t salt) const;

  const FaultPlan plan_;
  const int64_t start_ns_;

  Mutex mutex_;
  std::unordered_map<uint64_t, uint64_t> link_ordinals_ GUARDED_BY(mutex_);
  std::vector<KillState> kills_ GUARDED_BY(mutex_);
};

}  // namespace gminer

#endif  // GMINER_NET_FAULT_H_
