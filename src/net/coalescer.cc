#include "net/coalescer.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/serialize.h"
#include "common/timer.h"

namespace gminer {

bool PullBatchingEnabled(bool config_default) {
  const char* env = std::getenv("GMINER_PULL_BATCH");
  if (env == nullptr || *env == '\0') {
    return config_default;
  }
  const std::string v(env);
  if (v == "off" || v == "0" || v == "false") {
    return false;
  }
  if (v == "on" || v == "1" || v == "true") {
    return true;
  }
  return config_default;
}

PullCoalescer::PullCoalescer(WorkerId self, int num_endpoints,
                             const PullCoalescerOptions& options, Network* net,
                             WorkerCounters* counters, BatchCallback on_batch, Tracer* tracer)
    : self_(self),
      options_(options),
      net_(net),
      counters_(counters),
      on_batch_(std::move(on_batch)),
      tracer_(tracer),
      endpoints_(static_cast<size_t>(num_endpoints)) {
  if (options_.enabled) {
    // Joined in the destructor; see the member declaration for the lifetime
    // contract. lint:allow(naked-thread)
    flusher_thread_ = std::thread([this] { FlusherLoop(); });
  }
}

PullCoalescer::~PullCoalescer() {
  Close();
  if (flusher_thread_.joinable()) {
    flusher_thread_.join();
  }
}

bool PullCoalescer::Enqueue(WorkerId to, std::vector<VertexId> ids, bool urgent) {
  if (ids.empty()) {
    return true;
  }
  const size_t bytes = ids.size() * sizeof(VertexId);
  MutexLock lock(mutex_);
  Endpoint& ep = endpoints_[static_cast<size_t>(to)];
  // Backpressure: wait for the destination's buffered + in-flight bytes to
  // fall under the bound. Close() breaks the wait so shutdown never hangs on
  // a stalled link.
  int64_t stall_begin = 0;
  // An enqueue bigger than the bound against an empty endpoint is admitted
  // as one oversized batch — waiting would never make room.
  while (!closed_ &&
         ep.ids.size() * sizeof(VertexId) + ep.inflight_bytes + bytes > options_.queue_bytes &&
         (!ep.ids.empty() || ep.inflight_bytes > 0)) {
    if (stall_begin == 0) {
      stall_begin = TraceNowNs();
    }
    space_cv_.Wait(mutex_);
  }
  if (stall_begin != 0) {
    TraceSpan(TraceEventType::kPullStall, static_cast<uint64_t>(to), stall_begin,
              static_cast<int32_t>(ids.size()));
  }
  if (closed_) {
    dropped_ids_.fetch_add(static_cast<int64_t>(ids.size()), std::memory_order_relaxed);
    return false;
  }
  if (ep.ids.empty()) {
    ep.open_ns = MonotonicNanos();
    ep.open_trace_ns = TraceNowNs();
    flusher_cv_.NotifyOne();  // new deadline for the flusher to track
  }
  ep.ids.insert(ep.ids.end(), ids.begin(), ids.end());
  if (!options_.enabled || urgent || ep.ids.size() * sizeof(VertexId) >= options_.batch_bytes) {
    FlushLocked(to);
  }
  return true;
}

void PullCoalescer::Flush(WorkerId to) {
  MutexLock lock(mutex_);
  FlushLocked(to);
}

void PullCoalescer::FlushAll() {
  MutexLock lock(mutex_);
  for (WorkerId to = 0; to < static_cast<WorkerId>(endpoints_.size()); ++to) {
    FlushLocked(to);
  }
}

void PullCoalescer::Close() {
  MutexLock lock(mutex_);
  if (closed_) {
    return;
  }
  closed_ = true;
  // Wake backpressure waiters (they observe closed_ and bail) and the flusher
  // (it exits its loop; the destructor joins it).
  space_cv_.NotifyAll();
  flusher_cv_.NotifyAll();
  // Drain: everything buffered still goes to the wire so no waiter starves.
  for (WorkerId to = 0; to < static_cast<WorkerId>(endpoints_.size()); ++to) {
    FlushLocked(to);
  }
}

// Hand-off locking: the lock is dropped around the callback + wire send and
// re-acquired to release the in-flight bytes, which the static analysis
// cannot express on a REQUIRES function.
void PullCoalescer::FlushLocked(WorkerId to) NO_THREAD_SAFETY_ANALYSIS {
  Endpoint& ep = endpoints_[static_cast<size_t>(to)];
  if (ep.ids.empty()) {
    return;
  }
  std::vector<VertexId> ids = std::move(ep.ids);
  ep.ids.clear();
  const size_t bytes = ids.size() * sizeof(VertexId);
  const int64_t open_trace_ns = ep.open_trace_ns;
  ep.inflight_bytes += bytes;
  ep.open_ns = 0;
  ep.open_trace_ns = 0;
  const uint64_t rid = next_rid_++;
  mutex_.Unlock();

  TraceSpan(TraceEventType::kPullFlush, static_cast<uint64_t>(to), open_trace_ns,
            static_cast<int32_t>(ids.size()));
  if (on_batch_) {
    on_batch_(to, rid, ids);
  }
  if (counters_ != nullptr) {
    RecordPullBatch(*counters_, ids.size());
  }
  batches_flushed_.fetch_add(1, std::memory_order_relaxed);
  OutArchive out;
  out.Write<uint64_t>(rid);
  out.WriteVector(ids);
  net_->Send(self_, to, MessageType::kPullRequest, out.TakeBuffer());

  mutex_.Lock();
  endpoints_[static_cast<size_t>(to)].inflight_bytes -= bytes;
  space_cv_.NotifyAll();
}

void PullCoalescer::FlusherLoop() {
  TraceThreadScope trace_scope(tracer_, static_cast<int>(self_), "pull-coalescer");
  const int64_t flush_ns = options_.flush_us * 1'000;
  MutexLock lock(mutex_);
  while (!closed_) {
    // Earliest deadline across the non-empty destination buffers.
    int64_t earliest = 0;
    for (const Endpoint& ep : endpoints_) {
      if (!ep.ids.empty() && (earliest == 0 || ep.open_ns < earliest)) {
        earliest = ep.open_ns;
      }
    }
    if (earliest == 0) {
      flusher_cv_.Wait(mutex_);
      continue;
    }
    const int64_t now = MonotonicNanos();
    const int64_t deadline = earliest + flush_ns;
    if (now < deadline) {
      flusher_cv_.WaitFor(mutex_, std::chrono::nanoseconds(deadline - now));
      continue;
    }
    for (WorkerId to = 0; to < static_cast<WorkerId>(endpoints_.size()); ++to) {
      const Endpoint& ep = endpoints_[static_cast<size_t>(to)];
      if (!ep.ids.empty() && ep.open_ns + flush_ns <= now) {
        // Drops and re-takes the lock around the send; the re-scan above
        // re-derives the next deadline from fresh state afterwards.
        FlushLocked(to);
      }
    }
  }
}

}  // namespace gminer
