#include "apps/kclique.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/graph.h"
#include "graph/intersect.h"
#include "graph/orientation.h"

namespace gminer {

uint64_t KCliqueTask::CountFrom(const std::vector<std::vector<uint32_t>>& adj,
                                const std::vector<uint32_t>& cand, uint32_t depth_left,
                                UpdateContext& ctx) {
  if (depth_left == 0) {
    return 1;
  }
  if (cand.size() < depth_left || ctx.cancelled()) {
    return 0;
  }
  if (depth_left == 1) {
    return cand.size();
  }
  uint64_t total = 0;
  std::vector<uint32_t> next;
  for (const uint32_t v : cand) {
    // Only extend upward (indices above v) so each clique is counted once.
    next.clear();
    IntersectAbove(cand, adj[v], v, next);
    total += CountFrom(adj, next, depth_left - 1, ctx);
  }
  return total;
}

void KCliqueTask::Update(UpdateContext& ctx) {
  auto* agg = static_cast<SumAggregator*>(ctx.aggregator());
  const auto& cand = candidates();
  // Build the candidate-induced adjacency and count the (k-1)-cliques inside
  // it; together with the seed each one forms a k-clique whose minimum-id
  // member is the seed. `cand` is sorted, so the kernel intersection comes
  // back ascending and maps to ascending indices with a resumable search.
  std::vector<std::vector<uint32_t>> adj(cand.size());
  std::vector<VertexId> common;
  for (uint32_t i = 0; i < cand.size(); ++i) {
    const VertexRecord* record = ctx.GetVertex(cand[i]);
    GM_CHECK(record != nullptr) << "candidate " << cand[i] << " unavailable";
    common.clear();
    Intersect(cand, record->adj, common);
    size_t pos = 0;
    for (const VertexId w : common) {
      pos = static_cast<size_t>(
          std::lower_bound(cand.begin() + static_cast<int64_t>(pos), cand.end(), w) -
          cand.begin());
      adj[i].push_back(static_cast<uint32_t>(pos));
      ++pos;
    }
  }
  std::vector<uint32_t> all(cand.size());
  for (uint32_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  agg->Add(CountFrom(adj, all, k - 1, ctx));
  MarkDead();
}

void KCliqueJob::GenerateSeeds(const VertexTable& table, SeedSink& sink) {
  GM_CHECK(k_ >= 2);
  for (const auto& [v, record] : table.records()) {
    std::vector<VertexId> cand;
    for (const VertexId u : record.adj) {
      if (u > v) {
        cand.push_back(u);
      }
    }
    if (cand.size() + 1 < k_) {
      continue;
    }
    auto task = std::make_unique<KCliqueTask>();
    task->context() = v;
    task->k = k_;
    task->subgraph().AddVertex(v);
    task->set_candidates(std::move(cand));
    sink.Emit(std::move(task));
  }
}

std::unique_ptr<TaskBase> KCliqueJob::MakeTask() const {
  auto task = std::make_unique<KCliqueTask>();
  task->k = k_;
  return task;
}

std::unique_ptr<AggregatorBase> KCliqueJob::MakeAggregator() const {
  return std::make_unique<SumAggregator>();
}

uint64_t SerialKCliqueCount(const Graph& g, uint32_t k) {
  GM_CHECK(k >= 2);
  // Recursive ordered extension over the degree-oriented DAG: every forward
  // neighborhood is bounded by the degeneracy instead of a hub's degree, and
  // each clique is still counted exactly once (from its minimum-rank
  // member). Extension sets shrink by kernel intersection — dag.neighbors(v)
  // holds only ranks above v, so plain IntersectCount/Intersect applies.
  const Graph dag = BuildOrientedDag(g);
  struct Counter {
    const Graph& dag;
    uint64_t Count(const std::vector<VertexId>& cand, uint32_t depth_left) {
      if (depth_left == 0) {
        return 1;
      }
      if (cand.size() < depth_left) {
        return 0;
      }
      if (depth_left == 1) {
        return cand.size();
      }
      uint64_t total = 0;
      std::vector<VertexId> next;
      for (const VertexId v : cand) {
        next.clear();
        Intersect(cand, dag.neighbors(v), next);
        total += Count(next, depth_left - 1);
      }
      return total;
    }
  } counter{dag};
  uint64_t total = 0;
  for (VertexId v = 0; v < dag.num_vertices(); ++v) {
    const auto adj = dag.neighbors(v);
    std::vector<VertexId> cand(adj.begin(), adj.end());
    if (cand.size() + 1 >= k) {
      total += counter.Count(cand, k - 1);
    }
  }
  return total;
}

}  // namespace gminer
