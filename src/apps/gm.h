// Graph Matching (GM, §8.1): lists/counts occurrences of a labeled rooted
// tree pattern in an attributed data graph, growing the match level by level
// exactly as the paper's Fig. 1 / Listing 2 example — each update() round
// matches one level of the pattern against the pulled candidate vertices,
// grows subG with the matched vertices, and sets the candidates for the next
// level. The reported count is the number of tree homomorphisms (each pattern
// node mapped to a data vertex with matching label, pattern edges mapped to
// data edges), computed by a bottom-up product once the deepest level matched.
#ifndef GMINER_APPS_GM_H_
#define GMINER_APPS_GM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "apps/aggregators.h"
#include "core/job.h"

namespace gminer {

// A rooted tree pattern. Node 0 is the root; children always have larger
// indices, and nodes are grouped into BFS levels at construction.
struct TreePattern {
  struct Node {
    Label label = 0;
    std::vector<int> children;
  };
  std::vector<Node> nodes;
  std::vector<std::vector<int>> levels;  // node indices per depth
  std::vector<int> parent;               // parent index, -1 for the root
  std::vector<int> depth;

  // Builds from (label, parent) pairs; entry 0 must have parent -1.
  static TreePattern Build(const std::vector<std::pair<Label, int>>& spec);

  int max_depth() const { return static_cast<int>(levels.size()) - 1; }
};

// The pattern used in the paper's Fig. 1: root 'a' with children 'b' and 'c';
// 'c' has children 'd' and 'e'. Labels are encoded a=0 .. g=6.
TreePattern Fig1Pattern();

class GraphMatchTask : public TaskBase {
 public:
  void Update(UpdateContext& ctx) override;
  void SerializeBody(OutArchive& out) const override;
  void DeserializeBody(InArchive& in) override;

  struct FrontierEntry {
    int32_t pattern_node = 0;
    VertexId parent = kInvalidVertex;
    VertexId vertex = kInvalidVertex;
  };
  struct MatchEdge {
    int32_t pattern_child = 0;  // pattern node matched by `child`
    VertexId parent = kInvalidVertex;
    VertexId child = kInvalidVertex;
  };

  std::vector<FrontierEntry>& frontier() { return frontier_; }
  const TreePattern* pattern = nullptr;  // injected by the job factory

 private:
  uint64_t CountMatches() const;

  std::vector<FrontierEntry> frontier_;
  std::vector<MatchEdge> match_edges_;
};

class GraphMatchJob : public JobBase {
 public:
  explicit GraphMatchJob(TreePattern pattern) : pattern_(std::move(pattern)) {}

  std::string name() const override { return "gm"; }
  void GenerateSeeds(const VertexTable& table, SeedSink& sink) override;
  std::unique_ptr<TaskBase> MakeTask() const override;
  std::unique_ptr<AggregatorBase> MakeAggregator() const override;

  static uint64_t MatchCount(const std::vector<uint8_t>& final_aggregate) {
    return SumAggregator::DecodeFinal(final_aggregate);
  }

  const TreePattern& pattern() const { return pattern_; }

 private:
  TreePattern pattern_;
};

}  // namespace gminer

#endif  // GMINER_APPS_GM_H_
