#include "apps/similarity.h"

#include <algorithm>

namespace gminer {

std::vector<double> InferAttributeWeights(const std::vector<std::vector<AttrValue>>& exemplars,
                                          size_t dims) {
  std::vector<double> weights(dims, 1.0 / (dims > 0 ? static_cast<double>(dims) : 1.0));
  if (exemplars.size() < 2 || dims == 0) {
    return weights;  // uniform fallback
  }
  std::vector<double> agreement(dims, 0.0);
  size_t pairs = 0;
  for (size_t i = 0; i < exemplars.size(); ++i) {
    for (size_t j = i + 1; j < exemplars.size(); ++j) {
      ++pairs;
      const size_t common = std::min({exemplars[i].size(), exemplars[j].size(), dims});
      for (size_t d = 0; d < common; ++d) {
        if (exemplars[i][d] == exemplars[j][d]) {
          agreement[d] += 1.0;
        }
      }
    }
  }
  double total = 0.0;
  for (size_t d = 0; d < dims; ++d) {
    // Laplace smoothing keeps every dimension in play.
    agreement[d] = (agreement[d] + 0.5) / (static_cast<double>(pairs) + 1.0);
    total += agreement[d];
  }
  for (size_t d = 0; d < dims; ++d) {
    weights[d] = agreement[d] / total;
  }
  return weights;
}

}  // namespace gminer
