// Maximum Clique Finding (MCF, §8.1): heavy non-attributed workload. One task
// per vertex v over its higher-id neighborhood; after one pull round the task
// owns the induced subgraph and runs a Tomita-style branch-and-bound search
// (greedy coloring bound) to completion. The MaxAggregator shares the current
// globally best clique size across workers — the parallel-pruning effect the
// paper highlights as the source of superlinear speedup (§3).
#ifndef GMINER_APPS_MCF_H_
#define GMINER_APPS_MCF_H_

#include <cstdint>
#include <vector>

#include "apps/aggregators.h"
#include "core/job.h"

namespace gminer {

class MaxCliqueTask : public Task<VertexId> {
 public:
  void Update(UpdateContext& ctx) override;

 private:
  // Branch and bound over the candidate-induced adjacency. `r_size` is the
  // size of the clique grown so far (including the root).
  void Search(const std::vector<std::vector<uint32_t>>& adj, std::vector<uint32_t>& cand,
              uint32_t r_size, MaxAggregator& agg, UpdateContext& ctx);

  int steps_since_cancel_check_ = 0;
};

class MaxCliqueJob : public JobBase {
 public:
  std::string name() const override { return "mcf"; }
  void GenerateSeeds(const VertexTable& table, SeedSink& sink) override;
  std::unique_ptr<TaskBase> MakeTask() const override;
  std::unique_ptr<AggregatorBase> MakeAggregator() const override;

  // Reads the maximum clique size out of a finished JobResult.
  static uint64_t MaxCliqueSize(const std::vector<uint8_t>& final_aggregate) {
    return MaxAggregator::DecodeFinal(final_aggregate);
  }
};

// Greedy-coloring upper bound used by both the distributed task and the
// serial baseline: colors `cand` (indices into adj) and returns the number of
// colors, an upper bound on the largest clique inside cand.
uint32_t GreedyColorBound(const std::vector<std::vector<uint32_t>>& adj,
                          const std::vector<uint32_t>& cand);

}  // namespace gminer

#endif  // GMINER_APPS_MCF_H_
