#include "apps/gm.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/logging.h"

namespace gminer {

TreePattern TreePattern::Build(const std::vector<std::pair<Label, int>>& spec) {
  TreePattern p;
  GM_CHECK(!spec.empty() && spec[0].second == -1) << "node 0 must be the root";
  p.nodes.resize(spec.size());
  p.parent.resize(spec.size());
  p.depth.assign(spec.size(), 0);
  for (size_t i = 0; i < spec.size(); ++i) {
    p.nodes[i].label = spec[i].first;
    p.parent[i] = spec[i].second;
    if (spec[i].second >= 0) {
      GM_CHECK(spec[i].second < static_cast<int>(i)) << "children must follow parents";
      p.nodes[static_cast<size_t>(spec[i].second)].children.push_back(static_cast<int>(i));
      p.depth[i] = p.depth[static_cast<size_t>(spec[i].second)] + 1;
    }
  }
  const int max_depth = *std::max_element(p.depth.begin(), p.depth.end());
  p.levels.resize(static_cast<size_t>(max_depth) + 1);
  for (size_t i = 0; i < spec.size(); ++i) {
    p.levels[static_cast<size_t>(p.depth[i])].push_back(static_cast<int>(i));
  }
  return p;
}

TreePattern Fig1Pattern() {
  // a(0) -> b(1), c(2); c -> d(3), e(4). Labels a..g = 0..6.
  return TreePattern::Build({{0, -1}, {1, 0}, {2, 0}, {3, 2}, {4, 2}});
}

void GraphMatchTask::Update(UpdateContext& ctx) {
  GM_CHECK(pattern != nullptr);
  auto* agg = static_cast<SumAggregator*>(ctx.aggregator());

  // 1. Filter the frontier by label: every frontier vertex was a candidate of
  //    this round, so its record (including its label) is available.
  std::vector<FrontierEntry> matched;
  matched.reserve(frontier_.size());
  for (const FrontierEntry& entry : frontier_) {
    const VertexRecord* record = ctx.GetVertex(entry.vertex);
    GM_CHECK(record != nullptr) << "frontier vertex " << entry.vertex << " unavailable";
    if (record->label == pattern->nodes[static_cast<size_t>(entry.pattern_node)].label) {
      matched.push_back(entry);
    }
  }
  if (matched.empty()) {
    MarkDead();
    return;
  }
  for (const FrontierEntry& entry : matched) {
    if (entry.parent != kInvalidVertex) {
      match_edges_.push_back({entry.pattern_node, entry.parent, entry.vertex});
      subgraph().AddEdge(entry.parent, entry.vertex);
    } else {
      subgraph().AddVertex(entry.vertex);
    }
  }

  // 2. Expand each distinct (pattern node, vertex) pair once into the next
  //    level's frontier.
  std::set<std::pair<int32_t, VertexId>> expanded;
  std::vector<FrontierEntry> next;
  for (const FrontierEntry& entry : matched) {
    if (!expanded.emplace(entry.pattern_node, entry.vertex).second) {
      continue;
    }
    const auto& children = pattern->nodes[static_cast<size_t>(entry.pattern_node)].children;
    if (children.empty()) {
      continue;
    }
    const VertexRecord* record = ctx.GetVertex(entry.vertex);
    for (const int child : children) {
      for (const VertexId u : record->adj) {
        next.push_back({child, entry.vertex, u});
      }
    }
  }

  if (next.empty()) {
    // Deepest level matched (or all matched nodes were leaves): count.
    agg->Add(CountMatches());
    MarkDead();
    return;
  }
  std::vector<VertexId> cand;
  cand.reserve(next.size());
  for (const FrontierEntry& entry : next) {
    cand.push_back(entry.vertex);
  }
  std::sort(cand.begin(), cand.end());
  cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
  frontier_ = std::move(next);
  set_candidates(std::move(cand));
}

uint64_t GraphMatchTask::CountMatches() const {
  // Bottom-up homomorphism count: cnt(pn, v) = Π_{c ∈ children(pn)}
  // Σ_{(c, v→w) ∈ match_edges} cnt(c, w). Leaves count 1. The task's root
  // match is the single vertex matched at pattern node 0.
  GM_CHECK(pattern != nullptr);
  // children_matches[(pn, parent_vertex)] per pattern child → matched ws.
  std::map<std::pair<int32_t, VertexId>, std::vector<VertexId>> edges_by_parent;
  std::set<std::pair<int32_t, VertexId>> matched_nodes;
  VertexId root_vertex = kInvalidVertex;
  for (const MatchEdge& e : match_edges_) {
    edges_by_parent[{e.pattern_child, e.parent}].push_back(e.child);
    matched_nodes.emplace(e.pattern_child, e.child);
  }
  if (!subgraph().vertices().empty()) {
    root_vertex = subgraph().vertices().front();
  }
  if (root_vertex == kInvalidVertex) {
    return 0;
  }
  std::map<std::pair<int32_t, VertexId>, uint64_t> memo;
  // Iterative bottom-up over levels, deepest first.
  const auto count_of = [&](int32_t pn, VertexId v) -> uint64_t {
    auto it = memo.find({pn, v});
    return it == memo.end() ? 0 : it->second;
  };
  for (int level = pattern->max_depth(); level >= 0; --level) {
    for (const int pn : pattern->levels[static_cast<size_t>(level)]) {
      const auto& children = pattern->nodes[static_cast<size_t>(pn)].children;
      // Vertices matched at pn: from matched_nodes (or the root).
      std::vector<VertexId> here;
      if (pn == 0) {
        here.push_back(root_vertex);
      } else {
        for (const auto& [node, v] : matched_nodes) {
          if (node == pn) {
            here.push_back(v);
          }
        }
      }
      for (const VertexId v : here) {
        uint64_t product = 1;
        for (const int child : children) {
          uint64_t sum = 0;
          auto it = edges_by_parent.find({child, v});
          if (it != edges_by_parent.end()) {
            // Deduplicate: the same (child, v, w) edge may have been recorded
            // through several frontier paths.
            std::vector<VertexId> ws = it->second;
            std::sort(ws.begin(), ws.end());
            ws.erase(std::unique(ws.begin(), ws.end()), ws.end());
            for (const VertexId w : ws) {
              sum += count_of(child, w);
            }
          }
          product *= sum;
          if (product == 0) {
            break;
          }
        }
        memo[{pn, v}] = product;
      }
    }
  }
  return count_of(0, root_vertex);
}

void GraphMatchTask::SerializeBody(OutArchive& out) const {
  out.Write<uint64_t>(frontier_.size());
  for (const FrontierEntry& e : frontier_) {
    out.Write(e.pattern_node);
    out.Write(e.parent);
    out.Write(e.vertex);
  }
  out.Write<uint64_t>(match_edges_.size());
  for (const MatchEdge& e : match_edges_) {
    out.Write(e.pattern_child);
    out.Write(e.parent);
    out.Write(e.child);
  }
}

void GraphMatchTask::DeserializeBody(InArchive& in) {
  const uint64_t nf = in.Read<uint64_t>();
  frontier_.resize(nf);
  for (uint64_t i = 0; i < nf; ++i) {
    frontier_[i].pattern_node = in.Read<int32_t>();
    frontier_[i].parent = in.Read<VertexId>();
    frontier_[i].vertex = in.Read<VertexId>();
  }
  const uint64_t ne = in.Read<uint64_t>();
  match_edges_.resize(ne);
  for (uint64_t i = 0; i < ne; ++i) {
    match_edges_[i].pattern_child = in.Read<int32_t>();
    match_edges_[i].parent = in.Read<VertexId>();
    match_edges_[i].child = in.Read<VertexId>();
  }
}

void GraphMatchJob::GenerateSeeds(const VertexTable& table, SeedSink& sink) {
  const Label root_label = pattern_.nodes[0].label;
  for (const auto& [v, record] : table.records()) {
    if (record.label != root_label) {
      continue;
    }
    auto task = std::make_unique<GraphMatchTask>();
    task->pattern = &pattern_;
    task->frontier().push_back({0, kInvalidVertex, v});
    task->set_candidates({v});
    sink.Emit(std::move(task));
  }
}

std::unique_ptr<TaskBase> GraphMatchJob::MakeTask() const {
  auto task = std::make_unique<GraphMatchTask>();
  task->pattern = &pattern_;
  return task;
}

std::unique_ptr<AggregatorBase> GraphMatchJob::MakeAggregator() const {
  return std::make_unique<SumAggregator>();
}

}  // namespace gminer
