#include "apps/tc.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/intersect.h"

namespace gminer {

void TriangleCountTask::Update(UpdateContext& ctx) {
  // candidates() = sorted higher-id neighbors of the root. For each candidate
  // u, triangles rooted here are the members of N(u) ∩ candidates greater
  // than u.
  auto* agg = static_cast<SumAggregator*>(ctx.aggregator());
  const auto& cand = candidates();
  uint64_t triangles = 0;
  for (const VertexId u : cand) {
    const VertexRecord* record = ctx.GetVertex(u);
    GM_CHECK(record != nullptr) << "candidate " << u << " unavailable";
    triangles += IntersectCountAbove(cand, record->adj, u);
  }
  agg->Add(triangles);
  MarkDead();
}

void TriangleCountJob::GenerateSeeds(const VertexTable& table, SeedSink& sink) {
  for (const auto& [v, record] : table.records()) {
    // Higher-id neighbors; a vertex roots a triangle only via two of them.
    std::vector<VertexId> cand;
    for (const VertexId u : record.adj) {
      if (u > v) {
        cand.push_back(u);
      }
    }
    if (cand.size() < 2) {
      continue;
    }
    auto task = std::make_unique<TriangleCountTask>();
    task->context() = v;
    task->subgraph().AddVertex(v);
    task->set_candidates(std::move(cand));
    sink.Emit(std::move(task));
  }
}

std::unique_ptr<TaskBase> TriangleCountJob::MakeTask() const {
  return std::make_unique<TriangleCountTask>();
}

std::unique_ptr<AggregatorBase> TriangleCountJob::MakeAggregator() const {
  return std::make_unique<SumAggregator>();
}

}  // namespace gminer
