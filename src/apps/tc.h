// Triangle Counting (TC, §8.1): the lightest of the five evaluation
// applications. One task per vertex v with degree ≥ 2; the candidates are the
// higher-id neighbors of v; one pull round fetches their adjacency lists and
// the task counts the triangles {v < u < w} it roots, so every triangle is
// counted exactly once cluster-wide.
#ifndef GMINER_APPS_TC_H_
#define GMINER_APPS_TC_H_

#include <cstdint>

#include "apps/aggregators.h"
#include "core/job.h"

namespace gminer {

class TriangleCountTask : public Task<VertexId> {
 public:
  // context() holds the root vertex id.
  void Update(UpdateContext& ctx) override;
};

class TriangleCountJob : public JobBase {
 public:
  std::string name() const override { return "tc"; }
  void GenerateSeeds(const VertexTable& table, SeedSink& sink) override;
  std::unique_ptr<TaskBase> MakeTask() const override;
  std::unique_ptr<AggregatorBase> MakeAggregator() const override;

  // Reads the triangle count out of a finished JobResult.
  static uint64_t Count(const std::vector<uint8_t>& final_aggregate) {
    return SumAggregator::DecodeFinal(final_aggregate);
  }
};

}  // namespace gminer

#endif  // GMINER_APPS_TC_H_
