// Graph Clustering (GC, §8.1): FocusCO-style focused clustering. Attribute
// weights are inferred from user-supplied exemplar vertices; each exemplar
// seeds a task that grows a focused cluster by repeated expand/shrink rounds
// until convergence — the paper's "expensive subgraph dynamic update until
// convergence". Each round pulls the current boundary, admits candidates
// whose weighted attribute similarity to the cluster clears the accept
// threshold, evicts members that fell below the shrink threshold, and stops
// when a round changes nothing (or the round / size caps hit).
#ifndef GMINER_APPS_GC_H_
#define GMINER_APPS_GC_H_

#include <cstdint>
#include <vector>

#include "apps/aggregators.h"
#include "core/job.h"
#include "graph/graph.h"

namespace gminer {

struct GcParams {
  std::vector<VertexId> exemplars;
  std::vector<double> weights;      // normalized attribute weights
  double accept_threshold = 0.3;    // min attachment score to join
  double shrink_threshold = 0.12;   // members below this get evicted
  uint32_t min_cluster = 3;         // smallest cluster reported
  uint32_t max_cluster = 64;        // growth cap
  int max_rounds = 16;              // convergence cap
  bool emit_outputs = true;         // Output() one line per cluster
};

class FocusedClusterTask : public TaskBase {
 public:
  void Update(UpdateContext& ctx) override;
  void SerializeBody(OutArchive& out) const override;
  void DeserializeBody(InArchive& in) override;

  struct Member {
    VertexId id = kInvalidVertex;
    std::vector<AttrValue> attrs;
    std::vector<VertexId> adj;
  };

  VertexId seed = kInvalidVertex;
  std::vector<Member> members;
  std::vector<VertexId> banned;  // evicted members never rejoin (convergence)
  const GcParams* params = nullptr;  // injected by the job

  // Neighbors of the cluster that are neither members nor banned.
  std::vector<VertexId> ComputeBoundary() const;

 private:
  void Finish(UpdateContext& ctx);
  double ScoreAgainstCluster(const VertexRecord& candidate) const;
};

class FocusedClusteringJob : public JobBase {
 public:
  explicit FocusedClusteringJob(GcParams params) : params_(std::move(params)) {}

  std::string name() const override { return "gc"; }
  void GenerateSeeds(const VertexTable& table, SeedSink& sink) override;
  std::unique_ptr<TaskBase> MakeTask() const override;
  std::unique_ptr<AggregatorBase> MakeAggregator() const override;

  static uint64_t ClusterCount(const std::vector<uint8_t>& final_aggregate) {
    return SumAggregator::DecodeFinal(final_aggregate);
  }

  const GcParams& params() const { return params_; }

 private:
  GcParams params_;
};

// Convenience: samples `num_exemplars` vertices from one planted attribute
// group of g, infers attribute weights from them, and returns a ready job
// parameter block.
GcParams MakeGcParams(const Graph& g, int num_exemplars, uint64_t seed);

}  // namespace gminer

#endif  // GMINER_APPS_GC_H_
