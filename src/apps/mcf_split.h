// Maximum clique finding with recursive task splitting — the load-balancing
// extension the paper names as future work (§9): instead of one monolithic
// branch-and-bound per seed, a task whose candidate set is larger than
// `split_threshold` spawns one child task per top-level branch (the "split"
// operation of the general mining schema, §4.1). Children are independent
// tasks: they re-enter the pipeline, can spill, and can be stolen — so a
// single huge neighborhood no longer pins one computing thread.
#ifndef GMINER_APPS_MCF_SPLIT_H_
#define GMINER_APPS_MCF_SPLIT_H_

#include <cstdint>

#include "apps/aggregators.h"
#include "core/job.h"

namespace gminer {

struct McfSplitParams {
  size_t split_threshold = 64;  // candidate sets larger than this split
  int max_split_depth = 3;      // beyond this, solve locally regardless
};

class SplittingCliqueTask : public TaskBase {
 public:
  void Update(UpdateContext& ctx) override;
  void SerializeBody(OutArchive& out) const override;
  void DeserializeBody(InArchive& in) override;

  uint32_t clique_size = 1;  // |R|: vertices already fixed into the clique
  int32_t depth = 0;         // split generation
  const McfSplitParams* params = nullptr;  // injected by the job

 private:
  void LocalSearch(const std::vector<std::vector<uint32_t>>& adj, std::vector<uint32_t>& cand,
                   uint32_t r_size, class MaxAggregator& agg, UpdateContext& ctx);
};

class SplittingCliqueJob : public JobBase {
 public:
  explicit SplittingCliqueJob(McfSplitParams params = {}) : params_(params) {}

  std::string name() const override { return "mcf-split"; }
  void GenerateSeeds(const VertexTable& table, SeedSink& sink) override;
  std::unique_ptr<TaskBase> MakeTask() const override;
  std::unique_ptr<AggregatorBase> MakeAggregator() const override;

  static uint64_t MaxCliqueSize(const std::vector<uint8_t>& final_aggregate) {
    return MaxAggregator::DecodeFinal(final_aggregate);
  }

 private:
  McfSplitParams params_;
};

}  // namespace gminer

#endif  // GMINER_APPS_MCF_SPLIT_H_
