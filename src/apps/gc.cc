#include "apps/gc.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "apps/similarity.h"
#include "common/logging.h"
#include "common/rng.h"

namespace gminer {

double FocusedClusterTask::ScoreAgainstCluster(const VertexRecord& candidate) const {
  // Attachment score: semantic closeness (average weighted attribute
  // similarity over the members the candidate touches) damped by structural
  // closeness (the square root of the fraction of members it touches).
  // Non-adjacent members contribute nothing, so a candidate must be both
  // similar and well-connected to clear the threshold.
  double total = 0.0;
  size_t adjacent = 0;
  for (const Member& m : members) {
    if (std::binary_search(candidate.adj.begin(), candidate.adj.end(), m.id)) {
      total += WeightedAttrSimilarity(candidate.attrs, m.attrs, params->weights);
      ++adjacent;
    }
  }
  if (adjacent == 0) {
    return 0.0;
  }
  const double semantic = total / static_cast<double>(adjacent);
  const double structural =
      static_cast<double>(adjacent) / static_cast<double>(members.size());
  return semantic * std::sqrt(structural);
}

std::vector<VertexId> FocusedClusterTask::ComputeBoundary() const {
  std::set<VertexId> member_ids;
  for (const Member& m : members) {
    member_ids.insert(m.id);
  }
  std::set<VertexId> banned_ids(banned.begin(), banned.end());
  std::set<VertexId> boundary;
  for (const Member& m : members) {
    for (const VertexId u : m.adj) {
      if (!member_ids.contains(u) && !banned_ids.contains(u)) {
        boundary.insert(u);
      }
    }
  }
  return {boundary.begin(), boundary.end()};
}

void FocusedClusterTask::Finish(UpdateContext& ctx) {
  auto* agg = static_cast<SumAggregator*>(ctx.aggregator());
  if (members.size() >= params->min_cluster) {
    agg->Add(1);
    if (params->emit_outputs) {
      std::string line = "cluster seed=" + std::to_string(seed) + " size=" +
                         std::to_string(members.size()) + " members=";
      for (const Member& m : members) {
        line += std::to_string(m.id);
        line += ',';
      }
      ctx.Output(line);
    }
  }
  MarkDead();
}

void FocusedClusterTask::Update(UpdateContext& ctx) {
  GM_CHECK(params != nullptr);
  if (round() >= params->max_rounds) {
    Finish(ctx);
    return;
  }
  bool changed = false;

  // Expand: evaluate the boundary candidates pulled for this round,
  // best-scoring first, respecting the growth cap.
  std::vector<std::pair<double, VertexId>> scored;
  for (const VertexId u : candidates()) {
    const VertexRecord* record = ctx.GetVertex(u);
    GM_CHECK(record != nullptr) << "candidate " << u << " unavailable";
    const double score = ScoreAgainstCluster(*record);
    if (score >= params->accept_threshold) {
      scored.emplace_back(score, u);
    }
  }
  std::sort(scored.begin(), scored.end(), std::greater<>());
  for (const auto& [score, u] : scored) {
    if (members.size() >= params->max_cluster) {
      break;
    }
    const VertexRecord* record = ctx.GetVertex(u);
    Member m;
    m.id = u;
    m.attrs = record->attrs;
    m.adj = record->adj;
    members.push_back(std::move(m));
    subgraph().AddVertex(u);
    changed = true;
  }

  // Shrink (the dynamic update): evict members whose average weighted
  // similarity to the rest of the cluster fell below the shrink threshold.
  if (members.size() > 1) {
    std::vector<Member> kept;
    kept.reserve(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i].id == seed) {
        kept.push_back(std::move(members[i]));
        continue;
      }
      double total = 0.0;
      for (size_t j = 0; j < members.size(); ++j) {
        if (j != i) {
          total += WeightedAttrSimilarity(members[i].attrs, members[j].attrs, params->weights);
        }
      }
      const double avg = total / static_cast<double>(members.size() - 1);
      if (avg < params->shrink_threshold) {
        banned.push_back(members[i].id);
        changed = true;
      } else {
        kept.push_back(std::move(members[i]));
      }
    }
    members = std::move(kept);
  }

  if (!changed && round() > 0) {
    Finish(ctx);  // converged: a full round without any add or evict
    return;
  }
  std::vector<VertexId> boundary = ComputeBoundary();
  if (boundary.empty() || members.size() >= params->max_cluster) {
    Finish(ctx);
    return;
  }
  set_candidates(std::move(boundary));
}

void FocusedClusterTask::SerializeBody(OutArchive& out) const {
  out.Write(seed);
  out.Write<uint64_t>(members.size());
  for (const Member& m : members) {
    out.Write(m.id);
    out.WriteVector(m.attrs);
    out.WriteVector(m.adj);
  }
  out.WriteVector(banned);
}

void FocusedClusterTask::DeserializeBody(InArchive& in) {
  seed = in.Read<VertexId>();
  const uint64_t n = in.Read<uint64_t>();
  members.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    members[i].id = in.Read<VertexId>();
    members[i].attrs = in.ReadVector<AttrValue>();
    members[i].adj = in.ReadVector<VertexId>();
  }
  banned = in.ReadVector<VertexId>();
}

void FocusedClusteringJob::GenerateSeeds(const VertexTable& table, SeedSink& sink) {
  for (const VertexId v : params_.exemplars) {
    const VertexRecord* record = table.Find(v);
    if (record == nullptr) {
      continue;  // another worker owns this exemplar
    }
    auto task = std::make_unique<FocusedClusterTask>();
    task->seed = v;
    task->params = &params_;
    FocusedClusterTask::Member m;
    m.id = v;
    m.attrs = record->attrs;
    m.adj = record->adj;
    task->members.push_back(std::move(m));
    task->subgraph().AddVertex(v);
    std::vector<VertexId> boundary = task->ComputeBoundary();
    if (boundary.empty()) {
      continue;
    }
    task->set_candidates(std::move(boundary));
    sink.Emit(std::move(task));
  }
}

std::unique_ptr<TaskBase> FocusedClusteringJob::MakeTask() const {
  auto task = std::make_unique<FocusedClusterTask>();
  task->params = &params_;
  return task;
}

std::unique_ptr<AggregatorBase> FocusedClusteringJob::MakeAggregator() const {
  return std::make_unique<SumAggregator>();
}

GcParams MakeGcParams(const Graph& g, int num_exemplars, uint64_t seed) {
  GM_CHECK(g.has_attributes()) << "graph clustering requires an attributed graph";
  GcParams params;
  Rng rng(seed);
  // Pick a random anchor user, then gather exemplars among users with highly
  // similar attribute lists (the same interest group), scanning from a random
  // offset — robust to arbitrary vertex-id assignment.
  VertexId anchor = rng.NextUint32(g.num_vertices());
  for (int attempts = 0; g.degree(anchor) < 2 && attempts < 1000; ++attempts) {
    anchor = rng.NextUint32(g.num_vertices());
  }
  const auto anchor_attrs = g.attributes(anchor);
  std::set<VertexId> chosen{anchor};
  const VertexId offset = rng.NextUint32(g.num_vertices());
  for (VertexId i = 0; i < g.num_vertices() && static_cast<int>(chosen.size()) < num_exemplars;
       ++i) {
    const VertexId v = (offset + i) % g.num_vertices();
    if (g.degree(v) >= 2 && AttrSimilarity(g.attributes(v), anchor_attrs) >= 0.6) {
      chosen.insert(v);
    }
  }
  params.exemplars.assign(chosen.begin(), chosen.end());
  std::vector<std::vector<AttrValue>> exemplar_attrs;
  size_t dims = 0;
  for (const VertexId v : params.exemplars) {
    const auto attrs = g.attributes(v);
    exemplar_attrs.emplace_back(attrs.begin(), attrs.end());
    dims = std::max(dims, attrs.size());
  }
  params.weights = InferAttributeWeights(exemplar_attrs, dims);
  return params;
}

}  // namespace gminer
