#include "apps/mcf_split.h"

#include <algorithm>
#include <unordered_map>

#include "apps/mcf.h"
#include "common/logging.h"

namespace gminer {

void SplittingCliqueTask::Update(UpdateContext& ctx) {
  GM_CHECK(params != nullptr);
  auto& agg = *static_cast<MaxAggregator*>(ctx.aggregator());
  const auto& cand = candidates();
  agg.Offer(clique_size);
  if (clique_size + cand.size() <= agg.best()) {
    MarkDead();
    return;
  }

  // Candidate-induced adjacency over this task's candidate set.
  std::unordered_map<VertexId, uint32_t> index;
  index.reserve(cand.size());
  for (uint32_t i = 0; i < cand.size(); ++i) {
    index.emplace(cand[i], i);
  }
  std::vector<std::vector<uint32_t>> adj(cand.size());
  for (uint32_t i = 0; i < cand.size(); ++i) {
    const VertexRecord* record = ctx.GetVertex(cand[i]);
    GM_CHECK(record != nullptr) << "candidate " << cand[i] << " unavailable";
    for (const VertexId u : record->adj) {
      auto it = index.find(u);
      if (it != index.end()) {
        adj[i].push_back(it->second);
      }
    }
    std::sort(adj[i].begin(), adj[i].end());
  }

  if (cand.size() <= params->split_threshold || depth >= params->max_split_depth) {
    // Small enough: solve locally with the same branch and bound as MCF.
    std::vector<uint32_t> order(cand.size());
    for (uint32_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(),
              [&adj](uint32_t a, uint32_t b) { return adj[a].size() < adj[b].size(); });
    LocalSearch(adj, order, clique_size, agg, ctx);
    MarkDead();
    return;
  }

  // Split: one child per top-level branch. Branch i fixes cand[i] into the
  // clique; its candidate set is cand ∩ N(cand[i]) restricted to indices
  // above i (the standard enumeration-order restriction, so branches are
  // disjoint).
  for (uint32_t i = 0; i < cand.size(); ++i) {
    std::vector<VertexId> child_cand;
    for (const uint32_t j : adj[i]) {
      if (j > i) {
        child_cand.push_back(cand[j]);
      }
    }
    if (clique_size + 1 + child_cand.size() <= agg.best()) {
      agg.Offer(clique_size + 1);
      continue;  // pruned before it is even born
    }
    auto child = std::make_unique<SplittingCliqueTask>();
    child->params = params;
    child->clique_size = clique_size + 1;
    child->depth = depth + 1;
    for (const VertexId v : subgraph().vertices()) {
      child->subgraph().AddVertex(v);
    }
    child->subgraph().AddVertex(cand[i]);
    child->set_candidates(std::move(child_cand));
    ctx.Spawn(std::move(child));
  }
  MarkDead();
}

void SplittingCliqueTask::LocalSearch(const std::vector<std::vector<uint32_t>>& adj,
                                      std::vector<uint32_t>& cand, uint32_t r_size,
                                      MaxAggregator& agg, UpdateContext& ctx) {
  if (ctx.cancelled()) {
    return;
  }
  if (cand.empty()) {
    agg.Offer(r_size);
    return;
  }
  if (r_size + cand.size() <= agg.best()) {
    return;
  }
  if (r_size + GreedyColorBound(adj, cand) <= agg.best()) {
    return;
  }
  while (!cand.empty()) {
    if (r_size + cand.size() <= agg.best()) {
      return;
    }
    const uint32_t v = cand.back();
    cand.pop_back();
    std::vector<uint32_t> next;
    for (const uint32_t u : cand) {
      if (std::binary_search(adj[v].begin(), adj[v].end(), u)) {
        next.push_back(u);
      }
    }
    if (r_size + 1 + next.size() > agg.best()) {
      LocalSearch(adj, next, r_size + 1, agg, ctx);
    } else if (r_size + 1 > agg.best()) {
      agg.Offer(r_size + 1);
    }
  }
}

void SplittingCliqueTask::SerializeBody(OutArchive& out) const {
  out.Write(clique_size);
  out.Write(depth);
}

void SplittingCliqueTask::DeserializeBody(InArchive& in) {
  clique_size = in.Read<uint32_t>();
  depth = in.Read<int32_t>();
}

void SplittingCliqueJob::GenerateSeeds(const VertexTable& table, SeedSink& sink) {
  for (const auto& [v, record] : table.records()) {
    std::vector<VertexId> cand;
    for (const VertexId u : record.adj) {
      if (u > v) {
        cand.push_back(u);
      }
    }
    auto task = std::make_unique<SplittingCliqueTask>();
    task->params = &params_;
    task->clique_size = 1;
    task->subgraph().AddVertex(v);
    task->set_candidates(std::move(cand));
    sink.Emit(std::move(task));
  }
}

std::unique_ptr<TaskBase> SplittingCliqueJob::MakeTask() const {
  auto task = std::make_unique<SplittingCliqueTask>();
  task->params = &params_;
  return task;
}

std::unique_ptr<AggregatorBase> SplittingCliqueJob::MakeAggregator() const {
  return std::make_unique<MaxAggregator>();
}

}  // namespace gminer
