// Densest-neighborhood subgraph finding — the "subgraph finding" category of
// the general mining schema (§4.1, category 3, citing the densest-k-subgraph
// problem [10]). Each task peels its seed's closed higher-neighborhood with
// Charikar's greedy (repeatedly remove the minimum-degree vertex, remember
// the densest intermediate subgraph); the global aggregator keeps the best
// density found anywhere. This demonstrates the schema's "shrink" operation,
// complementing the grow-style apps.
#ifndef GMINER_APPS_DSG_H_
#define GMINER_APPS_DSG_H_

#include <cstdint>

#include "apps/aggregators.h"
#include "core/job.h"

namespace gminer {

struct DsgParams {
  uint32_t min_degree = 3;  // seed filter: smaller neighborhoods are skipped
};

// Density is reported in fixed point: edges-per-vertex × 1000, so it folds
// through the integer MaxAggregator.
inline constexpr uint64_t kDensityFixedPoint = 1000;

class DensestSubgraphTask : public Task<VertexId> {
 public:
  void Update(UpdateContext& ctx) override;
  const DsgParams* params = nullptr;  // injected by the job
};

class DensestSubgraphJob : public JobBase {
 public:
  explicit DensestSubgraphJob(DsgParams params = {}) : params_(params) {}

  std::string name() const override { return "dsg"; }
  void GenerateSeeds(const VertexTable& table, SeedSink& sink) override;
  std::unique_ptr<TaskBase> MakeTask() const override;
  std::unique_ptr<AggregatorBase> MakeAggregator() const override;

  // Best density found, in units of edges-per-vertex.
  static double BestDensity(const std::vector<uint8_t>& final_aggregate) {
    return static_cast<double>(MaxAggregator::DecodeFinal(final_aggregate)) /
           static_cast<double>(kDensityFixedPoint);
  }

 private:
  DsgParams params_;
};

// Serial oracle with identical semantics (same seeds, same peeling).
double SerialDensestNeighborhood(const class Graph& g, const DsgParams& params);

}  // namespace gminer

#endif  // GMINER_APPS_DSG_H_
