// γ-Quasi-clique detection (§4.1 category 1 cites massive quasi-clique
// detection [1]). A γ-quasi-clique is a vertex set S where every member is
// adjacent to at least γ·(|S|−1) others in S. Each task peels its seed's
// closed higher-neighborhood: while some member violates the density bound,
// remove the one with minimum in-set degree (smallest id on ties). If the
// surviving set contains the seed and meets min_size, it is reported — a
// deterministic, oracle-checkable quasi-clique per seed, deduplicated by the
// minimum-id convention like the other enumeration apps.
#ifndef GMINER_APPS_QUASI_CLIQUE_H_
#define GMINER_APPS_QUASI_CLIQUE_H_

#include <cstdint>

#include "apps/aggregators.h"
#include "core/job.h"

namespace gminer {

struct QuasiCliqueParams {
  double gamma = 0.7;      // density requirement
  uint32_t min_size = 5;   // smallest quasi-clique reported
};

class QuasiCliqueTask : public Task<VertexId> {
 public:
  void Update(UpdateContext& ctx) override;
  const QuasiCliqueParams* params = nullptr;  // injected by the job
};

class QuasiCliqueJob : public JobBase {
 public:
  explicit QuasiCliqueJob(QuasiCliqueParams params = {}) : params_(params) {}

  std::string name() const override { return "quasi-clique"; }
  void GenerateSeeds(const VertexTable& table, SeedSink& sink) override;
  std::unique_ptr<TaskBase> MakeTask() const override;
  std::unique_ptr<AggregatorBase> MakeAggregator() const override;

  static uint64_t Count(const std::vector<uint8_t>& final_aggregate) {
    return SumAggregator::DecodeFinal(final_aggregate);
  }

 private:
  QuasiCliqueParams params_;
};

// Serial oracle with identical semantics.
uint64_t SerialQuasiCliqueCount(const class Graph& g, const QuasiCliqueParams& params);

}  // namespace gminer

#endif  // GMINER_APPS_QUASI_CLIQUE_H_
