#include "apps/dsg.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "graph/graph.h"

namespace gminer {

namespace {

// Charikar peeling over an adjacency given as index lists. Returns the best
// density (edges / vertices, fixed-point) over all peel prefixes. Determinism:
// ties on minimum degree break toward the smallest index.
uint64_t PeelDensity(std::vector<std::vector<uint32_t>> adj) {
  const size_t n = adj.size();
  if (n == 0) {
    return 0;
  }
  std::vector<uint32_t> degree(n);
  std::vector<bool> removed(n, false);
  uint64_t edges = 0;
  for (size_t v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(adj[v].size());
    edges += adj[v].size();
  }
  edges /= 2;
  size_t alive = n;
  uint64_t best = 0;
  while (alive > 0) {
    best = std::max(best, edges * kDensityFixedPoint / alive);
    // Find the minimum-degree live vertex (smallest index wins ties).
    size_t victim = n;
    for (size_t v = 0; v < n; ++v) {
      if (!removed[v] && (victim == n || degree[v] < degree[victim])) {
        victim = v;
      }
    }
    removed[victim] = true;
    --alive;
    edges -= degree[victim];
    for (const uint32_t u : adj[victim]) {
      if (!removed[u]) {
        --degree[u];
      }
    }
  }
  return best;
}

}  // namespace

void DensestSubgraphTask::Update(UpdateContext& ctx) {
  GM_CHECK(params != nullptr);
  auto& agg = *static_cast<MaxAggregator*>(ctx.aggregator());
  const auto& cand = candidates();
  // Indices: 0 = the seed, 1..k = candidates. The seed is adjacent to every
  // candidate by construction.
  std::unordered_map<VertexId, uint32_t> index;
  index.reserve(cand.size());
  for (uint32_t i = 0; i < cand.size(); ++i) {
    index.emplace(cand[i], i + 1);
  }
  std::vector<std::vector<uint32_t>> adj(cand.size() + 1);
  for (uint32_t i = 0; i < cand.size(); ++i) {
    adj[0].push_back(i + 1);
    adj[i + 1].push_back(0);
    const VertexRecord* record = ctx.GetVertex(cand[i]);
    GM_CHECK(record != nullptr) << "candidate " << cand[i] << " unavailable";
    for (const VertexId u : record->adj) {
      auto it = index.find(u);
      if (it != index.end()) {
        adj[i + 1].push_back(it->second);
      }
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  agg.Offer(PeelDensity(std::move(adj)));
  MarkDead();
}

void DensestSubgraphJob::GenerateSeeds(const VertexTable& table, SeedSink& sink) {
  for (const auto& [v, record] : table.records()) {
    std::vector<VertexId> cand;
    for (const VertexId u : record.adj) {
      if (u > v) {
        cand.push_back(u);
      }
    }
    if (cand.size() < params_.min_degree) {
      continue;
    }
    auto task = std::make_unique<DensestSubgraphTask>();
    task->context() = v;
    task->params = &params_;
    task->subgraph().AddVertex(v);
    task->set_candidates(std::move(cand));
    sink.Emit(std::move(task));
  }
}

std::unique_ptr<TaskBase> DensestSubgraphJob::MakeTask() const {
  auto task = std::make_unique<DensestSubgraphTask>();
  task->params = &params_;
  return task;
}

std::unique_ptr<AggregatorBase> DensestSubgraphJob::MakeAggregator() const {
  return std::make_unique<MaxAggregator>();
}

double SerialDensestNeighborhood(const Graph& g, const DsgParams& params) {
  uint64_t best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto adj_v = g.neighbors(v);
    std::vector<VertexId> cand(std::upper_bound(adj_v.begin(), adj_v.end(), v), adj_v.end());
    if (cand.size() < params.min_degree) {
      continue;
    }
    std::unordered_map<VertexId, uint32_t> index;
    for (uint32_t i = 0; i < cand.size(); ++i) {
      index.emplace(cand[i], i + 1);
    }
    std::vector<std::vector<uint32_t>> adj(cand.size() + 1);
    for (uint32_t i = 0; i < cand.size(); ++i) {
      adj[0].push_back(i + 1);
      adj[i + 1].push_back(0);
      for (const VertexId u : g.neighbors(cand[i])) {
        auto it = index.find(u);
        if (it != index.end()) {
          adj[i + 1].push_back(it->second);
        }
      }
    }
    for (auto& a : adj) {
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
    }
    best = std::max(best, PeelDensity(std::move(adj)));
  }
  return static_cast<double>(best) / static_cast<double>(kDensityFixedPoint);
}

}  // namespace gminer
