#include "apps/cd.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "apps/similarity.h"
#include "common/logging.h"

namespace gminer {

void CommunityTask::BronKerbosch(const std::vector<std::vector<uint32_t>>& adj,
                                 std::vector<uint32_t>& r, std::vector<uint32_t> p,
                                 std::vector<uint32_t> x, uint64_t& found, UpdateContext& ctx,
                                 std::string* sink) {
  if (ctx.cancelled()) {
    return;
  }
  if (p.empty() && x.empty()) {
    // r ∪ {seed} is a maximal clique in the filtered neighborhood.
    if (r.size() + 1 >= params->min_size) {
      ++found;
      if (sink != nullptr) {
        sink->append(" |");
        sink->append(std::to_string(r.size() + 1));
      }
    }
    return;
  }
  // Pivot: the vertex of p ∪ x with the most neighbors in p.
  uint32_t pivot = 0;
  size_t best = 0;
  bool have_pivot = false;
  for (const auto* set : {&p, &x}) {
    for (const uint32_t u : *set) {
      size_t cnt = 0;
      for (const uint32_t w : p) {
        if (std::binary_search(adj[u].begin(), adj[u].end(), w)) {
          ++cnt;
        }
      }
      if (!have_pivot || cnt > best) {
        best = cnt;
        pivot = u;
        have_pivot = true;
      }
    }
  }
  std::vector<uint32_t> branch;
  for (const uint32_t u : p) {
    if (!std::binary_search(adj[pivot].begin(), adj[pivot].end(), u)) {
      branch.push_back(u);
    }
  }
  for (const uint32_t v : branch) {
    std::vector<uint32_t> p_next;
    std::vector<uint32_t> x_next;
    for (const uint32_t u : p) {
      if (std::binary_search(adj[v].begin(), adj[v].end(), u)) {
        p_next.push_back(u);
      }
    }
    for (const uint32_t u : x) {
      if (std::binary_search(adj[v].begin(), adj[v].end(), u)) {
        x_next.push_back(u);
      }
    }
    r.push_back(v);
    BronKerbosch(adj, r, std::move(p_next), std::move(x_next), found, ctx, sink);
    r.pop_back();
    p.erase(std::find(p.begin(), p.end(), v));
    x.push_back(v);
  }
}

void CommunityTask::Update(UpdateContext& ctx) {
  GM_CHECK(params != nullptr);
  auto* agg = static_cast<SumAggregator*>(ctx.aggregator());

  // Attribute filter on the pulled candidates (the paper's filtering
  // condition on newly added vertex candidates).
  std::vector<VertexId> filtered;
  filtered.reserve(candidates().size());
  for (const VertexId u : candidates()) {
    const VertexRecord* record = ctx.GetVertex(u);
    GM_CHECK(record != nullptr) << "candidate " << u << " unavailable";
    if (AttrSimilarity(record->attrs, seed_attrs) >= params->min_similarity) {
      filtered.push_back(u);
    }
  }
  if (filtered.size() + 1 < params->min_size) {
    MarkDead();
    return;
  }

  // Candidate-induced adjacency (the seed connects to every candidate by
  // construction and stays implicit).
  std::unordered_map<VertexId, uint32_t> index;
  index.reserve(filtered.size());
  for (uint32_t i = 0; i < filtered.size(); ++i) {
    index.emplace(filtered[i], i);
  }
  std::vector<std::vector<uint32_t>> adj(filtered.size());
  for (uint32_t i = 0; i < filtered.size(); ++i) {
    const VertexRecord* record = ctx.GetVertex(filtered[i]);
    for (const VertexId u : record->adj) {
      auto it = index.find(u);
      if (it != index.end()) {
        adj[i].push_back(it->second);
      }
    }
    std::sort(adj[i].begin(), adj[i].end());
  }
  std::vector<uint32_t> p(filtered.size());
  for (uint32_t i = 0; i < p.size(); ++i) {
    p[i] = i;
  }
  uint64_t found = 0;
  std::vector<uint32_t> r;
  std::string line;
  std::string* sink = nullptr;
  if (params->emit_outputs) {
    line = "community seed=" + std::to_string(seed);
    sink = &line;
  }
  BronKerbosch(adj, r, std::move(p), {}, found, ctx, sink);
  agg->Add(found);
  if (params->emit_outputs && found > 0) {
    ctx.Output(line);
  }
  MarkDead();
}

void CommunityTask::SerializeBody(OutArchive& out) const {
  out.Write(seed);
  out.WriteVector(seed_attrs);
}

void CommunityTask::DeserializeBody(InArchive& in) {
  seed = in.Read<VertexId>();
  seed_attrs = in.ReadVector<AttrValue>();
}

void CommunityJob::GenerateSeeds(const VertexTable& table, SeedSink& sink) {
  for (const auto& [v, record] : table.records()) {
    if (record.adj.size() < params_.min_degree) {
      continue;
    }
    std::vector<VertexId> cand;
    for (const VertexId u : record.adj) {
      if (u > v) {
        cand.push_back(u);
      }
    }
    if (cand.size() + 1 < params_.min_size) {
      continue;
    }
    auto task = std::make_unique<CommunityTask>();
    task->seed = v;
    task->seed_attrs = record.attrs;
    task->params = &params_;
    task->subgraph().AddVertex(v);
    task->set_candidates(std::move(cand));
    sink.Emit(std::move(task));
  }
}

std::unique_ptr<TaskBase> CommunityJob::MakeTask() const {
  auto task = std::make_unique<CommunityTask>();
  task->params = &params_;
  return task;
}

std::unique_ptr<AggregatorBase> CommunityJob::MakeAggregator() const {
  return std::make_unique<SumAggregator>();
}

}  // namespace gminer
