// Community Detection (CD, §8.1): heavy attributed workload. Following the
// paper's description ([33]-style dense-subgraph mining with an attribute
// filter on newly added candidates), a community rooted at seed s is a
// maximal clique of size ≥ min_size inside the attribute-filtered
// neighborhood  {s} ∪ {u ∈ Γ(s) : u > s, sim(a(u), a(s)) ≥ min_similarity},
// enumerated with Bron–Kerbosch (pivoting). Restricting candidates to ids
// larger than the seed deduplicates communities across tasks.
#ifndef GMINER_APPS_CD_H_
#define GMINER_APPS_CD_H_

#include <cstdint>
#include <vector>

#include "apps/aggregators.h"
#include "core/job.h"

namespace gminer {

struct CdParams {
  double min_similarity = 0.4;  // attribute filter τ on new candidates
  uint32_t min_size = 3;        // smallest community reported
  uint32_t min_degree = 2;      // seeds must have at least this degree
  bool emit_outputs = false;    // Output() one line per community
};

class CommunityTask : public TaskBase {
 public:
  void Update(UpdateContext& ctx) override;
  void SerializeBody(OutArchive& out) const override;
  void DeserializeBody(InArchive& in) override;

  VertexId seed = kInvalidVertex;
  std::vector<AttrValue> seed_attrs;
  const CdParams* params = nullptr;  // injected by the job

 private:
  void BronKerbosch(const std::vector<std::vector<uint32_t>>& adj, std::vector<uint32_t>& r,
                    std::vector<uint32_t> p, std::vector<uint32_t> x, uint64_t& found,
                    UpdateContext& ctx, std::string* sink);
};

class CommunityJob : public JobBase {
 public:
  explicit CommunityJob(CdParams params = {}) : params_(params) {}

  std::string name() const override { return "cd"; }
  void GenerateSeeds(const VertexTable& table, SeedSink& sink) override;
  std::unique_ptr<TaskBase> MakeTask() const override;
  std::unique_ptr<AggregatorBase> MakeAggregator() const override;

  static uint64_t CommunityCount(const std::vector<uint8_t>& final_aggregate) {
    return SumAggregator::DecodeFinal(final_aggregate);
  }

 private:
  CdParams params_;
};

}  // namespace gminer

#endif  // GMINER_APPS_CD_H_
