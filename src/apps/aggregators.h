// Reusable aggregators for the mining applications (§5.1): a global sum (TC
// match counts, CD community counts) and a global max (the current maximum
// clique size, used for cross-worker pruning in MCF).
//
// Thread model: compute threads call Add()/Offer() concurrently; the reporter
// thread serializes the partial; the listener thread applies the broadcast
// global. All state is therefore atomic.
#ifndef GMINER_APPS_AGGREGATORS_H_
#define GMINER_APPS_AGGREGATORS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "core/job.h"

namespace gminer {

class SumAggregator : public AggregatorBase {
 public:
  // Compute-thread side.
  void Add(uint64_t delta) { local_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t local() const { return local_.load(std::memory_order_relaxed); }

  // Protocol.
  void SerializePartial(OutArchive& out) const override {
    out.Write<uint64_t>(local_.load(std::memory_order_relaxed));
  }
  void MergePartial(InArchive& in) override { fold_ += in.Read<uint64_t>(); }
  void SerializeGlobal(OutArchive& out) const override { out.Write<uint64_t>(fold_); }
  void ApplyGlobal(InArchive& in) override {
    global_.store(in.Read<uint64_t>(), std::memory_order_relaxed);
  }

  static uint64_t DecodeFinal(const std::vector<uint8_t>& bytes) {
    InArchive in(bytes.data(), bytes.size());
    return in.Read<uint64_t>();
  }

 private:
  std::atomic<uint64_t> local_{0};
  std::atomic<uint64_t> global_{0};
  uint64_t fold_ = 0;  // master-side only
};

class MaxAggregator : public AggregatorBase {
 public:
  // Compute-thread side: raises the local maximum.
  void Offer(uint64_t value) {
    uint64_t cur = local_.load(std::memory_order_relaxed);
    while (value > cur && !local_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  // The pruning bound a task should use: the larger of what this worker found
  // and what the master last broadcast.
  uint64_t best() const {
    return std::max(local_.load(std::memory_order_relaxed),
                    global_.load(std::memory_order_relaxed));
  }

  void SerializePartial(OutArchive& out) const override {
    out.Write<uint64_t>(local_.load(std::memory_order_relaxed));
  }
  void MergePartial(InArchive& in) override { fold_ = std::max(fold_, in.Read<uint64_t>()); }
  void SerializeGlobal(OutArchive& out) const override { out.Write<uint64_t>(fold_); }
  void ApplyGlobal(InArchive& in) override {
    const uint64_t value = in.Read<uint64_t>();
    uint64_t cur = global_.load(std::memory_order_relaxed);
    while (value > cur &&
           !global_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  static uint64_t DecodeFinal(const std::vector<uint8_t>& bytes) {
    InArchive in(bytes.data(), bytes.size());
    return in.Read<uint64_t>();
  }

 private:
  std::atomic<uint64_t> local_{0};
  std::atomic<uint64_t> global_{0};
  uint64_t fold_ = 0;  // master-side only
};

}  // namespace gminer

#endif  // GMINER_APPS_AGGREGATORS_H_
