// Attribute similarity helpers shared by the attributed-graph applications
// (community detection and graph clustering). Attribute lists are fixed-
// dimension categorical vectors (see WithUniformAttributes): similarity is
// the (optionally weighted) fraction of dimensions in agreement.
#ifndef GMINER_APPS_SIMILARITY_H_
#define GMINER_APPS_SIMILARITY_H_

#include <algorithm>
#include <span>
#include <vector>

#include "graph/types.h"

namespace gminer {

// Unweighted: |{d : a_d == b_d}| / dims. Mismatched lengths compare the
// common prefix and count the excess dimensions as disagreement.
inline double AttrSimilarity(std::span<const AttrValue> a, std::span<const AttrValue> b) {
  const size_t dims = std::max(a.size(), b.size());
  if (dims == 0) {
    return 0.0;
  }
  const size_t common = std::min(a.size(), b.size());
  size_t equal = 0;
  for (size_t d = 0; d < common; ++d) {
    if (a[d] == b[d]) {
      ++equal;
    }
  }
  return static_cast<double>(equal) / static_cast<double>(dims);
}

// Weighted variant used by FocusCO-style clustering: Σ w_d · [a_d == b_d],
// with the weight vector normalized to sum 1 by the caller.
inline double WeightedAttrSimilarity(std::span<const AttrValue> a, std::span<const AttrValue> b,
                                     std::span<const double> weights) {
  const size_t common = std::min({a.size(), b.size(), weights.size()});
  double sim = 0.0;
  for (size_t d = 0; d < common; ++d) {
    if (a[d] == b[d]) {
      sim += weights[d];
    }
  }
  return sim;
}

// Infers a normalized attribute weight vector from a set of exemplar
// attribute lists: dimensions on which exemplars agree more often get higher
// weight (the weight-learning step of FocusCO, simplified to pairwise
// agreement frequency).
std::vector<double> InferAttributeWeights(const std::vector<std::vector<AttrValue>>& exemplars,
                                          size_t dims);

}  // namespace gminer

#endif  // GMINER_APPS_SIMILARITY_H_
