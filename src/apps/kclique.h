// k-Clique counting — the subgraph/graphlet-enumeration category of the
// paper's general mining schema (§4.1, category 1; cliques per Bron–Kerbosch
// [6]). One task per vertex v: after one pull round the task owns the
// adjacency among v's higher-id candidates and counts the (k-1)-cliques
// inside them by ordered recursive intersection, so each k-clique is counted
// exactly once at its minimum-id member.
#ifndef GMINER_APPS_KCLIQUE_H_
#define GMINER_APPS_KCLIQUE_H_

#include <cstdint>

#include "apps/aggregators.h"
#include "core/job.h"

namespace gminer {

class KCliqueTask : public Task<uint32_t> {
 public:
  void Update(UpdateContext& ctx) override;
  uint32_t k = 4;  // injected by the job (context() holds the seed vertex)

 private:
  uint64_t CountFrom(const std::vector<std::vector<uint32_t>>& adj,
                     const std::vector<uint32_t>& cand, uint32_t depth_left,
                     UpdateContext& ctx);
};

class KCliqueJob : public JobBase {
 public:
  explicit KCliqueJob(uint32_t k) : k_(k) {}

  std::string name() const override { return "kclique"; }
  void GenerateSeeds(const VertexTable& table, SeedSink& sink) override;
  std::unique_ptr<TaskBase> MakeTask() const override;
  std::unique_ptr<AggregatorBase> MakeAggregator() const override;

  static uint64_t Count(const std::vector<uint8_t>& final_aggregate) {
    return SumAggregator::DecodeFinal(final_aggregate);
  }

  uint32_t k() const { return k_; }

 private:
  uint32_t k_;
};

// Serial oracle with identical semantics.
uint64_t SerialKCliqueCount(const class Graph& g, uint32_t k);

}  // namespace gminer

#endif  // GMINER_APPS_KCLIQUE_H_
