#include "apps/mcf.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace gminer {

uint32_t GreedyColorBound(const std::vector<std::vector<uint32_t>>& adj,
                          const std::vector<uint32_t>& cand) {
  // Sequential greedy coloring in the given order; vertices are indices into
  // adj. Returns the color count (clique size upper bound).
  std::unordered_map<uint32_t, uint32_t> color;
  color.reserve(cand.size());
  uint32_t num_colors = 0;
  std::vector<bool> used;
  for (const uint32_t v : cand) {
    used.assign(num_colors + 1, false);
    for (const uint32_t u : adj[v]) {
      auto it = color.find(u);
      if (it != color.end() && it->second <= num_colors) {
        used[it->second] = true;
      }
    }
    uint32_t c = 0;
    while (c < used.size() && used[c]) {
      ++c;
    }
    color[v] = c;
    num_colors = std::max(num_colors, c + 1);
  }
  return num_colors;
}

void MaxCliqueTask::Search(const std::vector<std::vector<uint32_t>>& adj,
                           std::vector<uint32_t>& cand, uint32_t r_size, MaxAggregator& agg,
                           UpdateContext& ctx) {
  if (++steps_since_cancel_check_ >= 1024) {
    steps_since_cancel_check_ = 0;
    if (ctx.cancelled()) {
      return;
    }
  }
  if (cand.empty()) {
    agg.Offer(r_size);
    return;
  }
  if (r_size + cand.size() <= agg.best()) {
    return;  // even taking every candidate cannot beat the global best
  }
  if (r_size + GreedyColorBound(adj, cand) <= agg.best()) {
    return;
  }
  // Branch on candidates in reverse order (highest degree last in the sorted
  // construction below); the classic Tomita loop shrinks cand as it goes.
  while (!cand.empty()) {
    if (r_size + cand.size() <= agg.best()) {
      return;
    }
    const uint32_t v = cand.back();
    cand.pop_back();
    // next = cand ∩ N(v)
    std::vector<uint32_t> next;
    next.reserve(std::min(cand.size(), adj[v].size()));
    for (const uint32_t u : cand) {
      if (std::binary_search(adj[v].begin(), adj[v].end(), u)) {
        next.push_back(u);
      }
    }
    if (r_size + 1 + next.size() > agg.best()) {
      Search(adj, next, r_size + 1, agg, ctx);
    } else if (r_size + 1 > agg.best()) {
      agg.Offer(r_size + 1);
    }
  }
}

void MaxCliqueTask::Update(UpdateContext& ctx) {
  auto& agg = *static_cast<MaxAggregator*>(ctx.aggregator());
  const auto& cand = candidates();
  // The clique containing the root alone.
  agg.Offer(1 + 0);
  if (1 + cand.size() <= agg.best()) {
    MarkDead();
    return;
  }
  // Build the candidate-induced adjacency: index candidates 0..k-1 and keep,
  // per candidate, the sorted indices of its neighbors inside the set.
  std::unordered_map<VertexId, uint32_t> index;
  index.reserve(cand.size());
  for (uint32_t i = 0; i < cand.size(); ++i) {
    index.emplace(cand[i], i);
  }
  std::vector<std::vector<uint32_t>> adj(cand.size());
  for (uint32_t i = 0; i < cand.size(); ++i) {
    const VertexRecord* record = ctx.GetVertex(cand[i]);
    GM_CHECK(record != nullptr) << "candidate " << cand[i] << " unavailable";
    for (const VertexId u : record->adj) {
      auto it = index.find(u);
      if (it != index.end()) {
        adj[i].push_back(it->second);
      }
    }
    std::sort(adj[i].begin(), adj[i].end());
  }
  // Order candidates by ascending induced degree so the densest vertices are
  // branched first (popped from the back).
  std::vector<uint32_t> order(cand.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&adj](uint32_t a, uint32_t b) { return adj[a].size() < adj[b].size(); });
  Search(adj, order, /*r_size=*/1, agg, ctx);
  MarkDead();
}

void MaxCliqueJob::GenerateSeeds(const VertexTable& table, SeedSink& sink) {
  for (const auto& [v, record] : table.records()) {
    std::vector<VertexId> cand;
    for (const VertexId u : record.adj) {
      if (u > v) {
        cand.push_back(u);
      }
    }
    // Every vertex seeds a task: the max clique is found from the task of its
    // minimum-id member; isolated vertices still contribute cliques of size 1.
    auto task = std::make_unique<MaxCliqueTask>();
    task->context() = v;
    task->subgraph().AddVertex(v);
    task->set_candidates(std::move(cand));
    sink.Emit(std::move(task));
  }
}

std::unique_ptr<TaskBase> MaxCliqueJob::MakeTask() const {
  return std::make_unique<MaxCliqueTask>();
}

std::unique_ptr<AggregatorBase> MaxCliqueJob::MakeAggregator() const {
  return std::make_unique<MaxAggregator>();
}

}  // namespace gminer
