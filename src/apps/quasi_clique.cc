#include "apps/quasi_clique.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/graph.h"
#include "graph/intersect.h"

namespace gminer {

namespace {

// Peels indices until every survivor has in-set degree ≥ γ·(|S|−1).
// Returns the surviving index set (possibly empty). Deterministic: the
// minimum-degree victim with the smallest index is removed each step.
std::vector<uint32_t> PeelToQuasiClique(const std::vector<std::vector<uint32_t>>& adj,
                                        double gamma) {
  const size_t n = adj.size();
  std::vector<uint32_t> degree(n);
  std::vector<bool> removed(n, false);
  for (size_t v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(adj[v].size());
  }
  size_t alive = n;
  while (alive > 0) {
    // Find the worst violator (minimum in-set degree among violators).
    size_t victim = n;
    for (size_t v = 0; v < n; ++v) {
      if (removed[v]) {
        continue;
      }
      if (static_cast<double>(degree[v]) + 1e-9 <
          gamma * static_cast<double>(alive - 1)) {
        if (victim == n || degree[v] < degree[victim]) {
          victim = v;
        }
      }
    }
    if (victim == n) {
      break;  // everyone satisfies the bound: quasi-clique found
    }
    removed[victim] = true;
    --alive;
    for (const uint32_t u : adj[victim]) {
      if (!removed[u]) {
        --degree[u];
      }
    }
  }
  std::vector<uint32_t> survivors;
  for (size_t v = 0; v < n; ++v) {
    if (!removed[v]) {
      survivors.push_back(static_cast<uint32_t>(v));
    }
  }
  return survivors;
}

// Maps the kernel-intersected common neighbors (ascending VertexIds, a
// subsequence of the sorted candidate list) back to 1-based candidate
// indices. A resumable lower_bound keeps the whole mapping O(c log n).
void AppendCandidateIndices(const std::vector<VertexId>& cand,
                            const std::vector<VertexId>& common,
                            std::vector<uint32_t>& out) {
  size_t pos = 0;
  for (const VertexId w : common) {
    pos = static_cast<size_t>(
        std::lower_bound(cand.begin() + static_cast<int64_t>(pos), cand.end(), w) -
        cand.begin());
    out.push_back(static_cast<uint32_t>(pos) + 1);
    ++pos;
  }
}

}  // namespace

void QuasiCliqueTask::Update(UpdateContext& ctx) {
  GM_CHECK(params != nullptr);
  auto* agg = static_cast<SumAggregator*>(ctx.aggregator());
  const auto& cand = candidates();
  // Index 0 = seed, 1..k = candidates (seed adjacent to all by construction).
  std::vector<std::vector<uint32_t>> adj(cand.size() + 1);
  std::vector<VertexId> common;
  for (uint32_t i = 0; i < cand.size(); ++i) {
    adj[0].push_back(i + 1);
    adj[i + 1].push_back(0);
    const VertexRecord* record = ctx.GetVertex(cand[i]);
    GM_CHECK(record != nullptr) << "candidate " << cand[i] << " unavailable";
    common.clear();
    Intersect(cand, record->adj, common);
    AppendCandidateIndices(cand, common, adj[i + 1]);
  }
  const auto survivors = PeelToQuasiClique(adj, params->gamma);
  const bool has_seed =
      std::find(survivors.begin(), survivors.end(), 0u) != survivors.end();
  if (has_seed && survivors.size() >= params->min_size) {
    agg->Add(1);
  }
  MarkDead();
}

void QuasiCliqueJob::GenerateSeeds(const VertexTable& table, SeedSink& sink) {
  for (const auto& [v, record] : table.records()) {
    std::vector<VertexId> cand;
    for (const VertexId u : record.adj) {
      if (u > v) {
        cand.push_back(u);
      }
    }
    if (cand.size() + 1 < params_.min_size) {
      continue;
    }
    auto task = std::make_unique<QuasiCliqueTask>();
    task->context() = v;
    task->params = &params_;
    task->subgraph().AddVertex(v);
    task->set_candidates(std::move(cand));
    sink.Emit(std::move(task));
  }
}

std::unique_ptr<TaskBase> QuasiCliqueJob::MakeTask() const {
  auto task = std::make_unique<QuasiCliqueTask>();
  task->params = &params_;
  return task;
}

std::unique_ptr<AggregatorBase> QuasiCliqueJob::MakeAggregator() const {
  return std::make_unique<SumAggregator>();
}

uint64_t SerialQuasiCliqueCount(const Graph& g, const QuasiCliqueParams& params) {
  uint64_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto adj_v = g.neighbors(v);
    std::vector<VertexId> cand(std::upper_bound(adj_v.begin(), adj_v.end(), v), adj_v.end());
    if (cand.size() + 1 < params.min_size) {
      continue;
    }
    std::vector<std::vector<uint32_t>> adj(cand.size() + 1);
    std::vector<VertexId> common;
    for (uint32_t i = 0; i < cand.size(); ++i) {
      adj[0].push_back(i + 1);
      adj[i + 1].push_back(0);
      common.clear();
      Intersect(cand, g.neighbors(cand[i]), common);
      AppendCandidateIndices(cand, common, adj[i + 1]);
    }
    const auto survivors = PeelToQuasiClique(adj, params.gamma);
    const bool has_seed =
        std::find(survivors.begin(), survivors.end(), 0u) != survivors.end();
    if (has_seed && survivors.size() >= params.min_size) {
      ++total;
    }
  }
  return total;
}

}  // namespace gminer
