#include "partition/hash_partitioner.h"

#include "common/logging.h"

namespace gminer {

namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::vector<WorkerId> HashPartitioner::Partition(const Graph& g, int k) {
  GM_CHECK(k >= 1);
  std::vector<WorkerId> owner(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    owner[v] = static_cast<WorkerId>(Mix64(v) % static_cast<uint64_t>(k));
  }
  return owner;
}

PartitionQuality EvaluatePartition(const Graph& g, const std::vector<WorkerId>& owner, int k) {
  PartitionQuality q;
  uint64_t cut = 0;
  uint64_t total = 0;
  std::vector<uint64_t> sizes(static_cast<size_t>(k), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ++sizes[static_cast<size_t>(owner[v])];
    for (const VertexId u : g.neighbors(v)) {
      if (u > v) {
        ++total;
        if (owner[u] != owner[v]) {
          ++cut;
        }
      }
    }
  }
  q.edge_cut_fraction = total > 0 ? static_cast<double>(cut) / static_cast<double>(total) : 0.0;
  q.locality = 1.0 - q.edge_cut_fraction;
  uint64_t max_size = 0;
  for (const uint64_t s : sizes) {
    max_size = std::max(max_size, s);
  }
  const double ideal = static_cast<double>(g.num_vertices()) / k;
  q.imbalance = ideal > 0 ? static_cast<double>(max_size) / ideal - 1.0 : 0.0;
  return q;
}

}  // namespace gminer
