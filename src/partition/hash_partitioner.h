// Default partitioning of most existing graph systems: vertex-id hashing.
// Destroys locality — the comparison point for BDG in Figure 11.
#ifndef GMINER_PARTITION_HASH_PARTITIONER_H_
#define GMINER_PARTITION_HASH_PARTITIONER_H_

#include "partition/partitioner.h"

namespace gminer {

class HashPartitioner : public Partitioner {
 public:
  std::vector<WorkerId> Partition(const Graph& g, int k) override;
};

}  // namespace gminer

#endif  // GMINER_PARTITION_HASH_PARTITIONER_H_
