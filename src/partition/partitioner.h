// Static load balancing by graph partitioning (§6.1). A partitioner assigns
// each vertex to one of k workers. The quality metrics here quantify what the
// paper's Figure 11 measures indirectly: edge cut drives remote-candidate
// pulling (network bytes) and cache pressure (memory).
#ifndef GMINER_PARTITION_PARTITIONER_H_
#define GMINER_PARTITION_PARTITIONER_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace gminer {

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  // Returns owner[v] in [0, k) for every vertex of g.
  virtual std::vector<WorkerId> Partition(const Graph& g, int k) = 0;
};

struct PartitionQuality {
  double edge_cut_fraction = 0.0;  // fraction of edges crossing workers
  double locality = 0.0;           // 1 - edge_cut_fraction
  double imbalance = 0.0;          // max partition size / ideal size - 1
};

PartitionQuality EvaluatePartition(const Graph& g, const std::vector<WorkerId>& owner, int k);

}  // namespace gminer

#endif  // GMINER_PARTITION_PARTITIONER_H_
