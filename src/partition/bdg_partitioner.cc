#include "partition/bdg_partitioner.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"

namespace gminer {

namespace {

constexpr uint32_t kUncolored = 0xffffffffu;

}  // namespace

std::vector<uint32_t> BdgPartitioner::ComputeBlocks(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<uint32_t> color(n, kUncolored);
  Rng rng(seed_);
  uint32_t next_color = 0;
  VertexId colored = 0;

  std::vector<VertexId> frontier;
  std::vector<VertexId> next_frontier;
  for (int round = 0; round < max_rounds_ && colored < n; ++round) {
    // Sample sources from the uncolored vertices.
    frontier.clear();
    for (int s = 0; s < num_sources_ && colored < n; ++s) {
      // Rejection sampling; bounded retries keep the round cheap when few
      // vertices remain, the CC fallback handles stragglers.
      for (int attempt = 0; attempt < 32; ++attempt) {
        const VertexId v = rng.NextUint32(n);
        if (color[v] == kUncolored) {
          color[v] = next_color++;
          ++colored;
          frontier.push_back(v);
          break;
        }
      }
    }
    // Propagate colors bfs_depth steps.
    for (int depth = 0; depth < bfs_depth_ && !frontier.empty(); ++depth) {
      next_frontier.clear();
      for (const VertexId v : frontier) {
        for (const VertexId u : g.neighbors(v)) {
          if (color[u] == kUncolored) {
            color[u] = color[v];
            ++colored;
            next_frontier.push_back(u);
          }
        }
      }
      frontier.swap(next_frontier);
    }
  }

  if (colored < n) {
    // Hash-Min connected components over the uncolored residue: every vertex
    // repeatedly adopts the minimum component id among itself and its
    // uncolored neighbors until a fixed point; each residual CC is one block.
    std::vector<VertexId> comp(n, kInvalidVertex);
    for (VertexId v = 0; v < n; ++v) {
      if (color[v] == kUncolored) {
        comp[v] = v;
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (VertexId v = 0; v < n; ++v) {
        if (comp[v] == kInvalidVertex) {
          continue;
        }
        VertexId best = comp[v];
        for (const VertexId u : g.neighbors(v)) {
          if (comp[u] != kInvalidVertex && comp[u] < best) {
            best = comp[u];
          }
        }
        if (best < comp[v]) {
          comp[v] = best;
          changed = true;
        }
      }
    }
    std::unordered_map<VertexId, uint32_t> cc_color;
    for (VertexId v = 0; v < n; ++v) {
      if (comp[v] == kInvalidVertex) {
        continue;
      }
      auto [it, inserted] = cc_color.try_emplace(comp[v], next_color);
      if (inserted) {
        ++next_color;
      }
      color[v] = it->second;
    }
  }
  return color;
}

std::vector<WorkerId> BdgPartitioner::Partition(const Graph& g, int k) {
  GM_CHECK(k >= 1);
  const VertexId n = g.num_vertices();
  if (k == 1) {
    return std::vector<WorkerId>(n, 0);
  }
  const std::vector<uint32_t> color = ComputeBlocks(g);

  // Gather block membership.
  uint32_t num_blocks = 0;
  for (const uint32_t c : color) {
    num_blocks = std::max(num_blocks, c + 1);
  }
  std::vector<std::vector<VertexId>> block_vertices(num_blocks);
  for (VertexId v = 0; v < n; ++v) {
    block_vertices[color[v]].push_back(v);
  }

  // Assign blocks in descending size order (the paper sorts largest-first so
  // the greedy choice is best informed for the heavy blocks).
  std::vector<uint32_t> order(num_blocks);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (block_vertices[a].size() != block_vertices[b].size()) {
      return block_vertices[a].size() > block_vertices[b].size();
    }
    return a < b;
  });

  std::vector<WorkerId> owner(n, kInvalidWorker);
  std::vector<uint64_t> part_size(static_cast<size_t>(k), 0);
  const double capacity = static_cast<double>(n) / k;

  std::vector<uint64_t> overlap(static_cast<size_t>(k), 0);
  for (const uint32_t b : order) {
    const auto& members = block_vertices[b];
    if (members.empty()) {
      continue;
    }
    // |P(i) ∩ Γ(B)|: count already-placed neighbors per worker.
    std::fill(overlap.begin(), overlap.end(), 0);
    for (const VertexId v : members) {
      for (const VertexId u : g.neighbors(v)) {
        if (owner[u] != kInvalidWorker && color[u] != b) {
          ++overlap[static_cast<size_t>(owner[u])];
        }
      }
    }
    int best = 0;
    double best_score = -1.0;
    for (int i = 0; i < k; ++i) {
      const double free_frac =
          1.0 - static_cast<double>(part_size[static_cast<size_t>(i)]) / capacity;
      // Eq. 1 with +1 smoothing on the overlap so that blocks with no placed
      // neighbors still prefer the emptiest worker; negative free capacity
      // disqualifies overstuffed workers.
      const double score = (static_cast<double>(overlap[static_cast<size_t>(i)]) + 1.0) *
                           std::max(free_frac, 1e-9);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    for (const VertexId v : members) {
      owner[v] = best;
    }
    part_size[static_cast<size_t>(best)] += members.size();
  }
  return owner;
}

}  // namespace gminer
