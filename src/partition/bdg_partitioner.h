// Block-based Deterministic Greedy (BDG) partitioning (§6.1).
//
// Phase 1 — blocking: a multi-source BFS colors the graph. Each round samples
// `num_sources` uncolored source vertices, assigns each a fresh color, and
// propagates colors breadth-first for `bfs_depth` steps (an uncolored vertex
// adopts one of the colors it receives). Rounds repeat until everything is
// colored; after `max_rounds`, remaining uncolored vertices fall back to a
// Hash-Min connected-components pass and each residual CC becomes one block.
//
// Phase 2 — greedy assignment: blocks are sorted by descending size and each
// block B goes to the worker maximizing |P(i) ∩ Γ(B)| * (1 - |P(i)|/C)  (Eq. 1),
// where Γ(B) is the 1-hop neighborhood of B, P(i) the vertices already placed
// on worker i, and C = |V|/k the capacity.
#ifndef GMINER_PARTITION_BDG_PARTITIONER_H_
#define GMINER_PARTITION_BDG_PARTITIONER_H_

#include <cstdint>

#include "partition/partitioner.h"

namespace gminer {

class BdgPartitioner : public Partitioner {
 public:
  BdgPartitioner(int num_sources, int bfs_depth, int max_rounds, uint64_t seed)
      : num_sources_(num_sources), bfs_depth_(bfs_depth), max_rounds_(max_rounds), seed_(seed) {}

  std::vector<WorkerId> Partition(const Graph& g, int k) override;

  // Exposed for testing: block id per vertex after phase 1.
  std::vector<uint32_t> ComputeBlocks(const Graph& g);

 private:
  int num_sources_;
  int bfs_depth_;
  int max_rounds_;
  uint64_t seed_;
};

}  // namespace gminer

#endif  // GMINER_PARTITION_BDG_PARTITIONER_H_
