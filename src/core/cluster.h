// In-process deployment of a G-Miner cluster: N workers plus a master wired
// through the simulated network. One Cluster::Run() call corresponds to one
// job submission in the paper's system.
#ifndef GMINER_CORE_CLUSTER_H_
#define GMINER_CORE_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/job.h"
#include "core/job_result.h"
#include "graph/graph.h"
#include "net/fault.h"

namespace gminer {

struct RunOptions {
  // When non-empty, each worker writes its seed tasks to
  // <checkpoint_dir>/worker_<i>.tasks before processing (fault tolerance §7:
  // recovery re-runs tasks from the previous checkpoint).
  std::string checkpoint_dir;

  // When non-empty, workers skip GenerateSeeds() and recover their task sets
  // from <recover_dir>/worker_<i>.tasks instead.
  std::string recover_dir;

  // Optional remap for recovery after a "node failure": entry i names the
  // checkpoint file index whose tasks worker i should adopt (tasks are
  // independent, so any worker can re-run any checkpointed task). Empty =
  // identity mapping.
  std::vector<int> recover_assignment;

  // Deterministic fault injection on the simulated network (net/fault.h):
  // message drops / duplicates / delays, endpoint blackouts, worker kills.
  // Empty() = no injector is installed.
  FaultPlan faults;

  // --- Task-pipeline event tracing (common/trace.h) ---
  // Records per-thread typed events (task lifecycle spans, pulls, cache
  // hits, recovery) and folds per-stage latency histograms into the result.
  bool enable_tracing = false;

  // When non-empty, also writes the merged trace as Chrome trace-event JSON
  // (chrome://tracing / Perfetto loadable). Implies enable_tracing.
  std::string trace_json_path;

  // Events each thread's ring can hold before dropping (drop-newest, counted
  // in JobResult::trace_events_dropped). Default 32K events ≈ 1 MiB/thread.
  size_t trace_ring_capacity = size_t{1} << 15;

  // --- Live metrics endpoint (metrics/http_endpoint.h) ---
  // When >= 0 and the metrics plane is enabled, the master serves GET
  // /metrics (Prometheus text exposition) and GET /status (JSON) on
  // 127.0.0.1:<metrics_port> for the duration of the run. 0 binds an
  // ephemeral port. -1 (default) disables the endpoint.
  int metrics_port = -1;

  // Invoked once the endpoint is listening, with the bound port — lets tests
  // (and embedders) scrape an ephemeral-port server mid-job.
  std::function<void(int)> on_metrics_ready;
};

class Cluster {
 public:
  explicit Cluster(JobConfig config) : config_(std::move(config)) {}

  // Partitions g (timed separately), deploys workers + master, runs the job
  // to completion (or budget violation) and gathers metrics and outputs.
  JobResult Run(const Graph& g, JobBase& job, const RunOptions& options = {});

  const JobConfig& config() const { return config_; }

 private:
  JobConfig config_;
};

}  // namespace gminer

#endif  // GMINER_CORE_CLUSTER_H_
