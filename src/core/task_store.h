// The task store of the task pipeline (§4.3, §7): manages all inactive tasks
// in a priority queue ordered by an LSH key of each task's remote-candidate
// set, so that tasks sharing remote vertices dequeue consecutively and the
// RCV cache hit rate stays high (Fig. 3, Fig. 12).
//
// Memory is bounded: only the head block lives in memory; overflow batches
// are written to disk as sorted spill blocks with a [min_key, max_key] index.
// When the head drains, the block with the smallest min_key is loaded back.
// Disabling LSH (Fig. 12's ablation) degrades the key to an arrival sequence
// number, i.e. a FIFO queue.
#ifndef GMINER_CORE_TASK_STORE_H_
#define GMINER_CORE_TASK_STORE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "core/task.h"
#include "lsh/minhash.h"
#include "metrics/counters.h"
#include "metrics/memory_tracker.h"

namespace gminer {

class TaskStore {
 public:
  using TaskFactory = std::function<std::unique_ptr<TaskBase>()>;

  struct Options {
    size_t block_capacity = 1024;      // tasks per block
    size_t memory_blocks = 1;          // head blocks kept in memory
    bool enable_lsh = true;
    int lsh_num_hashes = 16;
    int lsh_bands = 4;
    uint64_t lsh_seed = 1;
    std::string spill_dir;             // must exist
  };

  TaskStore(Options options, TaskFactory factory, WorkerCounters* counters,
            MemoryTracker* memory);
  ~TaskStore();

  TaskStore(const TaskStore&) = delete;
  TaskStore& operator=(const TaskStore&) = delete;

  // Inserts a batch of inactive tasks (the task buffer flushes in batches so
  // tasks with common remote candidates are gathered together, §4.3).
  void InsertBatch(std::vector<std::unique_ptr<TaskBase>> tasks) EXCLUDES(mutex_);

  // Pops the lowest-key task; loads a spill block first if the in-memory head
  // is empty. Returns nullopt when the store is empty.
  std::unique_ptr<TaskBase> TryPop() EXCLUDES(mutex_);

  // Removes up to `max_tasks` in-memory tasks satisfying `eligible` for
  // migration to another worker (task stealing §6.2). Never touches spilled
  // blocks — migrating those would pay disk I/O on top of network cost.
  // With `ranked` set (the §9 improved cost model), the eligible tasks are
  // ordered by migration desirability — lowest locality first, then lowest
  // migration cost — instead of taking whatever sits at the back of the
  // queue.
  std::vector<std::unique_ptr<TaskBase>> StealBatch(
      size_t max_tasks, const std::function<bool(const TaskBase&)>& eligible,
      bool ranked = false) EXCLUDES(mutex_);

  // Serializes every task (memory + disk) for checkpointing; the store is
  // drained afterwards.
  std::vector<std::vector<uint8_t>> DrainSerialized() EXCLUDES(mutex_);

  size_t ApproxSize() const EXCLUDES(mutex_);
  size_t InMemorySize() const EXCLUDES(mutex_);

 private:
  struct SpillBlock {
    uint64_t min_key = 0;
    uint64_t max_key = 0;
    size_t count = 0;
    std::string path;
  };

  uint64_t KeyFor(const TaskBase& task) REQUIRES(mutex_);
  void SpillLocked(std::vector<std::pair<uint64_t, std::unique_ptr<TaskBase>>> batch)
      REQUIRES(mutex_);
  void LoadBestBlockLocked() REQUIRES(mutex_);

  Options options_;
  TaskFactory factory_;
  WorkerCounters* counters_;
  MemoryTracker* memory_;
  MinHasher hasher_;

  mutable Mutex mutex_;
  std::multimap<uint64_t, std::unique_ptr<TaskBase>> head_ GUARDED_BY(mutex_);
  std::vector<SpillBlock> blocks_ GUARDED_BY(mutex_);
  // Key source when LSH is disabled.
  uint64_t fifo_sequence_ GUARDED_BY(mutex_) = 0;
  uint64_t next_block_id_ GUARDED_BY(mutex_) = 0;
  size_t spilled_count_ GUARDED_BY(mutex_) = 0;
};

}  // namespace gminer

#endif  // GMINER_CORE_TASK_STORE_H_
