// Reference Counting Vertex Cache (§4.3, §7). Stores remote vertices obtained
// by pulling. Each entry carries a reference count of the ready/active tasks
// referring to it; the count increments when the candidate retriever admits a
// task that needs the vertex and decrements when the task completes its round.
// Zero-referenced entries are not deleted eagerly (the "lazy model"): they
// move to a reclaim list and are evicted only when the cache is full. When
// every resident vertex is referenced and the cache is at capacity, the
// retriever sleeps until computing threads release references.
#ifndef GMINER_CORE_RCV_CACHE_H_
#define GMINER_CORE_RCV_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "metrics/counters.h"
#include "metrics/memory_tracker.h"
#include "storage/vertex_record.h"

namespace gminer {

class RcvCache {
 public:
  RcvCache(size_t capacity, WorkerCounters* counters, MemoryTracker* memory);
  ~RcvCache();

  RcvCache(const RcvCache&) = delete;
  RcvCache& operator=(const RcvCache&) = delete;

  // Retriever path: if v is resident, takes a reference and returns true
  // (cache hit); otherwise records a miss and returns false.
  bool AddRefIfPresent(VertexId v) EXCLUDES(mutex_);

  // Listener path: installs a pulled vertex with `initial_refs` references
  // (one per task waiting on it). Evicts zero-referenced entries if needed;
  // the cache may transiently exceed capacity when everything is referenced —
  // WaitBelowCapacity() provides the backpressure that bounds this overshoot.
  void Insert(VertexRecord record, int initial_refs) EXCLUDES(mutex_);

  // Executor path: returns the record for a resident vertex (no ref change);
  // nullptr when absent. The pointer stays valid only while the caller holds
  // a reference on v (referenced entries are never evicted and unordered_map
  // never relocates nodes) — see DESIGN.md "Locking discipline".
  const VertexRecord* Get(VertexId v) const EXCLUDES(mutex_);

  // Executor path: releases one reference taken by AddRefIfPresent/Insert.
  void Release(VertexId v) EXCLUDES(mutex_);

  // Retriever backpressure: blocks while the cache is at/over capacity and
  // nothing is evictable. Returns false if Shutdown() was called.
  bool WaitBelowCapacity() EXCLUDES(mutex_);

  // Wakes all waiters permanently (job end).
  void Shutdown() EXCLUDES(mutex_);

  size_t size() const EXCLUDES(mutex_);
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    VertexRecord record;
    int refs = 0;
    // Position in reclaim_ when refs == 0.
    std::list<VertexId>::iterator reclaim_pos;
    bool in_reclaim = false;
  };

  // Evicts up to `want` zero-referenced entries.
  size_t EvictLocked(size_t want) REQUIRES(mutex_);

  const size_t capacity_;
  WorkerCounters* counters_;
  MemoryTracker* memory_;

  mutable Mutex mutex_;
  CondVar space_cv_;
  std::unordered_map<VertexId, Entry> entries_ GUARDED_BY(mutex_);
  // Zero-ref entries, oldest first.
  std::list<VertexId> reclaim_ GUARDED_BY(mutex_);
  bool shutdown_ GUARDED_BY(mutex_) = false;
};

}  // namespace gminer

#endif  // GMINER_CORE_RCV_CACHE_H_
