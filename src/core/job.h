// The user programming framework (§5.2, Listing 1). A mining job supplies:
//   * init()   — seed selection and task generation (GenerateSeeds here);
//   * a task factory for deserializing migrated / spilled / recovered tasks;
//   * an aggregator for global communication (e.g. the current max clique).
#ifndef GMINER_CORE_JOB_H_
#define GMINER_CORE_JOB_H_

#include <functional>
#include <memory>
#include <string>

#include "common/serialize.h"
#include "core/task.h"
#include "storage/vertex_table.h"

namespace gminer {

// Global aggregation protocol (§5.1 "aggregator"): compute threads absorb
// task results into the worker-local instance; workers periodically ship a
// serialized partial to the master; the master folds the latest partial of
// every worker into a fresh instance and broadcasts the serialized global
// value back, which workers apply to their local instance. Implementations
// must make Absorb / reads thread safe (compute threads vs. listener thread).
class AggregatorBase {
 public:
  virtual ~AggregatorBase() = default;

  // Worker side: serialize the local partial for shipping to the master.
  virtual void SerializePartial(OutArchive& out) const = 0;

  // Master side: fold one worker's partial into this (fresh) instance.
  virtual void MergePartial(InArchive& in) = 0;

  // Master side: serialize the folded global value.
  virtual void SerializeGlobal(OutArchive& out) const = 0;

  // Worker side: install a received global value.
  virtual void ApplyGlobal(InArchive& in) = 0;
};

// Receives seed tasks produced by JobBase::GenerateSeeds.
class SeedSink {
 public:
  virtual ~SeedSink() = default;
  virtual void Emit(std::unique_ptr<TaskBase> task) = 0;
};

class JobBase {
 public:
  virtual ~JobBase() = default;

  virtual std::string name() const = 0;

  // Listing 1's init(): called once per worker over its local partition;
  // emits one task per selected seed vertex.
  virtual void GenerateSeeds(const VertexTable& table, SeedSink& sink) = 0;

  // Creates an empty task of this job's concrete type (deserialization
  // factory for migration, spilling and checkpoint recovery).
  virtual std::unique_ptr<TaskBase> MakeTask() const = 0;

  // Creates this job's aggregator. Return nullptr for jobs with no global
  // state; the runtime then skips aggregator traffic.
  virtual std::unique_ptr<AggregatorBase> MakeAggregator() const { return nullptr; }
};

}  // namespace gminer

#endif  // GMINER_CORE_JOB_H_
