// A G-Miner worker (§5.1): owns one graph partition (vertex table) and runs
// the task pipeline of §4.3 —
//
//   task store (LSH priority queue, disk-spilled)
//        │ pop                       ▲ batched insert
//        ▼                           │
//   candidate retriever ──CMQ──▶ pending pulls ──▶ CPQ ──▶ task executor
//        │ pull requests              ▲ pull responses        │ task buffer
//        ▼                            │                       ▼
//   ───────────────────────── network / request listener ─────────────
//
// Threads per worker: 1 request listener, 1 candidate retriever (the paper's
// communication thread), N computing threads, 1 progress/aggregator reporter,
// plus a transient seeding thread at job start. There is no barrier anywhere:
// each thread blocks only on its own queue.
//
// Fault tolerance (DESIGN.md "Fault model & recovery protocol"): every pull
// request carries a request id and is retried with exponential backoff until
// answered, so dropped/duplicated/delayed messages never wedge the CMQ. On a
// kAdoptTasks command the worker adopts a dead peer's vertex ownership and
// re-runs its checkpointed seed tasks.
#ifndef GMINER_CORE_WORKER_H_
#define GMINER_CORE_WORKER_H_

#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/blocking_queue.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/trace.h"
#include "core/cluster_state.h"
#include "core/job.h"
#include "core/rcv_cache.h"
#include "core/task_store.h"
#include "graph/graph.h"
#include "metrics/counters.h"
#include "net/network.h"
#include "storage/vertex_table.h"

namespace gminer {

class Worker {
 public:
  Worker(WorkerId id, const JobConfig& config, Network* net, ClusterState* state,
         WorkerCounters* counters, JobBase* job);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  // Loads this worker's partition of g (the graph loader + vertex table of
  // Fig. 4). Must be called before Start(). The graph reference is retained
  // so a dead peer's partition can be adopted later (kAdoptTasks).
  void LoadPartition(const Graph& g, std::shared_ptr<const std::vector<WorkerId>> owner);

  // Spawns all pipeline threads and begins seeding. When `seed_blobs` is
  // non-null, tasks are recovered from the given serialized batch instead of
  // calling the job's GenerateSeeds (checkpoint recovery, §7).
  void Start(const std::vector<std::vector<uint8_t>>* seed_blobs = nullptr);

  // Blocks until the master's shutdown message has been processed and all
  // threads exited.
  void Join();

  // Simulates a node crash: halts the pipeline without the shutdown
  // handshake. Idempotent; callable from any thread (including this worker's
  // own threads, via the network kill trigger). The caller must fence the
  // endpoint in the Network first, then Join() and ReapAccounting().
  void Kill();

  // After Join() on a killed worker: removes its residual resident tasks from
  // the cluster-wide live count (they will be re-created by the adopter from
  // the checkpoint) and discards its partial outputs. Returns the residual.
  int64_t ReapAccounting();

  WorkerId id() const { return id_; }
  std::vector<std::string> TakeOutputs();
  AggregatorBase* aggregator() { return aggregator_.get(); }

  // True once seeding (and therefore the seed checkpoint, if configured) has
  // completed. Wall-clock kill timers wait on this when `after_seeding` is
  // set, so a kill never races the checkpoint it recovers from.
  bool seeding_done() const { return seeding_done_.load(std::memory_order_acquire); }

  // Seed checkpointing: when set, every seed task is also appended to this
  // file (spill-block format) before entering the pipeline.
  void set_checkpoint_path(std::string path) { checkpoint_path_ = std::move(path); }

  // Optional tracing (common/trace.h). Must be set before Start(); the tracer
  // must outlive the worker's threads. Null = no tracing.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  friend class WorkerSeedSink;
  friend class WorkerUpdateContext;

  // A task admitted into the executor together with the cache references the
  // retriever took on its behalf (released when the round completes).
  struct RunnableTask {
    std::unique_ptr<TaskBase> task;
    std::vector<VertexId> cache_refs;
  };

  // A task parked in the communication queue, waiting for pull responses.
  struct PendingTask {
    std::unique_ptr<TaskBase> task;
    std::vector<VertexId> cache_refs;
    int pending = 0;
    int64_t admit_ns = 0;  // trace: when the task parked (pull_wait span)
  };

  struct PendingVertex {
    bool requested = false;
    std::vector<std::shared_ptr<PendingTask>> waiters;
  };

  // One in-flight pull request (guarded by pull_mutex_). `remaining` shrinks
  // as records arrive; the entry is dropped once it is empty. Retries go to
  // Redirect(owner) so they follow a failover to the adopter.
  struct OutstandingPull {
    std::vector<VertexId> remaining;
    WorkerId owner = kInvalidWorker;
    int attempts = 0;
    int64_t deadline_ns = 0;
    int64_t sent_ns = 0;  // trace: first send (pull_rtt span)
  };

  void ListenerLoop();
  void RetrieverLoop();
  void ComputeLoop(int thread_index, Rng rng);
  void ReporterLoop();
  void SeedLoop(const std::vector<std::vector<uint8_t>>* seed_blobs);

  // Pipeline steps.
  // Retriever: cache check + pulls. Takes pull_mutex_, then cache_'s mutex
  // (lock order: pull_mutex_ → cache).
  void AdmitTask(std::unique_ptr<TaskBase> task) EXCLUDES(pull_mutex_);
  void HandlePullRequest(WorkerId from, InArchive in);  // listener
  void HandlePullResponse(InArchive in) EXCLUDES(pull_mutex_);    // listener
  void HandleMigrateCommand(InArchive in);              // listener
  void HandleMigrateTasks(InArchive in);                // listener
  void HandleAdoptTasks(InArchive in) EXCLUDES(adopted_mutex_);  // listener (failover)
  void FinishTask(std::unique_ptr<TaskBase> task);      // executor: task death
  void BufferInactive(std::unique_ptr<TaskBase> task) EXCLUDES(buffer_mutex_);
  bool FlushBuffer(bool force) EXCLUDES(buffer_mutex_);
  void PrepareInactive(TaskBase& task);  // compute to_pull from candidates
  void MaybeRequestSteal();
  // Reporter: re-send timed-out pulls.
  void CheckPullRetries() EXCLUDES(pull_mutex_);

  // Resolves a vertex against the home partition, then any adopted partitions.
  const VertexRecord* FindVertex(VertexId v);
  bool VertexIsLocal(VertexId v) { return FindVertex(v) != nullptr; }

  void AccountTask(TaskBase& task);
  void UnaccountTask(TaskBase& task);

  bool ShuttingDown() const { return !running_.load(std::memory_order_acquire); }

  const WorkerId id_;
  const JobConfig& config_;
  Network* net_;
  ClusterState* state_;
  WorkerCounters* counters_;
  JobBase* job_;
  const WorkerId master_id_;

  VertexTable table_;
  std::shared_ptr<const std::vector<WorkerId>> owner_;
  const Graph* graph_ = nullptr;

  // Partitions adopted from dead peers. Grows only (on the listener thread);
  // readers take adopted_mutex_ for the lookup, but the returned record
  // pointer stays valid — unordered_map never moves elements.
  Mutex adopted_mutex_;
  VertexTable adopted_table_ GUARDED_BY(adopted_mutex_);
  int64_t adopted_bytes_ GUARDED_BY(adopted_mutex_) = 0;
  std::atomic<bool> has_adopted_{false};
  std::unordered_set<WorkerId> adopted_workers_;  // listener thread only

  std::string spill_dir_;
  std::unique_ptr<TaskStore> store_;
  RcvCache cache_;
  BlockingQueue<RunnableTask> cpq_;

  Mutex buffer_mutex_;
  std::vector<std::unique_ptr<TaskBase>> task_buffer_ GUARDED_BY(buffer_mutex_);

  Mutex pull_mutex_;
  std::unordered_map<VertexId, PendingVertex> pending_pulls_ GUARDED_BY(pull_mutex_);
  std::unordered_map<uint64_t, OutstandingPull> outstanding_pulls_ GUARDED_BY(pull_mutex_);
  uint64_t next_request_id_ GUARDED_BY(pull_mutex_) = 1;
  // Tasks parked in the CMQ.
  size_t pending_task_count_ GUARDED_BY(pull_mutex_) = 0;

  std::unique_ptr<AggregatorBase> aggregator_;
  Mutex output_mutex_;
  std::vector<std::string> outputs_ GUARDED_BY(output_mutex_);

  std::atomic<int64_t> local_tasks_{0};  // tasks resident on this worker
  std::atomic<int64_t> in_pipeline_{0};  // tasks currently in CMQ or CPQ
  std::atomic<bool> seeding_done_{false};
  std::atomic<bool> steal_pending_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> killed_{false};

  std::string checkpoint_path_;
  Tracer* tracer_ = nullptr;

  Rng rng_;
  // The pipeline threads' lifetime is tied to the worker itself, not to
  // individual closures, so they are owned directly (see thread_pool.h).
  std::thread listener_thread_;
  std::thread retriever_thread_;
  std::thread reporter_thread_;
  std::thread seeder_thread_;
  std::vector<std::thread> compute_threads_;
};

}  // namespace gminer

#endif  // GMINER_CORE_WORKER_H_
