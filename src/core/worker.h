// A G-Miner worker (§5.1): owns one graph partition (vertex table) and runs
// the task pipeline of §4.3 —
//
//   task store (LSH priority queue, disk-spilled)
//        │ pop                       ▲ batched insert
//        ▼                           │
//   candidate retriever ──CMQ──▶ pending pulls ──▶ CPQ ──▶ task executor
//        │ pull requests              ▲ pull responses        │ task buffer
//        ▼                            │                       ▼
//   ───────────────────────── network / request listener ─────────────
//
// Threads per worker: 1 request listener, 1 candidate retriever (the paper's
// communication thread), N computing threads, 1 progress/aggregator reporter,
// plus a transient seeding thread at job start. There is no barrier anywhere:
// each thread blocks only on its own queue.
//
// Remote fetches go through the batched pull runtime (net/coalescer.h):
// vertex ids headed for the same owner are coalesced into one wire message,
// and a per-vertex in-flight table deduplicates requests across tasks — a
// second task needing a vertex already on the wire subscribes to the
// outstanding pull instead of re-sending it.
//
// Fault tolerance (DESIGN.md "Fault model & recovery protocol"): every pull
// is retried per *vertex* with exponential backoff until its record arrives,
// so dropped/duplicated/delayed messages never wedge the CMQ and a partial
// or duplicated response never triggers a redundant re-send. On a
// kAdoptTasks command the worker adopts a dead peer's vertex ownership and
// re-runs its checkpointed seed tasks.
#ifndef GMINER_CORE_WORKER_H_
#define GMINER_CORE_WORKER_H_

#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/blocking_queue.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/trace.h"
#include "core/cluster_state.h"
#include "core/job.h"
#include "core/rcv_cache.h"
#include "core/task_store.h"
#include "graph/graph.h"
#include "metrics/counters.h"
#include "metrics/registry.h"
#include "net/coalescer.h"
#include "net/network.h"
#include "storage/vertex_table.h"

namespace gminer {

class Worker {
 public:
  Worker(WorkerId id, const JobConfig& config, Network* net, ClusterState* state,
         WorkerCounters* counters, JobBase* job);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  // Loads this worker's partition of g (the graph loader + vertex table of
  // Fig. 4). Must be called before Start(). The graph reference is retained
  // so a dead peer's partition can be adopted later (kAdoptTasks).
  void LoadPartition(const Graph& g, std::shared_ptr<const std::vector<WorkerId>> owner);

  // Spawns all pipeline threads and begins seeding. When `seed_blobs` is
  // non-null, tasks are recovered from the given serialized batch instead of
  // calling the job's GenerateSeeds (checkpoint recovery, §7).
  void Start(const std::vector<std::vector<uint8_t>>* seed_blobs = nullptr);

  // Blocks until the master's shutdown message has been processed and all
  // threads exited.
  void Join();

  // Simulates a node crash: halts the pipeline without the shutdown
  // handshake. Idempotent; callable from any thread (including this worker's
  // own threads, via the network kill trigger). The caller must fence the
  // endpoint in the Network first, then Join() and ReapAccounting().
  void Kill();

  // After Join() on a killed worker: removes its residual resident tasks from
  // the cluster-wide live count (they will be re-created by the adopter from
  // the checkpoint) and discards its partial outputs. Returns the residual.
  int64_t ReapAccounting();

  WorkerId id() const { return id_; }
  std::vector<std::string> TakeOutputs();
  AggregatorBase* aggregator() { return aggregator_.get(); }

  // True once seeding (and therefore the seed checkpoint, if configured) has
  // completed. Wall-clock kill timers wait on this when `after_seeding` is
  // set, so a kill never races the checkpoint it recovers from.
  bool seeding_done() const { return seeding_done_.load(std::memory_order_acquire); }

  // Seed checkpointing: when set, every seed task is also appended to this
  // file (spill-block format) before entering the pipeline.
  void set_checkpoint_path(std::string path) { checkpoint_path_ = std::move(path); }

  // Optional tracing (common/trace.h). Must be set before Start(); the tracer
  // must outlive the worker's threads. Null = no tracing.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Optional metrics plane (metrics/registry.h). Must be set before Start();
  // the registry must outlive the worker's threads. Start() links the
  // WorkerCounters and registers the live queue-depth gauges; the reporter
  // piggybacks kMetricsReport snapshots on the heartbeat path. Null = off.
  void set_registry(MetricsRegistry* registry) { registry_ = registry; }

 private:
  friend class WorkerSeedSink;
  friend class WorkerUpdateContext;

  // A task admitted into the executor together with the cache references the
  // retriever took on its behalf (released when the round completes).
  struct RunnableTask {
    std::unique_ptr<TaskBase> task;
    std::vector<VertexId> cache_refs;
  };

  // A task parked in the communication queue, waiting for pull responses.
  struct PendingTask {
    std::unique_ptr<TaskBase> task;
    std::vector<VertexId> cache_refs;
    int pending = 0;
    int64_t admit_ns = 0;  // trace: when the task parked (pull_wait span)
  };

  // One vertex with a pull in flight (guarded by pull_mutex_). The entry's
  // existence IS the in-flight marker: a later task needing the same vertex
  // subscribes to `waiters` (in-flight dedup) instead of re-requesting, and
  // the response that carries the record — whichever batch answers first —
  // erases the entry, so duplicated responses never leave a vertex marked
  // missing. Retries are per vertex: the reporter re-enqueues only the
  // vertices still pending, with backoff, to Redirect(owner) so they follow
  // a failover to the adopter.
  struct PendingPull {
    WorkerId owner = kInvalidWorker;
    int attempts = 0;
    int64_t deadline_ns = 0;
    std::vector<std::shared_ptr<PendingTask>> waiters;
  };

  // Light bookkeeping for one flushed wire batch: the pull_rtt trace span
  // and duplicate-response detection. All per-vertex state (waiters, retry
  // deadlines) lives in pending_pulls_.
  struct OutstandingBatch {
    int64_t sent_ns = 0;
    uint32_t size = 0;  // vertex ids in the batch
  };

  void ListenerLoop();
  void RetrieverLoop();
  void ComputeLoop(int thread_index, Rng rng);
  void ReporterLoop();
  void SeedLoop(const std::vector<std::vector<uint8_t>>* seed_blobs);

  // Pipeline steps.
  // Retriever: cache check + pulls. Takes pull_mutex_, then cache_'s mutex
  // (lock order: pull_mutex_ → cache).
  void AdmitTask(std::unique_ptr<TaskBase> task) EXCLUDES(pull_mutex_);
  void HandlePullRequest(WorkerId from, InArchive in);  // listener
  void HandlePullResponse(InArchive in) EXCLUDES(pull_mutex_);    // listener
  void HandleMigrateCommand(InArchive in);              // listener
  void HandleMigrateTasks(InArchive in);                // listener
  void HandleAdoptTasks(InArchive in) EXCLUDES(adopted_mutex_);  // listener (failover)
  void FinishTask(std::unique_ptr<TaskBase> task);      // executor: task death
  void BufferInactive(std::unique_ptr<TaskBase> task) EXCLUDES(buffer_mutex_);
  bool FlushBuffer(bool force) EXCLUDES(buffer_mutex_);
  void PrepareInactive(TaskBase& task);  // compute to_pull from candidates
  void MaybeRequestSteal();
  // Reporter: re-enqueue timed-out pulls (per vertex, urgent flush).
  void CheckPullRetries() EXCLUDES(pull_mutex_);
  // Coalescer flush callback: records the batch for RTT tracing and
  // duplicate detection, before the batch hits the wire.
  void OnPullBatch(uint64_t rid, const std::vector<VertexId>& ids) EXCLUDES(pull_mutex_);

  // Resolves a vertex against the home partition, then any adopted partitions.
  const VertexRecord* FindVertex(VertexId v);
  bool VertexIsLocal(VertexId v) { return FindVertex(v) != nullptr; }

  void AccountTask(TaskBase& task);
  void UnaccountTask(TaskBase& task);

  bool ShuttingDown() const { return !running_.load(std::memory_order_acquire); }

  const WorkerId id_;
  const JobConfig& config_;
  Network* net_;
  ClusterState* state_;
  WorkerCounters* counters_;
  JobBase* job_;
  const WorkerId master_id_;

  VertexTable table_;
  std::shared_ptr<const std::vector<WorkerId>> owner_;
  const Graph* graph_ = nullptr;

  // Partitions adopted from dead peers. Grows only (on the listener thread);
  // readers take adopted_mutex_ for the lookup, but the returned record
  // pointer stays valid — unordered_map never moves elements.
  Mutex adopted_mutex_;
  VertexTable adopted_table_ GUARDED_BY(adopted_mutex_);
  int64_t adopted_bytes_ GUARDED_BY(adopted_mutex_) = 0;
  std::atomic<bool> has_adopted_{false};
  std::unordered_set<WorkerId> adopted_workers_;  // listener thread only

  std::string spill_dir_;
  std::unique_ptr<TaskStore> store_;
  RcvCache cache_;
  BlockingQueue<RunnableTask> cpq_;

  Mutex buffer_mutex_;
  std::vector<std::unique_ptr<TaskBase>> task_buffer_ GUARDED_BY(buffer_mutex_);

  Mutex pull_mutex_;
  std::unordered_map<VertexId, PendingPull> pending_pulls_ GUARDED_BY(pull_mutex_);
  std::unordered_map<uint64_t, OutstandingBatch> outstanding_batches_ GUARDED_BY(pull_mutex_);
  // Tasks parked in the CMQ.
  size_t pending_task_count_ GUARDED_BY(pull_mutex_) = 0;

  std::unique_ptr<AggregatorBase> aggregator_;
  Mutex output_mutex_;
  std::vector<std::string> outputs_ GUARDED_BY(output_mutex_);

  std::atomic<int64_t> local_tasks_{0};  // tasks resident on this worker
  std::atomic<int64_t> in_pipeline_{0};  // tasks currently in CMQ or CPQ
  std::atomic<bool> seeding_done_{false};
  std::atomic<bool> steal_pending_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> killed_{false};

  std::string checkpoint_path_;
  Tracer* tracer_ = nullptr;

  // Metrics plane (null = off). The owned handles are fetched once in
  // Start() so the reporter's snapshot path never touches the registry map.
  MetricsRegistry* registry_ = nullptr;
  MetricCounter* metrics_dropped_ = nullptr;
  MetricHistogram* metrics_snapshot_bytes_ = nullptr;

  Rng rng_;
  // The pipeline threads' lifetime is tied to the worker itself, not to
  // individual closures, so they are owned directly (see thread_pool.h).
  std::thread listener_thread_;
  std::thread retriever_thread_;
  std::thread reporter_thread_;
  std::thread seeder_thread_;
  std::vector<std::thread> compute_threads_;

  // Created in Start() (after the tracer is set); declared last so it is
  // destroyed first — its destructor joins the flusher thread, which may
  // still touch the worker's pull bookkeeping via OnPullBatch.
  std::unique_ptr<PullCoalescer> coalescer_;
};

}  // namespace gminer

#endif  // GMINER_CORE_WORKER_H_
