// Machine-readable export of a JobResult — JSON, so bench output can feed
// plotting scripts or regression dashboards without scraping stdout.
#ifndef GMINER_CORE_REPORT_H_
#define GMINER_CORE_REPORT_H_

#include <string>
#include <string_view>

#include "common/json.h"  // JsonEscape, re-exported for existing callers
#include "core/job_result.h"

namespace gminer {

// Version of the report layout. Bump on any breaking change to the JSON
// shape; consumers (scripts/trace_summary.py, dashboards) check it first.
//   1: original flat report (implicit — reports without the field).
//   2: adds schema_version, string escaping, and the "trace" object.
//   3: adds the pull-batching counters (pull_batches_sent, dedup_hits,
//      pull_batch_size_p50/p95) to every counters object.
//   4: adds the "metrics" object — the final registry state of the live
//      metrics plane (per-worker and merged cluster snapshots with named
//      counters, gauges, and log2-bucket histograms).
constexpr int kReportSchemaVersion = 4;

// Serializes the result (status, timings, totals, per-worker counters,
// utilization samples, trace stage latencies) as a single JSON object.
std::string JobResultToJson(const JobResult& result);

// Convenience: writes JobResultToJson to a file (overwrites).
void WriteJobResultJson(const JobResult& result, const std::string& path);

}  // namespace gminer

#endif  // GMINER_CORE_REPORT_H_
