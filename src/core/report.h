// Machine-readable export of a JobResult — JSON, so bench output can feed
// plotting scripts or regression dashboards without scraping stdout.
#ifndef GMINER_CORE_REPORT_H_
#define GMINER_CORE_REPORT_H_

#include <string>

#include "core/job_result.h"

namespace gminer {

// Serializes the result (status, timings, totals, per-worker counters,
// utilization samples) as a single JSON object.
std::string JobResultToJson(const JobResult& result);

// Convenience: writes JobResultToJson to a file (overwrites).
void WriteJobResultJson(const JobResult& result, const std::string& path);

}  // namespace gminer

#endif  // GMINER_CORE_REPORT_H_
