#include "core/cluster.h"

#include <filesystem>

#include "common/logging.h"
#include "common/timer.h"
#include "core/master.h"
#include "core/worker.h"
#include "metrics/sampler.h"
#include "net/network.h"
#include "partition/bdg_partitioner.h"
#include "partition/hash_partitioner.h"
#include "storage/spill_file.h"

namespace gminer {

namespace {

std::string CheckpointFile(const std::string& dir, int index) {
  return dir + "/worker_" + std::to_string(index) + ".tasks";
}

}  // namespace

JobResult Cluster::Run(const Graph& g, JobBase& job, const RunOptions& options) {
  JobResult result;

  // --- Partitioning phase (Fig. 11 reports it separately) ---
  WallTimer partition_timer;
  std::unique_ptr<Partitioner> partitioner;
  if (config_.partition == PartitionStrategy::kBdg) {
    partitioner = std::make_unique<BdgPartitioner>(config_.bdg_num_sources,
                                                   config_.bdg_bfs_depth,
                                                   config_.bdg_max_rounds, config_.seed);
  } else {
    partitioner = std::make_unique<HashPartitioner>();
  }
  auto owner = std::make_shared<const std::vector<WorkerId>>(
      partitioner->Partition(g, config_.num_workers));
  result.partition_seconds = partition_timer.ElapsedSeconds();

  // --- Deployment ---
  ClusterState state;
  std::vector<std::unique_ptr<WorkerCounters>> counters;
  std::vector<WorkerCounters*> counter_ptrs;
  counters.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    counters.push_back(std::make_unique<WorkerCounters>());
    counter_ptrs.push_back(counters.back().get());
  }
  counter_ptrs.push_back(nullptr);  // master endpoint: no accounting
  Network net(config_.num_workers + 1, counter_ptrs, config_.net_latency_us > 0,
              config_.net_bandwidth_gbps, config_.net_latency_us);

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers.push_back(
        std::make_unique<Worker>(i, config_, &net, &state, counters[i].get(), &job));
    workers.back()->LoadPartition(g, owner);
    if (!options.checkpoint_dir.empty()) {
      std::filesystem::create_directories(options.checkpoint_dir);
      workers.back()->set_checkpoint_path(CheckpointFile(options.checkpoint_dir, i));
    }
  }

  // Recovery: load checkpointed seed batches instead of generating seeds.
  std::vector<std::vector<std::vector<uint8_t>>> recovered(
      static_cast<size_t>(config_.num_workers));
  const bool recovering = !options.recover_dir.empty();
  if (recovering) {
    for (int i = 0; i < config_.num_workers; ++i) {
      const int source = options.recover_assignment.empty()
                             ? i
                             : options.recover_assignment[static_cast<size_t>(i)];
      const std::string path = CheckpointFile(options.recover_dir, source);
      if (std::filesystem::exists(path)) {
        // Checkpoint files must survive recovery (a second failure may need
        // them), so read a copy rather than consuming the file.
        const std::string scratch = path + ".recover";
        std::filesystem::copy_file(path, scratch,
                                   std::filesystem::copy_options::overwrite_existing);
        int64_t bytes = 0;
        recovered[static_cast<size_t>(i)] = ReadSpillBlock(scratch, &bytes);
      }
    }
  }

  const int total_cores = EffectiveCores(config_.num_workers * config_.threads_per_worker);
  const auto snapshot_all = [&counters] {
    CountersSnapshot total;
    for (const auto& c : counters) {
      total += Snapshot(*c);
    }
    return total;
  };
  std::unique_ptr<UtilizationSampler> sampler;
  if (config_.sample_utilization) {
    sampler = std::make_unique<UtilizationSampler>(snapshot_all, total_cores,
                                                   config_.net_bandwidth_gbps,
                                                   config_.sample_interval_ms);
    sampler->Start();
  }

  // --- Job execution ---
  WallTimer job_timer;
  for (int i = 0; i < config_.num_workers; ++i) {
    workers[static_cast<size_t>(i)]->Start(
        recovering ? &recovered[static_cast<size_t>(i)] : nullptr);
  }
  Master master(config_, &net, &state, &job);
  result.final_aggregate = master.Run();
  for (auto& worker : workers) {
    worker->Join();
  }
  result.elapsed_seconds = job_timer.ElapsedSeconds();

  if (sampler != nullptr) {
    sampler->Stop();
    result.utilization = sampler->TakeSamples();
  }

  // --- Metrics collection ---
  result.status = state.final_status();
  result.peak_memory_bytes = state.memory.peak();
  for (const auto& c : counters) {
    result.per_worker.push_back(Snapshot(*c));
    result.totals += result.per_worker.back();
  }
  result.avg_cpu_utilization =
      result.elapsed_seconds > 0.0
          ? static_cast<double>(result.totals.compute_busy_ns) /
                (result.elapsed_seconds * 1e9 * total_cores)
          : 0.0;
  for (auto& worker : workers) {
    for (auto& line : worker->TakeOutputs()) {
      result.outputs.push_back(std::move(line));
    }
  }
  workers.clear();  // tear down before the network
  return result;
}

}  // namespace gminer
